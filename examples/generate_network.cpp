// Generate a synthetic network's configuration files — the data-gate
// substitution described in DESIGN.md section 2. Emits config1..configN in
// the paper's anonymized-data-set layout, ready to feed into quickstart,
// audit_network, reachability_query, or your own tooling.
//
// Usage:
//   generate_network <archetype> <out-dir> [seed]
//   archetypes: backbone | enterprise | tier2 | managed | net5 | net15 |
//               nobgp | hybrid | fleet  (fleet writes one subdir per network)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "cli_util.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "synth/fleet.h"

static int run(int argc, char** argv) {
  using namespace rd;

  const std::string archetype = argc > 1 ? argv[1] : "enterprise";
  const std::filesystem::path out_dir =
      argc > 2 ? argv[2]
               : (std::filesystem::temp_directory_path() / "rd_generated");
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  if (archetype == "fleet") {
    const auto fleet = synth::generate_fleet(seed);
    for (const auto& net : fleet.networks) {
      synth::emit_network(net.configs, out_dir / net.name);
      std::printf("%-12s %5zu routers -> %s\n", net.name.c_str(),
                  net.configs.size(), (out_dir / net.name).c_str());
    }
    std::printf("wrote %zu networks (%zu routers) under %s\n",
                fleet.networks.size(), fleet.total_routers(),
                out_dir.c_str());
    return 0;
  }

  synth::SynthNetwork net;
  if (archetype == "backbone") {
    synth::BackboneParams p;
    p.seed = seed;
    net = synth::make_backbone(p);
  } else if (archetype == "enterprise") {
    synth::TextbookEnterpriseParams p;
    p.seed = seed;
    net = synth::make_textbook_enterprise(p);
  } else if (archetype == "tier2") {
    synth::Tier2Params p;
    p.seed = seed;
    net = synth::make_tier2_isp(p);
  } else if (archetype == "managed") {
    synth::ManagedEnterpriseParams p;
    p.seed = seed;
    net = synth::make_managed_enterprise(p);
  } else if (archetype == "net5") {
    net = synth::make_net5(seed);
  } else if (archetype == "net15") {
    net = synth::make_net15(seed);
  } else if (archetype == "nobgp") {
    synth::NoBgpParams p;
    p.seed = seed;
    net = synth::make_no_bgp_enterprise(p);
  } else if (archetype == "hybrid") {
    synth::MergedHybridParams p;
    p.seed = seed;
    net = synth::make_merged_hybrid(p);
  } else {
    std::fprintf(stderr,
                 "unknown archetype '%s' (try: backbone enterprise tier2 "
                 "managed net5 net15 nobgp hybrid fleet)\n",
                 archetype.c_str());
    return 2;
  }

  const auto paths = synth::emit_network(net.configs, out_dir);
  std::printf("wrote %zu configuration files (%s archetype) to %s\n",
              paths.size(), net.archetype.c_str(), out_dir.c_str());
  std::printf("analyze them with:  quickstart %s\n", out_dir.c_str());
  return 0;
}

int main(int argc, char** argv) {
  return rd::cli::guarded_main("generate_network", run, argc, argv);
}
