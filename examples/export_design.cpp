// Export a network's reverse-engineered routing design as JSON, for
// downstream tooling (dashboards, diffing, inventory databases — the §8.1
// "building block" uses).
//
// Usage:
//   export_design [config-dir] > design.json

#include <cstdio>

#include "analysis/archetype.h"
#include "analysis/filters.h"
#include "cli_util.h"
#include "analysis/roles.h"
#include "graph/address_space.h"
#include "graph/instances.h"
#include "model/network.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "util/json.h"

static int run(int argc, char** argv) {
  using namespace rd;

  std::vector<config::RouterConfig> configs;
  if (argc > 1) {
    configs = synth::load_network(argv[1]);
  } else {
    synth::TextbookEnterpriseParams params;
    params.routers = 12;
    configs = synth::reparse(synth::make_textbook_enterprise(params).configs);
  }
  const auto network = model::Network::build(std::move(configs));
  const auto ig = graph::InstanceGraph::build(network);
  const auto structure = graph::extract_address_structure(network);
  const auto roles = analysis::classify_roles(network, ig.set);
  const auto cls = analysis::classify_design(network, ig.set);
  const auto filters = analysis::gather_filter_stats(network);

  auto design = util::Json::object();
  design.set("classification",
             std::string(analysis::to_string(cls.archetype)));
  design.set("rationale", cls.rationale);

  auto summary = util::Json::object();
  summary.set("routers", network.router_count());
  summary.set("interfaces", network.interfaces().size());
  summary.set("links", network.links().size());
  summary.set("routing_processes", network.processes().size());
  summary.set("igp_adjacencies", network.igp_adjacencies().size());
  summary.set("bgp_sessions", network.bgp_sessions().size());
  summary.set("applied_filter_rules", filters.total_applied_rules);
  summary.set("internal_filter_fraction", filters.internal_fraction());
  design.set("summary", std::move(summary));

  auto routers = util::Json::array();
  for (model::RouterId r = 0; r < network.router_count(); ++r) {
    auto router = util::Json::object();
    router.set("hostname", network.routers()[r].hostname);
    router.set("interfaces", network.router_interfaces(r).size());
    auto processes = util::Json::array();
    for (const auto p : network.router_processes(r)) {
      const auto& process = network.processes()[p];
      auto entry = util::Json::object();
      entry.set("protocol", std::string(config::to_keyword(process.protocol)));
      if (process.process_id) {
        entry.set("id", static_cast<long long>(*process.process_id));
      }
      entry.set("instance",
                static_cast<long long>(ig.set.instance_of[p] + 1));
      processes.push_back(std::move(entry));
    }
    router.set("processes", std::move(processes));
    routers.push_back(std::move(router));
  }
  design.set("routers", std::move(routers));

  auto instances = util::Json::array();
  for (std::uint32_t i = 0; i < ig.set.instances.size(); ++i) {
    const auto& inst = ig.set.instances[i];
    auto entry = util::Json::object();
    entry.set("id", static_cast<long long>(i + 1));
    entry.set("protocol", std::string(config::to_keyword(inst.protocol)));
    if (inst.bgp_as) {
      entry.set("as", static_cast<long long>(*inst.bgp_as));
    }
    entry.set("routers", inst.router_count());
    instances.push_back(std::move(entry));
  }
  design.set("instances", std::move(instances));

  auto edges = util::Json::array();
  for (const auto& edge : ig.edges) {
    auto entry = util::Json::object();
    switch (edge.kind) {
      case graph::InstanceEdge::Kind::kRedistribution:
        entry.set("kind", "redistribution");
        entry.set("from", static_cast<long long>(edge.from + 1));
        entry.set("to", static_cast<long long>(edge.to + 1));
        break;
      case graph::InstanceEdge::Kind::kEbgpSession:
        entry.set("kind", "ebgp-session");
        entry.set("from", static_cast<long long>(edge.from + 1));
        entry.set("to", static_cast<long long>(edge.to + 1));
        break;
      case graph::InstanceEdge::Kind::kExternal:
        entry.set("kind", "external");
        entry.set("from", static_cast<long long>(edge.from + 1));
        break;
    }
    entry.set("router", network.routers()[edge.router].hostname);
    if (edge.policy) entry.set("policy", *edge.policy);
    edges.push_back(std::move(entry));
  }
  design.set("instance_edges", std::move(edges));

  auto blocks = util::Json::array();
  for (const auto& block : structure.root_blocks()) {
    blocks.push_back(block.to_string());
  }
  design.set("address_blocks", std::move(blocks));

  auto role_counts = util::Json::object();
  for (const auto& [protocol, counts] : roles.igp_instances) {
    auto entry = util::Json::object();
    entry.set("intra", counts.first);
    entry.set("inter", counts.second);
    role_counts.set(std::string(config::to_keyword(protocol)),
                    std::move(entry));
  }
  role_counts.set("ebgp_intra_sessions", roles.ebgp_intra_sessions);
  role_counts.set("ebgp_inter_sessions", roles.ebgp_inter_sessions);
  design.set("protocol_roles", std::move(role_counts));

  std::printf("%s\n", design.dump(2).c_str());
  return 0;
}

int main(int argc, char** argv) {
  return rd::cli::guarded_main("export_design", run, argc, argv);
}
