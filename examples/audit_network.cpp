// Network audit: the section 8.1 operational tasks as one report.
//
// Runs inventory, vulnerability assessment, and engineering checks over a
// network's configuration files: design classification, address-block plan,
// redistribution redundancy (single points of failure), unfiltered external
// connections, shared static destinations (maintenance grouping), missing
// router detection, and the interface inventory.
//
// The report body lives in serve/queries.cpp, shared with the rdd daemon:
// `rdctl audit` returns these exact bytes from a resident fleet, and the
// differential tests compare the two.
//
// Usage:
//   audit_network                # audit a generated managed enterprise
//   audit_network <config-dir>   # audit a directory of IOS config files
//   audit_network --whatif ...   # only the survivability (what-if) section
//   audit_network [<config-dir>] --threads N
//                                # parse configs on N threads (default: the
//                                # RD_THREADS env override, else hardware
//                                # concurrency); results are identical at
//                                # every thread count
//   audit_network ... --trace audit.json --metrics
//                                # record spans into a Chrome trace-event
//                                # file and dump event counters to stderr
//
// Exit codes: 0 = audit ran and no error-severity design-rule finding,
// 1 = at least one error-severity finding, 2 = usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>

#include "cli_util.h"
#include "config/writer.h"
#include "graph/instances.h"
#include "model/network.h"
#include "pipeline/parse_cache.h"
#include "pipeline/pipeline.h"
#include "pipeline/series.h"
#include "serve/queries.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "util/thread_pool.h"

static int run(int argc, char** argv) {
  using namespace rd;

  pipeline::Options options;
  cli::ObsOptions obs_options;
  bool whatif_only = false;
  const char* config_dir = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: audit_network [<config-dir>] [--whatif] [--threads N]\n"
          "                     [--trace FILE] [--metrics]\n"
          "\n"
          "Audit a network's router configurations: inventory, design\n"
          "classification, vulnerability assessment, and the unified\n"
          "design-rule engine (rdlint rules RD001..RD052). With no\n"
          "config-dir a managed enterprise is generated and audited.\n"
          "\n"
          "options:\n"
          "  --whatif       print only the survivability (what-if) section:\n"
          "                 articulation routers and the single-failure\n"
          "                 sweep (the rdctl whatif op's counterpart)\n"
          "  --threads N    concurrency in [1, 1024] (default: RD_THREADS,\n"
          "                 else hardware concurrency); output is identical\n"
          "                 at every thread count\n"
          "  --trace FILE   write a Chrome trace-event JSON file covering\n"
          "                 parse, rules, and reachability spans (open in\n"
          "                 chrome://tracing or https://ui.perfetto.dev)\n"
          "  --metrics      dump deterministic event counters to stderr\n"
          "\n"
          "exit codes:\n"
          "  0  audit ran; no error-severity design-rule finding\n"
          "  1  at least one error-severity design-rule finding\n"
          "  2  usage or I/O error\n");
      return 0;
    }
    bool obs_error = false;
    if (obs_options.consume(argc, argv, i, &obs_error)) {
      if (obs_error) return 2;
      continue;
    }
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (!cli::parse_threads(i + 1 < argc ? argv[++i] : nullptr,
                              options.threads)) {
        std::fprintf(stderr, "--threads wants an integer in [1, 1024]\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--whatif") == 0) {
      whatif_only = true;
    } else {
      config_dir = argv[i];
    }
  }
  obs_options.enable();

  util::ThreadPool pool(options.threads);
  std::optional<model::Network> network;
  if (config_dir != nullptr) {
    if (!std::filesystem::is_directory(config_dir)) {
      std::fprintf(stderr, "%s is not a directory\n", config_dir);
      return 2;
    }
    // Provenance-stamped cached build: the same construction the rdd
    // daemon uses to load a fleet, so findings carry file:line provenance
    // and the daemon's response is byte-identical to this report.
    auto loaded = synth::load_network_texts_named(config_dir);
    if (loaded.texts.empty()) {
      std::fprintf(stderr, "no configuration files found\n");
      return 2;
    }
    pipeline::ParseCache cache;
    network = pipeline::build_network_cached(loaded.texts, loaded.names,
                                             cache, pool);
  } else {
    synth::ManagedEnterpriseParams params;
    params.regions = 3;
    params.spokes_per_region = 14;
    params.igp_edge_rate = 0.15;
    std::vector<std::string> texts;
    for (const auto& cfg : synth::make_managed_enterprise(params).configs) {
      texts.push_back(config::write_config(cfg));
    }
    std::printf("(auditing a generated managed enterprise; pass a config "
                "directory to audit your own network)\n\n");
    network = pipeline::build_network_parallel(texts, options);
  }

  const auto ig = graph::InstanceGraph::build(*network);
  const auto report = whatif_only
                          ? serve::whatif_report(*network, ig, pool)
                          : serve::audit_report(*network, ig, pool);
  std::fwrite(report.output.data(), 1, report.output.size(), stdout);
  if (const int rc = obs_options.finish("audit_network"); rc != 0) return rc;
  return report.exit_code;
}

int main(int argc, char** argv) {
  return rd::cli::guarded_main("audit_network", run, argc, argv);
}
