// Network audit: the section 8.1 operational tasks as one report.
//
// Runs inventory, vulnerability assessment, and engineering checks over a
// network's configuration files: design classification, address-block plan,
// redistribution redundancy (single points of failure), unfiltered external
// connections, shared static destinations (maintenance grouping), missing
// router detection, and the interface inventory.
//
// Usage:
//   audit_network                # audit a generated managed enterprise
//   audit_network <config-dir>   # audit a directory of IOS config files
//   audit_network [<config-dir>] --threads N
//                                # parse configs on N threads (default: the
//                                # RD_THREADS env override, else hardware
//                                # concurrency); results are identical at
//                                # every thread count
//   audit_network ... --trace audit.json --metrics
//                                # record spans into a Chrome trace-event
//                                # file and dump event counters to stderr
//
// Exit codes: 0 = audit ran and no error-severity design-rule finding,
// 1 = at least one error-severity finding, 2 = usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>

#include "analysis/archetype.h"
#include "analysis/census.h"
#include "analysis/filters.h"
#include "analysis/header_space.h"
#include "analysis/ibgp.h"
#include "analysis/reachability.h"
#include "analysis/router_rib.h"
#include "analysis/rules.h"
#include "analysis/vulnerability.h"
#include "analysis/whatif.h"
#include "cli_util.h"
#include "config/writer.h"
#include "graph/address_space.h"
#include "graph/instances.h"
#include "model/network.h"
#include "pipeline/pipeline.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "util/table.h"
#include "util/thread_pool.h"

static int run(int argc, char** argv) {
  using namespace rd;

  pipeline::Options options;
  cli::ObsOptions obs_options;
  const char* config_dir = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: audit_network [<config-dir>] [--threads N]\n"
          "                     [--trace FILE] [--metrics]\n"
          "\n"
          "Audit a network's router configurations: inventory, design\n"
          "classification, vulnerability assessment, and the unified\n"
          "design-rule engine (rdlint rules RD001..RD052). With no\n"
          "config-dir a managed enterprise is generated and audited.\n"
          "\n"
          "options:\n"
          "  --threads N    concurrency in [1, 1024] (default: RD_THREADS,\n"
          "                 else hardware concurrency); output is identical\n"
          "                 at every thread count\n"
          "  --trace FILE   write a Chrome trace-event JSON file covering\n"
          "                 parse, rules, and reachability spans (open in\n"
          "                 chrome://tracing or https://ui.perfetto.dev)\n"
          "  --metrics      dump deterministic event counters to stderr\n"
          "\n"
          "exit codes:\n"
          "  0  audit ran; no error-severity design-rule finding\n"
          "  1  at least one error-severity design-rule finding\n"
          "  2  usage or I/O error\n");
      return 0;
    }
    bool obs_error = false;
    if (obs_options.consume(argc, argv, i, &obs_error)) {
      if (obs_error) return 2;
      continue;
    }
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (!cli::parse_threads(i + 1 < argc ? argv[++i] : nullptr,
                              options.threads)) {
        std::fprintf(stderr, "--threads wants an integer in [1, 1024]\n");
        return 2;
      }
    } else {
      config_dir = argv[i];
    }
  }
  obs_options.enable();

  std::vector<std::string> texts;
  if (config_dir != nullptr) {
    if (!std::filesystem::is_directory(config_dir)) {
      std::fprintf(stderr, "%s is not a directory\n", config_dir);
      return 2;
    }
    texts = synth::load_network_texts(config_dir);
  } else {
    synth::ManagedEnterpriseParams params;
    params.regions = 3;
    params.spokes_per_region = 14;
    params.igp_edge_rate = 0.15;
    for (const auto& cfg : synth::make_managed_enterprise(params).configs) {
      texts.push_back(config::write_config(cfg));
    }
    std::printf("(auditing a generated managed enterprise; pass a config "
                "directory to audit your own network)\n\n");
  }
  if (texts.empty()) {
    std::fprintf(stderr, "no configuration files found\n");
    return 2;
  }

  const auto network = pipeline::build_network_parallel(texts, options);
  const auto ig = graph::InstanceGraph::build(network);

  // --- Inventory -----------------------------------------------------------
  std::printf("=== Inventory ===\n");
  std::printf("routers: %zu, interfaces: %zu (%zu unnumbered), links: %zu\n",
              network.router_count(), network.interfaces().size(),
              analysis::unnumbered_interface_count(network),
              network.links().size());
  util::Table census_table({"interface type", "count"});
  for (const auto& [type, count] : analysis::interface_census(network)) {
    census_table.add_row({type, util::fmt_int(static_cast<long long>(count))});
  }
  std::printf("%s\n", census_table.to_string().c_str());

  // --- Parse diagnostics -----------------------------------------------------
  // Lines the lenient parser skipped: the model above is built without
  // them, so a nonzero count means the audit is looking at a partial view.
  const auto total_diags = network.total_parse_diagnostics();
  std::printf("=== Parse diagnostics ===\n");
  std::printf("config lines skipped by the parser: %zu\n", total_diags);
  if (total_diags > 0) {
    std::size_t shown_diags = 0;
    for (model::RouterId r = 0;
         r < network.router_count() && shown_diags < 6; ++r) {
      for (const auto& diag : network.parse_diagnostics(r)) {
        if (shown_diags++ >= 6) break;
        std::printf("  %s line %zu: %s\n",
                    network.routers()[r].hostname.c_str(), diag.line,
                    diag.message.c_str());
      }
    }
    if (total_diags > shown_diags) {
      std::printf("  ... and %zu more\n", total_diags - shown_diags);
    }
  }
  std::printf("\n");

  // --- Design --------------------------------------------------------------
  std::printf("=== Routing design ===\n");
  const auto cls = analysis::classify_design(network, ig.set);
  std::printf("classification: %s\n",
              std::string(analysis::to_string(cls.archetype)).c_str());
  std::printf("instances: %zu (BGP: %zu, staging: %zu), internal ASs: %zu\n",
              ig.set.instances.size(), cls.features.bgp_instance_count,
              cls.features.staging_igp_instances,
              cls.features.internal_as_count);

  const auto structure = graph::extract_address_structure(network);
  std::printf("address-block plan (%zu root blocks):\n",
              structure.roots.size());
  for (const auto& block : structure.root_blocks()) {
    std::printf("  %s\n", block.to_string().c_str());
  }

  // --- Vulnerability assessment ---------------------------------------------
  std::printf("\n=== Vulnerability assessment ===\n");
  const auto redundancy = analysis::redistribution_redundancy(network, ig);
  std::size_t spofs = 0;
  for (const auto& entry : redundancy) {
    if (entry.single_point_of_failure()) {
      ++spofs;
      std::printf("  SINGLE POINT OF FAILURE: route exchange between "
                  "instance %u and instance %u relies on router %s alone\n",
                  entry.instance_a + 1, entry.instance_b + 1,
                  network.routers()[entry.connecting_routers[0]]
                      .hostname.c_str());
    }
  }
  std::printf("instance pairs exchanging routes: %zu, single points of "
              "failure: %zu\n",
              redundancy.size(), spofs);

  const auto backdoors = analysis::detect_backdoor_candidates(network, ig);
  if (backdoors.groups > 1) {
    std::printf("POTENTIAL BACKDOOR ROUTES: %zu internally-disconnected "
                "groups each reach the external world; traffic between "
                "them can only flow through the neighboring domains "
                "(paper 8.2)\n",
                backdoors.groups);
  }

  const auto unfiltered =
      analysis::find_unfiltered_external_connections(network);
  std::printf("unfiltered external connections: %zu\n", unfiltered.size());
  for (std::size_t i = 0; i < unfiltered.size() && i < 8; ++i) {
    const auto& finding = unfiltered[i];
    std::printf("  router %s, %s %s: %s%s\n",
                network.routers()[finding.router].hostname.c_str(),
                finding.kind ==
                        analysis::UnfilteredExternalConnection::Kind::kBgpSession
                    ? "BGP neighbor"
                    : "IGP edge interface",
                finding.detail.c_str(),
                finding.missing_route_filter ? "no route filter " : "",
                finding.missing_packet_filter ? "no packet filter" : "");
  }
  if (unfiltered.size() > 8) {
    std::printf("  ... and %zu more\n", unfiltered.size() - 8);
  }

  // --- Engineering / maintenance ----------------------------------------------
  std::printf("\n=== Maintenance groupings ===\n");
  const auto shared = analysis::shared_static_destinations(network);
  std::printf("destinations with static routes on multiple routers: %zu\n",
              shared.size());
  for (std::size_t i = 0; i < shared.size() && i < 5; ++i) {
    std::printf("  %s on %zu routers (do not disable all at once)\n",
                shared[i].destination.to_string().c_str(),
                shared[i].routers.size());
  }

  const auto suspects = graph::detect_missing_routers(network, structure);
  std::printf("\n=== Data-set completeness ===\n");
  std::printf("interfaces that look like links to missing routers: %zu\n",
              suspects.size());
  for (std::size_t i = 0; i < suspects.size() && i < 5; ++i) {
    const auto& itf = network.interfaces()[suspects[i].interface];
    std::printf("  %s %s (%s): inside a %.0f%%-internal block\n",
                network.routers()[itf.router].hostname.c_str(),
                itf.name.c_str(),
                itf.address ? itf.address->to_string().c_str() : "?",
                suspects[i].internal_fraction * 100.0);
  }

  const auto filters = analysis::gather_filter_stats(network);
  std::printf("\n=== Packet filtering ===\n");
  std::printf("applied filter rules: %zu (%.0f%% on internal links), "
              "largest filter: %zu clauses\n",
              filters.total_applied_rules,
              filters.internal_fraction() * 100.0,
              filters.largest_filter_rules);

  // --- IBGP signaling (paper §3.1/§6.1 mesh-scalability concern) --------------
  std::printf("\n=== IBGP signaling ===\n");
  for (const auto& as_entry : analysis::analyze_ibgp(network, ig.set)) {
    if (as_entry.routers.size() < 2) continue;
    std::printf("AS %u: %zu routers, %zu sessions (%.0f%% of a full mesh)%s",
                as_entry.as_number, as_entry.routers.size(),
                as_entry.sessions, as_entry.mesh_completeness * 100.0,
                as_entry.uses_route_reflection() ? ", route reflection"
                                                 : "");
    if (as_entry.disconnected_pairs > 0) {
      std::printf(" — %zu SIGNALING HOLES", as_entry.disconnected_pairs);
    }
    if (!as_entry.isolated_routers.empty()) {
      std::printf(" — %zu routers with no IBGP session",
                  as_entry.isolated_routers.size());
    }
    std::printf("\n");
  }

  // --- Survivability (what-if, paper §8.1) -----------------------------------
  std::printf("\n=== Survivability (what-if) ===\n");
  const auto cuts =
      analysis::instance_articulation_routers(network, ig.set);
  std::printf("routers whose single failure splits their routing instance: "
              "%zu\n",
              cuts.size());
  for (std::size_t i = 0; i < cuts.size() && i < 5; ++i) {
    std::printf("  %s (instance %u)\n",
                network.routers()[cuts[i].router].hostname.c_str(),
                cuts[i].instance + 1);
  }
  // Sweep every interesting single failure — articulation routers plus
  // sole redistribution points — with one degraded-network reachability
  // fixpoint per scenario, fanned out across the pool (results identical
  // at every thread count).
  util::ThreadPool pool(options.threads);
  const auto scenarios = analysis::single_failure_scenarios(network, ig);
  if (!scenarios.empty()) {
    const auto impacts = analysis::sweep_failure_scenarios(
        network, ig.set, scenarios, {}, pool);
    // No thread count in the line: output is byte-identical at every
    // --threads value, and this report is diffed to prove it.
    std::printf("single-failure sweep: %zu scenarios\n", impacts.size());
    for (std::size_t i = 0; i < impacts.size() && i < 5; ++i) {
      const auto& impact = impacts[i];
      std::printf("  %s: instances %zu -> %zu, fragmented: %zu, "
                  "reaching internet: %zu, announced: %zu%s\n",
                  impact.scenario.name.c_str(),
                  impact.structural.instances_before,
                  impact.structural.instances_after,
                  impact.structural.fragmented_instances.size(),
                  impact.instances_reaching_internet,
                  impact.announced_externally,
                  impact.reachability_converged ? "" : " (NOT CONVERGED)");
    }
  }

  // --- Route load (paper §2.3 / §6.2) ----------------------------------------
  std::printf("\n=== Route load ===\n");
  const auto reach = analysis::ReachabilityAnalysis::run(network, ig.set);
  if (const auto warning = reach.convergence_warning(); !warning.empty()) {
    std::printf("%s\n", warning.c_str());
  }
  const auto ribs = analysis::RouterRibAnalysis::run(network, ig.set, reach);
  const auto sizes = ribs.rib_sizes();
  std::size_t max_rib = 0;
  std::size_t total = 0;
  for (const auto s : sizes) {
    max_rib = std::max(max_rib, s);
    total += s;
  }
  std::printf("router RIBs: mean %.0f routes, max %zu; routers holding "
              "externally-learned routes: %zu of %zu\n",
              sizes.empty() ? 0.0
                            : static_cast<double>(total) /
                                  static_cast<double>(sizes.size()),
              max_rib, ribs.routers_with_external_routes().size(),
              network.router_count());

  // --- Intent assertions (§6.2 reachability questions, machine-checked
  // against the exact symbolic header space) ----------------------------------
  if (const auto intents = analysis::collect_intents(network);
      !intents.empty()) {
    std::printf("\n=== Intent assertions ===\n");
    const auto outcomes =
        analysis::verify_intents(network, ig.set, reach, intents);
    std::size_t held = 0;
    for (const auto& outcome : outcomes) {
      if (outcome.holds) ++held;
    }
    std::printf("declared rd-intent assertions: %zu, holding: %zu\n",
                outcomes.size(), held);
    for (const auto& outcome : outcomes) {
      if (outcome.holds) continue;
      std::printf("  VIOLATED: %s", outcome.intent.describe().c_str());
      if (outcome.witness) {
        std::printf(" — witness packet %s",
                    outcome.witness->describe().c_str());
      }
      std::printf("\n");
    }
  }

  // --- Design rules (paper §8: lint, consistency, vulnerability, and the
  // cross-router rules, unified under one registry with provenance) -----------
  std::printf("\n=== Design rules ===\n");
  const auto engine = analysis::RuleEngine::with_default_rules();
  const auto rules = engine.run(network, ig, pool);
  std::printf("findings: %zu (%zu errors, %zu warnings, %zu info), "
              "suppressed: %zu\n",
              rules.findings.size(), rules.errors, rules.warnings,
              rules.infos, rules.suppressed);
  std::map<std::string, std::size_t> by_rule;
  for (const auto& finding : rules.findings) ++by_rule[finding.rule_id];
  for (const auto& [rule, count] : by_rule) {
    const auto* info = engine.find(rule);
    std::printf("  %-6s %-36s %-8s %zu\n", rule.c_str(),
                info != nullptr ? info->name.c_str() : "?",
                info != nullptr
                    ? std::string(analysis::severity_name(info->severity))
                          .c_str()
                    : "?",
                count);
  }
  std::size_t shown = 0;
  for (const auto& finding : rules.findings) {
    if (finding.severity == analysis::Severity::kInfo || shown >= 8) continue;
    ++shown;
    std::printf("  [%s] %s:%zu %s: %s: %s\n", finding.rule_id.c_str(),
                finding.where.file.c_str(), finding.where.line,
                finding.router_name.c_str(), finding.subject.c_str(),
                finding.detail.c_str());
  }
  if (const int rc = obs_options.finish("audit_network"); rc != 0) return rc;
  if (rules.has_errors()) {
    std::printf("\n%zu error-severity finding(s) — exiting nonzero "
                "(see --help for the exit-code contract)\n",
                rules.errors);
    return 1;
  }
  return 0;
}

int main(int argc, char** argv) {
  return rd::cli::guarded_main("audit_network", run, argc, argv);
}
