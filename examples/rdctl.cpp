// rdctl: the rdd daemon's client. Sends one request frame, prints the
// response — stdout bytes verbatim (identical to the matching one-shot
// CLI), stderr text to stderr — and exits with the response's exit code,
// so scripts can swap `audit_network DIR` for `rdctl ... audit`
// transparently.
//
// Usage:
//   rdctl --socket /tmp/rdd.sock audit
//   rdctl --tcp 7440 rdlint --format json
//   rdctl --socket S reachability 10.0.1.1 10.0.2.1
//   rdctl --socket S headerspace --fleet corp
//   rdctl --socket S stats
//   rdctl --socket S shutdown
//
// Ops: ping, fleets, stats, audit, whatif, rdlint, reachability,
// headerspace, simulate, shutdown.
//
// Options:
//   --socket PATH   connect over the Unix-domain socket
//   --tcp PORT      connect to 127.0.0.1:PORT
//   --fleet NAME    fleet to query (optional when one fleet is loaded)
//   --format F      rdlint: text | json | sarif (default text)
//   --naive         reachability: the reference full-rescan engine
//   --seed N        simulate: simulation seed (default 42)
//   --until MS      simulate: simulated-time cap in ms (default automatic)
//
// Exit codes mirror the one-shot CLIs: 0 = ok, 1 = error-severity
// findings, 2 = usage, transport, or daemon-side error. A connection
// failure (daemon not running, stale socket) is exit 2 with the errno
// text on stderr.
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "cli_util.h"
#include "serve/protocol.h"

static int run(int argc, char** argv) {
  using namespace rd;

  std::string socket_path;
  int tcp_port = -1;
  serve::Request request;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const auto want_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s wants a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: rdctl (--socket PATH | --tcp PORT) <op> [args]\n"
          "\n"
          "ops: ping, fleets, stats, audit, whatif, rdlint,\n"
          "     reachability [SRC DST], headerspace [SRC DST], simulate,\n"
          "     shutdown\n"
          "\n"
          "options:\n"
          "  --fleet NAME   fleet to query (optional with one fleet)\n"
          "  --format F     rdlint format: text | json | sarif\n"
          "  --naive        reachability: reference full-rescan engine\n"
          "  --seed N       simulate: simulation seed (default 42)\n"
          "  --until MS     simulate: simulated-time cap in milliseconds\n"
          "                 (default: automatic)\n"
          "\n"
          "exit codes: 0 ok, 1 error-severity findings, 2 usage or\n"
          "transport error\n");
      return 0;
    }
    if (std::strcmp(argv[i], "--socket") == 0) {
      const char* v = want_value("--socket");
      if (v == nullptr) return 2;
      socket_path = v;
    } else if (std::strcmp(argv[i], "--tcp") == 0) {
      const char* v = want_value("--tcp");
      if (v == nullptr) return 2;
      std::uint32_t port = 0;
      if (!util::parse_u32(util::trim(v), port) || port < 1 ||
          port > 65535) {
        std::fprintf(stderr, "--tcp wants a port in [1, 65535]\n");
        return 2;
      }
      tcp_port = static_cast<int>(port);
    } else if (std::strcmp(argv[i], "--fleet") == 0) {
      const char* v = want_value("--fleet");
      if (v == nullptr) return 2;
      request.fleet = v;
    } else if (std::strcmp(argv[i], "--format") == 0) {
      const char* v = want_value("--format");
      if (v == nullptr) return 2;
      request.format = v;
    } else if (std::strcmp(argv[i], "--naive") == 0) {
      request.naive = true;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (!cli::parse_u64_flag(i + 1 < argc ? argv[++i] : nullptr,
                               request.seed)) {
        std::fprintf(stderr, "--seed wants an unsigned integer\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--until") == 0) {
      if (!cli::parse_u64_flag(i + 1 < argc ? argv[++i] : nullptr,
                               request.until_ms)) {
        std::fprintf(stderr,
                     "--until wants a simulated-time cap in milliseconds\n");
        return 2;
      }
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option '%s' (see --help)\n", argv[i]);
      return 2;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.empty()) {
    std::fprintf(stderr, "no op given (see --help)\n");
    return 2;
  }
  request.op = positional[0];
  if (positional.size() == 3) {
    request.source = positional[1];
    request.destination = positional[2];
  } else if (positional.size() != 1) {
    std::fprintf(stderr, "expected '<op>' or '<op> SRC DST' (see --help)\n");
    return 2;
  }
  if (socket_path.empty() == (tcp_port < 0)) {
    std::fprintf(stderr, "pick exactly one of --socket or --tcp\n");
    return 2;
  }

  const int fd = socket_path.empty()
                     ? serve::connect_tcp("127.0.0.1",
                                          static_cast<std::uint16_t>(tcp_port))
                     : serve::connect_unix(socket_path);
  if (fd < 0) {
    // connect_unix/connect_tcp preserve connect(2)'s errno across their
    // cleanup, so this names the real failure: ECONNREFUSED for a dead
    // daemon or a stale socket file, ENOENT for a path that never existed.
    std::fprintf(stderr, "rdctl: cannot connect to %s: %s (is rdd running?)\n",
                 socket_path.empty()
                     ? ("127.0.0.1:" + std::to_string(tcp_port)).c_str()
                     : socket_path.c_str(),
                 std::strerror(errno));
    return 2;
  }
  std::string error;
  const auto response = serve::roundtrip(fd, request, &error);
  ::close(fd);
  if (!response) {
    std::fprintf(stderr, "rdctl: %s\n", error.c_str());
    return 2;
  }
  if (!response->output.empty()) {
    std::fwrite(response->output.data(), 1, response->output.size(), stdout);
  }
  if (!response->error.empty()) {
    std::fwrite(response->error.data(), 1, response->error.size(), stderr);
  }
  return response->exit_code;
}

int main(int argc, char** argv) {
  return rd::cli::guarded_main("rdctl", run, argc, argv);
}
