// Convergence simulation: timed distance-vector dynamics over the routing
// instance graph (DESIGN.md §15).
//
// Where the reachability analyses compute the converged fixpoint directly,
// this tool replays how the network GETS there: periodic and triggered
// advertisements, split horizon with poisoned reverse, invalidation and
// garbage-collection timers, and scheduled link failures/recoveries. Per
// scenario it reports the settle time after failure and after recovery,
// transient forwarding micro-loops, and blackhole windows — and
// cross-checks the converged RIBs against the static semi-naïve engine on
// the same (masked) problem.
//
// Usage:
//   simulate_convergence                 # demo: a 2-instance enterprise
//   simulate_convergence <config-dir>    # simulate a directory of configs
//   simulate_convergence --fleet         # the 31-network synthetic fleet,
//                                        # distributions per archetype
//   simulate_convergence --seed N --until MS --scenarios N --threads N
//   simulate_convergence --log           # append per-event logs (the
//                                        # byte-identical determinism
//                                        # witness) after the report
//
// Exit codes: 0 = simulated and every fixpoint cross-check passed, 1 = a
// cross-check mismatched, 2 = usage or I/O error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>

#include "cli_util.h"
#include "graph/instances.h"
#include "model/network.h"
#include "pipeline/parse_cache.h"
#include "pipeline/pipeline.h"
#include "pipeline/series.h"
#include "sim/sweep.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "util/thread_pool.h"

static int run(int argc, char** argv) {
  using namespace rd;

  sim::SweepOptions options;
  cli::ObsOptions obs_options;
  std::size_t threads = 0;
  bool fleet = false;
  const char* config_dir = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: simulate_convergence [<config-dir> | --fleet]\n"
          "                            [--seed N] [--until MS]\n"
          "                            [--scenarios N] [--threads N]\n"
          "                            [--log] [--trace FILE] [--metrics]\n"
          "\n"
          "Discrete-event simulation of distance-vector convergence over\n"
          "the routing instance graph: periodic/triggered advertisements,\n"
          "split horizon with poisoned reverse, invalidation and gc\n"
          "timers, and one link-flap scenario per interesting single-\n"
          "router failure. Converged RIBs are cross-checked against the\n"
          "static semi-naive fixpoint. With no arguments a two-instance\n"
          "enterprise is generated and simulated.\n"
          "\n"
          "options:\n"
          "  --fleet        simulate the 31-network synthetic fleet and\n"
          "                 report convergence-time distributions per\n"
          "                 archetype (flaps capped per network)\n"
          "  --seed N       simulation seed (default 42); same seed =>\n"
          "                 byte-identical report and event logs at every\n"
          "                 thread count\n"
          "  --until MS     hard simulated-time cap in ms (default:\n"
          "                 automatic, last scenario event plus two settle\n"
          "                 windows)\n"
          "  --scenarios N  cap flap scenarios per network (default: all;\n"
          "                 fleet mode caps at 4)\n"
          "  --threads N    concurrency in [1, 1024] (default: RD_THREADS,\n"
          "                 else hardware concurrency); output is\n"
          "                 identical at every thread count\n"
          "  --log          record per-event logs and append them to the\n"
          "                 report (single-network modes)\n"
          "  --trace FILE   write a Chrome trace-event JSON file\n"
          "  --metrics      dump deterministic event counters to stderr\n"
          "\n"
          "exit codes:\n"
          "  0  simulation ran; every fixpoint cross-check passed\n"
          "  1  at least one scenario's RIBs mismatched the static engine\n"
          "  2  usage or I/O error\n");
      return 0;
    }
    bool obs_error = false;
    if (obs_options.consume(argc, argv, i, &obs_error)) {
      if (obs_error) return 2;
      continue;
    }
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (!cli::parse_threads(i + 1 < argc ? argv[++i] : nullptr, threads)) {
        std::fprintf(stderr, "--threads wants an integer in [1, 1024]\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (!cli::parse_u64_flag(i + 1 < argc ? argv[++i] : nullptr,
                               options.seed)) {
        std::fprintf(stderr, "--seed wants an unsigned integer\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--until") == 0) {
      if (!cli::parse_u64_flag(i + 1 < argc ? argv[++i] : nullptr,
                               options.until_ms)) {
        std::fprintf(stderr,
                     "--until wants a simulated-time cap in milliseconds\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--scenarios") == 0) {
      std::uint64_t cap = 0;
      if (!cli::parse_u64_flag(i + 1 < argc ? argv[++i] : nullptr, cap)) {
        std::fprintf(stderr, "--scenarios wants an unsigned integer\n");
        return 2;
      }
      options.max_scenarios = static_cast<std::size_t>(cap);
    } else if (std::strcmp(argv[i], "--log") == 0) {
      options.record_log = true;
    } else if (std::strcmp(argv[i], "--fleet") == 0) {
      fleet = true;
    } else {
      config_dir = argv[i];
    }
  }
  obs_options.enable();

  util::ThreadPool pool(threads);
  if (fleet) {
    const std::string report =
        sim::fleet_simulation_report(42, options, pool);
    std::fputs(report.c_str(), stdout);
    if (const int rc = obs_options.finish("simulate_convergence"); rc != 0) {
      return rc;
    }
    return report.find("MISMATCH") == std::string::npos ? 0 : 1;
  }

  std::optional<model::Network> network;
  if (config_dir != nullptr) {
    if (!std::filesystem::is_directory(config_dir)) {
      std::fprintf(stderr, "%s is not a directory\n", config_dir);
      return 2;
    }
    auto loaded = synth::load_network_texts_named(config_dir);
    if (loaded.texts.empty()) {
      std::fprintf(stderr, "no configuration files found\n");
      return 2;
    }
    pipeline::ParseCache cache;
    network = pipeline::build_network_cached(loaded.texts, loaded.names,
                                             cache, pool);
  } else {
    // Demo: a two-IGP-instance enterprise with a BGP border — small enough
    // to read the whole report, rich enough to have redistribution edges
    // and interesting single-failure scenarios.
    synth::TextbookEnterpriseParams params;
    params.routers = 24;
    params.border_routers = 2;
    params.igp_instances = 2;
    network = model::Network::build(
        synth::make_textbook_enterprise(params).configs);
  }
  const graph::InstanceGraph ig = graph::InstanceGraph::build(*network);
  std::string report = sim::simulate_report(*network, ig, options, pool);
  if (options.record_log) {
    const auto scenarios =
        sim::flap_scenarios(*network, ig, options.max_scenarios);
    const auto results =
        sim::sweep_scenarios(*network, ig.set, scenarios, options, pool);
    for (const auto& result : results) {
      report += "\n--- event log: " + result.name + " ---\n";
      report += result.log;
    }
  }
  std::fputs(report.c_str(), stdout);
  if (const int rc = obs_options.finish("simulate_convergence"); rc != 0) {
    return rc;
  }
  return report.find("MISMATCH") == std::string::npos ? 0 : 1;
}

int main(int argc, char** argv) {
  return rd::cli::guarded_main("simulate_convergence", run, argc, argv);
}
