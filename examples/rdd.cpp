// rdd: the always-on analysis daemon. Loads one or more fleets of router
// configurations resident (parsed networks, instance graphs, compiled
// design rules), then serves audit / rdlint / reachability / headerspace /
// simulate / what-if queries over a Unix-domain or loopback TCP socket —
// each answer
// byte-identical to the matching one-shot CLI's stdout, but without paying
// the parse+build cost per invocation.
//
// The parse layer persists: with --store DIR, every cold parse is written
// to a content-addressed on-disk store (keyed by the SHA-1 of the config
// text), so a restarted daemon — or a second daemon sharing the store —
// reloads unchanged fleets without reparsing a single file. The startup
// line per fleet reports where its configs came from; CI asserts the
// restart case shows "0 parsed".
//
// Usage:
//   rdd --socket /tmp/rdd.sock --fleet corp=/path/to/configs
//   rdd --tcp 7440 --fleet a=dirA --fleet b=dirB --store /var/cache/rd
//   rdd --socket S --fleet n=D --threads 4 --cache-mb 64
//
// Options:
//   --socket PATH      listen on a Unix-domain socket (stale socket files
//                      are replaced; regular files are not)
//   --tcp PORT         listen on loopback TCP (0 = ephemeral; the chosen
//                      port is printed)
//   --fleet NAME=DIR   load the "config*" files in DIR as fleet NAME
//                      (repeatable)
//   --store DIR        persistent parse store, shared across fleets,
//                      restarts, and daemons
//   --cache-mb N       LRU byte cap on the in-memory parse cache
//                      (default: unbounded)
//   --threads N        analysis concurrency in [1, 1024] (default:
//                      RD_THREADS, else hardware concurrency); responses
//                      are byte-identical at every value
//
// Exit codes: 0 = clean shutdown (via the rdctl shutdown op), 2 = usage or
// I/O error.
#include <cstdio>
#include <cstring>

#include "cli_util.h"
#include "serve/server.h"
#include "serve/service.h"

static int run(int argc, char** argv) {
  using namespace rd;

  serve::Service::Options service_options;
  serve::Server::Options server_options;
  std::vector<std::pair<std::string, std::string>> fleet_specs;
  for (int i = 1; i < argc; ++i) {
    const auto want_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s wants a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: rdd (--socket PATH | --tcp PORT) --fleet NAME=DIR ...\n"
          "           [--store DIR] [--cache-mb N] [--threads N]\n"
          "\n"
          "Serve audit/rdlint/reachability/headerspace/simulate/whatif\n"
          "queries over resident fleets; query with rdctl. Responses are\n"
          "byte-identical to the one-shot CLIs. --store persists parses\n"
          "across restarts.\n"
          "\n"
          "exit codes:\n"
          "  0  clean shutdown (rdctl shutdown)\n"
          "  2  usage or I/O error\n");
      return 0;
    }
    if (std::strcmp(argv[i], "--socket") == 0) {
      const char* v = want_value("--socket");
      if (v == nullptr) return 2;
      server_options.unix_path = v;
    } else if (std::strcmp(argv[i], "--tcp") == 0) {
      const char* v = want_value("--tcp");
      if (v == nullptr) return 2;
      std::uint32_t port = 0;
      if (!util::parse_u32(util::trim(v), port) || port > 65535) {
        std::fprintf(stderr, "--tcp wants a port in [0, 65535]\n");
        return 2;
      }
      server_options.tcp_port = static_cast<int>(port);
    } else if (std::strcmp(argv[i], "--fleet") == 0) {
      const char* v = want_value("--fleet");
      if (v == nullptr) return 2;
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr || eq == v || eq[1] == '\0') {
        std::fprintf(stderr, "--fleet wants NAME=DIR\n");
        return 2;
      }
      fleet_specs.emplace_back(std::string(v, eq), std::string(eq + 1));
    } else if (std::strcmp(argv[i], "--store") == 0) {
      const char* v = want_value("--store");
      if (v == nullptr) return 2;
      service_options.store_directory = v;
    } else if (std::strcmp(argv[i], "--cache-mb") == 0) {
      const char* v = want_value("--cache-mb");
      if (v == nullptr) return 2;
      std::uint32_t mb = 0;
      if (!util::parse_u32(util::trim(v), mb) || mb == 0) {
        std::fprintf(stderr, "--cache-mb wants a positive integer\n");
        return 2;
      }
      service_options.cache_bytes = static_cast<std::size_t>(mb) << 20;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (!cli::parse_threads(i + 1 < argc ? argv[++i] : nullptr,
                              service_options.threads)) {
        std::fprintf(stderr, "--threads wants an integer in [1, 1024]\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown option '%s' (see --help)\n", argv[i]);
      return 2;
    }
  }
  if (fleet_specs.empty()) {
    std::fprintf(stderr, "no fleets (--fleet NAME=DIR; see --help)\n");
    return 2;
  }
  if (server_options.unix_path.empty() && server_options.tcp_port < 0) {
    std::fprintf(stderr, "no listener (--socket PATH or --tcp PORT)\n");
    return 2;
  }

  serve::Service service(service_options);
  for (const auto& [name, dir] : fleet_specs) {
    const auto loaded = service.add_fleet(name, dir);
    std::printf("fleet %s: %zu configs (%zu from memory, %zu from store, "
                "%zu parsed), %zu routers\n",
                name.c_str(), loaded.config_files, loaded.memory_hits,
                loaded.disk_hits, loaded.cold_parses, loaded.routers);
  }

  serve::Server server(service, server_options);
  if (!server_options.unix_path.empty()) {
    std::printf("rdd: listening on %s\n", server_options.unix_path.c_str());
  }
  if (server.tcp_port() >= 0) {
    std::printf("rdd: listening on tcp 127.0.0.1:%d\n", server.tcp_port());
  }
  std::fflush(stdout);  // scripts wait for the "listening" line
  server.run();
  std::printf("rdd: shut down\n");
  return 0;
}

int main(int argc, char** argv) {
  return rd::cli::guarded_main("rdd", run, argc, argv);
}
