// Longitudinal design comparison (paper §8.2): given snapshots of a
// network's configuration files, report what changed at the routing-design
// level — equipment, topology, processes, instances, and policies.
//
// Usage:
//   diff_snapshots <dir-before> <dir-after>
//   diff_snapshots --series <dir1> <dir2> [<dir3> ...]
//                              # N ordered snapshots through the incremental
//                              # series pipeline (content-addressed parse
//                              # cache; per-snapshot reports + diff chain)
//   diff_snapshots             # demo: a managed enterprise before/after a
//                              # region decommissioning + policy change

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/evolution.h"
#include "cli_util.h"
#include "config/parser.h"
#include "config/writer.h"
#include "model/network.h"
#include "pipeline/parse_cache.h"
#include "pipeline/series.h"
#include "synth/archetypes.h"
#include "synth/emit.h"

namespace {

void print_diff(const rd::analysis::DesignDiff& diff) {
  std::printf("design changed: %s\n\n",
              diff.design_changed() ? "YES" : "no");
  std::printf("equipment:\n");
  std::printf("  added routers:   %zu\n", diff.added_routers.size());
  for (const auto& name : diff.added_routers) {
    std::printf("    + %s\n", name.c_str());
  }
  std::printf("  removed routers: %zu\n", diff.removed_routers.size());
  for (const auto& name : diff.removed_routers) {
    std::printf("    - %s\n", name.c_str());
  }
  std::printf("\nper-router changes (matched by hostname):\n");
  std::printf("  interface changes:    %zu routers\n",
              diff.routers_with_interface_changes);
  std::printf("  process changes:      %zu routers\n",
              diff.routers_with_process_changes);
  std::printf("  policy changes:       %zu routers\n",
              diff.routers_with_policy_changes);
  std::printf("  static-route changes: %zu routers\n",
              diff.routers_with_static_route_changes);
  std::printf("\ntopology: links %zu -> %zu\n", diff.links_before,
              diff.links_after);
  std::printf("routing instances: %zu -> %zu\n", diff.instances_before,
              diff.instances_after);
  for (const auto& inst : diff.appeared_instances) {
    std::printf("  appeared:    %s\n", inst.c_str());
  }
  for (const auto& inst : diff.disappeared_instances) {
    std::printf("  disappeared: %s\n", inst.c_str());
  }
}

int run_series(int argc, char** argv) {
  using namespace rd;
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: diff_snapshots --series <dir1> <dir2> [<dir3> ...]\n");
    return 2;
  }
  std::vector<pipeline::SnapshotInput> series;
  for (int i = 2; i < argc; ++i) {
    pipeline::SnapshotInput snapshot;
    snapshot.name = argv[i];
    snapshot.texts = synth::load_network_texts(argv[i]);
    if (snapshot.texts.empty()) {
      std::fprintf(stderr, "no config* files in %s\n", argv[i]);
      return 2;
    }
    series.push_back(std::move(snapshot));
  }

  pipeline::ParseCache cache;
  const auto report = pipeline::analyze_snapshot_series(series, cache);

  for (std::size_t i = 0; i < report.snapshots.size(); ++i) {
    const auto& snap = report.snapshots[i];
    std::printf("snapshot %zu: %s\n", i, snap.report.name.c_str());
    std::printf(
        "  archetype %s; %zu routers, %zu links, %zu instances\n",
        snap.report.archetype.c_str(), snap.report.routers,
        snap.report.links, snap.report.instances);
    std::printf("  findings: %zu consistency, %zu lint; "
                "%zu parse diagnostics\n",
                snap.report.consistency_findings, snap.report.lint_findings,
                snap.report.parse_diagnostics);
    std::printf("  parse cache: %zu hits, %zu misses\n", snap.cache_hits,
                snap.cache_misses);
    if (i > 0) {
      std::printf("\n--- diff %s -> %s ---\n",
                  report.snapshots[i - 1].report.name.c_str(),
                  snap.report.name.c_str());
      print_diff(report.diffs[i - 1]);
    }
    std::printf("\n");
  }
  const auto stats = cache.stats();
  std::printf(
      "parse cache totals: %zu hits, %zu misses, %zu entries"
      " (%zu duplicate parses discarded)\n",
      stats.hits, stats.misses, stats.entries, stats.duplicate_parses);
  return 0;
}

}  // namespace

static int run(int argc, char** argv) {
  using namespace rd;

  if (argc > 1 && std::string(argv[1]) == "--series") {
    return run_series(argc, argv);
  }
  if (argc == 2) {
    std::fprintf(stderr, "usage: diff_snapshots <dir-before> <dir-after>\n"
                         "       diff_snapshots --series <dir1> <dir2> ...\n"
                         "       diff_snapshots              (demo mode)\n");
    return 2;
  }

  model::Network before = model::Network::build({});
  model::Network after = model::Network::build({});
  if (argc > 2) {
    before = model::Network::build(synth::load_network(argv[1]));
    after = model::Network::build(synth::load_network(argv[2]));
  } else {
    // Demo: snapshot 1 is a 2-region managed enterprise; snapshot 2 drops
    // three spokes, adds one, and tightens a policy — the kind of churn
    // §8.2 describes.
    synth::ManagedEnterpriseParams params;
    params.regions = 2;
    params.spokes_per_region = 10;
    auto net = synth::make_managed_enterprise(params);
    before = model::Network::build(synth::reparse(net.configs));

    auto evolved = net.configs;
    evolved.erase(evolved.end() - 3, evolved.end());  // decommissioned spokes
    config::RouterConfig newcomer;
    newcomer.hostname = "managed-new-site";
    config::InterfaceConfig itf;
    itf.name = "FastEthernet0/0";
    itf.address = {*ip::Ipv4Address::parse("10.77.0.1"),
                   ip::Netmask::from_length(24)};
    newcomer.interfaces.push_back(itf);
    config::RouterStanza ospf;
    ospf.protocol = config::RoutingProtocol::kOspf;
    ospf.process_id = 10;
    config::NetworkStatement ns;
    ns.address = *ip::Ipv4Address::parse("10.77.0.0");
    ns.mask = ip::Netmask::from_length(24);
    ns.area = 0;
    ospf.networks.push_back(ns);
    newcomer.router_stanzas.push_back(ospf);
    evolved.push_back(newcomer);
    // A policy tightening on the first router.
    if (!evolved[0].access_lists.empty() &&
        !evolved[0].access_lists[0].rules.empty()) {
      evolved[0].access_lists[0].rules[0].action =
          config::FilterAction::kDeny;
    }
    after = model::Network::build(synth::reparse(evolved));
    std::printf("(demo mode: comparing a managed enterprise before/after "
                "simulated churn)\n\n");
  }

  const auto diff = analysis::diff_designs(before, after);
  print_diff(diff);
  return 0;
}

int main(int argc, char** argv) {
  return rd::cli::guarded_main("diff_snapshots", run, argc, argv);
}
