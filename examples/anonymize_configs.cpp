// Structure-preserving anonymization of a directory of configuration files
// (the paper's section 4.1 tool): hashes user-specific tokens, renumbers
// public AS numbers, maps IP addresses prefix-preservingly, strips comments,
// and writes config1..configN into the output directory.
//
// The same key must be used for all files of one network so that shared
// names and subnets stay consistent — the analyses then produce identical
// results on the anonymized files (verified in tests/integration_test.cpp).
//
// Usage:
//   anonymize_configs <in-dir> <out-dir> [key]
//   anonymize_configs                      # demo on a generated enterprise

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "anonymize/anonymizer.h"
#include "cli_util.h"
#include "config/writer.h"
#include "synth/archetypes.h"
#include "synth/emit.h"

static int run(int argc, char** argv) {
  using namespace rd;

  std::filesystem::path in_dir;
  std::filesystem::path out_dir;
  std::uint64_t key = 0x5EED5EED5EED5EEDULL;

  if (argc >= 3) {
    in_dir = argv[1];
    out_dir = argv[2];
    if (argc >= 4) key = std::strtoull(argv[3], nullptr, 10);
  } else {
    // Demo: emit a small enterprise, then anonymize it.
    in_dir = std::filesystem::temp_directory_path() / "rd_anon_demo_in";
    out_dir = std::filesystem::temp_directory_path() / "rd_anon_demo_out";
    std::filesystem::remove_all(in_dir);
    std::filesystem::remove_all(out_dir);
    synth::TextbookEnterpriseParams params;
    params.routers = 6;
    synth::emit_network(synth::make_textbook_enterprise(params).configs,
                        in_dir);
    std::printf("(demo mode: anonymizing a generated 6-router enterprise)\n"
                "  in:  %s\n  out: %s\n\n",
                in_dir.c_str(), out_dir.c_str());
  }

  std::filesystem::create_directories(out_dir);
  anonymize::Anonymizer anonymizer(key);

  std::size_t files = 0;
  std::vector<std::filesystem::path> inputs;
  for (const auto& entry : std::filesystem::directory_iterator(in_dir)) {
    if (entry.is_regular_file()) inputs.push_back(entry.path());
  }
  std::sort(inputs.begin(), inputs.end());
  for (const auto& path : inputs) {
    std::ifstream in(path);
    if (!in) continue;
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    ++files;
    std::ofstream out(out_dir / ("config" + std::to_string(files)));
    out << anonymizer.anonymize(text);
  }

  std::printf("anonymized %zu files (%zu distinct tokens hashed)\n", files,
              anonymizer.hashed_token_count());
  if (argc < 3) {
    std::ifstream sample(out_dir / "config1");
    std::string line;
    std::printf("\nfirst lines of anonymized config1:\n");
    for (int i = 0; i < 14 && std::getline(sample, line); ++i) {
      std::printf("  %s\n", line.c_str());
    }
  }
  return 0;
}

int main(int argc, char** argv) {
  return rd::cli::guarded_main("anonymize_configs", run, argc, argv);
}
