// Shared scaffolding for the example CLIs: one exception boundary, one
// --threads parser, and one --trace/--metrics option handler, so every tool
// honors the same contract.
//
// Exit-code contract (printed by each tool's --help):
//   0  the tool ran and found nothing error-worthy
//   1  the analysis itself reported error-severity results
//   2  usage or I/O error (bad flag, unreadable path, malformed input)
//
// An uncaught exception — std::filesystem errors from a bad path, bad_alloc,
// a parse-layer throw — lands in guarded_main's catch, prints a one-line
// diagnostic to stderr, and exits 2 instead of calling std::terminate.
#pragma once

#include <csignal>
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>

#include "obs/obs.h"
#include "util/strings.h"

namespace rd::cli {

/// Runs `run(argc, argv)` behind the exit-2 exception boundary. Every
/// example's `main` is one line: `return guarded_main("tool", run, ...)`.
/// SIGPIPE is ignored process-wide: a reader that hangs up mid-report
/// (`audit_network | head`, an rdctl killed mid-reply, a daemon client
/// gone away) turns writes into EPIPE errors the code can see, instead of
/// a silent signal death.
inline int guarded_main(const char* tool, int (*run)(int, char**), int argc,
                        char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: error: %s\n", tool, e.what());
    return 2;
  } catch (...) {
    std::fprintf(stderr, "%s: error: unknown exception\n", tool);
    return 2;
  }
}

/// Parses a --threads value with exactly the semantics the RD_THREADS
/// environment override gets in util::ThreadPool: util::parse_u64 on the
/// trimmed text, accepted iff in [1, 1024]. Returns false (caller exits 2)
/// on anything else, where RD_THREADS would silently fall back.
inline bool parse_threads(const char* text, std::size_t& out) {
  std::uint64_t parsed = 0;
  if (text == nullptr || !util::parse_u64(util::trim(text), parsed) ||
      parsed < 1 || parsed > 1024) {
    return false;
  }
  out = static_cast<std::size_t>(parsed);
  return true;
}

/// Parses a bare unsigned integer flag value (--seed, --until) with the
/// same strictness as parse_threads: util::parse_u64 over the trimmed
/// text, so trailing garbage ("42x", "1e6") and overflow both reject
/// instead of silently truncating. Returns false (caller exits 2) on
/// anything else.
inline bool parse_u64_flag(const char* text, std::uint64_t& out) {
  return text != nullptr && util::parse_u64(util::trim(text), out);
}

/// The observability surface shared by audit_network, rdlint, and
/// reachability_query:
///   --trace FILE   record spans + counters, write a Chrome trace-event
///                  JSON file (load it in chrome://tracing or Perfetto)
///   --metrics      count logical events, dump name-sorted totals to stderr
struct ObsOptions {
  std::string trace_path;
  bool metrics = false;

  /// Consumes argv[i] (advancing i past a flag argument) when it is one of
  /// ours; leaves unrelated flags to the caller. Returns true if consumed.
  /// Sets *error when a flag is missing its argument (caller exits 2).
  bool consume(int argc, char** argv, int& i, bool* error) {
    const std::string_view arg = argv[i];
    if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace wants an output file\n");
        *error = true;
        return true;
      }
      trace_path = argv[++i];
      return true;
    }
    if (arg == "--metrics") {
      metrics = true;
      return true;
    }
    return false;
  }

  /// Arms the registry. Call once, after option parsing, before any work.
  void enable() const {
    if (!trace_path.empty()) obs::Registry::instance().set_tracing(true);
    if (!trace_path.empty() || metrics) {
      obs::Registry::instance().set_counting(true);
    }
  }

  /// Writes the trace file and dumps counters to stderr. Call once, after
  /// the work, before computing the final exit code. Returns 0, or 2 when
  /// the trace file cannot be written.
  int finish(const char* tool) const {
    if (!trace_path.empty()) {
      std::ofstream out(trace_path, std::ios::binary);
      if (out) out << obs::Registry::instance().trace_json();
      if (!out) {
        std::fprintf(stderr, "%s: cannot write trace file %s\n", tool,
                     trace_path.c_str());
        return 2;
      }
      std::fprintf(stderr, "%s: wrote %zu trace events to %s\n", tool,
                   obs::Registry::instance().event_count(),
                   trace_path.c_str());
    }
    if (metrics) {
      std::fprintf(stderr, "%s",
                   obs::Registry::instance().metrics_text().c_str());
    }
    return 0;
  }
};

}  // namespace rd::cli
