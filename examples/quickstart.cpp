// Quickstart: the whole white-box pipeline in ~60 lines.
//
// Parses a small network's configuration files (generated here for
// self-containedness; pass a directory of config1..configN files to analyze
// your own), builds the network model, and prints the routing design:
// links, routing instances, instance-graph edges, and a route pathway.
//
// Usage:
//   quickstart                # analyze a generated 25-router enterprise
//   quickstart <config-dir>   # analyze a directory of IOS config files

#include <cstdio>

#include "analysis/archetype.h"
#include "cli_util.h"
#include "graph/dot.h"
#include "graph/instances.h"
#include "graph/pathway.h"
#include "model/network.h"
#include "synth/archetypes.h"
#include "synth/emit.h"

static int run(int argc, char** argv) {
  using namespace rd;

  // 1. Obtain configuration files.
  std::vector<config::RouterConfig> configs;
  if (argc > 1) {
    configs = synth::load_network(argv[1]);
    std::printf("loaded %zu configuration files from %s\n\n", configs.size(),
                argv[1]);
  } else {
    synth::TextbookEnterpriseParams params;
    params.routers = 25;
    configs = synth::reparse(synth::make_textbook_enterprise(params).configs);
    std::printf("generated a 25-router textbook enterprise "
                "(pass a config directory to analyze your own network)\n\n");
  }
  if (configs.empty()) {
    std::fprintf(stderr, "no configuration files found\n");
    return 2;
  }

  // 2. Build the network model: link inference, external-facing marking,
  //    processes, adjacencies, BGP sessions, redistribution edges.
  const auto network = model::Network::build(std::move(configs));
  std::size_t external_links = 0;
  for (const auto& link : network.links()) {
    external_links += link.external_facing;
  }
  std::printf("routers: %zu   interfaces: %zu   links: %zu "
              "(%zu external-facing)\n",
              network.router_count(), network.interfaces().size(),
              network.links().size(), external_links);
  std::printf("routing processes: %zu   IGP adjacencies: %zu   "
              "BGP sessions: %zu\n\n",
              network.processes().size(), network.igp_adjacencies().size(),
              network.bgp_sessions().size());

  // 3. Collapse processes into routing instances.
  const auto ig = graph::InstanceGraph::build(network);
  std::printf("routing instances:\n");
  for (std::uint32_t i = 0; i < ig.set.instances.size(); ++i) {
    std::printf("  %s\n", graph::instance_label(ig.set, i).c_str());
  }
  std::printf("instance-graph edges (route exchange points): %zu\n\n",
              ig.edges.size());

  // 4. Classify the design and show where router 0's routes come from.
  const auto cls = analysis::classify_design(network, ig.set);
  std::printf("design classification: %s\n  (%s)\n\n",
              std::string(analysis::to_string(cls.archetype)).c_str(),
              cls.rationale.c_str());

  const auto pathway = graph::compute_pathway(network, ig, 0);
  std::printf("route pathway of %s: %zu instance(s), reaches external "
              "world: %s\n",
              network.routers()[0].hostname.c_str(), pathway.nodes.size(),
              pathway.reaches_external ? "yes" : "no");

  // 5. Export the instance graph as DOT for visual inspection.
  std::printf("\n--- instance graph (pipe into `dot -Tpng`) ---\n%s",
              graph::to_dot(network, ig).c_str());
  return 0;
}

int main(int argc, char** argv) {
  return rd::cli::guarded_main("quickstart", run, argc, argv);
}
