// rdlint: the unified design-rule CLI (paper §8 static analysis).
//
// Runs every registered design rule (RD001..RD052: lint, cross-router
// consistency, vulnerability assessment, and the cross-router design rules)
// over a network's configuration files and reports the findings with source
// provenance (file + line). Inline "! rdlint-disable <RDid>" comments in a
// config suppress that rule's findings for that router.
//
// Usage:
//   rdlint                       # demo: generate + lint a managed enterprise
//   rdlint <config-dir>          # lint one network (file/line provenance)
//   rdlint <dir1> <dir2> ...     # ordered snapshots: lint each through the
//                                # parse cache, report new/fixed/unchanged
//                                # per transition, emit the last snapshot
//   rdlint --help                # full option and exit-code reference
//
// Options:
//   --format text|json|sarif     # report format for stdout (default text)
//   --baseline FILE              # classify findings against a previous
//                                # "--format json" report
//   --threads N                  # rule + parse concurrency (default: the
//                                # RD_THREADS env override, else hardware
//                                # concurrency); output is identical at
//                                # every thread count
//   --trace FILE                 # Chrome trace-event JSON: one span per
//                                # rule, plus parse and pool spans
//   --metrics                    # deterministic event counters on stderr
//   --timings                    # per-rule wall time on stderr (superseded
//                                # by --trace, kept for compatibility)
//
// Exit codes: 0 = no error-severity finding, 1 = at least one
// error-severity finding, 2 = usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/rules.h"
#include "cli_util.h"
#include "config/writer.h"
#include "graph/instances.h"
#include "model/network.h"
#include "pipeline/parse_cache.h"
#include "pipeline/series.h"
#include "serve/queries.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace {

using namespace rd;

std::optional<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void print_usage() {
  std::printf(
      "usage: rdlint [options] [<config-dir> ...]\n"
      "\n"
      "Run the design-rule engine (RD001..RD052) over router\n"
      "configurations. With no directory a managed enterprise is\n"
      "generated and linted; with several directories they are treated\n"
      "as ordered snapshots of one network and each transition is\n"
      "classified as new/fixed/unchanged findings.\n"
      "\n"
      "options:\n"
      "  --format text|json|sarif  stdout report format (default text)\n"
      "  --baseline FILE           classify against a previous\n"
      "                            '--format json' report\n"
      "  --threads N               concurrency in [1, 1024]; output is\n"
      "                            identical at every thread count\n"
      "  --trace FILE              Chrome trace-event JSON (per-rule,\n"
      "                            parse, and pool spans; open in\n"
      "                            chrome://tracing or Perfetto)\n"
      "  --metrics                 deterministic event counters on stderr\n"
      "  --timings                 per-rule wall time on stderr\n"
      "                            (superseded by --trace)\n"
      "  --help                    this text\n"
      "\n"
      "suppressions: a '! rdlint-disable RD007 RD031' comment anywhere in\n"
      "a router's config drops those rules' findings for that router.\n"
      "\n"
      "exit codes:\n"
      "  0  no error-severity finding\n"
      "  1  at least one error-severity finding\n"
      "  2  usage or I/O error\n");
}

/// One finding in the shared rdlint text style (serve/queries.cpp), so
/// the baseline section's lines match the daemon-rendered report's.
void print_finding(const analysis::Finding& finding, const char* prefix) {
  std::string line;
  serve::append_finding_line(line, finding, prefix);
  std::fwrite(line.data(), 1, line.size(), stdout);
}

}  // namespace

static int run(int argc, char** argv) {
  std::vector<std::filesystem::path> dirs;
  std::string format = "text";
  const char* baseline_path = nullptr;
  std::size_t threads = 0;
  bool timings = false;
  cli::ObsOptions obs_options;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      print_usage();
      return 0;
    }
    bool obs_error = false;
    if (obs_options.consume(argc, argv, i, &obs_error)) {
      if (obs_error) return 2;
      continue;
    }
    if (std::strcmp(argv[i], "--format") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--format wants text, json, or sarif\n");
        return 2;
      }
      format = argv[++i];
      if (format != "text" && format != "json" && format != "sarif") {
        std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--baseline wants a file\n");
        return 2;
      }
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (!cli::parse_threads(i + 1 < argc ? argv[++i] : nullptr, threads)) {
        std::fprintf(stderr, "--threads wants an integer in [1, 1024]\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--timings") == 0) {
      timings = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option '%s' (see --help)\n", argv[i]);
      return 2;
    } else {
      dirs.emplace_back(argv[i]);
    }
  }
  for (const auto& dir : dirs) {
    if (!std::filesystem::is_directory(dir)) {
      std::fprintf(stderr, "%s is not a directory\n", dir.string().c_str());
      return 2;
    }
  }

  obs_options.enable();
  util::ThreadPool pool(threads);
  const auto engine = analysis::RuleEngine::with_default_rules();

  // Build the (final) network and, in series mode, walk the snapshots
  // through the parse cache, classifying each transition by fingerprint.
  std::string name;
  std::optional<model::Network> network;
  std::optional<analysis::RuleEngine::Result> result;
  if (dirs.empty()) {
    synth::ManagedEnterpriseParams params;
    params.regions = 3;
    params.spokes_per_region = 14;
    params.igp_edge_rate = 0.15;
    std::vector<std::string> texts;
    for (const auto& cfg : synth::make_managed_enterprise(params).configs) {
      texts.push_back(config::write_config(cfg));
    }
    name = "generated-managed-enterprise";
    network = pipeline::build_network_parallel(texts, pool);
    result = engine.run(*network, pool);
    std::fprintf(stderr, "(linting a generated managed enterprise; pass a "
                         "config directory to lint your own network)\n");
  } else if (dirs.size() == 1) {
    // Single network: parse through synth::load_network so every finding
    // carries its config file name.
    name = dirs[0].filename().string();
    if (name.empty()) name = dirs[0].string();
    auto configs = synth::load_network(dirs[0]);
    if (configs.empty()) {
      std::fprintf(stderr, "no configuration files in %s\n",
                   dirs[0].string().c_str());
      return 2;
    }
    network = model::Network::build(std::move(configs));
    result = engine.run(*network, pool);
  } else {
    // Snapshot series: unchanged routers cost one hash, not one parse.
    pipeline::ParseCache cache;
    std::vector<std::string> previous;
    for (std::size_t s = 0; s < dirs.size(); ++s) {
      auto texts = synth::load_network_texts(dirs[s]);
      if (texts.empty()) {
        std::fprintf(stderr, "no configuration files in %s\n",
                     dirs[s].string().c_str());
        return 2;
      }
      name = dirs[s].filename().string();
      if (name.empty()) name = dirs[s].string();
      network = pipeline::build_network_cached(texts, cache, pool);
      result = engine.run(*network, pool);
      if (s > 0) {
        const auto delta = analysis::diff_against_baseline(result->findings,
                                                           previous);
        std::fprintf(stderr,
                     "snapshot %s -> %s: %zu new, %zu fixed, %zu unchanged\n",
                     dirs[s - 1].filename().string().c_str(), name.c_str(),
                     delta.new_findings.size(), delta.fixed.size(),
                     delta.unchanged.size());
      }
      previous.clear();
      previous.reserve(result->findings.size());
      for (const auto& f : result->findings) {
        previous.push_back(analysis::finding_fingerprint(f));
      }
    }
  }

  if (timings) {
    std::fprintf(stderr, "per-rule wall time (nondeterministic):\n");
    for (const auto& t : result->timings) {
      std::fprintf(stderr, "  %-6s %8.3f ms  %zu finding(s)\n",
                   t.rule_id.c_str(), t.millis, t.findings);
    }
  }

  // Baseline classification (fingerprint set comparison against a previous
  // --format json report).
  std::optional<analysis::BaselineDelta> delta;
  if (baseline_path != nullptr) {
    const auto text = read_file(baseline_path);
    if (!text) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path);
      return 2;
    }
    const auto fingerprints = analysis::baseline_fingerprints(*text);
    if (!fingerprints) {
      std::fprintf(stderr, "%s is not an rdlint JSON report\n",
                   baseline_path);
      return 2;
    }
    delta = analysis::diff_against_baseline(result->findings, *fingerprints);
  }

  if (format == "sarif") {
    if (delta) {
      std::fprintf(stderr, "note: --baseline summary: %zu new, %zu fixed, "
                           "%zu unchanged (not represented in SARIF)\n",
                   delta->new_findings.size(), delta->fixed.size(),
                   delta->unchanged.size());
    }
    std::printf("%s\n", analysis::findings_to_sarif(engine, *result).c_str());
  } else if (format == "json") {
    auto json = analysis::findings_to_json(engine, *result, name);
    if (delta) {
      // Re-parse the report and graft the baseline section on, so stdout
      // stays one valid JSON document.
      auto doc = util::Json::parse(json);
      auto baseline = util::Json::object();
      baseline.set("new", delta->new_findings.size());
      baseline.set("fixed", delta->fixed.size());
      baseline.set("unchanged", delta->unchanged.size());
      auto fixed = util::Json::array();
      for (const auto& fp : delta->fixed) fixed.push_back(fp);
      baseline.set("fixed_fingerprints", std::move(fixed));
      auto fresh = util::Json::array();
      for (const auto& f : delta->new_findings) {
        fresh.push_back(analysis::finding_fingerprint(f));
      }
      baseline.set("new_fingerprints", std::move(fresh));
      doc->set("baseline", std::move(baseline));
      json = doc->dump(2);
    }
    std::printf("%s\n", json.c_str());
  } else {
    const auto text = serve::render_lint_report(engine, *result, name,
                                                serve::LintFormat::kText);
    std::fwrite(text.data(), 1, text.size(), stdout);
    if (delta) {
      std::printf("baseline: %zu new, %zu fixed, %zu unchanged\n",
                  delta->new_findings.size(), delta->fixed.size(),
                  delta->unchanged.size());
      for (const auto& finding : delta->new_findings) {
        print_finding(finding, "new ");
      }
      for (const auto& fp : delta->fixed) {
        std::printf("  fixed %s\n", fp.c_str());
      }
    }
  }

  if (const int rc = obs_options.finish("rdlint"); rc != 0) return rc;
  return result->has_errors() ? 1 : 0;
}

int main(int argc, char** argv) {
  return rd::cli::guarded_main("rdlint", run, argc, argv);
}
