// Route pathway report for one router (paper §3.3 / Figure 7 / Figure 10):
// where the router's routes come from, through how many protocol layers,
// and every routing policy applied along the way — with the router where
// each policy is configured ("locate all the routing policies that affect
// the routes seen by any particular router, and pinpoint where the policies
// are applied").
//
// Usage:
//   pathway_report <config-dir> <hostname>
//   pathway_report                        # demo on the net5 case study

#include <cstdio>
#include <string>

#include "cli_util.h"
#include "graph/dot.h"
#include "graph/instances.h"
#include "graph/pathway.h"
#include "model/network.h"
#include "synth/archetypes.h"
#include "synth/emit.h"

static int run(int argc, char** argv) {
  using namespace rd;

  std::vector<config::RouterConfig> configs;
  std::string target;
  if (argc == 2) {
    std::fprintf(stderr, "usage: pathway_report <config-dir> <hostname>\n"
                         "       pathway_report              (demo mode)\n");
    return 2;
  }
  if (argc > 2) {
    configs = synth::load_network(argv[1]);
    target = argv[2];
  } else {
    const auto net5 = synth::make_net5();
    configs = synth::reparse(net5.configs);
    target = "net5-r225";  // a spoke deep inside the 445-router compartment
    std::printf("(demo mode: pathway of %s inside the net5 case study)\n\n",
                target.c_str());
  }
  const auto network = model::Network::build(std::move(configs));

  model::RouterId router = model::kInvalidId;
  for (model::RouterId r = 0; r < network.router_count(); ++r) {
    if (network.routers()[r].hostname == target) router = r;
  }
  if (router == model::kInvalidId) {
    std::fprintf(stderr, "router '%s' not found\n", target.c_str());
    return 2;
  }

  const auto ig = graph::InstanceGraph::build(network);
  const auto pathway = graph::compute_pathway(network, ig, router);

  std::printf("route pathway of %s:\n", target.c_str());
  for (const auto& node : pathway.nodes) {
    std::printf("  depth %u: %s\n", node.depth,
                graph::instance_label(ig.set, node.instance).c_str());
  }
  std::printf("reaches the external world: %s (through %u protocol "
              "layer(s))\n\n",
              pathway.reaches_external ? "yes" : "no",
              pathway.max_depth + 1);

  const auto policies = graph::locate_pathway_policies(network, ig, pathway);
  std::printf("policies applied along the pathway: %zu\n", policies.size());
  for (const auto& policy : policies) {
    const char* kind = "";
    switch (policy.kind) {
      case graph::PathwayPolicy::Kind::kRedistributionRouteMap:
        kind = "route-map on redistribution";
        break;
      case graph::PathwayPolicy::Kind::kSessionDistributeList:
        kind = "session distribute-list";
        break;
      case graph::PathwayPolicy::Kind::kSessionRouteMap:
        kind = "session route-map";
        break;
      case graph::PathwayPolicy::Kind::kStanzaDistributeList:
        kind = "stanza distribute-list";
        break;
    }
    std::printf("  instance %u -> instance %u: %s '%s'%s, configured on %s\n",
                policy.source_instance + 1, policy.sink_instance + 1, kind,
                policy.name.c_str(), policy.inbound ? " (in)" : "",
                network.routers()[policy.router].hostname.c_str());
  }

  std::printf("\n--- DOT (pipe into `dot -Tpng`) ---\n%s",
              graph::to_dot(network, ig, pathway).c_str());
  return 0;
}

int main(int argc, char** argv) {
  return rd::cli::guarded_main("pathway_report", run, argc, argv);
}
