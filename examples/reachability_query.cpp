// Reachability queries over a routing design (the section 6.2 analysis as a
// tool): which destinations can hosts attached to each routing instance
// reach, can two addresses communicate, and what does the network announce
// to the outside world?
//
// Usage:
//   reachability_query                       # query the net15 case study
//   reachability_query <config-dir>          # your own network
//   reachability_query <config-dir> A B      # two-way reachability of A, B
//   reachability_query --symbolic ...        # exact header-space analysis:
//                                            # with A B, the full packet set
//                                            # that passes A -> B (filters,
//                                            # routes, and return path all
//                                            # applied); without, verify the
//                                            # "! rd-intent" assertions
//   reachability_query --naive ...           # use the reference full-rescan
//                                            # engine (identical results,
//                                            # asymptotically slower)
//   reachability_query --trace FILE          # Chrome trace-event JSON of
//                                            # the fixpoint rounds
//   reachability_query --metrics             # event counters on stderr
//
// Exit codes: 0 = query answered, 2 = usage or I/O error.

#include <cstdio>
#include <cstring>

#include "analysis/header_space.h"
#include "analysis/packet_reachability.h"
#include "analysis/reachability.h"
#include "cli_util.h"
#include "graph/instances.h"
#include "model/network.h"
#include "synth/archetypes.h"
#include "synth/emit.h"

namespace {

/// Instance whose covered interfaces contain the address, if any.
std::int64_t instance_attached_to(const rd::model::Network& network,
                                  const rd::graph::InstanceSet& instances,
                                  rd::ip::Ipv4Address addr) {
  for (std::uint32_t i = 0; i < instances.instances.size(); ++i) {
    for (const auto p : instances.instances[i].processes) {
      for (const auto itf : network.processes()[p].covered_interfaces) {
        const auto& subnet = network.interfaces()[itf].subnet;
        if (subnet && subnet->contains(addr)) return i;
      }
    }
  }
  return -1;
}

}  // namespace

static int run(int argc, char** argv) {
  using namespace rd;

  std::vector<config::RouterConfig> configs;
  analysis::ReachabilityAnalysis::Options options;
  cli::ObsOptions obs_options;
  bool symbolic = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    bool obs_error = false;
    if (obs_options.consume(argc, argv, i, &obs_error)) {
      if (obs_error) return 2;
      continue;
    }
    if (std::strcmp(argv[i], "--naive") == 0) {
      options.engine = analysis::ReachabilityAnalysis::Engine::kNaive;
    } else if (std::strcmp(argv[i], "--symbolic") == 0) {
      symbolic = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  obs_options.enable();
  if (!positional.empty()) {
    configs = synth::load_network(positional[0]);
  } else {
    configs = synth::reparse(synth::make_net15().configs);
    const auto plan = synth::net15_plan();
    options.external_prefixes = {plan.ab0, plan.external_left,
                                 plan.external_right};
    std::printf("(querying the generated net15 case study; pass a config "
                "directory for your own network)\n\n");
  }
  if (configs.empty()) {
    std::fprintf(stderr, "no configuration files found\n");
    return 2;
  }

  const auto network = model::Network::build(std::move(configs));
  const auto instances = graph::compute_instances(network);
  const auto reach =
      analysis::ReachabilityAnalysis::run(network, instances, options);
  if (const auto warning = reach.convergence_warning(); !warning.empty()) {
    std::fprintf(stderr, "%s\n", warning.c_str());
  }

  // --- Symbolic header-space mode --------------------------------------------
  if (symbolic) {
    analysis::HeaderSpace space(network, instances, reach);
    if (positional.size() > 2) {
      const auto a = ip::Ipv4Address::parse(positional[1]);
      const auto b = ip::Ipv4Address::parse(positional[2]);
      if (!a || !b) {
        std::fprintf(stderr, "bad addresses\n");
        return 2;
      }
      const auto ingress = space.attachment_interface(*a);
      const auto egress = space.attachment_interface(*b);
      if (!ingress || !egress) {
        std::printf("%s attached: %s, %s attached: %s — unattached "
                    "endpoints pass no packets\n",
                    positional[1], ingress ? "yes" : "NO", positional[2],
                    egress ? "yes" : "NO");
        return obs_options.finish("reachability_query");
      }
      const auto itf_name = [&](model::InterfaceId id) {
        const auto& itf = network.interfaces()[id];
        return network.routers()[itf.router].hostname + " " + itf.name;
      };
      std::printf("%s enters at %s; %s sits behind %s\n", positional[1],
                  itf_name(*ingress).c_str(), positional[2],
                  itf_name(*egress).c_str());
      const auto& predicate = space.pair_predicate(*ingress, *egress);
      std::printf("exact packet set passing that ingress/egress pair "
                  "(%zu atoms):\n",
                  predicate.atom_count());
      std::printf("%s",
                  predicate.to_string(space.protocol_domain()).c_str());
      analysis::FlowQuery query;
      query.source = *a;
      query.destination = *b;
      const analysis::PacketReachability concrete(network, instances, reach);
      std::printf("plain ip packet %s -> %s: %s (symbolic) / %s (concrete "
                  "probe)\n",
                  positional[1], positional[2],
                  space.passes(query) ? "passes" : "blocked",
                  std::string(to_string(concrete.evaluate(query))).c_str());
      return obs_options.finish("reachability_query");
    }
    // No explicit pair: check every "! rd-intent" assertion in the configs.
    const auto intents = analysis::collect_intents(network);
    if (intents.empty()) {
      std::printf("no \"! rd-intent\" assertions declared in these "
                  "configs; nothing to verify\n");
      return obs_options.finish("reachability_query");
    }
    const auto outcomes = space.verify(intents);
    std::size_t held = 0;
    for (const auto& outcome : outcomes) {
      if (outcome.holds) ++held;
    }
    std::printf("intent assertions: %zu, holding: %zu\n", outcomes.size(),
                held);
    for (const auto& outcome : outcomes) {
      if (outcome.holds) {
        std::printf("  ok: %s\n", outcome.intent.describe().c_str());
        continue;
      }
      std::printf("  VIOLATED: %s", outcome.intent.describe().c_str());
      if (outcome.witness) {
        std::printf(" — witness packet %s",
                    outcome.witness->describe().c_str());
      }
      std::printf("\n");
    }
    return obs_options.finish("reachability_query");
  }

  // Optional query: two addresses.
  if (positional.size() > 2) {
    const auto a = ip::Ipv4Address::parse(positional[1]);
    const auto b = ip::Ipv4Address::parse(positional[2]);
    if (!a || !b) {
      std::fprintf(stderr, "bad addresses\n");
      return 2;
    }
    const auto ia = instance_attached_to(network, instances, *a);
    const auto ib = instance_attached_to(network, instances, *b);
    if (ia < 0 || ib < 0) {
      std::printf("address not attached to any routing instance\n");
      return obs_options.finish("reachability_query");
    }
    std::printf("%s is attached to instance %lld; %s to instance %lld\n",
                positional[1], static_cast<long long>(ia + 1), positional[2],
                static_cast<long long>(ib + 1));
    std::printf("%s -> %s: %s\n", positional[1], positional[2],
                reach.instance_has_route_to(static_cast<std::uint32_t>(ia), *b)
                    ? "route present"
                    : "NO ROUTE");
    std::printf("%s -> %s: %s\n", positional[2], positional[1],
                reach.instance_has_route_to(static_cast<std::uint32_t>(ib), *a)
                    ? "route present"
                    : "NO ROUTE");
    std::printf("two-way communication possible: %s\n",
                reach.two_way_reachable(static_cast<std::uint32_t>(ia), *a,
                                        static_cast<std::uint32_t>(ib), *b)
                    ? "yes"
                    : "no");
    return obs_options.finish("reachability_query");
  }

  // Default report: per-instance route table sizes and Internet access.
  std::printf("per-instance reachability after policy-aware propagation "
              "(%zu fixpoint iterations):\n\n",
              reach.iterations_used());
  for (std::uint32_t i = 0; i < instances.instances.size(); ++i) {
    const auto& inst = instances.instances[i];
    std::printf("instance %u: %s", i + 1,
                std::string(config::to_keyword(inst.protocol)).c_str());
    if (inst.bgp_as) std::printf(" AS %u", *inst.bgp_as);
    std::printf(", %zu routers\n", inst.router_count());
    std::printf("  routes: %zu (external-origin: %zu), reaches Internet at "
                "large: %s\n",
                reach.instance_routes(i).size(), reach.external_route_count(i),
                reach.instance_reaches_internet(i) ? "yes" : "no");
  }

  std::printf("\nprefixes announced to the external world: %zu\n",
              reach.announced_externally().size());
  std::size_t shown = 0;
  for (const auto& route : reach.announced_externally()) {
    if (++shown > 10) {
      std::printf("  ...\n");
      break;
    }
    std::printf("  %s\n", route.prefix.to_string().c_str());
  }

  // The net15 demo question: can the two host blocks talk?
  if (positional.empty()) {
    const auto plan = synth::net15_plan();
    const auto a = ip::Ipv4Address(plan.ab2.network().value() + 257);
    const auto b = ip::Ipv4Address(plan.ab4.network().value() + 257);
    const auto ia = instance_attached_to(network, instances, a);
    const auto ib = instance_attached_to(network, instances, b);
    std::printf("\ncase-study question: can AB2 hosts (%s) and AB4 hosts "
                "(%s) communicate?\n  -> %s (the paper's section 6.2 "
                "finding: they cannot; the policy intersections are empty)\n",
                a.to_string().c_str(), b.to_string().c_str(),
                (ia >= 0 && ib >= 0 &&
                 reach.two_way_reachable(static_cast<std::uint32_t>(ia), a,
                                         static_cast<std::uint32_t>(ib), b))
                    ? "yes"
                    : "no");
  }
  return obs_options.finish("reachability_query");
}

int main(int argc, char** argv) {
  return rd::cli::guarded_main("reachability_query", run, argc, argv);
}
