// Reachability queries over a routing design (the section 6.2 analysis as a
// tool): which destinations can hosts attached to each routing instance
// reach, can two addresses communicate, and what does the network announce
// to the outside world?
//
// The report bodies live in serve/queries.cpp, shared with the rdd daemon:
// `rdctl reachability` / `rdctl headerspace` return these exact bytes from
// a resident fleet. Only the net15 demo banner and case-study epilogue are
// CLI-local.
//
// Usage:
//   reachability_query                       # query the net15 case study
//   reachability_query <config-dir>          # your own network
//   reachability_query <config-dir> A B      # two-way reachability of A, B
//   reachability_query --symbolic ...        # exact header-space analysis:
//                                            # with A B, the full packet set
//                                            # that passes A -> B (filters,
//                                            # routes, and return path all
//                                            # applied); without, verify the
//                                            # "! rd-intent" assertions
//   reachability_query --naive ...           # use the reference full-rescan
//                                            # engine (identical results,
//                                            # asymptotically slower)
//   reachability_query --trace FILE          # Chrome trace-event JSON of
//                                            # the fixpoint rounds
//   reachability_query --metrics             # event counters on stderr
//
// Exit codes: 0 = query answered, 2 = usage or I/O error.

#include <cstdio>
#include <cstring>

#include "analysis/reachability.h"
#include "cli_util.h"
#include "graph/instances.h"
#include "model/network.h"
#include "serve/queries.h"
#include "synth/archetypes.h"
#include "synth/emit.h"

static int run(int argc, char** argv) {
  using namespace rd;

  std::vector<config::RouterConfig> configs;
  serve::ReachabilityRequest request;
  cli::ObsOptions obs_options;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    bool obs_error = false;
    if (obs_options.consume(argc, argv, i, &obs_error)) {
      if (obs_error) return 2;
      continue;
    }
    if (std::strcmp(argv[i], "--naive") == 0) {
      request.naive = true;
    } else if (std::strcmp(argv[i], "--symbolic") == 0) {
      request.symbolic = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  obs_options.enable();
  if (!positional.empty()) {
    configs = synth::load_network(positional[0]);
  } else {
    configs = synth::reparse(synth::make_net15().configs);
    const auto plan = synth::net15_plan();
    request.external_prefixes = {plan.ab0, plan.external_left,
                                 plan.external_right};
    std::printf("(querying the generated net15 case study; pass a config "
                "directory for your own network)\n\n");
  }
  if (configs.empty()) {
    std::fprintf(stderr, "no configuration files found\n");
    return 2;
  }
  if (positional.size() > 2) {
    request.source = positional[1];
    request.destination = positional[2];
  }

  const auto network = model::Network::build(std::move(configs));
  const auto instances = graph::compute_instances(network);
  const auto report =
      serve::reachability_report(network, instances, request);
  if (!report.error.empty()) {
    std::fwrite(report.error.data(), 1, report.error.size(), stderr);
  }
  std::fwrite(report.output.data(), 1, report.output.size(), stdout);
  if (report.exit_code != 0) return report.exit_code;

  // The net15 demo question: can the two host blocks talk? (CLI-local
  // epilogue; the daemon serves directories, never the generated demo.)
  if (positional.empty() && !request.symbolic) {
    analysis::ReachabilityAnalysis::Options options;
    if (request.naive) {
      options.engine = analysis::ReachabilityAnalysis::Engine::kNaive;
    }
    options.external_prefixes = request.external_prefixes;
    const auto reach =
        analysis::ReachabilityAnalysis::run(network, instances, options);
    const auto plan = synth::net15_plan();
    const auto a = ip::Ipv4Address(plan.ab2.network().value() + 257);
    const auto b = ip::Ipv4Address(plan.ab4.network().value() + 257);
    const auto ia = serve::instance_attached_to(network, instances, a);
    const auto ib = serve::instance_attached_to(network, instances, b);
    std::printf("\ncase-study question: can AB2 hosts (%s) and AB4 hosts "
                "(%s) communicate?\n  -> %s (the paper's section 6.2 "
                "finding: they cannot; the policy intersections are empty)\n",
                a.to_string().c_str(), b.to_string().c_str(),
                (ia >= 0 && ib >= 0 &&
                 reach.two_way_reachable(static_cast<std::uint32_t>(ia), a,
                                         static_cast<std::uint32_t>(ib), b))
                    ? "yes"
                    : "no");
  }
  return obs_options.finish("reachability_query");
}

int main(int argc, char** argv) {
  return rd::cli::guarded_main("reachability_query", run, argc, argv);
}
