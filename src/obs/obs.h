#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rd::obs {

/// Lightweight, deterministic observability for the analysis pipeline
/// (DESIGN.md §10): RAII scoped spans with stable thread ids and nesting
/// depth, named monotonic counters and scheduling-dependent gauges,
/// peak-RSS sampling, and a Chrome trace-event JSON exporter
/// (chrome://tracing / Perfetto).
///
/// Two global switches, both default-off so instrumented hot paths cost a
/// single relaxed atomic load when observability is not in use:
///   - tracing: spans and queue-wait events are recorded (wall times —
///     nondeterministic by nature, written only to the trace file).
///   - counting: counters and gauges accumulate.
///
/// The determinism contract (mirrors the pipeline's serial-vs-parallel
/// byte-identity): a `Counter` counts *logical events* — routes propagated,
/// routers parsed, findings emitted — quantities that are identical at
/// every thread count and across runs. A `Gauge` records *scheduling
/// observations* — pool queue depth, tasks enqueued — which legitimately
/// vary run to run. `Registry::counters_json()` serializes counters only
/// (name-sorted, compact) and is therefore byte-identical across 1/2/8
/// threads; gauges and wall times appear only in `trace_json()` and the
/// human `metrics_text()` dump.
///
/// This library is a dependency leaf (everything above it, including
/// util::ThreadPool, links it), so it emits its trace JSON with a local
/// writer instead of util::Json.

/// Fast-path switches. Inline globals so hot paths pay one relaxed load,
/// no singleton call. Flip via Registry::set_tracing / set_counting.
inline std::atomic<bool> g_tracing{false};
inline std::atomic<bool> g_counting{false};

inline bool tracing_enabled() noexcept {
  return g_tracing.load(std::memory_order_relaxed);
}
inline bool counting_enabled() noexcept {
  return g_counting.load(std::memory_order_relaxed);
}

/// Nanoseconds since the trace epoch (Registry construction). Monotonic.
std::uint64_t now_ns() noexcept;

/// A named monotonic counter of logical events. Pointer-stable for the
/// life of the process: hot paths may look it up once and keep the
/// reference. `add` is a relaxed atomic increment, gated on the counting
/// switch so a disabled counter costs one relaxed load.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!counting_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  const std::string& name() const noexcept { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// A named scheduling-dependent observation: last value set plus the
/// maximum ever seen (e.g. pool queue depth). Excluded from the
/// deterministic counter serialization by design.
class Gauge {
 public:
  void set(std::uint64_t v) noexcept {
    if (!counting_enabled()) return;
    last_.store(v, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < v &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  void add(std::uint64_t n = 1) noexcept {
    if (!counting_enabled()) return;
    const auto v = last_.fetch_add(n, std::memory_order_relaxed) + n;
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < v &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t last() const noexcept {
    return last_.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  const std::string& name() const noexcept { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<std::uint64_t> last_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// One recorded span, Chrome trace-event "X" (complete) shape. Strings are
/// owned copies — recording happens only when tracing is on, so the copies
/// never cost a disabled run anything.
struct TraceEvent {
  std::string name;
  std::string cat;
  std::string label;         // optional free-form annotation ("args.label")
  std::uint64_t ts_ns = 0;   // start, ns since trace epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;     // stable small id, assigned per thread
  std::uint32_t depth = 0;   // span nesting depth on that thread, 0 = root
  /// Up to four numeric annotations (serialized into "args").
  std::vector<std::pair<std::string, std::uint64_t>> args;
};

class Registry {
 public:
  static Registry& instance();

  /// Flip the global switches (also visible through tracing_enabled /
  /// counting_enabled). Tracing implies nothing about counting; CLIs
  /// enable both for --trace.
  void set_tracing(bool on) noexcept {
    g_tracing.store(on, std::memory_order_relaxed);
  }
  void set_counting(bool on) noexcept {
    g_counting.store(on, std::memory_order_relaxed);
  }

  /// Find-or-create. Returned references stay valid for the life of the
  /// process (deque storage, never erased — reset() zeroes values but
  /// keeps identities).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);

  /// Record one finished span. Called by Span's destructor; also usable
  /// directly for events whose start predates the recording thread (the
  /// thread pool's queue-wait events).
  void record(TraceEvent event);

  /// Stable small integer for the calling thread, assigned on first use.
  std::uint32_t thread_id();

  /// Chrome trace-event JSON: thread-name metadata, every recorded span
  /// ("X" events, ts/dur in fractional microseconds), and the final
  /// counter and gauge values as "C" counter events (plus peak RSS).
  /// Loadable in chrome://tracing and Perfetto.
  std::string trace_json() const;

  /// Counters only, name-sorted, compact: {"a.b":1,...}. Deterministic —
  /// byte-identical across thread counts and repeated runs (the obs test
  /// suite holds this line).
  std::string counters_json() const;

  /// Name-sorted snapshot of counter values (deterministic).
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;

  /// Human-readable dump for `--metrics`: counters, gauges (last/max), and
  /// peak RSS. Not deterministic; goes to stderr, never into reports.
  std::string metrics_text() const;

  /// Zero every counter and gauge, drop recorded events, restart the trace
  /// epoch. Counter/Gauge references stay valid. Test scaffolding.
  void reset();

  /// Peak resident set size in kB (VmHWM), 0 where unsupported.
  static std::size_t peak_rss_kb() noexcept;

  std::size_t event_count() const;

 private:
  Registry();

  friend std::uint64_t now_ns() noexcept;
  std::atomic<std::int64_t> epoch_ns_{0};  // steady_clock ns at reset

  mutable std::mutex mutex_;
  // Heap-allocated values: Counter/Gauge hold atomics (immovable), and the
  // pointer-stability promise must survive map rehashing-free growth too.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::vector<TraceEvent> events_;
  std::atomic<std::uint32_t> next_tid_{0};
};

/// Convenience: the process-wide counter/gauge by name.
inline Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return Registry::instance().gauge(name);
}

/// RAII scoped span. Construction when tracing is off is a relaxed load
/// and a few stores — no clock read, no allocation, no lock. When on, the
/// constructor stamps the start time and nesting depth (thread-local) and
/// the destructor records the event under the registry mutex.
///
/// `name` and `cat` must outlive the span (string literals and strings
/// owned by longer-lived objects both qualify); they are copied into the
/// event at destruction.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view cat = "") noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a numeric annotation ("args" in the trace). Key must outlive
  /// the span. No-op when the span is unarmed (tracing was off).
  void arg(std::string_view key, std::uint64_t value);

  /// Attach a free-form text annotation (e.g. a network name).
  void label(std::string_view text);

  bool armed() const noexcept { return armed_; }

 private:
  std::string_view name_;
  std::string_view cat_;
  std::string label_;
  std::vector<std::pair<std::string, std::uint64_t>> args_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool armed_ = false;
};

}  // namespace rd::obs
