#include "obs/obs.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rd::obs {

namespace {

thread_local std::uint32_t t_tid = UINT32_MAX;
thread_local std::uint32_t t_depth = 0;

std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// JSON string escaping for the trace writer. Span names and categories
/// are plain ASCII identifiers, but labels can carry arbitrary network
/// names, so escape properly.
void write_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Chrome trace timestamps are microseconds; emit ns as fixed-point
/// microseconds with three decimals (locale-independent, deterministic
/// formatting for a given ns value).
void write_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

void write_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Registry() { epoch_ns_.store(steady_ns(), std::memory_order_relaxed); }

std::uint64_t now_ns() noexcept {
  const auto& registry = Registry::instance();
  const auto delta =
      steady_ns() - registry.epoch_ns_.load(std::memory_order_relaxed);
  return delta > 0 ? static_cast<std::uint64_t>(delta) : 0;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = counters_.find(name); it != counters_.end()) {
    return *it->second;
  }
  auto created = std::unique_ptr<Counter>(new Counter(std::string(name)));
  Counter& ref = *created;
  counters_.emplace(ref.name(), std::move(created));
  return ref;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = gauges_.find(name); it != gauges_.end()) {
    return *it->second;
  }
  auto created = std::unique_ptr<Gauge>(new Gauge(std::string(name)));
  Gauge& ref = *created;
  gauges_.emplace(ref.name(), std::move(created));
  return ref;
}

void Registry::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

std::uint32_t Registry::thread_id() {
  if (t_tid == UINT32_MAX) {
    t_tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  }
  return t_tid;
}

std::size_t Registry::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::string Registry::trace_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(events_.size() * 120 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out.push_back(',');
    first = false;
  };

  // Thread-name metadata so Perfetto's track labels are stable.
  std::uint32_t max_tid = 0;
  for (const auto& event : events_) max_tid = std::max(max_tid, event.tid);
  const std::uint32_t tid_bound =
      events_.empty() ? 0 : max_tid + 1;
  for (std::uint32_t tid = 0; tid < tid_bound; ++tid) {
    comma();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    write_u64(out, tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"thread ";
    write_u64(out, tid);
    out += "\"}}";
  }

  std::uint64_t last_ts_ns = 0;
  for (const auto& event : events_) {
    comma();
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    write_u64(out, event.tid);
    out += ",\"ts\":";
    write_us(out, event.ts_ns);
    out += ",\"dur\":";
    write_us(out, event.dur_ns);
    out += ",\"name\":";
    write_escaped(out, event.name);
    if (!event.cat.empty()) {
      out += ",\"cat\":";
      write_escaped(out, event.cat);
    }
    out += ",\"args\":{\"depth\":";
    write_u64(out, event.depth);
    if (!event.label.empty()) {
      out += ",\"label\":";
      write_escaped(out, event.label);
    }
    for (const auto& [key, value] : event.args) {
      out.push_back(',');
      write_escaped(out, key);
      out.push_back(':');
      write_u64(out, value);
    }
    out += "}}";
    last_ts_ns = std::max(last_ts_ns, event.ts_ns + event.dur_ns);
  }

  // Final counter and gauge values as counter-track events, plus peak RSS.
  const auto counter_event = [&](const std::string& name,
                                 std::uint64_t value) {
    comma();
    out += "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":";
    write_us(out, last_ts_ns);
    out += ",\"name\":";
    write_escaped(out, name);
    out += ",\"args\":{\"value\":";
    write_u64(out, value);
    out += "}}";
  };
  for (const auto& [name, counter] : counters_) {
    counter_event(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    counter_event(name + ".max", gauge->max());
  }
  counter_event("process.peak_rss_kb", peak_rss_kb());

  out += "]}";
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counter_values()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> values;
  values.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    values.emplace_back(name, counter->value());
  }
  return values;  // map iteration: already name-sorted
}

std::string Registry::counters_json() const {
  const auto values = counter_values();
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : values) {
    if (!first) out.push_back(',');
    first = false;
    write_escaped(out, name);
    out.push_back(':');
    write_u64(out, value);
  }
  out.push_back('}');
  return out;
}

std::string Registry::metrics_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "=== metrics ===\ncounters:\n";
  for (const auto& [name, counter] : counters_) {
    out += "  " + name + " = ";
    write_u64(out, counter->value());
    out.push_back('\n');
  }
  out += "gauges (last/max — scheduling-dependent):\n";
  for (const auto& [name, gauge] : gauges_) {
    out += "  " + name + " = ";
    write_u64(out, gauge->last());
    out += " / ";
    write_u64(out, gauge->max());
    out.push_back('\n');
  }
  out += "spans recorded: ";
  write_u64(out, events_.size());
  out += "\npeak RSS: ";
  write_u64(out, peak_rss_kb());
  out += " kB\n";
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) {
    entry.second->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& entry : gauges_) {
    entry.second->last_.store(0, std::memory_order_relaxed);
    entry.second->max_.store(0, std::memory_order_relaxed);
  }
  events_.clear();
  epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
}

std::size_t Registry::peak_rss_kb() noexcept {
#if defined(__linux__)
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = static_cast<std::size_t>(std::strtoull(line + 6, nullptr, 10));
      break;
    }
  }
  std::fclose(status);
  return kb;
#else
  return 0;
#endif
}

Span::Span(std::string_view name, std::string_view cat) noexcept
    : name_(name), cat_(cat) {
  if (!tracing_enabled()) return;
  armed_ = true;
  depth_ = t_depth++;
  start_ns_ = now_ns();
}

Span::~Span() {
  if (!armed_) return;
  const auto end_ns = now_ns();
  --t_depth;
  TraceEvent event;
  event.name = std::string(name_);
  event.cat = std::string(cat_);
  event.label = std::move(label_);
  event.ts_ns = start_ns_;
  event.dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  event.tid = Registry::instance().thread_id();
  event.depth = depth_;
  event.args = std::move(args_);
  Registry::instance().record(std::move(event));
}

void Span::arg(std::string_view key, std::uint64_t value) {
  if (!armed_) return;
  args_.emplace_back(std::string(key), value);
}

void Span::label(std::string_view text) {
  if (!armed_) return;
  label_ = std::string(text);
}

}  // namespace rd::obs
