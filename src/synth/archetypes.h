#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/ast.h"

namespace rd::synth {

/// One synthetic network: a name, an archetype label (ground truth for
/// tests), and the configuration files — exactly what the paper's pipeline
/// consumed for one production network.
struct SynthNetwork {
  std::string name;
  std::string archetype;  // "backbone", "textbook-enterprise", "tier2-isp",
                          // "managed-enterprise", "net5", "net15", "no-bgp",
                          // "merged-hybrid"
  std::vector<config::RouterConfig> configs;
};

/// Knobs shared by several archetypes.
struct FilterProfile {
  /// Probability that an internal LAN interface carries a packet filter.
  double internal_filter_rate = 0.0;
  /// Clause-count range for internal filters.
  std::uint32_t internal_rules_min = 3;
  std::uint32_t internal_rules_max = 12;
  /// Probability that an external edge carries a packet filter.
  double edge_filter_rate = 1.0;
  std::uint32_t edge_rules_min = 4;
  std::uint32_t edge_rules_max = 20;
};

// --- Canonical designs (paper §3.1 examples, §7.1) -------------------------

struct BackboneParams {
  std::uint64_t seed = 1;
  std::string name = "backbone";
  std::uint32_t core_routers = 12;
  std::uint32_t access_routers = 388;
  std::uint32_t external_peers = 900;  // EBGP sessions to other domains
  std::uint32_t as_number = 7018;
  /// Core link technology: "POS" for three of the paper's four backbones,
  /// "Hssi"+"ATM" for the fourth (§7.3).
  std::string core_hw = "POS";
  std::string aggregation_hw = "POS";
  FilterProfile filters{.internal_filter_rate = 0.02, .edge_filter_rate = 0.9};
};

SynthNetwork make_backbone(const BackboneParams& params);

struct TextbookEnterpriseParams {
  std::uint64_t seed = 2;
  std::string name = "enterprise";
  std::uint32_t routers = 40;
  std::uint32_t border_routers = 1;  // BGP speakers
  std::uint32_t igp_instances = 1;   // 1 or 2 (the 101-router case used 2)
  std::uint32_t bgp_as = 65001;
  FilterProfile filters{.internal_filter_rate = 0.15,
                        .edge_filter_rate = 1.0};
};

SynthNetwork make_textbook_enterprise(const TextbookEnterpriseParams& params);

// --- The paper's case studies ----------------------------------------------

/// net5 (paper §5.1/§6.1): 881 routers, 14 internal BGP ASs, 24 routing
/// instances (largest EIGRP instance 445 routers), 16 external peer ASs,
/// EIGRP used as the inter-instance glue with tagged redistribution, and an
/// IBGP-mesh-free design.
SynthNetwork make_net5(std::uint64_t seed = 5);

/// net15 (paper §6.2, Figure 12 / Table 2): 79 routers, 6 routing instances,
/// EBGP to two public ASs, policies A1-A5 over address blocks AB0-AB4 that
/// deny Internet-at-large reachability and isolate the two sites.
SynthNetwork make_net15(std::uint64_t seed = 15);

/// The address blocks and policy contents of net15 (Table 2), exposed so the
/// reachability bench can report them symbolically.
struct Net15Plan {
  ip::Prefix ab0, ab1, ab2, ab3, ab4;
  ip::Prefix external_left;   // space behind AS 25286
  ip::Prefix external_right;  // space behind AS 12762
  std::uint32_t public_as_left = 25286;
  std::uint32_t public_as_right = 12762;
};
Net15Plan net15_plan();

// --- The rest of the production mix ----------------------------------------

struct Tier2Params {
  std::uint64_t seed = 3;
  std::string name = "tier2";
  std::uint32_t core_routers = 10;
  std::uint32_t edge_routers = 150;
  /// Staging IGP instances per edge router (single-router instances with
  /// external customer peers, §7.1).
  std::uint32_t staging_per_edge = 2;
  std::uint32_t customer_ebgp_per_edge = 3;
  std::uint32_t as_number = 6461;
  FilterProfile filters{.internal_filter_rate = 0.05,
                        .edge_filter_rate = 0.6};
};

SynthNetwork make_tier2_isp(const Tier2Params& params);

struct ManagedEnterpriseParams {
  std::uint64_t seed = 4;
  std::string name = "managed";
  std::uint32_t regions = 6;
  std::uint32_t spokes_per_region = 40;
  std::uint32_t core_routers = 2;
  /// Average extra single-router IGP processes per spoke (the source of the
  /// paper's tens of thousands of intra-domain instances, Table 1).
  double extra_igp_processes = 1.6;
  /// Fraction of spokes with an IGP-speaking external attachment (IGP in
  /// the EGP role, §5.2).
  double igp_edge_rate = 0.08;
  /// Fraction of spokes attached via EBGP instead of the region IGP
  /// (BGP-to-the-edge; the paper's intra-domain EBGP population, §5.2).
  double ebgp_spoke_rate = 0.0;
  /// Fraction of extra processes that are OSPF (rest EIGRP, a dash of RIP).
  double ospf_share = 0.45;
  double rip_share = 0.01;
  FilterProfile filters{.internal_filter_rate = 0.35,
                        .edge_filter_rate = 0.8};
};

SynthNetwork make_managed_enterprise(const ManagedEnterpriseParams& params);

/// The 100k-router scale tier (ROADMAP item 2). A managed enterprise dialed
/// by approximate total router count: regions are derived from the target so
/// `target_routers = 100'000` lands within ~1% of 100k actual routers.
struct MegaTierParams {
  std::uint64_t seed = 9;
  std::string name = "mega";
  /// Approximate fleet size; the derived region count is floor-matched
  /// against the per-region router yield (spokes + hub pair + core share).
  std::uint32_t target_routers = 100'000;
  std::uint32_t spokes_per_region = 400;
  double ebgp_spoke_rate = 0.15;
};

SynthNetwork make_mega_tier(const MegaTierParams& params);

struct NoBgpParams {
  std::uint64_t seed = 6;
  std::string name = "nobgp";
  std::uint32_t routers = 12;
  /// Edge protocol used toward the provider: RIP or EIGRP or static-only.
  enum class Edge { kStatic, kRip, kEigrp } edge = Edge::kStatic;
  FilterProfile filters{.internal_filter_rate = 0.2, .edge_filter_rate = 1.0};
};

SynthNetwork make_no_bgp_enterprise(const NoBgpParams& params);

struct MergedHybridParams {
  std::uint64_t seed = 7;
  std::string name = "merged";
  std::uint32_t ospf_side_routers = 20;
  std::uint32_t eigrp_side_routers = 20;
  std::uint32_t as_left = 64601;
  std::uint32_t as_right = 64602;
  FilterProfile filters{.internal_filter_rate = 0.5, .edge_filter_rate = 1.0};
};

/// A corporate-merger vestige (paper §8.2): an OSPF network and an EIGRP
/// network glued by an internal EBGP pair — EBGP in the intra-domain role.
SynthNetwork make_merged_hybrid(const MergedHybridParams& params);

}  // namespace rd::synth
