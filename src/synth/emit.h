#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "config/ast.h"

namespace rd::synth {

/// Write a network's configurations to a directory as "config1", "config2",
/// ... — the exact layout the paper's anonymized data sets used (§4.1,
/// "filenames of the form config1, config2, ...").
/// Returns the file paths written.
std::vector<std::filesystem::path> emit_network(
    const std::vector<config::RouterConfig>& configs,
    const std::filesystem::path& directory);

/// Load every "config*" file in a directory and parse it. Files that fail
/// to read are skipped. The parse is lenient by design.
std::vector<config::RouterConfig> load_network(
    const std::filesystem::path& directory);

/// Load the raw texts of every "config*" file in a directory, in the same
/// stable numeric order `load_network` uses, without parsing — the input
/// shape the parallel pipeline consumes (pipeline/pipeline.h).
std::vector<std::string> load_network_texts(
    const std::filesystem::path& directory);

/// The raw texts of every "config*" file plus their basenames, in the same
/// stable order. The names feed the parse cache's provenance stamping
/// (pipeline::build_network_cached with names): a cached build labels each
/// router by file name exactly as `load_network` would, so cache-backed and
/// direct builds produce identical finding provenance — the property the
/// rdd daemon's byte-identity contract depends on.
struct LoadedTexts {
  std::vector<std::string> texts;
  std::vector<std::string> names;
};
LoadedTexts load_network_texts_named(const std::filesystem::path& directory);

/// Serialize the configs to text in memory (no filesystem round trip) and
/// re-parse — the canonical way to run the pipeline on generator output so
/// the analyses always consume configuration *text*.
std::vector<config::RouterConfig> reparse(
    const std::vector<config::RouterConfig>& configs);

}  // namespace rd::synth
