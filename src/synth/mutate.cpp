#include "synth/mutate.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "analysis/dataflow.h"
#include "graph/instances.h"
#include "model/network.h"
#include "model/policy.h"
#include "synth/emit.h"

namespace rd::synth {

namespace {

using analysis::distance_external;
using analysis::distance_internal;
using analysis::metric_class;
using config::RoutingProtocol;

/// The injectors reason about instances and redistribution edges exactly as
/// the analysis will, so they build the same model — from the emit+reparse
/// round trip the pipeline consumes (in-memory configs can differ subtly
/// from their text form, e.g. a process id on a protocol whose text syntax
/// carries none), leaving the mutable configs untouched until a site is
/// chosen. Reparse preserves router, stanza, and redistribute order, so
/// view indexes address the original configs directly.
struct ModelView {
  model::Network network;
  graph::InstanceSet set;
  std::vector<graph::InstanceEdge> edges;
};

ModelView build_view(const SynthNetwork& network) {
  ModelView view{model::Network::build(reparse(network.configs)), {}, {}};
  auto graph = graph::InstanceGraph::build(view.network);
  view.set = std::move(graph.set);
  view.edges = std::move(graph.edges);
  return view;
}

/// TEST-NET-2 (RFC 5737): guaranteed outside every synth address pool, so a
/// planted prefix never collides with legitimate routes or filters.
const ip::Prefix kPlantPrefix{ip::Ipv4Address(198, 51, 100, 64), 26};
const ip::Prefix kPlantLink{ip::Ipv4Address(198, 51, 100, 0), 30};

config::NetworkStatement cover(const ip::Prefix& subnet,
                               std::optional<std::uint32_t> ospf_area) {
  config::NetworkStatement ns;
  ns.address = subnet.network();
  ns.mask = ip::Netmask::from_length(subnet.length());
  ns.area = ospf_area;
  return ns;
}

config::Redistribute redistribute_command(
    RoutingProtocol protocol, std::optional<std::uint32_t> process_id,
    std::optional<std::uint32_t> metric,
    std::optional<std::string> route_map) {
  config::Redistribute redist;
  redist.source = config::RedistributeSource::kProtocol;
  redist.protocol = protocol;
  redist.process_id = process_id;
  redist.metric = metric;
  redist.route_map = std::move(route_map);
  redist.subnets = true;
  return redist;
}

/// Index of the stanza behind a model process, in the *original* configs
/// (Network::build preserves router and stanza order).
std::size_t stanza_index_of(const ModelView& view, model::ProcessId p) {
  return view.network.processes()[p].stanza_index;
}

/// First process of `instance` hosted on `router`, or kInvalidId.
model::ProcessId process_on(const ModelView& view, std::uint32_t instance,
                            model::RouterId router) {
  for (const model::ProcessId p : view.set.instances[instance].processes) {
    if (view.network.processes()[p].router == router) return p;
  }
  return model::kInvalidId;
}

bool has_stanza_of_protocol(const config::RouterConfig& config,
                            RoutingProtocol protocol) {
  for (const auto& stanza : config.router_stanzas) {
    if (stanza.protocol == protocol) return true;
  }
  return false;
}

/// A route-map "RDxxx-PLANT" with one permit clause matching a fresh
/// numbered ACL over `block` — a *filtering* map (implicit deny tail), so
/// planting it never trips RD063.
std::string add_plant_route_map(config::RouterConfig& config,
                                const std::string& name,
                                const ip::Prefix& block) {
  const std::string acl_id =
      std::to_string(100 + config.access_lists.size());
  config::AclRule rule;
  rule.action = config::FilterAction::kPermit;
  rule.extended = false;
  rule.any_source = false;
  rule.source = block;
  rule.any_destination = true;
  config::AccessList acl;
  acl.id = acl_id;
  acl.rules.push_back(rule);
  config.access_lists.push_back(std::move(acl));
  config::RouteMapClause clause;
  clause.action = config::FilterAction::kPermit;
  clause.sequence = 10;
  clause.match_ip_address_acls.push_back(acl_id);
  config::RouteMap map;
  map.name = name;
  map.clauses.push_back(std::move(clause));
  config.route_maps.push_back(std::move(map));
  return name;
}

// --- RD061: clear the metric mapping on a cross-class boundary ---------------

std::optional<Plant> inject_metric_loss(SynthNetwork& network,
                                        std::uint64_t seed) {
  struct Site {
    std::size_t router, stanza, redistribute;
  };
  std::vector<Site> sites;
  for (std::size_t r = 0; r < network.configs.size(); ++r) {
    const auto& config = network.configs[r];
    for (std::size_t si = 0; si < config.router_stanzas.size(); ++si) {
      const auto& stanza = config.router_stanzas[si];
      if (stanza.protocol == RoutingProtocol::kBgp) continue;
      if (stanza.default_metric) continue;
      for (std::size_t ri = 0; ri < stanza.redistributes.size(); ++ri) {
        const auto& redist = stanza.redistributes[ri];
        if (redist.source != config::RedistributeSource::kProtocol) continue;
        if (!redist.metric) continue;
        if (metric_class(redist.protocol) == metric_class(stanza.protocol)) {
          continue;
        }
        // The source process must resolve on this router, or the model
        // treats the command as a local-RIB import, outside RD061.
        bool resolves = false;
        for (const auto& other : config.router_stanzas) {
          if (&other == &stanza) continue;
          if (other.protocol != redist.protocol) continue;
          if (redist.process_id && other.process_id != redist.process_id) {
            continue;
          }
          resolves = true;
        }
        if (!resolves) continue;
        if (redist.route_map) {
          const auto facts =
              model::route_map_facts(config, *redist.route_map);
          if (facts.resolved && facts.sets_metric) continue;
        }
        sites.push_back({r, si, ri});
      }
    }
  }
  if (sites.empty()) return std::nullopt;
  const Site site = sites[seed % sites.size()];
  auto& redist = network.configs[site.router]
                     .router_stanzas[site.stanza]
                     .redistributes[site.redistribute];
  redist.metric = std::nullopt;
  redist.metric_type = std::nullopt;
  return Plant{"RD061", site.router, site.stanza, site.redistribute,
               "no metric mapping"};
}

// --- RD063: drop the route-map from one direction of a mutual pair -----------

std::optional<Plant> inject_unfiltered_mutual(SynthNetwork& network,
                                              std::uint64_t seed) {
  const ModelView view = build_view(network);
  // Ordered instance pairs with at least one kProcess redistribution edge.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> directions;
  struct Site {
    std::size_t router, stanza, redistribute;
  };
  std::vector<Site> sites;
  for (const auto& redist : view.network.redistribution_edges()) {
    if (redist.source_kind != model::RibKind::kProcess) continue;
    const std::uint32_t from = view.set.instance_of[redist.source_process];
    const std::uint32_t to = view.set.instance_of[redist.target_process];
    if (from == to) continue;
    directions.emplace_back(from, to);
  }
  for (const auto& redist : view.network.redistribution_edges()) {
    if (redist.source_kind != model::RibKind::kProcess) continue;
    if (!redist.route_map) continue;
    const std::uint32_t from = view.set.instance_of[redist.source_process];
    const std::uint32_t to = view.set.instance_of[redist.target_process];
    if (from == to) continue;
    // The defect needs the pair to be mutual — dropping the filter on a
    // one-way boundary is RD041/RD042 territory, not RD063.
    if (std::find(directions.begin(), directions.end(),
                  std::make_pair(to, from)) == directions.end()) {
      continue;
    }
    sites.push_back({redist.router, stanza_index_of(view, redist.target_process),
                     redist.redistribute_index});
  }
  if (sites.empty()) return std::nullopt;
  const Site site = sites[seed % sites.size()];
  network.configs[site.router]
      .router_stanzas[site.stanza]
      .redistributes[site.redistribute]
      .route_map = std::nullopt;
  return Plant{"RD063", site.router, site.stanza, site.redistribute,
               "unfiltered direction"};
}

// --- RD062: plant a route whose redistributed copy outranks the native -------

std::optional<Plant> inject_distance_inversion(SynthNetwork& network,
                                               std::uint64_t seed) {
  const ModelView view = build_view(network);
  // Candidate: a BGP instance X and an IGP instance Y sharing >= 2 routers
  // (so the inversion has a router to bite on besides the planted
  // redistribution point).
  struct Candidate {
    std::uint32_t bgp_instance, igp_instance;
    std::vector<model::RouterId> shared;
  };
  std::vector<Candidate> candidates;
  const auto& instances = view.set.instances;
  for (std::uint32_t x = 0; x < instances.size(); ++x) {
    if (instances[x].protocol != RoutingProtocol::kBgp) continue;
    for (std::uint32_t y = 0; y < instances.size(); ++y) {
      if (!config::is_conventional_igp(instances[y].protocol)) continue;
      std::vector<model::RouterId> a = instances[x].routers;
      std::vector<model::RouterId> b = instances[y].routers;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      std::vector<model::RouterId> shared;
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(shared));
      if (shared.size() < 2) continue;
      candidates.push_back({x, y, std::move(shared)});
    }
  }
  if (candidates.empty()) return std::nullopt;
  const Candidate& chosen = candidates[seed % candidates.size()];
  const model::RouterId planted_router =
      chosen.shared[seed % chosen.shared.size()];
  const model::ProcessId bgp_process =
      process_on(view, chosen.bgp_instance, planted_router);
  const model::ProcessId igp_process =
      process_on(view, chosen.igp_instance, planted_router);
  if (bgp_process == model::kInvalidId || igp_process == model::kInvalidId) {
    return std::nullopt;
  }
  auto& config = network.configs[planted_router];
  auto& bgp_stanza =
      config.router_stanzas[stanza_index_of(view, bgp_process)];
  const std::size_t igp_stanza_index = stanza_index_of(view, igp_process);
  auto& igp_stanza = config.router_stanzas[igp_stanza_index];
  // Originate the planted prefix in BGP, then leak it into the IGP through
  // a map permitting only the plant — metric mapped (RD061 quiet),
  // filtering map (RD063 quiet), one direction (RD060 quiet).
  bgp_stanza.networks.push_back(cover(kPlantPrefix, std::nullopt));
  const std::string map =
      add_plant_route_map(config, "RD062-PLANT", kPlantPrefix);
  igp_stanza.redistributes.push_back(redistribute_command(
      RoutingProtocol::kBgp, bgp_stanza.process_id, 100, map));
  return Plant{"RD062", planted_router, igp_stanza_index,
               igp_stanza.redistributes.size() - 1, "administrative distance"};
}

// --- RD060: close a filterless multi-router redistribution cycle -------------

std::optional<Plant> inject_redistribution_loop(SynthNetwork& network,
                                                std::uint64_t seed) {
  const ModelView view = build_view(network);
  // The plant is a fresh two-router RIP instance Z = {h, s} laid over an
  // existing link of a carrier instance Y whose external distance beats
  // RIP's native 120 (OSPF/IS-IS). h redistributes Z into Y, s closes the
  // cycle with a bare reverse redistribute: Z's own link route exits at h,
  // transits Y, and re-enters Z at s with a winning carried distance.
  struct Candidate {
    std::uint32_t y;
    model::RouterId hub, spoke;
    ip::Prefix link;
  };
  std::vector<Candidate> candidates;
  const auto& instances = view.set.instances;
  for (std::uint32_t y = 0; y < instances.size(); ++y) {
    const auto y_proto = instances[y].protocol;
    if (!config::is_conventional_igp(y_proto)) continue;
    if (distance_external(y_proto) >=
        distance_internal(RoutingProtocol::kRip)) {
      continue;
    }
    if (instances[y].router_count() < 2) continue;
    // First subnet shared by two RIP-free routers of Y carries the new
    // RIP adjacency.
    std::vector<std::pair<ip::Prefix, model::RouterId>> seen_subnets;
    Candidate found{y, model::kInvalidId, model::kInvalidId, {}};
    for (const model::RouterId r : instances[y].routers) {
      if (has_stanza_of_protocol(network.configs[r], RoutingProtocol::kRip)) {
        continue;
      }
      for (const auto& itf : network.configs[r].interfaces) {
        if (!itf.address) continue;
        const ip::Prefix subnet = itf.address->subnet();
        bool matched = false;
        for (const auto& [other_subnet, other] : seen_subnets) {
          if (other_subnet == subnet && other != r) {
            found.hub = other;
            found.spoke = r;
            found.link = subnet;
            matched = true;
            break;
          }
        }
        if (matched) break;
        seen_subnets.emplace_back(subnet, r);
      }
      if (found.hub != model::kInvalidId) break;
    }
    if (found.hub != model::kInvalidId) candidates.push_back(found);
  }
  if (candidates.empty()) return std::nullopt;
  const Candidate chosen = candidates[seed % candidates.size()];
  const auto y_proto = view.set.instances[chosen.y].protocol;
  // Y's process ids on each end, for the redistribute commands.
  const model::ProcessId hub_y = process_on(view, chosen.y, chosen.hub);
  const model::ProcessId spoke_y = process_on(view, chosen.y, chosen.spoke);
  if (hub_y == model::kInvalidId || spoke_y == model::kInvalidId) {
    return std::nullopt;
  }
  auto& hub_config = network.configs[chosen.hub];
  auto& spoke_config = network.configs[chosen.spoke];
  const auto rip_over_link = [&](config::RouterConfig& config) {
    config::RouterStanza stanza;
    stanza.protocol = RoutingProtocol::kRip;
    stanza.networks.push_back(cover(chosen.link, std::nullopt));
    config.router_stanzas.push_back(std::move(stanza));
    return config.router_stanzas.size() - 1;
  };
  // Z spans the link; h leaks it into the carrier (metric mapped, so only
  // the loop is wrong)...
  const std::size_t hub_rip = rip_over_link(hub_config);
  (void)hub_rip;
  hub_config.router_stanzas[stanza_index_of(view, hub_y)]
      .redistributes.push_back(
          redistribute_command(RoutingProtocol::kRip, std::nullopt, 100,
                               std::nullopt));
  // ...and s hands the carrier's routes straight back.
  const std::size_t spoke_rip = rip_over_link(spoke_config);
  const auto y_pid =
      spoke_config.router_stanzas[stanza_index_of(view, spoke_y)].process_id;
  spoke_config.router_stanzas[spoke_rip].redistributes.push_back(
      redistribute_command(y_proto, y_pid, 5, std::nullopt));
  return Plant{"RD060", chosen.spoke, spoke_rip, 0, "re-inject"};
}

// --- RD064: a fresh two-router instance hanging off one box ------------------

std::optional<Plant> inject_single_point(SynthNetwork& network,
                                         std::uint64_t seed) {
  const ModelView view = build_view(network);
  // Candidate: an IGP instance with >= 2 routers (both of which can host
  // the planted instance). kIgrp targets are excluded: igrp's external
  // distance (100) undercuts ospf's internal (110), which would drag RD062
  // into the picture — this plant is about robustness, not distances.
  struct Candidate {
    std::uint32_t instance;
    model::RouterId s1, s2;
  };
  std::vector<Candidate> candidates;
  const auto& instances = view.set.instances;
  for (std::uint32_t y = 0; y < instances.size(); ++y) {
    if (!config::is_conventional_igp(instances[y].protocol)) continue;
    if (instances[y].protocol == RoutingProtocol::kIgrp) continue;
    if (instances[y].router_count() < 2) continue;
    const auto& routers = instances[y].routers;
    const model::RouterId s1 = routers[seed % routers.size()];
    const model::RouterId s2 = routers[(seed + 1) % routers.size()];
    if (s1 == s2) continue;
    if (has_stanza_of_protocol(network.configs[s1], RoutingProtocol::kOspf) &&
        instances[y].protocol != RoutingProtocol::kOspf) {
      // An existing OSPF stanza on s1 could collide with the planted
      // process id; skip rather than reason about id spaces.
      continue;
    }
    candidates.push_back({y, s1, s2});
  }
  if (candidates.empty()) return std::nullopt;
  const Candidate chosen = candidates[seed % candidates.size()];
  const model::ProcessId s1_process =
      process_on(view, chosen.instance, chosen.s1);
  if (s1_process == model::kInvalidId) return std::nullopt;
  // A dedicated point-to-point link between the two spokes...
  const std::uint32_t plant_pid = 4242;
  auto wire = [&](model::RouterId router, std::uint32_t host) {
    config::InterfaceConfig itf;
    itf.name = "Serial99/0";
    itf.address = {ip::Ipv4Address(kPlantLink.network().value() + host),
                   ip::Netmask::from_length(30)};
    itf.point_to_point = true;
    network.configs[router].interfaces.push_back(std::move(itf));
    config::RouterStanza stanza;
    stanza.protocol = RoutingProtocol::kOspf;
    stanza.process_id = plant_pid;
    stanza.networks.push_back(cover(kPlantLink, 0));
    network.configs[router].router_stanzas.push_back(std::move(stanza));
  };
  wire(chosen.s1, 1);
  wire(chosen.s2, 2);
  // ...whose only exchange with the main instance is one redistribute on
  // s1. Metric mapped, one direction, equal-or-worse distance: only the
  // single-point structure is wrong.
  const std::size_t s1_stanza_index = stanza_index_of(view, s1_process);
  auto& target =
      network.configs[chosen.s1].router_stanzas[s1_stanza_index];
  target.redistributes.push_back(redistribute_command(
      RoutingProtocol::kOspf, plant_pid, 100, std::nullopt));
  return Plant{"RD064", chosen.s1, s1_stanza_index,
               target.redistributes.size() - 1, "only route exchange"};
}

}  // namespace

std::string defect_rule_id(DefectKind kind) {
  switch (kind) {
    case DefectKind::kRedistributionLoop: return "RD060";
    case DefectKind::kMetricLoss: return "RD061";
    case DefectKind::kDistanceInversion: return "RD062";
    case DefectKind::kUnfilteredMutual: return "RD063";
    case DefectKind::kSinglePointRedistribution: return "RD064";
  }
  return "RD0??";
}

std::optional<Plant> inject_defect(SynthNetwork& network, DefectKind kind,
                                   std::uint64_t seed) {
  switch (kind) {
    case DefectKind::kRedistributionLoop:
      return inject_redistribution_loop(network, seed);
    case DefectKind::kMetricLoss:
      return inject_metric_loss(network, seed);
    case DefectKind::kDistanceInversion:
      return inject_distance_inversion(network, seed);
    case DefectKind::kUnfilteredMutual:
      return inject_unfiltered_mutual(network, seed);
    case DefectKind::kSinglePointRedistribution:
      return inject_single_point(network, seed);
  }
  return std::nullopt;
}

}  // namespace rd::synth
