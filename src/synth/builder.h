#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/ast.h"
#include "synth/plan.h"
#include "util/rng.h"

namespace rd::synth {

/// Result of wiring a point-to-point link: the two assigned host addresses
/// and the interface names created on each router.
struct P2pLink {
  ip::Prefix subnet;
  ip::Ipv4Address address_a;
  ip::Ipv4Address address_b;
  std::string interface_a;
  std::string interface_b;
};

/// Result of creating an external-facing point-to-point attachment: our end
/// is configured; the neighbor address exists only as a value (the router
/// holding it is outside the data set).
struct ExternalAttachment {
  ip::Prefix subnet;
  ip::Ipv4Address local_address;
  ip::Ipv4Address neighbor_address;
  std::string interface;
};

/// Incremental builder for one synthetic network: accumulates RouterConfigs
/// and provides the wiring idioms shared by all archetypes. All randomness
/// flows through the provided Rng so fleets are reproducible.
class NetworkBuilder {
 public:
  explicit NetworkBuilder(std::string name_prefix)
      : name_prefix_(std::move(name_prefix)) {}

  /// Create a router; returns its index.
  std::uint32_t add_router();
  std::uint32_t add_router(std::string hostname);

  config::RouterConfig& router(std::uint32_t r) { return routers_[r]; }
  std::size_t router_count() const noexcept { return routers_.size(); }

  /// Connect two routers with a /30 of the given hardware type
  /// ("Serial", "POS", "Hssi", "ATM", ...).
  P2pLink connect_p2p(std::uint32_t a, std::uint32_t b,
                      AddressPlanner& planner, const std::string& hw_type);

  /// Attach a LAN subnet to a router (one interface on a multipoint subnet).
  /// Returns the interface name.
  std::string add_lan(std::uint32_t r, const ip::Prefix& subnet,
                      const std::string& hw_type);

  /// Attach an external-facing /30 (our side only).
  ExternalAttachment attach_external(std::uint32_t r, AddressPlanner& planner,
                                     const std::string& hw_type);

  /// Add a loopback /32.
  ip::Ipv4Address add_loopback(std::uint32_t r, AddressPlanner& planner);

  /// Find or create a "router <protocol> <id>" stanza on a router.
  config::RouterStanza& routing_stanza(std::uint32_t r,
                                       config::RoutingProtocol protocol,
                                       std::uint32_t process_id);
  config::RouterStanza& rip_stanza(std::uint32_t r);  // RIP has no id

  /// Add "network <subnet>" coverage (wildcard form; area for OSPF).
  static void cover_subnet(config::RouterStanza& stanza,
                           const ip::Prefix& subnet,
                           std::uint32_t ospf_area = 0);

  /// Append a standard ACL clause; creates the list on first use.
  void add_acl_rule(std::uint32_t r, const std::string& acl_id,
                    config::FilterAction action, const ip::Prefix& prefix,
                    bool any = false);
  /// Append an extended ACL clause (protocol + src/dst any + optional port).
  void add_extended_acl_rule(std::uint32_t r, const std::string& acl_id,
                             config::FilterAction action,
                             const std::string& protocol,
                             const ip::Prefix& source, bool any_source,
                             const ip::Prefix& destination,
                             bool any_destination,
                             std::optional<std::uint16_t> port = {});

  /// Append an entry to an ip prefix-list; creates the list on first use.
  /// Sequence numbers are assigned 5, 10, 15, ...
  void add_prefix_list_entry(std::uint32_t r, const std::string& name,
                             config::FilterAction action,
                             const ip::Prefix& prefix,
                             std::optional<int> ge = {},
                             std::optional<int> le = {});

  /// Apply an ACL as a packet filter on an interface (by name).
  void apply_filter(std::uint32_t r, const std::string& interface_name,
                    const std::string& acl_id, bool inbound);

  /// Extract the finished configurations (builder is left empty).
  std::vector<config::RouterConfig> take();

  const std::string& name_prefix() const noexcept { return name_prefix_; }

 private:
  config::InterfaceConfig& new_interface(std::uint32_t r,
                                         const std::string& hw_type,
                                         bool point_to_point);

  std::string name_prefix_;
  std::vector<config::RouterConfig> routers_;
  /// Per-router, per-hardware-type unit counters for interface naming.
  std::vector<std::vector<std::pair<std::string, std::uint32_t>>> units_;
};

}  // namespace rd::synth
