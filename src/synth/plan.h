#pragma once

#include <cstdint>
#include <stdexcept>

#include "ip/ipv4.h"

namespace rd::synth {

/// Sequential subnet allocator over an address pool. Synthetic networks use
/// one planner per address block so the emitted configurations exhibit the
/// structured block plans the paper's §3.4 analysis recovers.
class AddressPlanner {
 public:
  explicit AddressPlanner(ip::Prefix pool) noexcept
      : pool_(pool), next_(pool.network().value()) {}

  /// Carve the next subnet of the given prefix length (aligned). Throws
  /// std::length_error when the pool is exhausted — synthetic plans are
  /// sized in advance, so exhaustion is a generator bug.
  ip::Prefix allocate(int length);

  /// Addresses handed out so far.
  std::uint64_t used() const noexcept {
    return next_ - pool_.network().value();
  }

  const ip::Prefix& pool() const noexcept { return pool_; }

 private:
  ip::Prefix pool_;
  std::uint64_t next_;  // 64-bit so a fully-consumed pool does not wrap
};

}  // namespace rd::synth
