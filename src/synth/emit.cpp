#include "synth/emit.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "config/parser.h"
#include "config/writer.h"

namespace rd::synth {

std::vector<std::filesystem::path> emit_network(
    const std::vector<config::RouterConfig>& configs,
    const std::filesystem::path& directory) {
  std::filesystem::create_directories(directory);
  std::vector<std::filesystem::path> paths;
  paths.reserve(configs.size());
  std::size_t index = 0;
  for (const auto& config : configs) {
    ++index;
    const auto path = directory / ("config" + std::to_string(index));
    std::ofstream out(path);
    out << config::write_config(config);
    if (!out) {
      throw std::runtime_error("cannot write " + path.string());
    }
    paths.push_back(path);
  }
  return paths;
}

namespace {

std::vector<std::filesystem::path> config_paths(
    const std::filesystem::path& directory) {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(directory)) {
    if (entry.is_regular_file() &&
        entry.path().filename().string().starts_with("config")) {
      paths.push_back(entry.path());
    }
  }
  // directory_iterator order is unspecified; sort numerically so router ids
  // are stable across platforms.
  std::sort(paths.begin(), paths.end(),
            [](const std::filesystem::path& a, const std::filesystem::path& b) {
              const std::string sa = a.filename().string();
              const std::string sb = b.filename().string();
              if (sa.size() != sb.size()) return sa.size() < sb.size();
              return sa < sb;
            });
  return paths;
}

}  // namespace

std::vector<config::RouterConfig> load_network(
    const std::filesystem::path& directory) {
  std::vector<config::RouterConfig> configs;
  const auto paths = config_paths(directory);
  configs.reserve(paths.size());
  for (const auto& path : paths) {
    std::ifstream in(path);
    if (!in) continue;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    configs.push_back(
        config::parse_config(text, path.filename().string()).config);
  }
  return configs;
}

std::vector<std::string> load_network_texts(
    const std::filesystem::path& directory) {
  std::vector<std::string> texts;
  const auto paths = config_paths(directory);
  texts.reserve(paths.size());
  for (const auto& path : paths) {
    std::ifstream in(path);
    if (!in) continue;
    texts.emplace_back((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }
  return texts;
}

LoadedTexts load_network_texts_named(
    const std::filesystem::path& directory) {
  LoadedTexts out;
  const auto paths = config_paths(directory);
  out.texts.reserve(paths.size());
  out.names.reserve(paths.size());
  for (const auto& path : paths) {
    std::ifstream in(path);
    if (!in) continue;
    out.texts.emplace_back((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    out.names.push_back(path.filename().string());
  }
  return out;
}

std::vector<config::RouterConfig> reparse(
    const std::vector<config::RouterConfig>& configs) {
  std::vector<config::RouterConfig> out;
  out.reserve(configs.size());
  for (const auto& config : configs) {
    out.push_back(
        config::parse_config(config::write_config(config), config.hostname)
            .config);
  }
  return out;
}

}  // namespace rd::synth
