#pragma once

#include <cstdint>
#include <vector>

#include "synth/archetypes.h"

namespace rd::synth {

/// The 31-network synthetic fleet standing in for the paper's proprietary
/// data set (DESIGN.md §2). Composition mirrors §7:
///   - 4 backbone networks (400-600 routers, mean ~540; three POS-based,
///     one HSSI/ATM-based);
///   - 7 textbook enterprises (19-101 routers; the largest split across two
///     IGP instances);
///   - 20 networks defying classification: the net5 and net15 case studies,
///     two tier-2 ISPs with staging IGP instances, three large managed
///     enterprises (up to 1750 routers), three networks with no BGP at all,
///     merger hybrids gluing OSPF and EIGRP sides with internal EBGP, and
///     assorted small managed networks.
struct Fleet {
  std::vector<SynthNetwork> networks;

  std::size_t total_routers() const;
};

/// Generate the fleet. Fully deterministic in `seed`.
Fleet generate_fleet(std::uint64_t seed);

/// Sizes (router counts) of the ~2,400 networks in the paper's Figure 8
/// "known networks" repository: a heavy-tailed population dominated by small
/// networks. Deterministic in `seed`.
std::vector<double> repository_network_sizes(std::uint64_t seed,
                                             std::size_t count = 2400);

}  // namespace rd::synth
