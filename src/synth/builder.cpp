#include "synth/builder.h"

#include <algorithm>

namespace rd::synth {

namespace {

/// Interface naming convention per hardware type: serial-style interfaces
/// get slot/port numbering, LAN types get sequential units.
std::string interface_name(const std::string& hw_type, std::uint32_t unit) {
  if (hw_type == "Serial" || hw_type == "POS" || hw_type == "ATM" ||
      hw_type == "Hssi") {
    const std::uint32_t slot = unit / 8;
    const std::uint32_t port = unit % 8;
    return hw_type + std::to_string(slot) + "/" + std::to_string(port);
  }
  if (hw_type == "Loopback") return hw_type + std::to_string(unit);
  return hw_type + std::to_string(unit / 4) + "/" + std::to_string(unit % 4);
}

}  // namespace

std::uint32_t NetworkBuilder::add_router() {
  return add_router(name_prefix_ + "-r" + std::to_string(routers_.size()));
}

std::uint32_t NetworkBuilder::add_router(std::string hostname) {
  config::RouterConfig config;
  config.hostname = std::move(hostname);
  routers_.push_back(std::move(config));
  units_.emplace_back();
  return static_cast<std::uint32_t>(routers_.size() - 1);
}

config::InterfaceConfig& NetworkBuilder::new_interface(
    std::uint32_t r, const std::string& hw_type, bool point_to_point) {
  auto& counters = units_[r];
  auto it = std::find_if(counters.begin(), counters.end(),
                         [&](const auto& c) { return c.first == hw_type; });
  if (it == counters.end()) {
    counters.emplace_back(hw_type, 0);
    it = std::prev(counters.end());
  }
  config::InterfaceConfig itf;
  itf.name = interface_name(hw_type, it->second++);
  itf.point_to_point = point_to_point;
  routers_[r].interfaces.push_back(std::move(itf));
  return routers_[r].interfaces.back();
}

P2pLink NetworkBuilder::connect_p2p(std::uint32_t a, std::uint32_t b,
                                    AddressPlanner& planner,
                                    const std::string& hw_type) {
  const ip::Prefix subnet = planner.allocate(30);
  P2pLink link;
  link.subnet = subnet;
  link.address_a = ip::Ipv4Address(subnet.network().value() + 1);
  link.address_b = ip::Ipv4Address(subnet.network().value() + 2);

  auto& ia = new_interface(a, hw_type, true);
  ia.address = {link.address_a, ip::Netmask::from_length(30)};
  link.interface_a = ia.name;
  auto& ib = new_interface(b, hw_type, true);
  ib.address = {link.address_b, ip::Netmask::from_length(30)};
  link.interface_b = ib.name;
  return link;
}

std::string NetworkBuilder::add_lan(std::uint32_t r, const ip::Prefix& subnet,
                                    const std::string& hw_type) {
  auto& itf = new_interface(r, hw_type, false);
  itf.address = {ip::Ipv4Address(subnet.network().value() + 1),
                 ip::Netmask::from_length(subnet.length())};
  return itf.name;
}

ExternalAttachment NetworkBuilder::attach_external(std::uint32_t r,
                                                   AddressPlanner& planner,
                                                   const std::string& hw_type) {
  const ip::Prefix subnet = planner.allocate(30);
  ExternalAttachment out;
  out.subnet = subnet;
  out.local_address = ip::Ipv4Address(subnet.network().value() + 1);
  out.neighbor_address = ip::Ipv4Address(subnet.network().value() + 2);
  auto& itf = new_interface(r, hw_type, true);
  itf.address = {out.local_address, ip::Netmask::from_length(30)};
  out.interface = itf.name;
  return out;
}

ip::Ipv4Address NetworkBuilder::add_loopback(std::uint32_t r,
                                             AddressPlanner& planner) {
  const ip::Prefix subnet = planner.allocate(32);
  auto& itf = new_interface(r, "Loopback", false);
  itf.address = {subnet.network(), ip::Netmask::from_length(32)};
  return subnet.network();
}

config::RouterStanza& NetworkBuilder::routing_stanza(
    std::uint32_t r, config::RoutingProtocol protocol,
    std::uint32_t process_id) {
  for (auto& stanza : routers_[r].router_stanzas) {
    if (stanza.protocol == protocol && stanza.process_id == process_id) {
      return stanza;
    }
  }
  config::RouterStanza stanza;
  stanza.protocol = protocol;
  stanza.process_id = process_id;
  routers_[r].router_stanzas.push_back(std::move(stanza));
  return routers_[r].router_stanzas.back();
}

config::RouterStanza& NetworkBuilder::rip_stanza(std::uint32_t r) {
  for (auto& stanza : routers_[r].router_stanzas) {
    if (stanza.protocol == config::RoutingProtocol::kRip) return stanza;
  }
  config::RouterStanza stanza;
  stanza.protocol = config::RoutingProtocol::kRip;
  routers_[r].router_stanzas.push_back(std::move(stanza));
  return routers_[r].router_stanzas.back();
}

void NetworkBuilder::cover_subnet(config::RouterStanza& stanza,
                                  const ip::Prefix& subnet,
                                  std::uint32_t ospf_area) {
  config::NetworkStatement ns;
  ns.address = subnet.network();
  ns.mask = ip::Netmask::from_length(subnet.length());
  if (stanza.protocol == config::RoutingProtocol::kOspf) ns.area = ospf_area;
  stanza.networks.push_back(ns);
}

void NetworkBuilder::add_acl_rule(std::uint32_t r, const std::string& acl_id,
                                  config::FilterAction action,
                                  const ip::Prefix& prefix, bool any) {
  config::AclRule rule;
  rule.action = action;
  rule.extended = false;
  rule.any_source = any;
  rule.source = prefix;
  rule.any_destination = true;
  auto& lists = routers_[r].access_lists;
  for (auto& acl : lists) {
    if (acl.id == acl_id) {
      acl.rules.push_back(rule);
      return;
    }
  }
  config::AccessList acl;
  acl.id = acl_id;
  acl.rules.push_back(rule);
  lists.push_back(std::move(acl));
}

void NetworkBuilder::add_extended_acl_rule(
    std::uint32_t r, const std::string& acl_id, config::FilterAction action,
    const std::string& protocol, const ip::Prefix& source, bool any_source,
    const ip::Prefix& destination, bool any_destination,
    std::optional<std::uint16_t> port) {
  config::AclRule rule;
  rule.action = action;
  rule.extended = true;
  rule.protocol = protocol;
  rule.any_source = any_source;
  rule.source = source;
  rule.any_destination = any_destination;
  rule.destination = destination;
  rule.destination_port = port;
  auto& lists = routers_[r].access_lists;
  for (auto& acl : lists) {
    if (acl.id == acl_id) {
      acl.rules.push_back(rule);
      return;
    }
  }
  config::AccessList acl;
  acl.id = acl_id;
  acl.rules.push_back(rule);
  lists.push_back(std::move(acl));
}

void NetworkBuilder::add_prefix_list_entry(std::uint32_t r,
                                           const std::string& name,
                                           config::FilterAction action,
                                           const ip::Prefix& prefix,
                                           std::optional<int> ge,
                                           std::optional<int> le) {
  auto& lists = routers_[r].prefix_lists;
  config::PrefixList* list = nullptr;
  for (auto& pl : lists) {
    if (pl.name == name) {
      list = &pl;
      break;
    }
  }
  if (list == nullptr) {
    config::PrefixList pl;
    pl.name = name;
    lists.push_back(std::move(pl));
    list = &lists.back();
  }
  config::PrefixListEntry entry;
  entry.sequence = static_cast<std::uint32_t>(5 * (list->entries.size() + 1));
  entry.action = action;
  entry.prefix = prefix;
  entry.ge = ge;
  entry.le = le;
  list->entries.push_back(entry);
}

void NetworkBuilder::apply_filter(std::uint32_t r,
                                  const std::string& interface_name,
                                  const std::string& acl_id, bool inbound) {
  for (auto& itf : routers_[r].interfaces) {
    if (itf.name == interface_name) {
      if (inbound) {
        itf.access_group_in = acl_id;
      } else {
        itf.access_group_out = acl_id;
      }
      return;
    }
  }
}

std::vector<config::RouterConfig> NetworkBuilder::take() {
  units_.clear();
  return std::move(routers_);
}

}  // namespace rd::synth
