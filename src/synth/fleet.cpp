#include "synth/fleet.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace rd::synth {

std::size_t Fleet::total_routers() const {
  std::size_t total = 0;
  for (const auto& network : networks) total += network.configs.size();
  return total;
}

Fleet generate_fleet(std::uint64_t seed) {
  util::Rng rng(seed);
  Fleet fleet;
  fleet.networks.reserve(31);

  // --- 4 backbones (sizes 400, 560, 600, 600; three POS, one HSSI/ATM).
  {
    BackboneParams p;
    p.seed = rng.fork("bb0").next();
    p.name = "net-bb0";
    p.core_routers = 12;
    p.access_routers = 388;
    p.external_peers = 800;
    p.as_number = 7018;
    fleet.networks.push_back(make_backbone(p));
  }
  {
    BackboneParams p;
    p.seed = rng.fork("bb1").next();
    p.name = "net-bb1";
    p.core_routers = 14;
    p.access_routers = 546;
    p.external_peers = 1200;
    p.as_number = 3356;
    p.aggregation_hw = "ATM";  // POS core, ATM aggregation
    fleet.networks.push_back(make_backbone(p));
  }
  {
    BackboneParams p;
    p.seed = rng.fork("bb2").next();
    p.name = "net-bb2";
    p.core_routers = 16;
    p.access_routers = 584;
    p.external_peers = 1400;
    p.as_number = 1239;
    fleet.networks.push_back(make_backbone(p));
  }
  {
    BackboneParams p;
    p.seed = rng.fork("bb3").next();
    p.name = "net-bb3";
    p.core_routers = 12;
    p.access_routers = 588;
    p.external_peers = 1000;
    p.as_number = 2914;
    p.core_hw = "Hssi";  // the fourth backbone (paper §7.3)
    p.aggregation_hw = "ATM";
    fleet.networks.push_back(make_backbone(p));
  }

  // --- 7 textbook enterprises (19-101 routers).
  const std::uint32_t textbook_sizes[] = {19, 24, 30, 42, 55, 76, 101};
  for (std::size_t i = 0; i < std::size(textbook_sizes); ++i) {
    TextbookEnterpriseParams p;
    p.seed = rng.fork("textbook" + std::to_string(i)).next();
    p.name = "net-ent" + std::to_string(i);
    p.routers = textbook_sizes[i];
    p.border_routers = i >= 4 ? 2 : 1;
    p.igp_instances = (i + 1 == std::size(textbook_sizes)) ? 2 : 1;
    p.bgp_as = 65101 + static_cast<std::uint32_t>(i);
    p.filters.internal_filter_rate = 0.01 * static_cast<double>(i);
    p.filters.edge_rules_min = 20;
    p.filters.edge_rules_max = 60;
    fleet.networks.push_back(make_textbook_enterprise(p));
  }

  // --- 20 unclassifiable networks.
  // The two case studies.
  fleet.networks.push_back(make_net5(rng.fork("net5").next()));
  fleet.networks.push_back(make_net15(rng.fork("net15").next()));

  // Two tier-2 ISPs with staging IGP instances.
  {
    Tier2Params p;
    p.seed = rng.fork("tier2a").next();
    p.name = "net-tier2a";
    p.core_routers = 10;
    p.edge_routers = 880;
    p.staging_per_edge = 2;
    p.customer_ebgp_per_edge = 4;
    p.as_number = 6461;
    fleet.networks.push_back(make_tier2_isp(p));
  }
  {
    Tier2Params p;
    p.seed = rng.fork("tier2b").next();
    p.name = "net-tier2b";
    p.core_routers = 10;
    p.edge_routers = 440;
    p.staging_per_edge = 2;
    p.customer_ebgp_per_edge = 5;
    p.as_number = 6453;
    fleet.networks.push_back(make_tier2_isp(p));
  }

  // Three large managed enterprises.
  const struct {
    const char* name;
    std::uint32_t regions;
    std::uint32_t spokes;
    double internal_filters;
  } managed_large[] = {
      {"net-mgd0", 14, 122, 0.45},
      {"net-mgd1", 13, 107, 0.35},
      {"net-mgd2", 8, 92, 0.50},
  };
  for (const auto& spec : managed_large) {
    ManagedEnterpriseParams p;
    p.seed = rng.fork(spec.name).next();
    p.name = spec.name;
    p.regions = spec.regions;
    p.spokes_per_region = spec.spokes;
    p.core_routers = 3;
    p.extra_igp_processes = 4.6;
    p.igp_edge_rate = 0.06;
    p.ebgp_spoke_rate = 0.18;
    p.filters.internal_filter_rate = spec.internal_filters;
    fleet.networks.push_back(make_managed_enterprise(p));
  }

  // Three networks without BGP.
  const NoBgpParams::Edge no_bgp_edges[] = {NoBgpParams::Edge::kStatic,
                                            NoBgpParams::Edge::kRip,
                                            NoBgpParams::Edge::kEigrp};
  const std::uint32_t no_bgp_sizes[] = {6, 12, 24};
  for (std::size_t i = 0; i < 3; ++i) {
    NoBgpParams p;
    p.seed = rng.fork("nobgp" + std::to_string(i)).next();
    p.name = "net-nobgp" + std::to_string(i);
    p.routers = no_bgp_sizes[i];
    p.edge = no_bgp_edges[i];
    p.filters.internal_filter_rate = 0.08;
    // One of the three defines no packet filters at all (the paper drops
    // three filterless networks from the Figure 11 population).
    if (i == 0) {
      p.filters.internal_filter_rate = 0.0;
      p.filters.edge_filter_rate = 0.0;
    }
    fleet.networks.push_back(make_no_bgp_enterprise(p));
  }

  // Three merger hybrids (internal EBGP gluing OSPF and EIGRP halves). Two
  // of them carry no packet filters, which together with one filterless
  // no-BGP network gives the paper's three networks without any packet
  // filter definitions (§5.3).
  const struct {
    std::uint32_t left, right;
    double internal_filters;
    double edge_filters;
  } hybrids[] = {
      {2, 2, 0.0, 0.0},
      {15, 15, 0.0, 0.0},
      {20, 24, 0.4, 1.0},
  };
  for (std::size_t i = 0; i < std::size(hybrids); ++i) {
    MergedHybridParams p;
    p.seed = rng.fork("hybrid" + std::to_string(i)).next();
    p.name = "net-hyb" + std::to_string(i);
    p.ospf_side_routers = hybrids[i].left;
    p.eigrp_side_routers = hybrids[i].right;
    p.as_left = 64640 + static_cast<std::uint32_t>(2 * i);
    p.as_right = 64641 + static_cast<std::uint32_t>(2 * i);
    p.filters.internal_filter_rate = hybrids[i].internal_filters;
    p.filters.edge_filter_rate = hybrids[i].edge_filters;
    fleet.networks.push_back(make_merged_hybrid(p));
  }

  // Seven small/medium managed enterprises.
  const struct {
    std::uint32_t regions;
    std::uint32_t spokes;
    double internal_filters;
  } managed_small[] = {
      {1, 6, 0.05},  {1, 8, 0.5},   {1, 13, 0.3}, {2, 8, 0.08},
      {2, 16, 0.65}, {2, 18, 0.06}, {3, 16, 0.4},
  };
  for (std::size_t i = 0; i < std::size(managed_small); ++i) {
    ManagedEnterpriseParams p;
    p.seed = rng.fork("mgdsmall" + std::to_string(i)).next();
    p.name = "net-mgds" + std::to_string(i);
    p.regions = managed_small[i].regions;
    p.spokes_per_region = managed_small[i].spokes;
    p.extra_igp_processes = 3.0;
    p.igp_edge_rate = 0.12;
    p.ebgp_spoke_rate = 0.08;
    p.filters.internal_filter_rate = managed_small[i].internal_filters;
    fleet.networks.push_back(make_managed_enterprise(p));
  }

  return fleet;
}

std::vector<double> repository_network_sizes(std::uint64_t seed,
                                             std::size_t count) {
  // The Figure 8 "known networks" curve: the majority of networks are
  // small (>60% below 10 routers), with a long tail past 1280. Modeled as a
  // discretized log-normal calibrated to that shape.
  util::Rng rng(seed);
  std::vector<double> sizes;
  sizes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double v = rng.log_normal(/*mu=*/1.7, /*sigma=*/1.6);
    sizes.push_back(std::max(1.0, std::floor(v)));
  }
  return sizes;
}

}  // namespace rd::synth
