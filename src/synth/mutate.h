#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "synth/archetypes.h"

namespace rd::synth {

/// Seeded defect injectors for the redistribution-safety rules
/// (RD060-RD064): each plants one instance of a defect class into an
/// otherwise-clean synthetic network, recording exactly where, so the
/// mutation differential suite can assert that the analysis flags the
/// planted command — and nothing less — with correct file:line provenance.
enum class DefectKind : std::uint8_t {
  kRedistributionLoop,         // RD060
  kMetricLoss,                 // RD061
  kDistanceInversion,          // RD062
  kUnfilteredMutual,           // RD063
  kSinglePointRedistribution,  // RD064
};

/// The rule id a defect kind is expected to trip ("RD060"...).
std::string defect_rule_id(DefectKind kind);

/// Where a planted defect lives: the redistribute command at
/// `configs[router].router_stanzas[stanza].redistributes[redistribute]`.
/// Tests re-derive the expected source line by emitting and reparsing the
/// mutated configs and navigating these indexes, so provenance checks see
/// the same line numbers the analysis sees.
struct Plant {
  std::string rule_id;
  std::size_t router = 0;
  std::size_t stanza = 0;
  std::size_t redistribute = 0;
  /// A substring the finding's detail must contain (sanity anchor beyond
  /// file:line).
  std::string detail_contains;
};

/// Inject one defect of `kind` into `network`, choosing among the eligible
/// sites with `seed` (deterministic: same network + kind + seed => same
/// mutation). Returns std::nullopt when the network lacks the structure
/// the defect needs (e.g. no mutual redistribution to unfilter); the
/// network is left untouched in that case.
std::optional<Plant> inject_defect(SynthNetwork& network, DefectKind kind,
                                   std::uint64_t seed);

}  // namespace rd::synth
