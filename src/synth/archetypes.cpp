#include "synth/archetypes.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <string>

#include "synth/builder.h"
#include "util/rng.h"

namespace rd::synth {

namespace {

using config::FilterAction;
using config::RoutingProtocol;
using ip::Ipv4Address;
using ip::Prefix;
using util::Rng;

constexpr std::uint16_t kWellKnownPorts[] = {23,  25,   53,   80,   110,
                                             135, 139,  161,  443,  445,
                                             1433, 1434, 5060, 8080};

/// Standard address layout every synthetic network uses: a structured plan
/// (infrastructure, LANs, spoke-local space, external-facing /30s) so that
/// the §3.4 address-structure analysis has real structure to recover. The
/// external-facing block is deliberately distinct from internal blocks, as
/// the paper observes many networks do.
struct Pools {
  AddressPlanner infra{Prefix(Ipv4Address(10, 0, 0, 0), 11)};     // p2p+loops
  AddressPlanner lans{Prefix(Ipv4Address(10, 64, 0, 0), 10)};     // site LANs
  AddressPlanner local{Prefix(Ipv4Address(10, 128, 0, 0), 10)};   // spoke-only
  AddressPlanner ext{Prefix(Ipv4Address(66, 192, 0, 0), 12)};     // edge /30s
  AddressPlanner customer{Prefix(Ipv4Address(128, 0, 0, 0), 3)};  // learned
  AddressPlanner hosts{Prefix(Ipv4Address(192, 0, 0, 0), 10)};    // ACL noise

  /// Pools sized to the network. Every tier the paper calibrates against
  /// fits the default RFC1918-style plan above, and must keep it so the
  /// generated addresses stay byte-identical. The ~100k-router mega tier
  /// overflows it (three /24 LANs per spoke alone outgrow all of 10/8),
  /// so past 5k expected routers the plan switches to wider disjoint
  /// blocks: same structure, same relative roles, bigger arithmetic.
  static Pools scaled(std::uint64_t expected_routers) {
    Pools p;
    if (expected_routers <= 5000) return p;
    p.infra = AddressPlanner(Prefix(Ipv4Address(10, 0, 0, 0), 9));
    p.lans = AddressPlanner(Prefix(Ipv4Address(32, 0, 0, 0), 5));
    p.local = AddressPlanner(Prefix(Ipv4Address(68, 0, 0, 0), 6));
    p.hosts = AddressPlanner(Prefix(Ipv4Address(160, 0, 0, 0), 7));
    // ext and customer have headroom at any realistic tier.
    return p;
  }
};

std::string next_acl_id(const config::RouterConfig& cfg) {
  return std::to_string(100 + cfg.access_lists.size());
}

/// Create a packet filter with a realistic clause mix and apply it inbound
/// on an interface. Returns the rule count.
std::size_t make_packet_filter(NetworkBuilder& b, std::uint32_t r,
                               const std::string& iface, Rng& rng,
                               std::uint32_t rules_min,
                               std::uint32_t rules_max, Pools& pools) {
  // A quarter of the filters use the named-ACL syntax, as real configs mix
  // both forms.
  const bool named = rng.chance(0.25);
  const std::string id =
      named ? "FILTER-" + std::to_string(b.router(r).access_lists.size())
            : next_acl_id(b.router(r));
  const auto rules = static_cast<std::uint32_t>(
      rng.range(rules_min, std::max(rules_min, rules_max)));
  for (std::uint32_t i = 0; i + 1 < rules; ++i) {
    switch (rng.below(4)) {
      case 0: {  // block a worm/abuse port
        const auto port =
            kWellKnownPorts[rng.below(std::size(kWellKnownPorts))];
        b.add_extended_acl_rule(r, id, FilterAction::kDeny,
                                rng.chance(0.5) ? "udp" : "tcp", Prefix{},
                                true, Prefix{}, true, port);
        break;
      }
      case 1: {  // allow a specific server
        const Prefix server = pools.hosts.allocate(32);
        const auto port =
            kWellKnownPorts[rng.below(std::size(kWellKnownPorts))];
        b.add_extended_acl_rule(r, id, FilterAction::kPermit, "tcp", Prefix{},
                                true, server, false, port);
        break;
      }
      case 2:  // disable a protocol (e.g. PIM) from internal hosts
        b.add_extended_acl_rule(r, id, FilterAction::kDeny,
                                rng.chance(0.3) ? "pim" : "icmp", Prefix{},
                                true, Prefix{}, true);
        break;
      default: {  // deny a subnet outright (the paper's line-30 example)
        const Prefix subnet = pools.hosts.allocate(28);
        b.add_acl_rule(r, id, FilterAction::kDeny, subnet);
        break;
      }
    }
  }
  b.add_acl_rule(r, id, FilterAction::kPermit, Prefix{}, /*any=*/true);
  if (named) {
    for (auto& acl : b.router(r).access_lists) {
      if (acl.id == id) {
        acl.named = true;
        acl.extended_block = true;
      }
    }
  }
  b.apply_filter(r, iface, id, /*inbound=*/true);
  return rules;
}

/// How much housekeeping noise a router config carries. Calibrates the
/// Figure 4 line-count distribution (the paper's net5 averages ~270 lines).
struct NoiseProfile {
  std::uint32_t statics_min = 1;
  std::uint32_t statics_max = 7;
  std::uint32_t mgmt_acl_min = 8;
  std::uint32_t mgmt_acl_max = 45;
};

/// Management noise that bulks configs toward the paper's line counts:
/// interface descriptions, static host routes toward a management station,
/// an (unapplied) management ACL, and the occasional ISDN-backup or tunnel
/// interface that populates Table 3's long tail. BRI/Dialer interfaces are
/// left unnumbered — the paper found 528 unnumbered interfaces.
void add_mgmt_noise(NetworkBuilder& b, std::uint32_t r, Rng& rng,
                    Ipv4Address next_hop, Pools& pools,
                    const NoiseProfile& profile = {}) {
  auto& cfg = b.router(r);
  for (auto& itf : cfg.interfaces) {
    if (!itf.description && rng.chance(0.7)) {
      itf.description = "circuit-" + std::to_string(rng.below(100000));
    }
    if (!itf.bandwidth_kbps && rng.chance(0.4)) {
      itf.bandwidth_kbps = 64 * (1u << rng.below(6));
    }
    // Frame-relay encapsulation details on serial circuits.
    if (itf.extra_lines.empty() && rng.chance(0.6) &&
        itf.name.starts_with("Serial")) {
      itf.extra_lines = {
          "encapsulation frame-relay",
          "frame-relay interface-dlci " + std::to_string(16 + rng.below(900)),
      };
    }
    // Dual-subnet LANs via secondary addressing.
    if (itf.address && itf.address->mask.length() == 24 && rng.chance(0.15)) {
      const Prefix extra = pools.local.allocate(24);
      itf.secondary_addresses.push_back(
          {Ipv4Address(extra.network().value() + 1),
           ip::Netmask::from_length(24)});
    }
  }
  // High-fanout aggregation routers (frame-relay hubs) carry per-PVC map
  // statements and LMI tuning — the long tail of the paper's Figure 4.
  if (cfg.interfaces.size() > 30) {
    for (auto& itf : cfg.interfaces) {
      if (!itf.name.starts_with("Serial") || !itf.address) continue;
      if (itf.extra_lines.empty()) {
        itf.extra_lines.push_back("encapsulation frame-relay");
      }
      const auto peer =
          ip::Ipv4Address(itf.address->address.value() ^ 3u);
      itf.extra_lines.push_back("frame-relay map ip " + peer.to_string() +
                                ' ' + std::to_string(16 + rng.below(900)) +
                                " broadcast");
      itf.extra_lines.push_back("frame-relay lmi-type ansi");
    }
  }

  const auto statics = static_cast<std::uint32_t>(
      rng.range(profile.statics_min, profile.statics_max));
  for (std::uint32_t i = 0; i < statics; ++i) {
    config::StaticRoute route;
    const Prefix dest = pools.hosts.allocate(32);
    route.destination = dest.network();
    route.mask = ip::Netmask::from_length(32);
    route.next_hop = next_hop;
    cfg.static_routes.push_back(route);
  }
  // Management ACL: defined but not applied to any interface (so it counts
  // toward config size and defined rules without skewing Figure 11).
  if (profile.mgmt_acl_max > 0) {
    const auto mgmt_rules = static_cast<std::uint32_t>(
        rng.range(profile.mgmt_acl_min, profile.mgmt_acl_max));
    for (std::uint32_t i = 0; i < mgmt_rules; ++i) {
      b.add_acl_rule(r, "99", FilterAction::kPermit,
                     pools.hosts.allocate(32));
    }
  }
  // ISDN backup pair; mostly numbered, occasionally unnumbered (the paper
  // found 528 unnumbered interfaces of 96,487).
  if (rng.chance(0.10)) {
    // Dial-backup addresses are /32s (negotiated peers), so they create
    // neither links nor spurious external-facing evidence.
    const bool numbered = rng.chance(0.7);
    config::InterfaceConfig bri;
    bri.name = "BRI0";
    bri.extra_lines = {"encapsulation ppp", "dialer pool-member 1"};
    if (numbered) {
      bri.address = {pools.local.allocate(32).network(),
                     ip::Netmask::from_length(32)};
    }
    cfg.interfaces.push_back(std::move(bri));
    config::InterfaceConfig dialer;
    dialer.name = "Dialer0";
    dialer.extra_lines = {"encapsulation ppp", "dialer pool 1"};
    if (numbered) {
      dialer.address = {pools.local.allocate(32).network(),
                        ip::Netmask::from_length(32)};
    }
    cfg.interfaces.push_back(std::move(dialer));
  }
  if (rng.chance(0.04)) {
    config::InterfaceConfig tun;
    tun.name = "Tunnel0";
    tun.address = {pools.local.allocate(30).network(),
                   ip::Netmask::from_length(30)};
    cfg.interfaces.push_back(std::move(tun));
  }
  if (rng.chance(0.02)) {
    config::InterfaceConfig extra;
    const char* rare[] = {"Async", "Port", "Channel", "Virtual",
                          "Fddi",  "CBR",  "Multilink"};
    extra.name = std::string(rare[rng.below(std::size(rare))]) + "1";
    cfg.interfaces.push_back(std::move(extra));
  }
}

/// An inbound route filter for a BGP session: permit a customer's blocks.
std::string make_route_filter(NetworkBuilder& b, std::uint32_t r,
                              const std::vector<Prefix>& permitted) {
  const std::string id = next_acl_id(b.router(r));
  for (const Prefix& p : permitted) {
    b.add_acl_rule(r, id, FilterAction::kPermit, p);
  }
  return id;  // implicit deny tail
}

config::BgpNeighbor& add_neighbor(config::RouterStanza& stanza,
                                  Ipv4Address address,
                                  std::uint32_t remote_as) {
  config::BgpNeighbor nbr;
  nbr.address = address;
  nbr.remote_as = remote_as;
  stanza.neighbors.push_back(nbr);
  return stanza.neighbors.back();
}

void add_redistribute(config::RouterStanza& stanza,
                      config::RedistributeSource source,
                      RoutingProtocol protocol, std::uint32_t process_id,
                      const std::optional<std::string>& route_map,
                      bool subnets = true) {
  config::Redistribute redist;
  redist.source = source;
  redist.protocol = protocol;
  if (source == config::RedistributeSource::kProtocol) {
    redist.process_id = process_id;
  }
  redist.route_map = route_map;
  redist.subnets = subnets;
  redist.metric = 100;
  stanza.redistributes.push_back(std::move(redist));
}

/// A route-map with one permit clause matching an ACL over `blocks`,
/// optionally setting a tag (net5's tagged redistribution, §6.1).
std::string make_block_route_map(NetworkBuilder& b, std::uint32_t r,
                                 const std::vector<Prefix>& blocks,
                                 std::optional<std::uint32_t> set_tag,
                                 const std::string& name) {
  const std::string acl = make_route_filter(b, r, blocks);
  config::RouteMap rm;
  rm.name = name;
  config::RouteMapClause clause;
  clause.action = FilterAction::kPermit;
  clause.sequence = 10;
  clause.match_ip_address_acls.push_back(acl);
  clause.set_tag = set_tag;
  rm.clauses.push_back(std::move(clause));
  b.router(r).route_maps.push_back(std::move(rm));
  return name;
}

}  // namespace

// ---------------------------------------------------------------------------
// Backbone
// ---------------------------------------------------------------------------

SynthNetwork make_backbone(const BackboneParams& params) {
  NetworkBuilder b(params.name);
  Rng rng(params.seed);
  Pools pools;

  const std::uint32_t n_core = params.core_routers;
  std::vector<std::uint32_t> core;
  core.reserve(n_core);
  for (std::uint32_t i = 0; i < n_core; ++i) core.push_back(b.add_router());
  std::vector<Ipv4Address> core_loopback(n_core);
  for (std::uint32_t i = 0; i < n_core; ++i) {
    core_loopback[i] = b.add_loopback(core[i], pools.infra);
  }

  // Core ring plus chords (a typical POP backbone skeleton).
  for (std::uint32_t i = 0; i < n_core; ++i) {
    b.connect_p2p(core[i], core[(i + 1) % n_core], pools.infra,
                  params.core_hw);
  }
  for (std::uint32_t i = 0; i + n_core / 2 < n_core; i += 3) {
    b.connect_p2p(core[i], core[i + n_core / 2], pools.infra, params.core_hw);
  }

  // Access routers dual-homed into the core.
  std::vector<std::uint32_t> access;
  access.reserve(params.access_routers);
  for (std::uint32_t i = 0; i < params.access_routers; ++i) {
    const std::uint32_t r = b.add_router();
    access.push_back(r);
    b.add_loopback(r, pools.infra);
    // The HSSI/ATM backbone alternates its aggregation technology; the POS
    // backbones are uniform.
    const std::string& agg = (params.core_hw == "Hssi" && i % 2 == 0)
                                 ? params.core_hw
                                 : params.aggregation_hw;
    b.connect_p2p(r, core[i % n_core], pools.infra, agg);
    b.connect_p2p(r, core[(i + 1) % n_core], pools.infra, agg);
    // A management LAN or two.
    const auto n_lans = static_cast<std::uint32_t>(rng.range(1, 3));
    for (std::uint32_t l = 0; l < n_lans; ++l) {
      b.add_lan(r, pools.lans.allocate(24),
                rng.chance(0.35) ? "GigabitEthernet" : "FastEthernet");
    }
  }

  // One OSPF instance network-wide covering the infrastructure and LANs.
  auto all_routers = core;
  all_routers.insert(all_routers.end(), access.begin(), access.end());
  for (const std::uint32_t r : all_routers) {
    auto& ospf = b.routing_stanza(r, RoutingProtocol::kOspf, 1);
    NetworkBuilder::cover_subnet(ospf, pools.infra.pool());
    NetworkBuilder::cover_subnet(ospf, pools.lans.pool());
  }

  // BGP everywhere: core as a route-reflector full mesh, access as clients.
  for (std::uint32_t i = 0; i < n_core; ++i) {
    auto& bgp = b.routing_stanza(core[i], RoutingProtocol::kBgp,
                                 params.as_number);
    bgp.router_id = core_loopback[i];
    for (std::uint32_t j = 0; j < n_core; ++j) {
      if (j == i) continue;
      auto& nbr = add_neighbor(bgp, core_loopback[j], params.as_number);
      nbr.update_source = "Loopback0";
    }
    config::NetworkStatement ns;
    ns.address = pools.lans.pool().network();
    ns.mask = ip::Netmask::from_length(pools.lans.pool().length());
    bgp.networks.push_back(ns);
  }
  for (std::uint32_t i = 0; i < access.size(); ++i) {
    auto& bgp = b.routing_stanza(access[i], RoutingProtocol::kBgp,
                                 params.as_number);
    for (std::uint32_t k = 0; k < 2; ++k) {
      auto& nbr =
          add_neighbor(bgp, core_loopback[(i + k) % n_core], params.as_number);
      nbr.update_source = "Loopback0";
      nbr.next_hop_self = false;
    }
    // The reflector side.
    for (std::uint32_t k = 0; k < 2; ++k) {
      auto& core_bgp = b.routing_stanza(core[(i + k) % n_core],
                                        RoutingProtocol::kBgp,
                                        params.as_number);
      // Access loopback is the first /32 interface of the router.
      for (const auto& itf : b.router(access[i]).interfaces) {
        if (itf.address && itf.address->mask.length() == 32) {
          auto& nbr = add_neighbor(core_bgp, itf.address->address,
                                   params.as_number);
          nbr.route_reflector_client = true;
          nbr.update_source = "Loopback0";
          break;
        }
      }
    }
  }

  // External EBGP peers spread across the access layer. External routes stay
  // in BGP — the hallmark of the backbone design (never redistributed into
  // the IGP).
  for (std::uint32_t s = 0; s < params.external_peers; ++s) {
    const std::uint32_t r = access[s % access.size()];
    const auto att = b.attach_external(r, pools.ext, "Serial");
    auto& bgp =
        b.routing_stanza(r, RoutingProtocol::kBgp, params.as_number);
    const auto peer_as = static_cast<std::uint32_t>(rng.range(1000, 30000));
    auto& nbr = add_neighbor(bgp, att.neighbor_address, peer_as);
    // Customer blocks permitted in; our space announced out. Half the
    // sessions use prefix-lists, half classic distribute-lists — both
    // idioms are common in production backbones.
    std::vector<Prefix> blocks;
    const auto n_blocks = static_cast<std::uint32_t>(rng.range(1, 3));
    for (std::uint32_t k = 0; k < n_blocks; ++k) {
      blocks.push_back(
          pools.customer.allocate(static_cast<int>(rng.range(16, 24))));
    }
    if (rng.chance(0.5)) {
      const std::string pl_name = "PL-CUST-" + std::to_string(s);
      for (const Prefix& block : blocks) {
        b.add_prefix_list_entry(r, pl_name, FilterAction::kPermit, block,
                                std::nullopt,
                                block.length() < 24 ? std::optional<int>(24)
                                                    : std::nullopt);
      }
      nbr.prefix_list_in = pl_name;
    } else {
      nbr.distribute_list_in = make_route_filter(b, r, blocks);
    }
    // Outbound: either a plain address filter or an AS-path-based
    // no-transit policy — the §6.1 observation that backbones must lean on
    // BGP attributes where enterprises can stay address-based.
    if (rng.chance(0.5)) {
      nbr.distribute_list_out =
          make_route_filter(b, r, {pools.lans.pool(), pools.customer.pool()});
    } else {
      auto& cfg = b.router(r);
      const std::string ap_id = std::to_string(cfg.as_path_lists.size() + 1);
      config::AsPathAccessList ap;
      ap.id = ap_id;
      // Announce locally-originated routes and customer routes only.
      ap.entries.push_back({FilterAction::kPermit, "^$"});
      ap.entries.push_back(
          {FilterAction::kPermit,
           "^" + std::to_string(rng.range(64512, 64999)) + "$"});
      cfg.as_path_lists.push_back(std::move(ap));
      config::RouteMap rm;
      rm.name = "RM-NO-TRANSIT-" + std::to_string(s);
      config::RouteMapClause clause;
      clause.action = FilterAction::kPermit;
      clause.sequence = 10;
      clause.match_as_paths.push_back(ap_id);
      rm.clauses.push_back(std::move(clause));
      cfg.route_maps.push_back(std::move(rm));
      nbr.route_map_out = "RM-NO-TRANSIT-" + std::to_string(s);
    }
    if (rng.chance(params.filters.edge_filter_rate)) {
      make_packet_filter(b, r, att.interface, rng,
                         params.filters.edge_rules_min,
                         params.filters.edge_rules_max, pools);
    }
  }

  // Sparse internal filtering (backbones filter at the edge).
  for (const std::uint32_t r : access) {
    if (!rng.chance(params.filters.internal_filter_rate)) continue;
    for (const auto& itf : b.router(r).interfaces) {
      if (itf.address && itf.address->mask.length() == 24) {
        make_packet_filter(b, r, itf.name, rng,
                           params.filters.internal_rules_min,
                           params.filters.internal_rules_max, pools);
        break;
      }
    }
  }

  for (const std::uint32_t r : all_routers) {
    add_mgmt_noise(b, r, rng, core_loopback[0], pools);
  }

  return {params.name, "backbone", b.take()};
}

// ---------------------------------------------------------------------------
// Textbook enterprise
// ---------------------------------------------------------------------------

SynthNetwork make_textbook_enterprise(const TextbookEnterpriseParams& params) {
  NetworkBuilder b(params.name);
  Rng rng(params.seed);
  Pools pools;

  const std::uint32_t n = std::max<std::uint32_t>(params.routers, 3);
  const std::uint32_t n_border = std::min(params.border_routers, 2u);
  const std::uint32_t instances = std::max(1u, std::min(2u, params.igp_instances));

  std::vector<std::uint32_t> routers;
  routers.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) routers.push_back(b.add_router());

  // Border router(s) first, then a distribution tier, then spokes.
  const std::uint32_t n_dist = std::max(1u, n / 10);
  auto tier_of = [&](std::uint32_t i) {
    if (i < n_border) return 0;            // border
    if (i < n_border + n_dist) return 1;   // distribution
    return 2;                              // spoke
  };

  // Split routers across IGP instances (second instance gets the top half
  // of the spoke space when requested).
  auto igp_id = [&](std::uint32_t i) -> std::uint32_t {
    if (instances == 1 || tier_of(i) == 0) return 1;
    return (i % instances) + 1;
  };

  // Two WAN pools keep the instances disjoint at the link level. Within
  // each instance, the design is multi-area OSPF: the border/distribution
  // core sits in area 0 and each distribution router's subtree is its own
  // area (the paper's Figure 2 configlet shows exactly such multi-area
  // configurations).
  AddressPlanner wan1(Prefix(Ipv4Address(10, 1, 0, 0), 16));
  AddressPlanner wan2(Prefix(Ipv4Address(10, 2, 0, 0), 16));
  auto wan_for = [&](std::uint32_t id) -> AddressPlanner& {
    return id == 1 ? wan1 : wan2;
  };
  std::map<std::uint32_t, AddressPlanner> area0_pool;   // per instance id
  std::map<std::uint32_t, AddressPlanner> dist_pool;    // per dist index
  auto area0_of = [&](std::uint32_t id) -> AddressPlanner& {
    auto it = area0_pool.find(id);
    if (it == area0_pool.end()) {
      it = area0_pool.emplace(id, AddressPlanner(wan_for(id).allocate(20)))
               .first;
    }
    return it->second;
  };
  auto pool_of_dist = [&](std::uint32_t dist_index) -> AddressPlanner& {
    auto it = dist_pool.find(dist_index);
    if (it == dist_pool.end()) {
      const std::uint32_t id = igp_id(dist_index);
      it = dist_pool.emplace(dist_index,
                             AddressPlanner(wan_for(id).allocate(22)))
               .first;
    }
    return it->second;
  };
  auto area_of_dist = [&](std::uint32_t dist_index) -> std::uint32_t {
    return dist_index - n_border + 1;  // areas 1..n_dist
  };

  // Wire the tree: distribution to border (area 0 links), spokes to
  // distribution (per-area links); remember each spoke's area.
  std::vector<std::uint32_t> area_of(n, 0);
  for (std::uint32_t i = n_border; i < n; ++i) {
    const std::uint32_t id = igp_id(i);
    if (tier_of(i) == 1) {
      b.connect_p2p(routers[i], routers[i % n_border], area0_of(id),
                    "Serial");
      continue;
    }
    // Pick a distribution router in the same instance when possible.
    std::uint32_t dist_index = n_border + (i % n_dist);
    if (instances == 2 && igp_id(dist_index) != id) {
      dist_index = n_border + ((i + 1) % n_dist);
    }
    b.connect_p2p(routers[i], routers[dist_index], pool_of_dist(dist_index),
                  "Serial");
    area_of[i] = area_of_dist(dist_index);
    // LANs on spokes.
    const auto n_lans = static_cast<std::uint32_t>(rng.range(1, 3));
    for (std::uint32_t l = 0; l < n_lans; ++l) {
      const char* hw = rng.chance(0.15) ? "TokenRing"
                       : rng.chance(0.3) ? "Ethernet"
                                         : "FastEthernet";
      const std::string name = b.add_lan(routers[i],
                                         pools.lans.allocate(24), hw);
      if (rng.chance(params.filters.internal_filter_rate)) {
        make_packet_filter(b, routers[i], name, rng,
                           params.filters.internal_rules_min,
                           params.filters.internal_rules_max, pools);
      }
    }
  }

  // IGP coverage. Border: area 0. Distribution: area 0 plus its own area
  // (making it an ABR). Spokes: their area only.
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t id = igp_id(i);
    auto& ospf = b.routing_stanza(routers[i], RoutingProtocol::kOspf, id);
    switch (tier_of(i)) {
      case 0:
        NetworkBuilder::cover_subnet(ospf, area0_of(1).pool(), 0);
        break;
      case 1:
        NetworkBuilder::cover_subnet(ospf, area0_of(id).pool(), 0);
        NetworkBuilder::cover_subnet(ospf, pool_of_dist(i).pool(),
                                     area_of_dist(i));
        break;
      default:
        NetworkBuilder::cover_subnet(
            ospf, pool_of_dist(n_border + ((area_of[i] - 1))).pool(),
            area_of[i]);
        NetworkBuilder::cover_subnet(ospf, pools.lans.pool(), area_of[i]);
        break;
    }
  }
  if (instances == 2) {
    for (std::uint32_t i = 0; i < n_border; ++i) {
      auto& ospf2 = b.routing_stanza(routers[i], RoutingProtocol::kOspf, 2);
      NetworkBuilder::cover_subnet(ospf2, area0_of(2).pool(), 0);
    }
  }

  // Border BGP: EBGP to the provider; summarize externally-learned routes
  // into the IGP via a route-map (the §3.1 enterprise design).
  for (std::uint32_t i = 0; i < n_border; ++i) {
    const std::uint32_t r = routers[i];
    const auto att = b.attach_external(r, pools.ext, "Serial");
    auto& bgp = b.routing_stanza(r, RoutingProtocol::kBgp, params.bgp_as);
    const auto provider_as =
        static_cast<std::uint32_t>(rng.range(2000, 20000));
    auto& nbr = add_neighbor(bgp, att.neighbor_address, provider_as);
    std::vector<Prefix> learned;
    const auto n_blocks = static_cast<std::uint32_t>(rng.range(2, 4));
    for (std::uint32_t k = 0; k < n_blocks; ++k) {
      learned.push_back(
          pools.customer.allocate(static_cast<int>(rng.range(14, 20))));
    }
    nbr.distribute_list_in = make_route_filter(b, r, learned);
    nbr.distribute_list_out = make_route_filter(
        b, r, {pools.lans.pool(), wan1.pool(), wan2.pool()});
    if (rng.chance(params.filters.edge_filter_rate)) {
      make_packet_filter(b, r, att.interface, rng,
                         params.filters.edge_rules_min,
                         params.filters.edge_rules_max, pools);
    }
    // Inject key summary routes into every local IGP instance.
    const std::string rm = make_block_route_map(
        b, r, learned, /*set_tag=*/200, "RM-INJECT-" + std::to_string(i));
    for (std::uint32_t id = 1; id <= instances; ++id) {
      auto& ospf = b.routing_stanza(r, RoutingProtocol::kOspf, id);
      add_redistribute(ospf, config::RedistributeSource::kProtocol,
                       RoutingProtocol::kBgp, params.bgp_as, rm);
      add_redistribute(ospf, config::RedistributeSource::kConnected,
                       RoutingProtocol::kOspf, 0, std::nullopt);
    }
    // And announce the IGP space via BGP, summarized into the site block
    // (§3.1: "craft a small number of key routes that summarize").
    add_redistribute(bgp, config::RedistributeSource::kProtocol,
                     RoutingProtocol::kOspf, 1,
                     make_block_route_map(b, r,
                                          {pools.lans.pool(), wan1.pool()},
                                          std::nullopt,
                                          "RM-EXPORT-" + std::to_string(i)));
    config::AggregateAddress summary;
    summary.address = pools.lans.pool().network();
    summary.mask = ip::Netmask::from_length(pools.lans.pool().length());
    summary.summary_only = true;
    bgp.aggregates.push_back(summary);
  }
  // Dual-border sites need an IBGP session between the borders, or the two
  // halves of the AS cannot exchange externally-learned routes (the
  // analysis/ibgp.h signaling-hole check flags exactly that).
  if (n_border == 2) {
    const auto link =
        b.connect_p2p(routers[0], routers[1], area0_of(1), "FastEthernet");
    auto& bgp0 = b.routing_stanza(routers[0], RoutingProtocol::kBgp,
                                  params.bgp_as);
    add_neighbor(bgp0, link.address_b, params.bgp_as);
    auto& bgp1 = b.routing_stanza(routers[1], RoutingProtocol::kBgp,
                                  params.bgp_as);
    add_neighbor(bgp1, link.address_a, params.bgp_as);
  }

  for (std::uint32_t i = 0; i < n; ++i) {
    add_mgmt_noise(b, routers[i], rng, Ipv4Address(10, 1, 0, 1), pools);
  }

  return {params.name, "textbook-enterprise", b.take()};
}

// ---------------------------------------------------------------------------
// Tier-2 ISP: backbone BGP structure + staging IGP instances
// ---------------------------------------------------------------------------

SynthNetwork make_tier2_isp(const Tier2Params& params) {
  NetworkBuilder b(params.name);
  Rng rng(params.seed);
  Pools pools;

  std::vector<std::uint32_t> core;
  std::vector<Ipv4Address> core_loopback;
  for (std::uint32_t i = 0; i < params.core_routers; ++i) {
    const std::uint32_t r = b.add_router();
    core.push_back(r);
    core_loopback.push_back(b.add_loopback(r, pools.infra));
  }
  for (std::uint32_t i = 0; i < core.size(); ++i) {
    b.connect_p2p(core[i], core[(i + 1) % core.size()], pools.infra, "POS");
  }

  std::vector<std::uint32_t> edge;
  for (std::uint32_t i = 0; i < params.edge_routers; ++i) {
    const std::uint32_t r = b.add_router();
    edge.push_back(r);
    b.add_loopback(r, pools.infra);
    b.connect_p2p(r, core[i % core.size()], pools.infra, "ATM");
  }

  // Infrastructure OSPF everywhere.
  std::vector<std::uint32_t> all_routers = core;
  all_routers.insert(all_routers.end(), edge.begin(), edge.end());
  for (const std::uint32_t r : all_routers) {
    auto& ospf = b.routing_stanza(r, RoutingProtocol::kOspf, 1);
    NetworkBuilder::cover_subnet(ospf, pools.infra.pool());
  }

  // BGP with core reflectors.
  for (std::uint32_t i = 0; i < core.size(); ++i) {
    auto& bgp =
        b.routing_stanza(core[i], RoutingProtocol::kBgp, params.as_number);
    for (std::uint32_t j = 0; j < core.size(); ++j) {
      if (j != i) {
        add_neighbor(bgp, core_loopback[j], params.as_number).update_source =
            "Loopback0";
      }
    }
  }
  for (std::uint32_t i = 0; i < edge.size(); ++i) {
    auto& bgp =
        b.routing_stanza(edge[i], RoutingProtocol::kBgp, params.as_number);
    add_neighbor(bgp, core_loopback[i % core.size()], params.as_number)
        .update_source = "Loopback0";
    auto& core_bgp = b.routing_stanza(core[i % core.size()],
                                      RoutingProtocol::kBgp,
                                      params.as_number);
    for (const auto& itf : b.router(edge[i]).interfaces) {
      if (itf.address && itf.address->mask.length() == 32) {
        add_neighbor(core_bgp, itf.address->address, params.as_number)
            .route_reflector_client = true;
        break;
      }
    }
  }

  // Edge services: per-customer staging IGP processes (single-router
  // instances with external peers — the designers prefer an IGP to a static
  // route because it validates the customer link, §7.1) plus customer EBGP.
  std::uint32_t next_ospf_pid = 100;
  for (const std::uint32_t r : edge) {
    for (std::uint32_t s = 0; s < params.staging_per_edge; ++s) {
      const auto att = b.attach_external(r, pools.ext, "Serial");
      const double which = rng.uniform();
      config::RouterStanza* stanza = nullptr;
      if (which < 0.42) {
        stanza = &b.routing_stanza(r, RoutingProtocol::kOspf, next_ospf_pid++);
      } else if (which < 0.95) {
        stanza = &b.routing_stanza(r, RoutingProtocol::kEigrp,
                                   static_cast<std::uint32_t>(
                                       1000 + rng.below(500)));
      } else {
        stanza = &b.rip_stanza(r);
      }
      NetworkBuilder::cover_subnet(*stanza, att.subnet);
      // Route filter toward the customer.
      config::DistributeList dl;
      dl.acl = make_route_filter(
          b, r, {pools.customer.allocate(static_cast<int>(rng.range(18, 24)))});
      dl.inbound = true;
      stanza->distribute_lists.push_back(dl);
      if (rng.chance(params.filters.edge_filter_rate)) {
        make_packet_filter(b, r, att.interface, rng,
                           params.filters.edge_rules_min,
                           params.filters.edge_rules_max, pools);
      }
    }
    for (std::uint32_t s = 0; s < params.customer_ebgp_per_edge; ++s) {
      const auto att = b.attach_external(r, pools.ext, "Serial");
      auto& bgp =
          b.routing_stanza(r, RoutingProtocol::kBgp, params.as_number);
      const auto cust_as = static_cast<std::uint32_t>(rng.range(1000, 64000));
      auto& nbr = add_neighbor(bgp, att.neighbor_address, cust_as);
      nbr.distribute_list_in = make_route_filter(
          b, r, {pools.customer.allocate(static_cast<int>(rng.range(16, 24)))});
      if (rng.chance(params.filters.edge_filter_rate)) {
        make_packet_filter(b, r, att.interface, rng,
                           params.filters.edge_rules_min,
                           params.filters.edge_rules_max, pools);
      }
    }
  }

  for (const std::uint32_t r : all_routers) {
    add_mgmt_noise(b, r, rng, core_loopback[0], pools);
  }
  return {params.name, "tier2-isp", b.take()};
}

// ---------------------------------------------------------------------------
// Managed enterprise: compartments, per-spoke processes, regional BGP
// ---------------------------------------------------------------------------

namespace {

struct RegionSpec {
  std::uint32_t routers = 0;  // total including border routers
  std::uint32_t borders = 1;  // routers running the region's BGP
  std::uint32_t as_number = 0;
};

struct ManagedLayout {
  std::vector<RegionSpec> regions;
  std::uint32_t core_as = 0;
  std::uint32_t core_routers = 2;
  std::uint32_t external_peers = 2;
  double extra_igp_processes = 1.6;
  double igp_edge_rate = 0.08;
  double ebgp_spoke_rate = 0.0;
  double ospf_share = 0.45;
  double rip_share = 0.01;
  std::uint32_t extra_bgp_only_instances = 0;  // net5's route-server ASs
  FilterProfile filters;
  NoiseProfile noise;
};

SynthNetwork build_managed(const std::string& name, std::uint64_t seed,
                           const ManagedLayout& layout,
                           const std::string& label) {
  NetworkBuilder b(name);
  Rng rng(seed);
  std::uint64_t expected_routers = layout.core_routers;
  for (const RegionSpec& region : layout.regions) {
    expected_routers += region.routers + region.borders;
  }
  Pools pools = Pools::scaled(expected_routers);

  // Core site.
  std::vector<std::uint32_t> core;
  for (std::uint32_t i = 0; i < layout.core_routers; ++i) {
    const std::uint32_t r = b.add_router();
    core.push_back(r);
    b.add_loopback(r, pools.infra);
    b.routing_stanza(r, RoutingProtocol::kBgp, layout.core_as);
  }
  // Core LAN connecting the core routers (one multipoint subnet); the core
  // routers IBGP-mesh over it.
  const Prefix core_lan = pools.lans.allocate(26);
  std::vector<Ipv4Address> core_lan_addr(core.size());
  for (std::uint32_t i = 0; i < core.size(); ++i) {
    auto& cfg = b.router(core[i]);
    config::InterfaceConfig itf;
    itf.name = "FastEthernet9/" + std::to_string(i);
    core_lan_addr[i] =
        Ipv4Address(core_lan.network().value() + 1 + i);
    itf.address = {core_lan_addr[i],
                   ip::Netmask::from_length(core_lan.length())};
    cfg.interfaces.push_back(std::move(itf));
  }
  for (std::uint32_t i = 0; i < core.size(); ++i) {
    auto& bgp = b.routing_stanza(core[i], RoutingProtocol::kBgp,
                                 layout.core_as);
    for (std::uint32_t j = 0; j < core.size(); ++j) {
      if (j != i) add_neighbor(bgp, core_lan_addr[j], layout.core_as);
    }
  }

  std::uint32_t region_index = 0;
  for (const RegionSpec& region : layout.regions) {
    ++region_index;
    // Per-region address plan: a WAN pool and a LAN pool — the structured
    // block layout that lets policies stay address-based (§6.1). The LAN
    // pool is sized to the region (each spoke takes a /24).
    AddressPlanner wan(pools.infra.allocate(18));
    // Each spoke takes up to three /24 LANs; size the region pool for that.
    int lan_len = 16;
    while (lan_len > 10 &&
           (std::uint64_t{1} << (24 - lan_len)) < 3ull * region.routers + 8) {
      --lan_len;
    }
    AddressPlanner lan(pools.lans.allocate(lan_len));
    const std::uint32_t eigrp_pid = 100;

    const std::uint32_t n_border =
        std::min(region.borders, std::max(1u, region.routers));
    std::vector<std::uint32_t> borders;
    std::vector<Ipv4Address> border_loopbacks;
    std::vector<Prefix> region_blocks = {wan.pool(), lan.pool()};

    for (std::uint32_t i = 0; i < n_border; ++i) {
      const std::uint32_t r = b.add_router();
      borders.push_back(r);
      border_loopbacks.push_back(b.add_loopback(r, wan));
      // Create both stanzas before taking references: routing_stanza may
      // grow the stanza vector and invalidate earlier references.
      b.routing_stanza(r, RoutingProtocol::kEigrp, eigrp_pid);
      auto& bgp =
          b.routing_stanza(r, RoutingProtocol::kBgp, region.as_number);
      auto& eigrp = b.routing_stanza(r, RoutingProtocol::kEigrp, eigrp_pid);
      NetworkBuilder::cover_subnet(eigrp, wan.pool());
      NetworkBuilder::cover_subnet(eigrp, lan.pool());
      // Region BGP + EBGP uplinks to the core site (EBGP used inside one
      // network: the paper's intra-domain EBGP, §5.2).
      for (std::uint32_t c = 0; c < core.size(); ++c) {
        const auto link =
            b.connect_p2p(r, core[c], pools.infra, "Serial");
        add_neighbor(bgp, link.address_b, layout.core_as);
        auto& core_bgp = b.routing_stanza(core[c], RoutingProtocol::kBgp,
                                          layout.core_as);
        add_neighbor(core_bgp, link.address_a, region.as_number);
      }
      // Redistribution both ways, address-filtered and tagged.
      const std::string rm_in = make_block_route_map(
          b, r, {pools.lans.pool(), pools.infra.pool(), pools.customer.pool()},
          /*set_tag=*/region.as_number,
          "RM-BGP-IN-" + std::to_string(region_index));
      add_redistribute(eigrp, config::RedistributeSource::kProtocol,
                       RoutingProtocol::kBgp, region.as_number, rm_in);
      const std::string rm_out = make_block_route_map(
          b, r, region_blocks, std::nullopt,
          "RM-BGP-OUT-" + std::to_string(region_index));
      add_redistribute(bgp, config::RedistributeSource::kProtocol,
                       RoutingProtocol::kEigrp, eigrp_pid, rm_out);
      // IBGP chain among the region's borders so they form one BGP
      // instance (the paper's 39-router AS 65010, net5 Figure 9). Each
      // hop reflects, so routes propagate along the whole chain — a plain
      // IBGP chain would leave signaling holes (analysis/ibgp.h flags
      // exactly that).
      if (i > 0) {
        auto& up = add_neighbor(bgp, border_loopbacks[i - 1],
                                region.as_number);
        up.update_source = "Loopback0";
        up.route_reflector_client = true;
        auto& prev_bgp = b.routing_stanza(borders[i - 1],
                                          RoutingProtocol::kBgp,
                                          region.as_number);
        auto& down = add_neighbor(prev_bgp, border_loopbacks[i],
                                  region.as_number);
        down.update_source = "Loopback0";
        down.route_reflector_client = true;
      }
    }
    // Chain border routers together so the region is connected even with
    // multiple borders.
    for (std::uint32_t i = 1; i < n_border; ++i) {
      b.connect_p2p(borders[i - 1], borders[i], wan, "Serial");
    }

    // Spokes.
    const std::uint32_t n_spokes =
        region.routers > n_border ? region.routers - n_border : 0;
    std::uint32_t next_spoke_as = 64800;
    for (std::uint32_t s = 0; s < n_spokes; ++s) {
      const std::uint32_t r = b.add_router();
      const std::uint32_t hub = borders[s % n_border];
      const auto uplink = b.connect_p2p(r, hub, wan, "Serial");
      // Some spokes get a backup circuit to another border.
      if (n_border > 1 && rng.chance(0.4)) {
        b.connect_p2p(r, borders[(s + 1) % n_border], wan, "Serial");
      }

      const bool ebgp_spoke = rng.chance(layout.ebgp_spoke_rate);
      config::RouterStanza* membership = nullptr;
      if (ebgp_spoke) {
        // BGP-to-the-edge: the spoke speaks EBGP to its hub instead of the
        // region IGP (an intra-domain EBGP session, §5.2).
        auto& spoke_bgp =
            b.routing_stanza(r, RoutingProtocol::kBgp, next_spoke_as);
        add_neighbor(spoke_bgp, uplink.address_b, region.as_number);
        auto& hub_bgp =
            b.routing_stanza(hub, RoutingProtocol::kBgp, region.as_number);
        add_neighbor(hub_bgp, uplink.address_a, next_spoke_as);
        membership = &b.routing_stanza(r, RoutingProtocol::kBgp,
                                       next_spoke_as);
        ++next_spoke_as;
      } else {
        membership =
            &b.routing_stanza(r, RoutingProtocol::kEigrp, eigrp_pid);
        NetworkBuilder::cover_subnet(*membership, wan.pool());
      }
      // Primary LANs, in the region pool (carried by the region routing).
      const auto n_lans = static_cast<std::uint32_t>(rng.range(1, 3));
      for (std::uint32_t l = 0; l < n_lans; ++l) {
        const Prefix lan_subnet = lan.allocate(24);
        const std::string lan_name = b.add_lan(
            r, lan_subnet, rng.chance(0.2) ? "Ethernet" : "FastEthernet");
        if (ebgp_spoke) {
          config::NetworkStatement ns;
          ns.address = lan_subnet.network();
          ns.mask = ip::Netmask::from_length(lan_subnet.length());
          membership->networks.push_back(ns);
        } else if (l == 0) {
          NetworkBuilder::cover_subnet(*membership, lan.pool());
        }
        if (rng.chance(layout.filters.internal_filter_rate)) {
          make_packet_filter(b, r, lan_name, rng,
                             layout.filters.internal_rules_min,
                             layout.filters.internal_rules_max, pools);
        }
      }

      // Extra isolated processes — the intra-domain instance population.
      double budget = layout.extra_igp_processes;
      std::uint32_t extra_ospf_pid = 10;
      std::uint32_t extra_eigrp_pid = 200;
      while (budget >= 1.0 || (budget > 0.0 && rng.chance(budget))) {
        budget -= 1.0;
        const Prefix local_lan = pools.local.allocate(24);
        const char* hw = rng.chance(0.12)   ? "TokenRing"
                         : rng.chance(0.40) ? "Ethernet"
                                            : "FastEthernet";
        const std::string itf = b.add_lan(r, local_lan, hw);
        const double which = rng.uniform();
        config::RouterStanza* stanza = nullptr;
        if (which < layout.rip_share) {
          stanza = &b.rip_stanza(r);
        } else if (which < layout.rip_share + layout.ospf_share) {
          stanza =
              &b.routing_stanza(r, RoutingProtocol::kOspf, extra_ospf_pid++);
        } else {
          stanza = &b.routing_stanza(r, RoutingProtocol::kEigrp,
                                     extra_eigrp_pid++);
        }
        NetworkBuilder::cover_subnet(*stanza, local_lan);
        // Spoke-local LANs are filtered at half the primary-LAN rate (they
        // host single closed user groups).
        if (rng.chance(0.5 * layout.filters.internal_filter_rate)) {
          make_packet_filter(b, r, itf, rng,
                             layout.filters.internal_rules_min,
                             layout.filters.internal_rules_max, pools);
        }
      }

      // A few spokes speak an IGP to an external neighbor (IGP as EGP).
      if (rng.chance(layout.igp_edge_rate)) {
        const auto att = b.attach_external(r, pools.ext, "Serial");
        const double which = rng.uniform();
        config::RouterStanza* stanza = nullptr;
        if (which < 0.08) {
          stanza = &b.rip_stanza(r);
        } else if (which < 0.55) {
          stanza =
              &b.routing_stanza(r, RoutingProtocol::kOspf, extra_ospf_pid++);
        } else {
          stanza = &b.routing_stanza(r, RoutingProtocol::kEigrp,
                                     extra_eigrp_pid++);
        }
        NetworkBuilder::cover_subnet(*stanza, att.subnet);
        if (rng.chance(layout.filters.edge_filter_rate)) {
          make_packet_filter(b, r, att.interface, rng,
                             layout.filters.edge_rules_min,
                             layout.filters.edge_rules_max, pools);
        }
      }
      add_mgmt_noise(b, r, rng, Ipv4Address(wan.pool().network().value() + 1),
                     pools, layout.noise);
    }
    for (const std::uint32_t border : borders) {
      add_mgmt_noise(b, border, rng,
                     Ipv4Address(wan.pool().network().value() + 1), pools,
                     layout.noise);
    }
  }

  // External EBGP peers at the core site.
  for (std::uint32_t s = 0; s < layout.external_peers; ++s) {
    const std::uint32_t r = core[s % core.size()];
    const auto att = b.attach_external(r, pools.ext, "Serial");
    auto& bgp = b.routing_stanza(r, RoutingProtocol::kBgp, layout.core_as);
    const auto peer_as = static_cast<std::uint32_t>(rng.range(1000, 30000));
    auto& nbr = add_neighbor(bgp, att.neighbor_address, peer_as);
    nbr.distribute_list_in = make_route_filter(
        b, r, {pools.customer.allocate(static_cast<int>(rng.range(14, 18)))});
    if (rng.chance(layout.filters.edge_filter_rate)) {
      make_packet_filter(b, r, att.interface, rng,
                         layout.filters.edge_rules_min,
                         layout.filters.edge_rules_max, pools);
    }
  }

  // Extra single-router BGP instances (net5's additional internal ASs):
  // routers hanging off the core LAN, each with its own AS and an EBGP
  // session to a core router.
  for (std::uint32_t i = 0; i < layout.extra_bgp_only_instances; ++i) {
    const std::uint32_t r = b.add_router();
    const auto link = b.connect_p2p(r, core[i % core.size()], pools.infra,
                                    "FastEthernet");
    auto& bgp = b.routing_stanza(
        r, RoutingProtocol::kBgp,
        static_cast<std::uint32_t>(64700 + i));
    add_neighbor(bgp, link.address_b, layout.core_as);
    auto& core_bgp =
        b.routing_stanza(core[i % core.size()], RoutingProtocol::kBgp,
                         layout.core_as);
    add_neighbor(core_bgp, link.address_a,
                 static_cast<std::uint32_t>(64700 + i));
    // A local service LAN announced via BGP only — keeping this router a
    // BGP-only compartment (no extra IGP instance).
    const Prefix service_lan = pools.local.allocate(24);
    b.add_lan(r, service_lan, "FastEthernet");
    config::NetworkStatement ns;
    ns.address = service_lan.network();
    ns.mask = ip::Netmask::from_length(service_lan.length());
    bgp.networks.push_back(ns);
  }

  return {name, label, b.take()};
}

}  // namespace

SynthNetwork make_managed_enterprise(const ManagedEnterpriseParams& params) {
  Rng rng(params.seed);
  ManagedLayout layout;
  layout.core_as = 64512;
  layout.core_routers = params.core_routers;
  layout.external_peers = 3;
  layout.extra_igp_processes = params.extra_igp_processes;
  layout.igp_edge_rate = params.igp_edge_rate;
  layout.ebgp_spoke_rate = params.ebgp_spoke_rate;
  layout.ospf_share = params.ospf_share;
  layout.rip_share = params.rip_share;
  layout.filters = params.filters;
  for (std::uint32_t i = 0; i < params.regions; ++i) {
    RegionSpec region;
    region.routers = params.spokes_per_region +
                     static_cast<std::uint32_t>(rng.range(
                         -static_cast<std::int64_t>(params.spokes_per_region) /
                             4,
                         static_cast<std::int64_t>(params.spokes_per_region) /
                             4));
    region.borders = 1 + static_cast<std::uint32_t>(rng.below(2));
    region.as_number = 64600 + i;
    layout.regions.push_back(region);
  }
  return build_managed(params.name, params.seed, layout,
                       "managed-enterprise");
}

SynthNetwork make_mega_tier(const MegaTierParams& params) {
  // Each region yields its spokes plus a hub/border overhead of ~3 routers
  // (measured on the fleet tier: 8 regions x 40 spokes -> 341 routers), so
  // floor-dividing the target by that yield lands within ~1% of the target.
  ManagedEnterpriseParams me;
  me.seed = params.seed;
  me.name = params.name;
  me.spokes_per_region = params.spokes_per_region;
  me.ebgp_spoke_rate = params.ebgp_spoke_rate;
  me.regions = std::max<std::uint32_t>(
      1, params.target_routers / (params.spokes_per_region + 3));
  return make_managed_enterprise(me);
}

// ---------------------------------------------------------------------------
// net5 (paper §5.1 / §6.1)
// ---------------------------------------------------------------------------

SynthNetwork make_net5(std::uint64_t seed) {
  // Calibrated to the paper: 881 routers; 24 routing instances; 10 IGP
  // instances with the largest at 445 routers (instances 6 and 7 at 32 and
  // 64); 14 internal BGP ASs; 16 external peer ASs; the 445-router
  // compartment reaches the core through 6 redundant redistribution routers.
  ManagedLayout layout;
  layout.core_as = 65000;
  layout.core_routers = 3;      // 1 BGP AS for the core
  layout.external_peers = 16;   // 16 external EBGP peer ASs
  layout.extra_igp_processes = 0.0;  // instance count is pinned here
  layout.igp_edge_rate = 0.0;
  layout.filters.internal_filter_rate = 0.30;
  layout.filters.internal_rules_min = 5;
  layout.filters.internal_rules_max = 47;  // the paper's 47-clause filter
  layout.filters.edge_filter_rate = 0.9;
  layout.extra_bgp_only_instances = 3;  // ASs 11..13 of the 14
  layout.noise = {/*statics_min=*/8, /*statics_max=*/20,
                  /*mgmt_acl_min=*/60, /*mgmt_acl_max=*/180};

  // 10 regions = 10 IGP instances; sizes sum to 881 - 3 core - 3 extra
  // = 875. Region ASs contribute 10 of the 14 internal BGP ASs.
  const std::uint32_t sizes[] = {445, 150, 88, 64, 50, 32, 28, 13, 4, 1};
  const std::uint32_t borders[] = {6, 2, 2, 1, 1, 1, 1, 1, 1, 1};
  const std::uint32_t as_numbers[] = {65001, 65010, 65040, 10436, 64610,
                                      64611, 64612, 64613, 64614, 64615};
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    layout.regions.push_back({sizes[i], borders[i], as_numbers[i]});
  }
  return build_managed("net5", seed, layout, "net5");
}

// ---------------------------------------------------------------------------
// net15 (paper §6.2, Figure 12, Table 2)
// ---------------------------------------------------------------------------

Net15Plan net15_plan() {
  Net15Plan plan;
  plan.ab0 = *Prefix::parse("171.64.0.0/16");     // shared external services
  plan.ab1 = *Prefix::parse("10.101.0.0/16");     // left infrastructure
  plan.ab2 = *Prefix::parse("10.102.0.0/16");     // left hosts
  plan.ab3 = *Prefix::parse("10.103.0.0/16");     // right infrastructure
  plan.ab4 = *Prefix::parse("10.104.0.0/16");     // right hosts
  plan.external_left = *Prefix::parse("171.66.0.0/16");
  plan.external_right = *Prefix::parse("171.67.0.0/16");
  return plan;
}

SynthNetwork make_net15(std::uint64_t seed) {
  NetworkBuilder b("net15");
  Rng rng(seed);
  Pools pools;
  const Net15Plan plan = net15_plan();

  // One site: an OSPF instance over `infra_block` with host LANs from
  // `host_block`, and two border routers each with its own private AS and an
  // EBGP session to the public AS.
  struct Site {
    std::vector<std::uint32_t> routers;
    std::uint32_t border1, border2;
  };

  auto build_site = [&](std::uint32_t n_routers, const Prefix& infra_block,
                        const Prefix& host_block, std::uint32_t ospf_pid,
                        std::uint32_t as1, std::uint32_t as2,
                        std::uint32_t public_as,
                        const std::vector<Prefix>& permit_in,
                        const Prefix& permit_out) -> Site {
    Site site;
    AddressPlanner wan(infra_block);
    AddressPlanner lan(host_block);
    // Two border routers + spokes.
    for (std::uint32_t i = 0; i < n_routers; ++i) {
      site.routers.push_back(b.add_router());
    }
    site.border1 = site.routers[0];
    site.border2 = site.routers[1];
    b.connect_p2p(site.border1, site.border2, wan, "Serial");
    for (std::uint32_t i = 2; i < n_routers; ++i) {
      b.connect_p2p(site.routers[i], site.routers[i % 2], wan, "Serial");
      const std::string lan_name =
          b.add_lan(site.routers[i], lan.allocate(24), "FastEthernet");
      if (rng.chance(0.25)) {
        make_packet_filter(b, site.routers[i], lan_name, rng, 3, 15, pools);
      }
    }
    for (const std::uint32_t r : site.routers) {
      auto& ospf = b.routing_stanza(r, RoutingProtocol::kOspf, ospf_pid);
      NetworkBuilder::cover_subnet(ospf, infra_block);
      NetworkBuilder::cover_subnet(ospf, host_block);
    }
    // Border BGP: each border its own AS (two BGP instances per site).
    const std::uint32_t as_of[2] = {as1, as2};
    for (std::uint32_t k = 0; k < 2; ++k) {
      const std::uint32_t r = k == 0 ? site.border1 : site.border2;
      const auto att = b.attach_external(r, pools.ext, "Serial");
      auto& bgp = b.routing_stanza(r, RoutingProtocol::kBgp, as_of[k]);
      auto& nbr = add_neighbor(bgp, att.neighbor_address, public_as);
      // Inbound: only the named blocks; no default (Figure 12's key fact).
      nbr.distribute_list_in = make_route_filter(b, r, permit_in);
      // Outbound: only the site's host block.
      nbr.distribute_list_out = make_route_filter(b, r, {permit_out});
      make_packet_filter(b, r, att.interface, rng, 5, 20, pools);
      // Redistribute BGP-learned routes into OSPF (filtered to the same
      // blocks) and the host block outward into BGP.
      const std::string rm_in = make_block_route_map(
          b, r, permit_in, std::nullopt,
          "RM-IN-" + std::to_string(as_of[k]));
      auto& ospf = b.routing_stanza(r, RoutingProtocol::kOspf, ospf_pid);
      add_redistribute(ospf, config::RedistributeSource::kProtocol,
                       RoutingProtocol::kBgp, as_of[k], rm_in);
      const std::string rm_out = make_block_route_map(
          b, r, {permit_out, infra_block}, std::nullopt,
          "RM-OUT-" + std::to_string(as_of[k]));
      add_redistribute(bgp, config::RedistributeSource::kProtocol,
                       RoutingProtocol::kOspf, ospf_pid, rm_out);
    }
    return site;
  };

  // Table 2: A1 = {AB0, AB1}(in, left), A2 = {AB2}(out, left),
  //          A3 = {AB0, AB3}(in, right), A4 = {AB4}(out, right),
  //          A5 = {AB0}(second inbound guard, right).
  const Site left =
      build_site(39, plan.ab1, plan.ab2, /*ospf_pid=*/1, 64620, 64621,
                 plan.public_as_left, {plan.ab0, plan.ab1}, plan.ab2);
  const Site right =
      build_site(40, plan.ab3, plan.ab4, /*ospf_pid=*/2, 64630, 64631,
                 plan.public_as_right, {plan.ab0, plan.ab3}, plan.ab4);
  // The A5 guard: the right site's second border applies a stricter inbound
  // list ({AB0} only) on its session.
  {
    auto& bgp = b.routing_stanza(right.border2, RoutingProtocol::kBgp, 64631);
    auto& nbr = bgp.neighbors.front();
    nbr.distribute_list_in = make_route_filter(b, right.border2, {plan.ab0});
  }
  (void)left;

  return {"net15", "net15", b.take()};
}

// ---------------------------------------------------------------------------
// No-BGP enterprise
// ---------------------------------------------------------------------------

SynthNetwork make_no_bgp_enterprise(const NoBgpParams& params) {
  NetworkBuilder b(params.name);
  Rng rng(params.seed);
  Pools pools;

  const std::uint32_t n = std::max<std::uint32_t>(params.routers, 2);
  AddressPlanner wan(pools.infra.allocate(16));
  std::vector<std::uint32_t> routers;
  for (std::uint32_t i = 0; i < n; ++i) routers.push_back(b.add_router());

  for (std::uint32_t i = 1; i < n; ++i) {
    b.connect_p2p(routers[i], routers[0], wan, "Serial");
    const std::string lan_name =
        b.add_lan(routers[i], pools.lans.allocate(24),
                  rng.chance(0.2) ? "TokenRing" : "Ethernet");
    if (rng.chance(params.filters.internal_filter_rate)) {
      make_packet_filter(b, routers[i], lan_name, rng,
                         params.filters.internal_rules_min,
                         params.filters.internal_rules_max, pools);
    }
  }
  for (const std::uint32_t r : routers) {
    auto& ospf = b.routing_stanza(r, RoutingProtocol::kOspf, 1);
    NetworkBuilder::cover_subnet(ospf, wan.pool());
    NetworkBuilder::cover_subnet(ospf, pools.lans.pool());
  }

  // Hub uplink to the provider, without BGP.
  const auto att = b.attach_external(routers[0], pools.ext, "Serial");
  auto& hub_cfg = b.router(routers[0]);
  switch (params.edge) {
    case NoBgpParams::Edge::kStatic: {
      config::StaticRoute def;
      def.destination = Ipv4Address(0u);
      def.mask = ip::Netmask::from_length(0);
      def.next_hop = att.neighbor_address;
      hub_cfg.static_routes.push_back(def);
      auto& ospf = b.routing_stanza(routers[0], RoutingProtocol::kOspf, 1);
      add_redistribute(ospf, config::RedistributeSource::kStatic,
                       RoutingProtocol::kOspf, 0, std::nullopt);
      break;
    }
    case NoBgpParams::Edge::kRip: {
      auto& rip = b.rip_stanza(routers[0]);
      NetworkBuilder::cover_subnet(rip, att.subnet);
      auto& ospf = b.routing_stanza(routers[0], RoutingProtocol::kOspf, 1);
      add_redistribute(ospf, config::RedistributeSource::kProtocol,
                       RoutingProtocol::kRip, 0, std::nullopt);
      break;
    }
    case NoBgpParams::Edge::kEigrp: {
      auto& eigrp = b.routing_stanza(routers[0], RoutingProtocol::kEigrp, 77);
      NetworkBuilder::cover_subnet(eigrp, att.subnet);
      auto& ospf = b.routing_stanza(routers[0], RoutingProtocol::kOspf, 1);
      add_redistribute(ospf, config::RedistributeSource::kProtocol,
                       RoutingProtocol::kEigrp, 77, std::nullopt);
      break;
    }
  }
  if (rng.chance(params.filters.edge_filter_rate)) {
    make_packet_filter(b, routers[0], att.interface, rng,
                       params.filters.edge_rules_min,
                       params.filters.edge_rules_max, pools);
  }
  for (const std::uint32_t r : routers) {
    NoiseProfile noise;
    if (params.filters.internal_filter_rate == 0.0 &&
        params.filters.edge_filter_rate == 0.0) {
      noise.mgmt_acl_min = 0;
      noise.mgmt_acl_max = 0;  // a truly filter-definition-free network
    }
    add_mgmt_noise(b, r, rng, att.neighbor_address, pools, noise);
  }
  return {params.name, "no-bgp", b.take()};
}

// ---------------------------------------------------------------------------
// Merged hybrid (OSPF company + EIGRP company glued by internal EBGP)
// ---------------------------------------------------------------------------

SynthNetwork make_merged_hybrid(const MergedHybridParams& params) {
  NetworkBuilder b(params.name);
  Rng rng(params.seed);
  Pools pools;

  AddressPlanner wan_left(pools.infra.allocate(16));
  AddressPlanner wan_right(pools.infra.allocate(16));

  auto build_side = [&](std::uint32_t n, AddressPlanner& wan,
                        RoutingProtocol protocol,
                        std::uint32_t pid) -> std::vector<std::uint32_t> {
    std::vector<std::uint32_t> routers;
    for (std::uint32_t i = 0; i < n; ++i) routers.push_back(b.add_router());
    for (std::uint32_t i = 1; i < n; ++i) {
      b.connect_p2p(routers[i], routers[(i - 1) / 2], wan, "Serial");
      const std::string lan_name =
          b.add_lan(routers[i], pools.lans.allocate(24), "Ethernet");
      if (rng.chance(params.filters.internal_filter_rate)) {
        make_packet_filter(b, routers[i], lan_name, rng, 3, 12, pools);
      }
    }
    for (const std::uint32_t r : routers) {
      auto& stanza = b.routing_stanza(r, protocol, pid);
      NetworkBuilder::cover_subnet(stanza, wan.pool());
      NetworkBuilder::cover_subnet(stanza, pools.lans.pool());
    }
    return routers;
  };

  const auto left = build_side(std::max(params.ospf_side_routers, 2u),
                               wan_left, RoutingProtocol::kOspf, 1);
  const auto right = build_side(std::max(params.eigrp_side_routers, 2u),
                                wan_right, RoutingProtocol::kEigrp, 55);

  // The merger link: internal EBGP between the two former companies.
  const auto bridge =
      b.connect_p2p(left[0], right[0], pools.infra, "Serial");
  auto& bgp_left =
      b.routing_stanza(left[0], RoutingProtocol::kBgp, params.as_left);
  add_neighbor(bgp_left, bridge.address_b, params.as_right);
  auto& bgp_right =
      b.routing_stanza(right[0], RoutingProtocol::kBgp, params.as_right);
  add_neighbor(bgp_right, bridge.address_a, params.as_left);

  // Each side redistributes its IGP into its BGP and the other's routes
  // back into its IGP.
  add_redistribute(bgp_left, config::RedistributeSource::kProtocol,
                   RoutingProtocol::kOspf, 1,
                   make_block_route_map(b, left[0],
                                        {wan_left.pool(), pools.lans.pool()},
                                        std::nullopt, "RM-L-OUT"));
  add_redistribute(b.routing_stanza(left[0], RoutingProtocol::kOspf, 1),
                   config::RedistributeSource::kProtocol,
                   RoutingProtocol::kBgp, params.as_left,
                   make_block_route_map(b, left[0],
                                        {wan_right.pool(), pools.lans.pool()},
                                        std::nullopt, "RM-L-IN"));
  add_redistribute(bgp_right, config::RedistributeSource::kProtocol,
                   RoutingProtocol::kEigrp, 55,
                   make_block_route_map(b, right[0],
                                        {wan_right.pool(), pools.lans.pool()},
                                        std::nullopt, "RM-R-OUT"));
  add_redistribute(b.routing_stanza(right[0], RoutingProtocol::kEigrp, 55),
                   config::RedistributeSource::kProtocol,
                   RoutingProtocol::kBgp, params.as_right,
                   make_block_route_map(b, right[0],
                                        {wan_left.pool(), pools.lans.pool()},
                                        std::nullopt, "RM-R-IN"));

  // Internet access via the left side only.
  const auto att = b.attach_external(left[0], pools.ext, "Serial");
  const auto provider_as = static_cast<std::uint32_t>(rng.range(2000, 20000));
  auto& nbr = add_neighbor(bgp_left, att.neighbor_address, provider_as);
  nbr.distribute_list_in = make_route_filter(
      b, left[0], {pools.customer.allocate(14)});
  if (rng.chance(params.filters.edge_filter_rate)) {
    make_packet_filter(b, left[0], att.interface, rng, 5, 20, pools);
  }

  NoiseProfile noise;
  if (params.filters.internal_filter_rate == 0.0 &&
      params.filters.edge_filter_rate == 0.0) {
    noise.mgmt_acl_min = 0;
    noise.mgmt_acl_max = 0;  // a truly filter-definition-free network
  }
  for (const auto& side : {left, right}) {
    for (const std::uint32_t r : side) {
      add_mgmt_noise(b, r, rng, bridge.address_a, pools, noise);
    }
  }
  return {params.name, "merged-hybrid", b.take()};
}

}  // namespace rd::synth
