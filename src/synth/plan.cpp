#include "synth/plan.h"

namespace rd::synth {

ip::Prefix AddressPlanner::allocate(int length) {
  if (length < pool_.length() || length > 32) {
    throw std::length_error("AddressPlanner: bad subnet length");
  }
  const std::uint64_t size = std::uint64_t{1} << (32 - length);
  // Align the cursor to the subnet size.
  std::uint64_t start = next_;
  if (start % size != 0) start += size - (start % size);
  const std::uint64_t pool_end =
      std::uint64_t{pool_.network().value()} + pool_.size();
  if (start + size > pool_end) {
    throw std::length_error("AddressPlanner: pool exhausted");
  }
  next_ = start + size;
  return ip::Prefix(ip::Ipv4Address(static_cast<std::uint32_t>(start)),
                    length);
}

}  // namespace rd::synth
