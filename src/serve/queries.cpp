#include "serve/queries.h"

#include <algorithm>
#include <map>
#include <string>

#include "analysis/archetype.h"
#include "analysis/census.h"
#include "analysis/filters.h"
#include "analysis/header_space.h"
#include "analysis/ibgp.h"
#include "analysis/packet_reachability.h"
#include "analysis/router_rib.h"
#include "analysis/vulnerability.h"
#include "analysis/whatif.h"
#include "config/ast.h"
#include "graph/address_space.h"
#include "ip/ipv4.h"
#include "sim/sweep.h"
#include "util/strings.h"
#include "util/table.h"

namespace rd::serve {

namespace {

using util::appendf;

/// The survivability section body (no leading blank line): articulation
/// routers plus the single-failure sweep. Shared verbatim by audit_report
/// (which precedes it with "\n") and whatif_report (which emits it alone).
void append_survivability(std::string& out, const model::Network& network,
                          const graph::InstanceGraph& ig,
                          util::ThreadPool& pool) {
  appendf(out, "=== Survivability (what-if) ===\n");
  const auto cuts = analysis::instance_articulation_routers(network, ig.set);
  appendf(out,
          "routers whose single failure splits their routing instance: "
          "%zu\n",
          cuts.size());
  for (std::size_t i = 0; i < cuts.size() && i < 5; ++i) {
    appendf(out, "  %s (instance %u)\n",
            network.routers()[cuts[i].router].hostname.c_str(),
            cuts[i].instance + 1);
  }
  const auto scenarios = analysis::single_failure_scenarios(network, ig);
  if (!scenarios.empty()) {
    const auto impacts = analysis::sweep_failure_scenarios(
        network, ig.set, scenarios, {}, pool);
    // No thread count in the line: output is byte-identical at every
    // concurrency level, and the daemon/CLI differential diffs it.
    appendf(out, "single-failure sweep: %zu scenarios\n", impacts.size());
    for (std::size_t i = 0; i < impacts.size() && i < 5; ++i) {
      const auto& impact = impacts[i];
      appendf(out,
              "  %s: instances %zu -> %zu, fragmented: %zu, "
              "reaching internet: %zu, announced: %zu%s\n",
              impact.scenario.name.c_str(),
              impact.structural.instances_before,
              impact.structural.instances_after,
              impact.structural.fragmented_instances.size(),
              impact.instances_reaching_internet, impact.announced_externally,
              impact.reachability_converged ? "" : " (NOT CONVERGED)");
    }
  }
}

}  // namespace

void append_finding_line(std::string& out, const analysis::Finding& finding,
                         const char* prefix) {
  const std::string with_b = finding.router_b_name.empty()
                                 ? std::string()
                                 : " (with " + finding.router_b_name + ")";
  appendf(out, "  %s[%s][%s] %s:%zu %s%s%s%s: %s\n", prefix,
          finding.rule_id.c_str(),
          std::string(analysis::severity_name(finding.severity)).c_str(),
          finding.where.file.c_str(), finding.where.line,
          finding.router_name.c_str(), finding.subject.empty() ? "" : ": ",
          finding.subject.c_str(), with_b.c_str(), finding.detail.c_str());
}

QueryResult audit_report(const model::Network& network,
                         const graph::InstanceGraph& ig,
                         util::ThreadPool& pool) {
  QueryResult qr;
  std::string& out = qr.output;

  // --- Inventory -----------------------------------------------------------
  appendf(out, "=== Inventory ===\n");
  appendf(out, "routers: %zu, interfaces: %zu (%zu unnumbered), links: %zu\n",
          network.router_count(), network.interfaces().size(),
          analysis::unnumbered_interface_count(network),
          network.links().size());
  util::Table census_table({"interface type", "count"});
  for (const auto& [type, count] : analysis::interface_census(network)) {
    census_table.add_row({type, util::fmt_int(static_cast<long long>(count))});
  }
  appendf(out, "%s\n", census_table.to_string().c_str());

  // --- Parse diagnostics ---------------------------------------------------
  // Lines the lenient parser skipped: the model above is built without
  // them, so a nonzero count means the audit is looking at a partial view.
  const auto total_diags = network.total_parse_diagnostics();
  appendf(out, "=== Parse diagnostics ===\n");
  appendf(out, "config lines skipped by the parser: %zu\n", total_diags);
  if (total_diags > 0) {
    std::size_t shown_diags = 0;
    for (model::RouterId r = 0; r < network.router_count() && shown_diags < 6;
         ++r) {
      for (const auto& diag : network.parse_diagnostics(r)) {
        if (shown_diags++ >= 6) break;
        appendf(out, "  %s line %zu: %s\n",
                network.routers()[r].hostname.c_str(), diag.line,
                diag.message.c_str());
      }
    }
    if (total_diags > shown_diags) {
      appendf(out, "  ... and %zu more\n", total_diags - shown_diags);
    }
  }
  appendf(out, "\n");

  // --- Design --------------------------------------------------------------
  appendf(out, "=== Routing design ===\n");
  const auto cls = analysis::classify_design(network, ig.set);
  appendf(out, "classification: %s\n",
          std::string(analysis::to_string(cls.archetype)).c_str());
  appendf(out, "instances: %zu (BGP: %zu, staging: %zu), internal ASs: %zu\n",
          ig.set.instances.size(), cls.features.bgp_instance_count,
          cls.features.staging_igp_instances, cls.features.internal_as_count);

  const auto structure = graph::extract_address_structure(network);
  appendf(out, "address-block plan (%zu root blocks):\n",
          structure.roots.size());
  for (const auto& block : structure.root_blocks()) {
    appendf(out, "  %s\n", block.to_string().c_str());
  }

  // --- Vulnerability assessment --------------------------------------------
  appendf(out, "\n=== Vulnerability assessment ===\n");
  const auto redundancy = analysis::redistribution_redundancy(network, ig);
  std::size_t spofs = 0;
  for (const auto& entry : redundancy) {
    if (entry.single_point_of_failure()) {
      ++spofs;
      appendf(out,
              "  SINGLE POINT OF FAILURE: route exchange between "
              "instance %u and instance %u relies on router %s alone\n",
              entry.instance_a + 1, entry.instance_b + 1,
              network.routers()[entry.connecting_routers[0]].hostname.c_str());
    }
  }
  appendf(out,
          "instance pairs exchanging routes: %zu, single points of "
          "failure: %zu\n",
          redundancy.size(), spofs);

  const auto backdoors = analysis::detect_backdoor_candidates(network, ig);
  if (backdoors.groups > 1) {
    appendf(out,
            "POTENTIAL BACKDOOR ROUTES: %zu internally-disconnected "
            "groups each reach the external world; traffic between "
            "them can only flow through the neighboring domains "
            "(paper 8.2)\n",
            backdoors.groups);
  }

  const auto unfiltered =
      analysis::find_unfiltered_external_connections(network);
  appendf(out, "unfiltered external connections: %zu\n", unfiltered.size());
  for (std::size_t i = 0; i < unfiltered.size() && i < 8; ++i) {
    const auto& finding = unfiltered[i];
    appendf(out, "  router %s, %s %s: %s%s\n",
            network.routers()[finding.router].hostname.c_str(),
            finding.kind ==
                    analysis::UnfilteredExternalConnection::Kind::kBgpSession
                ? "BGP neighbor"
                : "IGP edge interface",
            finding.detail.c_str(),
            finding.missing_route_filter ? "no route filter " : "",
            finding.missing_packet_filter ? "no packet filter" : "");
  }
  if (unfiltered.size() > 8) {
    appendf(out, "  ... and %zu more\n", unfiltered.size() - 8);
  }

  // --- Engineering / maintenance -------------------------------------------
  appendf(out, "\n=== Maintenance groupings ===\n");
  const auto shared = analysis::shared_static_destinations(network);
  appendf(out, "destinations with static routes on multiple routers: %zu\n",
          shared.size());
  for (std::size_t i = 0; i < shared.size() && i < 5; ++i) {
    appendf(out, "  %s on %zu routers (do not disable all at once)\n",
            shared[i].destination.to_string().c_str(),
            shared[i].routers.size());
  }

  const auto suspects = graph::detect_missing_routers(network, structure);
  appendf(out, "\n=== Data-set completeness ===\n");
  appendf(out, "interfaces that look like links to missing routers: %zu\n",
          suspects.size());
  for (std::size_t i = 0; i < suspects.size() && i < 5; ++i) {
    const auto& itf = network.interfaces()[suspects[i].interface];
    appendf(out, "  %s %s (%s): inside a %.0f%%-internal block\n",
            network.routers()[itf.router].hostname.c_str(), itf.name.c_str(),
            itf.address ? itf.address->to_string().c_str() : "?",
            suspects[i].internal_fraction * 100.0);
  }

  const auto filters = analysis::gather_filter_stats(network);
  appendf(out, "\n=== Packet filtering ===\n");
  appendf(out,
          "applied filter rules: %zu (%.0f%% on internal links), "
          "largest filter: %zu clauses\n",
          filters.total_applied_rules, filters.internal_fraction() * 100.0,
          filters.largest_filter_rules);

  // --- IBGP signaling (paper §3.1/§6.1 mesh-scalability concern) ------------
  appendf(out, "\n=== IBGP signaling ===\n");
  for (const auto& as_entry : analysis::analyze_ibgp(network, ig.set)) {
    if (as_entry.routers.size() < 2) continue;
    appendf(out, "AS %u: %zu routers, %zu sessions (%.0f%% of a full mesh)%s",
            as_entry.as_number, as_entry.routers.size(), as_entry.sessions,
            as_entry.mesh_completeness * 100.0,
            as_entry.uses_route_reflection() ? ", route reflection" : "");
    if (as_entry.disconnected_pairs > 0) {
      appendf(out, " — %zu SIGNALING HOLES", as_entry.disconnected_pairs);
    }
    if (!as_entry.isolated_routers.empty()) {
      appendf(out, " — %zu routers with no IBGP session",
              as_entry.isolated_routers.size());
    }
    appendf(out, "\n");
  }

  // --- Survivability (what-if, paper §8.1) ----------------------------------
  appendf(out, "\n");
  append_survivability(out, network, ig, pool);

  // --- Route load (paper §2.3 / §6.2) ---------------------------------------
  appendf(out, "\n=== Route load ===\n");
  const auto reach = analysis::ReachabilityAnalysis::run(network, ig.set);
  if (const auto warning = reach.convergence_warning(); !warning.empty()) {
    appendf(out, "%s\n", warning.c_str());
  }
  const auto ribs = analysis::RouterRibAnalysis::run(network, ig.set, reach);
  const auto sizes = ribs.rib_sizes();
  std::size_t max_rib = 0;
  std::size_t total = 0;
  for (const auto s : sizes) {
    max_rib = std::max(max_rib, s);
    total += s;
  }
  appendf(out,
          "router RIBs: mean %.0f routes, max %zu; routers holding "
          "externally-learned routes: %zu of %zu\n",
          sizes.empty()
              ? 0.0
              : static_cast<double>(total) / static_cast<double>(sizes.size()),
          max_rib, ribs.routers_with_external_routes().size(),
          network.router_count());

  // --- Intent assertions (§6.2 reachability questions, machine-checked
  // against the exact symbolic header space) ---------------------------------
  if (const auto intents = analysis::collect_intents(network);
      !intents.empty()) {
    appendf(out, "\n=== Intent assertions ===\n");
    const auto outcomes =
        analysis::verify_intents(network, ig.set, reach, intents);
    std::size_t held = 0;
    for (const auto& outcome : outcomes) {
      if (outcome.holds) ++held;
    }
    appendf(out, "declared rd-intent assertions: %zu, holding: %zu\n",
            outcomes.size(), held);
    for (const auto& outcome : outcomes) {
      if (outcome.holds) continue;
      appendf(out, "  VIOLATED: %s", outcome.intent.describe().c_str());
      if (outcome.witness) {
        appendf(out, " — witness packet %s",
                outcome.witness->describe().c_str());
      }
      appendf(out, "\n");
    }
  }

  // --- Design rules (paper §8: lint, consistency, vulnerability, and the
  // cross-router rules, unified under one registry with provenance) ----------
  appendf(out, "\n=== Design rules ===\n");
  const auto engine = analysis::RuleEngine::with_default_rules();
  const auto rules = engine.run(network, ig, pool);
  appendf(out,
          "findings: %zu (%zu errors, %zu warnings, %zu info), "
          "suppressed: %zu\n",
          rules.findings.size(), rules.errors, rules.warnings, rules.infos,
          rules.suppressed);
  std::map<std::string, std::size_t> by_rule;
  for (const auto& finding : rules.findings) ++by_rule[finding.rule_id];
  for (const auto& [rule, count] : by_rule) {
    const auto* info = engine.find(rule);
    appendf(out, "  %-6s %-36s %-8s %zu\n", rule.c_str(),
            info != nullptr ? info->name.c_str() : "?",
            info != nullptr
                ? std::string(analysis::severity_name(info->severity)).c_str()
                : "?",
            count);
  }
  std::size_t shown = 0;
  for (const auto& finding : rules.findings) {
    if (finding.severity == analysis::Severity::kInfo || shown >= 8) continue;
    ++shown;
    appendf(out, "  [%s] %s:%zu %s: %s: %s\n", finding.rule_id.c_str(),
            finding.where.file.c_str(), finding.where.line,
            finding.router_name.c_str(), finding.subject.c_str(),
            finding.detail.c_str());
  }
  if (rules.has_errors()) {
    appendf(out,
            "\n%zu error-severity finding(s) — exiting nonzero "
            "(see --help for the exit-code contract)\n",
            rules.errors);
    qr.exit_code = 1;
  }
  return qr;
}

QueryResult whatif_report(const model::Network& network,
                          const graph::InstanceGraph& ig,
                          util::ThreadPool& pool) {
  QueryResult qr;
  append_survivability(qr.output, network, ig, pool);
  return qr;
}

std::optional<LintFormat> lint_format_from(std::string_view name) {
  if (name == "text" || name.empty()) return LintFormat::kText;
  if (name == "json") return LintFormat::kJson;
  if (name == "sarif") return LintFormat::kSarif;
  return std::nullopt;
}

std::string render_lint_report(const analysis::RuleEngine& engine,
                               const analysis::RuleEngine::Result& result,
                               const std::string& name, LintFormat format) {
  std::string out;
  if (format == LintFormat::kSarif) {
    appendf(out, "%s\n", analysis::findings_to_sarif(engine, result).c_str());
  } else if (format == LintFormat::kJson) {
    appendf(out, "%s\n",
            analysis::findings_to_json(engine, result, name).c_str());
  } else {
    appendf(out,
            "rdlint: %s: %zu finding(s) (%zu errors, %zu warnings, "
            "%zu info), %zu suppressed\n",
            name.c_str(), result.findings.size(), result.errors,
            result.warnings, result.infos, result.suppressed);
    for (const auto& finding : result.findings) {
      append_finding_line(out, finding, "");
    }
  }
  return out;
}

QueryResult lint_report(const model::Network& network,
                        const analysis::RuleEngine& engine,
                        const std::string& name, LintFormat format,
                        util::ThreadPool& pool,
                        const graph::InstanceGraph* graph) {
  QueryResult qr;
  const auto result = graph != nullptr ? engine.run(network, *graph, pool)
                                       : engine.run(network, pool);
  qr.output = render_lint_report(engine, result, name, format);
  qr.exit_code = result.has_errors() ? 1 : 0;
  return qr;
}

std::int64_t instance_attached_to(const model::Network& network,
                                  const graph::InstanceSet& instances,
                                  ip::Ipv4Address addr) {
  for (std::uint32_t i = 0; i < instances.instances.size(); ++i) {
    for (const auto p : instances.instances[i].processes) {
      for (const auto itf : network.processes()[p].covered_interfaces) {
        const auto& subnet = network.interfaces()[itf].subnet;
        if (subnet && subnet->contains(addr)) return i;
      }
    }
  }
  return -1;
}

QueryResult reachability_report(const model::Network& network,
                                const graph::InstanceSet& instances,
                                const ReachabilityRequest& request) {
  QueryResult qr;
  std::string& out = qr.output;

  const bool pair = !request.source.empty() && !request.destination.empty();
  if (!pair && (!request.source.empty() || !request.destination.empty())) {
    qr.error = "reachability wants both a source and a destination\n";
    qr.exit_code = 2;
    return qr;
  }

  analysis::ReachabilityAnalysis::Options options;
  if (request.naive) {
    options.engine = analysis::ReachabilityAnalysis::Engine::kNaive;
  }
  options.external_prefixes = request.external_prefixes;
  const auto reach =
      analysis::ReachabilityAnalysis::run(network, instances, options);
  if (const auto warning = reach.convergence_warning(); !warning.empty()) {
    qr.error += warning;
    qr.error += "\n";
  }

  // --- Symbolic header-space mode -------------------------------------------
  if (request.symbolic) {
    analysis::HeaderSpace space(network, instances, reach);
    if (pair) {
      const auto a = ip::Ipv4Address::parse(request.source);
      const auto b = ip::Ipv4Address::parse(request.destination);
      if (!a || !b) {
        qr.error += "bad addresses\n";
        qr.exit_code = 2;
        return qr;
      }
      const auto ingress = space.attachment_interface(*a);
      const auto egress = space.attachment_interface(*b);
      if (!ingress || !egress) {
        appendf(out,
                "%s attached: %s, %s attached: %s — unattached "
                "endpoints pass no packets\n",
                request.source.c_str(), ingress ? "yes" : "NO",
                request.destination.c_str(), egress ? "yes" : "NO");
        return qr;
      }
      const auto itf_name = [&](model::InterfaceId id) {
        const auto& itf = network.interfaces()[id];
        return network.routers()[itf.router].hostname + " " + itf.name;
      };
      appendf(out, "%s enters at %s; %s sits behind %s\n",
              request.source.c_str(), itf_name(*ingress).c_str(),
              request.destination.c_str(), itf_name(*egress).c_str());
      const auto& predicate = space.pair_predicate(*ingress, *egress);
      appendf(out,
              "exact packet set passing that ingress/egress pair "
              "(%zu atoms):\n",
              predicate.atom_count());
      appendf(out, "%s", predicate.to_string(space.protocol_domain()).c_str());
      analysis::FlowQuery query;
      query.source = *a;
      query.destination = *b;
      const analysis::PacketReachability concrete(network, instances, reach);
      appendf(out,
              "plain ip packet %s -> %s: %s (symbolic) / %s (concrete "
              "probe)\n",
              request.source.c_str(), request.destination.c_str(),
              space.passes(query) ? "passes" : "blocked",
              std::string(to_string(concrete.evaluate(query))).c_str());
      return qr;
    }
    // No explicit pair: check every "! rd-intent" assertion in the configs.
    const auto intents = analysis::collect_intents(network);
    if (intents.empty()) {
      appendf(out,
              "no \"! rd-intent\" assertions declared in these "
              "configs; nothing to verify\n");
      return qr;
    }
    const auto outcomes = space.verify(intents);
    std::size_t held = 0;
    for (const auto& outcome : outcomes) {
      if (outcome.holds) ++held;
    }
    appendf(out, "intent assertions: %zu, holding: %zu\n", outcomes.size(),
            held);
    for (const auto& outcome : outcomes) {
      if (outcome.holds) {
        appendf(out, "  ok: %s\n", outcome.intent.describe().c_str());
        continue;
      }
      appendf(out, "  VIOLATED: %s", outcome.intent.describe().c_str());
      if (outcome.witness) {
        appendf(out, " — witness packet %s",
                outcome.witness->describe().c_str());
      }
      appendf(out, "\n");
    }
    return qr;
  }

  // Optional query: two addresses.
  if (pair) {
    const auto a = ip::Ipv4Address::parse(request.source);
    const auto b = ip::Ipv4Address::parse(request.destination);
    if (!a || !b) {
      qr.error += "bad addresses\n";
      qr.exit_code = 2;
      return qr;
    }
    const auto ia = instance_attached_to(network, instances, *a);
    const auto ib = instance_attached_to(network, instances, *b);
    if (ia < 0 || ib < 0) {
      appendf(out, "address not attached to any routing instance\n");
      return qr;
    }
    appendf(out, "%s is attached to instance %lld; %s to instance %lld\n",
            request.source.c_str(), static_cast<long long>(ia + 1),
            request.destination.c_str(), static_cast<long long>(ib + 1));
    appendf(out, "%s -> %s: %s\n", request.source.c_str(),
            request.destination.c_str(),
            reach.instance_has_route_to(static_cast<std::uint32_t>(ia), *b)
                ? "route present"
                : "NO ROUTE");
    appendf(out, "%s -> %s: %s\n", request.destination.c_str(),
            request.source.c_str(),
            reach.instance_has_route_to(static_cast<std::uint32_t>(ib), *a)
                ? "route present"
                : "NO ROUTE");
    appendf(out, "two-way communication possible: %s\n",
            reach.two_way_reachable(static_cast<std::uint32_t>(ia), *a,
                                    static_cast<std::uint32_t>(ib), *b)
                ? "yes"
                : "no");
    return qr;
  }

  // Default report: per-instance route table sizes and Internet access.
  appendf(out,
          "per-instance reachability after policy-aware propagation "
          "(%zu fixpoint iterations):\n\n",
          reach.iterations_used());
  for (std::uint32_t i = 0; i < instances.instances.size(); ++i) {
    const auto& inst = instances.instances[i];
    appendf(out, "instance %u: %s", i + 1,
            std::string(config::to_keyword(inst.protocol)).c_str());
    if (inst.bgp_as) appendf(out, " AS %u", *inst.bgp_as);
    appendf(out, ", %zu routers\n", inst.router_count());
    appendf(out,
            "  routes: %zu (external-origin: %zu), reaches Internet at "
            "large: %s\n",
            reach.instance_routes(i).size(), reach.external_route_count(i),
            reach.instance_reaches_internet(i) ? "yes" : "no");
  }

  appendf(out, "\nprefixes announced to the external world: %zu\n",
          reach.announced_externally().size());
  std::size_t shown = 0;
  for (const auto& route : reach.announced_externally()) {
    if (++shown > 10) {
      appendf(out, "  ...\n");
      break;
    }
    appendf(out, "  %s\n", route.prefix.to_string().c_str());
  }
  return qr;
}

QueryResult simulate_report(const model::Network& network,
                            const graph::InstanceGraph& ig,
                            std::uint64_t seed, std::uint64_t until_ms,
                            util::ThreadPool& pool) {
  QueryResult qr;
  sim::SweepOptions options;
  options.seed = seed;
  options.until_ms = until_ms;
  qr.output = sim::simulate_report(network, ig, options, pool);
  qr.exit_code = qr.output.find("MISMATCH") == std::string::npos ? 0 : 1;
  return qr;
}

}  // namespace rd::serve
