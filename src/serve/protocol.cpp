#include "serve/protocol.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/json.h"

namespace rd::serve {

namespace {

/// write(2)/send(2) the whole buffer, retrying on EINTR and short writes.
/// Sockets get MSG_NOSIGNAL so a dead peer surfaces as EPIPE, not SIGPIPE;
/// non-socket fds (the tests drive pipes through this too) fall back to
/// plain write, where guarded_main's SIG_IGN covers the signal.
bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// read(2) exactly `size` bytes. Returns the byte count actually read (EOF
/// mid-buffer yields a short count), or -1 on error.
ssize_t read_all(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, p + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;
    got += static_cast<std::size_t>(n);
  }
  return static_cast<ssize_t>(got);
}

}  // namespace

std::string encode_request(const Request& request) {
  auto doc = util::Json::object();
  doc.set("op", request.op);
  if (!request.fleet.empty()) doc.set("fleet", request.fleet);
  if (!request.format.empty()) doc.set("format", request.format);
  if (!request.source.empty()) doc.set("source", request.source);
  if (!request.destination.empty()) {
    doc.set("destination", request.destination);
  }
  if (request.naive) doc.set("naive", true);
  if (request.seed != 42) doc.set("seed", request.seed);
  if (request.until_ms != 0) doc.set("until_ms", request.until_ms);
  return doc.dump();
}

std::optional<Request> decode_request(std::string_view payload) {
  const auto doc = util::Json::parse(payload);
  if (!doc || !doc->is_object()) return std::nullopt;
  const auto* op = doc->get("op");
  if (op == nullptr || !op->is_string()) return std::nullopt;
  Request request;
  request.op = *op->if_string();
  const auto str = [&](const char* key, std::string& out) {
    if (const auto* v = doc->get(key); v != nullptr && v->is_string()) {
      out = *v->if_string();
    }
  };
  str("fleet", request.fleet);
  str("format", request.format);
  str("source", request.source);
  str("destination", request.destination);
  if (const auto* naive = doc->get("naive"); naive != nullptr) {
    request.naive = naive->bool_or(false);
  }
  if (const auto* seed = doc->get("seed"); seed != nullptr) {
    request.seed = static_cast<std::uint64_t>(seed->int_or(42));
  }
  if (const auto* until = doc->get("until_ms"); until != nullptr) {
    request.until_ms = static_cast<std::uint64_t>(until->int_or(0));
  }
  return request;
}

std::string encode_response(const Response& response) {
  auto doc = util::Json::object();
  doc.set("ok", response.ok);
  doc.set("exit", response.exit_code);
  doc.set("output", response.output);
  if (!response.error.empty()) doc.set("error", response.error);
  return doc.dump();
}

std::optional<Response> decode_response(std::string_view payload) {
  const auto doc = util::Json::parse(payload);
  if (!doc || !doc->is_object()) return std::nullopt;
  const auto* ok = doc->get("ok");
  const auto* output = doc->get("output");
  if (ok == nullptr || !ok->is_bool() || output == nullptr ||
      !output->is_string()) {
    return std::nullopt;
  }
  Response response;
  response.ok = ok->bool_or(false);
  response.output = *output->if_string();
  if (const auto* exit = doc->get("exit"); exit != nullptr) {
    response.exit_code = static_cast<int>(exit->int_or(0));
  }
  if (const auto* error = doc->get("error");
      error != nullptr && error->is_string()) {
    response.error = *error->if_string();
  }
  return response;
}

bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  unsigned char prefix[4];
  const auto n = static_cast<std::uint32_t>(payload.size());
  prefix[0] = static_cast<unsigned char>(n >> 24);
  prefix[1] = static_cast<unsigned char>(n >> 16);
  prefix[2] = static_cast<unsigned char>(n >> 8);
  prefix[3] = static_cast<unsigned char>(n);
  return write_all(fd, prefix, sizeof prefix) &&
         write_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::string& payload, std::string* error) {
  if (error != nullptr) error->clear();
  unsigned char prefix[4];
  const ssize_t got = read_all(fd, prefix, sizeof prefix);
  if (got == 0) return false;  // clean EOF between frames
  if (got != sizeof prefix) {
    if (error != nullptr) *error = "truncated frame length prefix";
    return false;
  }
  const std::uint32_t n = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                          (static_cast<std::uint32_t>(prefix[1]) << 16) |
                          (static_cast<std::uint32_t>(prefix[2]) << 8) |
                          static_cast<std::uint32_t>(prefix[3]);
  if (n > kMaxFrameBytes) {
    if (error != nullptr) {
      *error = "frame of " + std::to_string(n) + " bytes exceeds the " +
               std::to_string(kMaxFrameBytes) + "-byte limit";
    }
    return false;
  }
  payload.resize(n);
  if (n > 0 && read_all(fd, payload.data(), n) !=
                   static_cast<ssize_t>(n)) {
    if (error != nullptr) *error = "truncated frame body";
    return false;
  }
  return true;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    // Preserve connect's errno across the cleanup close(2) so callers can
    // report the real failure (ECONNREFUSED, ENOENT, ...).
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

int connect_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

std::optional<Response> roundtrip(int fd, const Request& request,
                                  std::string* error) {
  if (!write_frame(fd, encode_request(request))) {
    if (error != nullptr) *error = "cannot send request";
    return std::nullopt;
  }
  std::string payload;
  std::string frame_error;
  if (!read_frame(fd, payload, &frame_error)) {
    if (error != nullptr) {
      *error = frame_error.empty() ? "connection closed by the daemon"
                                   : frame_error;
    }
    return std::nullopt;
  }
  auto response = decode_response(payload);
  if (!response && error != nullptr) *error = "malformed response frame";
  return response;
}

}  // namespace rd::serve
