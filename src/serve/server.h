#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"

namespace rd::serve {

/// The rdd transport: accepts stream connections on a Unix-domain socket
/// and/or a TCP loopback port and speaks the length-prefixed JSON frame
/// protocol over them. Each connection gets a reader thread that decodes
/// requests and executes them via ThreadPool::post — at pool concurrency 1
/// that degenerates to inline execution, so a single-threaded daemon
/// answers requests strictly serially (the determinism baseline the tests
/// compare multi-threaded runs against). Frames on one connection are
/// answered in order; connections are independent.
///
/// Lifecycle: construct (binds and listens; throws std::runtime_error on
/// bind failure), `run()` until a `shutdown` request or `request_stop()`,
/// destructor unlinks the Unix socket path.
class Server {
 public:
  struct Options {
    std::string unix_path;  // empty = no Unix listener
    int tcp_port = -1;      // -1 = no TCP listener; 0 = ephemeral port
  };

  Server(Service& service, const Options& options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept loop; blocks until stopped. Joins every connection thread
  /// before returning, so all in-flight requests finish their replies.
  /// EINTR from poll(2) is retried; any other poll failure tears down the
  /// same way and then throws std::runtime_error, so the daemon exits
  /// nonzero instead of pretending a clean shutdown happened.
  void run();

  /// Stop the accept loop and wake blocked connection readers. Safe from
  /// any thread, including a connection thread mid-request.
  void request_stop();

  /// The TCP port actually bound (after an ephemeral bind), or -1.
  int tcp_port() const noexcept { return tcp_port_; }

 private:
  void handle_connection(int fd);
  void close_listeners();

  Service& service_;
  std::string unix_path_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  int stop_pipe_[2] = {-1, -1};

  std::mutex mutex_;
  std::vector<std::thread> connections_;
  std::vector<int> live_fds_;
  bool stopping_ = false;
};

}  // namespace rd::serve
