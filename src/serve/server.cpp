#include "serve/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <future>
#include <stdexcept>
#include <utility>

#include "serve/protocol.h"

namespace rd::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  // A stale socket file from a dead daemon blocks bind(2); remove it iff it
  // actually is a socket — never clobber a regular file at that path.
  std::error_code ec;
  if (std::filesystem::is_socket(path, ec)) std::filesystem::remove(path, ec);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("cannot listen on " + path);
  }
  return fd;
}

int listen_tcp(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, no remote
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("cannot listen on tcp port " + std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

}  // namespace

Server::Server(Service& service, const Options& options)
    : service_(service), unix_path_(options.unix_path) {
  if (unix_path_.empty() && options.tcp_port < 0) {
    throw std::runtime_error("no listener configured (socket path or port)");
  }
  if (::pipe(stop_pipe_) != 0) throw_errno("pipe");
  if (!unix_path_.empty()) unix_fd_ = listen_unix(unix_path_);
  if (options.tcp_port >= 0) {
    tcp_fd_ = listen_tcp(options.tcp_port, &tcp_port_);
  }
}

Server::~Server() {
  request_stop();
  close_listeners();
  for (const int fd : {stop_pipe_[0], stop_pipe_[1]}) {
    if (fd >= 0) ::close(fd);
  }
  if (!unix_path_.empty()) {
    std::error_code ec;
    std::filesystem::remove(unix_path_, ec);
  }
}

void Server::close_listeners() {
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  unix_fd_ = -1;
  tcp_fd_ = -1;
}

void Server::request_stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  const char byte = 's';
  // Best-effort wakeup; the pipe cannot be full (one byte per lifetime).
  (void)!::write(stop_pipe_[1], &byte, 1);
}

void Server::run() {
  // A poll(2) failure other than EINTR (EBADF, ENOMEM, ...) means the
  // accept loop cannot continue. Remember it, tear down cleanly, and only
  // then throw — a daemon that stops serving must exit nonzero, not
  // silently return as if a shutdown had been requested.
  int poll_errno = 0;
  for (;;) {
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = {stop_pipe_[0], POLLIN, 0};
    if (unix_fd_ >= 0) fds[n++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[n++] = {tcp_fd_, POLLIN, 0};
    if (::poll(fds, n, -1) < 0) {
      if (errno == EINTR) continue;  // signals are routine, not fatal
      poll_errno = errno;
      break;
    }
    if (fds[0].revents != 0) break;  // stop requested
    for (nfds_t i = 1; i < n; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int conn = ::accept(fds[i].fd, nullptr, nullptr);
      if (conn < 0) continue;
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        ::close(conn);
        continue;
      }
      live_fds_.push_back(conn);
      connections_.emplace_back([this, conn] { handle_connection(conn); });
    }
  }
  close_listeners();
  // Wake connection threads blocked in read_frame: shutdown(2) makes their
  // pending reads return 0 (EOF) without yanking the fd out from under
  // them — the thread still owns the close.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& thread : connections_) thread.join();
  connections_.clear();
  if (poll_errno != 0) {
    throw std::runtime_error(std::string("poll: ") +
                             std::strerror(poll_errno));
  }
}

void Server::handle_connection(int fd) {
  std::string payload;
  std::string frame_error;
  while (read_frame(fd, payload, &frame_error)) {
    Response response;
    bool stop_after_reply = false;
    const auto request = decode_request(payload);
    if (!request) {
      response.ok = false;
      response.exit_code = 2;
      response.error = "malformed request frame\n";
    } else if (request->op == "shutdown") {
      response = service_.handle(*request);
      stop_after_reply = true;
    } else {
      // Execute on the pool so analysis work shares one scheduler (and a
      // concurrency-1 daemon runs it inline, serially). The reader waits —
      // frames on one connection are answered strictly in order.
      std::promise<Response> promise;
      auto pending = promise.get_future();
      service_.pool().post([&] { promise.set_value(service_.handle(*request)); });
      response = pending.get();
    }
    // A client that hung up without reading (EPIPE) just ends this
    // connection; the daemon and its other connections are unaffected.
    if (!write_frame(fd, encode_response(response))) break;
    if (stop_after_reply) {
      request_stop();
      break;
    }
  }
  // Deregister before closing: once closed, the fd number can be recycled
  // by any other file the process opens, and a teardown shutdown(2) on the
  // stale number would hit that stranger.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = live_fds_.begin(); it != live_fds_.end(); ++it) {
      if (*it == fd) {
        live_fds_.erase(it);
        break;
      }
    }
  }
  ::close(fd);
}

}  // namespace rd::serve
