#include "serve/service.h"

#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "obs/obs.h"
#include "pipeline/series.h"
#include "serve/queries.h"
#include "synth/emit.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/stats.h"

namespace rd::serve {

Service::Service(const Options& options)
    : pool_(options.threads),
      engine_(analysis::RuleEngine::with_default_rules()) {
  if (!options.store_directory.empty()) {
    store_ = std::make_unique<pipeline::DiskStore>(options.store_directory);
    cache_.attach_store(store_.get());
  }
  if (options.cache_bytes > 0) cache_.set_byte_limit(options.cache_bytes);
}

Service::LoadStats Service::add_fleet(const std::string& name,
                                      const std::string& directory) {
  if (find_fleet(name) != nullptr) {
    throw std::runtime_error("fleet '" + name + "' already loaded");
  }
  auto loaded = synth::load_network_texts_named(directory);
  if (loaded.texts.empty()) {
    throw std::runtime_error("no configuration files in " + directory);
  }
  const auto before = cache_.stats();
  auto network = pipeline::build_network_cached(loaded.texts, loaded.names,
                                                cache_, pool_);
  const auto after = cache_.stats();

  ResidentFleet fleet;
  fleet.name = name;
  fleet.directory = directory;
  fleet.report_name =
      std::filesystem::path(directory).filename().string();
  if (fleet.report_name.empty()) fleet.report_name = directory;
  fleet.config_files = loaded.texts.size();
  fleet.network =
      std::make_unique<const model::Network>(std::move(network));
  fleet.graph = std::make_unique<const graph::InstanceGraph>(
      graph::InstanceGraph::build(*fleet.network));

  LoadStats stats;
  stats.config_files = loaded.texts.size();
  stats.memory_hits = after.hits - before.hits;
  stats.disk_hits = after.disk_hits - before.disk_hits;
  stats.cold_parses = after.misses - before.misses;
  stats.routers = fleet.network->router_count();
  fleets_.push_back(std::move(fleet));
  return stats;
}

const ResidentFleet* Service::find_fleet(const std::string& name) const {
  if (name.empty()) {
    // An unnamed request binds to a lone fleet; ambiguous otherwise.
    return fleets_.size() == 1 ? &fleets_[0] : nullptr;
  }
  for (const auto& fleet : fleets_) {
    if (fleet.name == name) return &fleet;
  }
  return nullptr;
}

void Service::record_latency(const std::string& op, double millis,
                             bool build) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  for (auto& entry : op_stats_) {
    if (entry.op == op) {
      (build ? entry.build_ms : entry.latency_ms).push_back(millis);
      return;
    }
  }
  op_stats_.push_back(build ? OpStats{op, {}, {millis}}
                            : OpStats{op, {millis}, {}});
}

Response Service::handle(const Request& request) {
  const auto start = std::chrono::steady_clock::now();
  obs::Span span("serve." + request.op, "serve");

  Response response;
  const auto from_query = [&response](QueryResult qr) {
    response.output = std::move(qr.output);
    response.error = std::move(qr.error);
    response.exit_code = qr.exit_code;
    response.ok = qr.exit_code != 2;
  };

  if (request.op == "ping") {
    response.output = "pong\n";
  } else if (request.op == "shutdown") {
    // The transport layer watches for this op and stops accepting after
    // the reply is on the wire; the service side just acknowledges.
    response.output = "shutting down\n";
  } else if (request.op == "fleets") {
    for (const auto& fleet : fleets_) {
      util::appendf(response.output, "%s: %zu configs, %zu routers (%s)\n",
                    fleet.name.c_str(), fleet.config_files,
                    fleet.network->router_count(), fleet.directory.c_str());
    }
  } else if (request.op == "stats") {
    response.output = stats_json();
  } else if (request.op == "audit" || request.op == "whatif" ||
             request.op == "rdlint" || request.op == "reachability" ||
             request.op == "headerspace" || request.op == "simulate") {
    const auto* fleet = find_fleet(request.fleet);
    // Resident fleets never change, so an analysis response is a pure
    // function of (fleet, request): serve repeats from the first
    // computation's bytes. '\0' separators keep distinct requests from
    // colliding ("a"+"bc" vs "ab"+"c"). seed/until are part of the key —
    // two simulations with different seeds are different pure functions.
    std::string cache_key;
    if (fleet != nullptr) {
      const std::string seed = std::to_string(request.seed);
      const std::string until = std::to_string(request.until_ms);
      cache_key.reserve(fleet->name.size() + request.op.size() +
                        request.format.size() + request.source.size() +
                        request.destination.size() + seed.size() +
                        until.size() + 8);
      for (const auto* part : {&fleet->name, &request.op, &request.format,
                               &request.source, &request.destination, &seed,
                               &until}) {
        cache_key += *part;
        cache_key += '\0';
      }
      cache_key += request.naive ? '1' : '0';
      std::lock_guard<std::mutex> lock(response_mutex_);
      if (const auto it = response_cache_.find(cache_key);
          it != response_cache_.end()) {
        ++response_hits_;
        response = it->second;
        const auto elapsed = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
        record_latency(request.op, elapsed, /*build=*/false);
        return response;
      }
    }
    if (fleet == nullptr) {
      response.ok = false;
      response.exit_code = 2;
      if (request.fleet.empty()) {
        response.error = fleets_.empty()
                             ? "no fleets loaded\n"
                             : "several fleets loaded; name one with "
                               "--fleet\n";
      } else {
        response.error = "unknown fleet '" + request.fleet + "'\n";
      }
    } else if (request.op == "audit") {
      from_query(audit_report(*fleet->network, *fleet->graph, pool_));
    } else if (request.op == "whatif") {
      from_query(whatif_report(*fleet->network, *fleet->graph, pool_));
    } else if (request.op == "rdlint") {
      const auto format = lint_format_from(request.format);
      if (!format) {
        response.ok = false;
        response.exit_code = 2;
        response.error = "unknown format '" + request.format + "'\n";
      } else {
        from_query(lint_report(*fleet->network, engine_, fleet->report_name,
                               *format, pool_, fleet->graph.get()));
      }
    } else if (request.op == "simulate") {
      from_query(simulate_report(*fleet->network, *fleet->graph,
                                 request.seed, request.until_ms, pool_));
    } else {
      ReachabilityRequest reach;
      reach.symbolic = request.op == "headerspace";
      reach.naive = request.naive;
      reach.source = request.source;
      reach.destination = request.destination;
      from_query(reachability_report(*fleet->network, fleet->graph->set,
                                     reach));
    }
    if (fleet != nullptr) {
      std::lock_guard<std::mutex> lock(response_mutex_);
      if (response_cache_.size() < kResponseCacheCap) {
        response_cache_.emplace(std::move(cache_key), response);
      }
      const auto elapsed = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      record_latency(request.op, elapsed, /*build=*/true);
      return response;
    }
  } else {
    response.ok = false;
    response.exit_code = 2;
    response.error = "unknown op '" + request.op + "'\n";
  }

  const auto elapsed = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  record_latency(request.op, elapsed, /*build=*/false);
  return response;
}

std::size_t Service::response_cache_hits() const {
  std::lock_guard<std::mutex> lock(response_mutex_);
  return response_hits_;
}

std::string Service::stats_json() const {
  auto doc = util::Json::object();

  auto ops = util::Json::array();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    for (const auto& entry : op_stats_) {
      auto op = util::Json::object();
      op.set("op", entry.op);
      op.set("count", entry.latency_ms.size() + entry.build_ms.size());
      // Percentiles cover served requests only; the one-time cold fills
      // would otherwise dominate p99 forever on a warm daemon.
      op.set("p50_ms", util::quantile(entry.latency_ms, 0.50));
      op.set("p99_ms", util::quantile(entry.latency_ms, 0.99));
      op.set("builds", entry.build_ms.size());
      double build_total = 0.0;
      for (const auto ms : entry.build_ms) build_total += ms;
      op.set("build_ms", build_total);
      ops.push_back(std::move(op));
    }
  }
  doc.set("ops", std::move(ops));

  const auto cache_stats = cache_.stats();
  auto cache = util::Json::object();
  cache.set("hits", cache_stats.hits);
  cache.set("misses", cache_stats.misses);
  cache.set("disk_hits", cache_stats.disk_hits);
  cache.set("disk_rejects", cache_stats.disk_rejects);
  cache.set("entries", cache_stats.entries);
  cache.set("bytes", cache_stats.bytes);
  cache.set("byte_limit", cache_stats.byte_limit);
  cache.set("evictions", cache_stats.evictions);
  doc.set("parse_cache", std::move(cache));

  auto responses = util::Json::object();
  {
    std::lock_guard<std::mutex> lock(response_mutex_);
    responses.set("hits", response_hits_);
    responses.set("entries", response_cache_.size());
  }
  doc.set("response_cache", std::move(responses));

  if (store_ != nullptr) {
    const auto store_stats = store_->stats();
    auto store = util::Json::object();
    store.set("directory", store_->directory().string());
    store.set("loads", store_stats.loads);
    store.set("load_hits", store_stats.load_hits);
    store.set("load_rejects", store_stats.load_rejects);
    store.set("saves", store_stats.saves);
    store.set("save_failures", store_stats.save_failures);
    doc.set("parse_store", std::move(store));
  }

  auto pool = util::Json::object();
  pool.set("threads", pool_.size());
  pool.set("queue_depth", pool_.queue_depth());
  doc.set("pool", std::move(pool));

  auto fleets = util::Json::array();
  for (const auto& fleet : fleets_) {
    auto entry = util::Json::object();
    entry.set("name", fleet.name);
    entry.set("configs", fleet.config_files);
    entry.set("routers", fleet.network->router_count());
    fleets.push_back(std::move(entry));
  }
  doc.set("fleets", std::move(fleets));

  return doc.dump(2) + "\n";
}

}  // namespace rd::serve
