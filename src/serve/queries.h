#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/reachability.h"
#include "ip/ipv4.h"
#include "analysis/rules.h"
#include "graph/instances.h"
#include "model/network.h"
#include "util/thread_pool.h"

namespace rd::serve {

/// The re-entrant query entry points behind both the one-shot CLIs and the
/// rdd daemon (DESIGN.md §14). Each function renders one complete report
/// into a string using util::appendf (vsnprintf — the same formatting
/// engine printf uses), so the daemon's response payload and the CLI's
/// stdout are byte-identical by construction; the differential tests and
/// the CI smoke step `cmp` the two. Every function is const over the model
/// (safe to call concurrently from many worker threads over one resident
/// fleet) and deterministic: identical inputs produce identical bytes at
/// every thread count and request interleaving.
struct QueryResult {
  std::string output;  // exact bytes the one-shot CLI writes to stdout
  std::string error;   // stderr-destined diagnostic (usage errors)
  int exit_code = 0;   // CLI exit-code contract: 0 ok, 1 findings, 2 usage
};

/// audit_network's full report: inventory, parse diagnostics, design
/// classification, vulnerability assessment, maintenance groupings,
/// completeness, filtering, IBGP, survivability sweep, route load, intent
/// assertions, and the design-rule summary. Exit 1 when any error-severity
/// rule finding exists.
QueryResult audit_report(const model::Network& network,
                         const graph::InstanceGraph& ig,
                         util::ThreadPool& pool);

/// The survivability section alone (audit_network --whatif): articulation
/// routers plus the parallel single-failure sweep.
QueryResult whatif_report(const model::Network& network,
                          const graph::InstanceGraph& ig,
                          util::ThreadPool& pool);

enum class LintFormat { kText, kJson, kSarif };
std::optional<LintFormat> lint_format_from(std::string_view name);

/// Render an already-computed rule-engine result exactly as rdlint prints
/// it (including the trailing newline of the json/sarif modes). The CLI
/// uses this after its own engine run (it needs the findings for baseline
/// and snapshot deltas); lint_report composes run + render for the daemon.
std::string render_lint_report(const analysis::RuleEngine& engine,
                               const analysis::RuleEngine::Result& result,
                               const std::string& name, LintFormat format);

/// One finding, rdlint text style:
///   "  <prefix>[RDxxx][severity] file:line router: subject (with b): detail"
/// Exposed for rdlint's baseline section, which prefixes new findings.
void append_finding_line(std::string& out, const analysis::Finding& finding,
                         const char* prefix);

/// rdlint's single-network report in the requested format. `name` labels
/// the report (the CLI uses the config directory's basename; the daemon
/// uses the fleet name). Passing the already-built instance graph skips
/// rebuilding it (the daemon holds one resident); with nullptr the engine
/// builds its own — the findings are identical either way. Exit 1 when any
/// error-severity finding exists.
QueryResult lint_report(const model::Network& network,
                        const analysis::RuleEngine& engine,
                        const std::string& name, LintFormat format,
                        util::ThreadPool& pool,
                        const graph::InstanceGraph* graph = nullptr);

/// Instance whose covered interfaces contain the address, if any (-1 when
/// unattached) — the endpoint resolution reachability_report and the net15
/// case-study epilogue share.
std::int64_t instance_attached_to(const model::Network& network,
                                  const graph::InstanceSet& instances,
                                  ip::Ipv4Address addr);

/// One reachability_query invocation's worth of options.
struct ReachabilityRequest {
  bool symbolic = false;  // exact header-space mode (--symbolic)
  bool naive = false;     // reference engine (--naive)
  /// Endpoint pair (dotted quads). Both empty = the per-instance summary
  /// report (or, symbolic, the rd-intent verification report).
  std::string source;
  std::string destination;
  /// Demo-mode external-route injection (the net15 case study); empty for
  /// directory- and fleet-backed runs.
  std::vector<ip::Prefix> external_prefixes;
};

/// reachability_query's stdout for the requested mode. Unparseable
/// endpoint addresses yield exit 2 with the CLI's stderr text in `error`
/// (the daemon maps that to an error response). The convergence warning,
/// stderr-bound in the CLI, lands in `error` with exit 0.
QueryResult reachability_report(const model::Network& network,
                                const graph::InstanceSet& instances,
                                const ReachabilityRequest& request);

/// simulate_convergence's single-network report: the discrete-event
/// distance-vector convergence sweep (DESIGN.md §15) over the resident
/// fleet, one flap scenario per interesting single-router failure. `seed`
/// and `until_ms` mirror the CLI's --seed/--until; everything else stays
/// at the SweepOptions defaults so the daemon's bytes match
/// `simulate_convergence <dir> --seed N --until MS` exactly. Exit 1 when
/// any fixpoint cross-check mismatched, matching the CLI contract.
QueryResult simulate_report(const model::Network& network,
                            const graph::InstanceGraph& ig,
                            std::uint64_t seed, std::uint64_t until_ms,
                            util::ThreadPool& pool);

}  // namespace rd::serve
