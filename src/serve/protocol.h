#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rd::serve {

/// The rdd wire protocol (DESIGN.md §14): length-prefixed JSON frames over
/// a stream socket (Unix-domain or TCP). Each frame is a 4-byte big-endian
/// payload length followed by that many bytes of UTF-8 JSON. Clients send
/// one Request frame and read one Response frame, repeating on the same
/// connection as long as they like; the daemon answers frames on a
/// connection strictly in order. Frames above kMaxFrameBytes are rejected
/// without allocating — a garbage length prefix must not look like an
/// allocation request.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;  // 64 MiB

/// One client query. Unknown ops draw an error Response, not a hangup, so
/// old rdctl binaries degrade gracefully against newer daemons.
struct Request {
  /// ping | fleets | stats | audit | whatif | rdlint | reachability |
  /// headerspace | simulate | shutdown
  std::string op;
  std::string fleet;   // fleet name; may be empty when one fleet is loaded
  std::string format;  // rdlint: text | json | sarif (default text)
  std::string source;  // reachability / headerspace endpoint pair
  std::string destination;
  bool naive = false;  // reachability: reference full-rescan engine
  /// simulate: the convergence-simulation seed and simulated-time cap
  /// (0 = automatic). Part of the response-cache key — two simulations
  /// with different seeds are different pure functions.
  std::uint64_t seed = 42;
  std::uint64_t until_ms = 0;
};

/// The daemon's answer. `output` carries the exact bytes the matching
/// one-shot CLI writes to stdout; `error` its stderr; `exit_code` follows
/// the CLI contract (0 ok, 1 error-severity findings, 2 usage error). `ok`
/// is false only when the request itself failed (unknown op, unknown
/// fleet, malformed frame) — a lint run that finds errors is still ok:true
/// with exit_code 1.
struct Response {
  bool ok = true;
  int exit_code = 0;
  std::string output;
  std::string error;
};

std::string encode_request(const Request& request);
std::optional<Request> decode_request(std::string_view payload);
std::string encode_response(const Response& response);
std::optional<Response> decode_response(std::string_view payload);

/// Write one frame. Retries on EINTR and partial writes; suppresses
/// SIGPIPE at the call site (MSG_NOSIGNAL on sockets — and guarded_main
/// ignores the signal process-wide for the plain-pipe fallback), so a peer
/// that hung up yields `false` (EPIPE) instead of killing the process.
bool write_frame(int fd, std::string_view payload);

/// Read one frame into `payload`. Returns false at clean EOF (peer closed
/// between frames, `*error` left empty) and on any protocol violation —
/// truncated prefix or body, or a length above kMaxFrameBytes — with a
/// description in `*error`.
bool read_frame(int fd, std::string& payload, std::string* error);

/// Connect helpers; -1 on failure. `connect_tcp` takes a dotted-quad or
/// "localhost".
int connect_unix(const std::string& path);
int connect_tcp(const std::string& host, std::uint16_t port);

/// Send a request and read the matching response over an open connection.
/// nullopt on transport or decode failure (detail in `*error` if given).
std::optional<Response> roundtrip(int fd, const Request& request,
                                  std::string* error = nullptr);

}  // namespace rd::serve
