#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/rules.h"
#include "graph/instances.h"
#include "model/network.h"
#include "pipeline/disk_store.h"
#include "pipeline/parse_cache.h"
#include "serve/protocol.h"
#include "util/thread_pool.h"

namespace rd::serve {

/// A fleet held resident by the daemon: the parsed+built network model and
/// its instance graph, constructed once at load time and shared read-only
/// by every request thereafter. All analyses the queries run over these
/// structures are const.
struct ResidentFleet {
  std::string name;
  std::string directory;
  /// What reports call the network: the directory's basename, exactly as
  /// the one-shot CLIs derive it — the fleet name is daemon-local routing,
  /// not part of the byte-identity contract.
  std::string report_name;
  std::size_t config_files = 0;
  std::unique_ptr<const model::Network> network;
  std::unique_ptr<const graph::InstanceGraph> graph;
};

/// The rdd request processor, transport-free: `handle` maps one Request to
/// one Response, so tests can drive the full dispatch path in-process and
/// the Server layer stays a thin socket loop. Determinism contract: for
/// every analysis op, `Response::output` is byte-identical to the matching
/// one-shot CLI's stdout, at every pool size and request interleaving —
/// the queries touch only immutable resident state and the fork/join pool.
/// Only `stats` reports scheduling-dependent numbers (latencies, queue
/// depth) and is excluded from that contract.
class Service {
 public:
  struct Options {
    std::size_t threads = 0;      // analysis concurrency (0 = default)
    std::string store_directory;  // parse-store path; empty = no persistence
    std::size_t cache_bytes = 0;  // ParseCache LRU cap; 0 = unbounded
  };

  /// Opens the store (throws std::runtime_error when its directory cannot
  /// be created) and arms the cache.
  explicit Service(const Options& options);

  /// Where a fleet's configs came from, cost-wise. The restart contract
  /// rides on this: a daemon restarted over an unchanged fleet with a
  /// store reports cold_parses == 0.
  struct LoadStats {
    std::size_t config_files = 0;
    std::size_t memory_hits = 0;  // served by the in-memory cache
    std::size_t disk_hits = 0;    // decoded from the persistent store
    std::size_t cold_parses = 0;  // parsed from text
    std::size_t routers = 0;
  };

  /// Parse (through the cache+store), build, and retain a fleet. Throws
  /// std::runtime_error on an unreadable/empty directory or a duplicate
  /// name. Not thread-safe against `handle`: load every fleet before
  /// serving.
  LoadStats add_fleet(const std::string& name, const std::string& directory);

  /// Process one request. Re-entrant over the resident fleets; called
  /// concurrently from the server's connection threads via the pool.
  Response handle(const Request& request);

  const std::vector<ResidentFleet>& fleets() const noexcept {
    return fleets_;
  }
  util::ThreadPool& pool() noexcept { return pool_; }
  pipeline::ParseCache& cache() noexcept { return cache_; }

  /// The stats endpoint's payload: request counts and p50/p99 latencies
  /// per op, cache and store counters, pool queue depth. Pretty-printed
  /// JSON with a trailing newline. Cold response-cache fills (the one-time
  /// per-(fleet, request) analysis build) are kept out of the percentiles
  /// and reported separately as `builds`/`build_ms` — a daemon that served
  /// one slow first audit and a thousand cache hits has a microsecond p99,
  /// not a multi-second one.
  std::string stats_json() const;

  /// Analysis responses served from the response cache (resident fleets
  /// are immutable, so every analysis response is a pure function of the
  /// request — the first computation's bytes are returned verbatim
  /// thereafter). Exposed for tests and the stats endpoint.
  std::size_t response_cache_hits() const;

 private:
  const ResidentFleet* find_fleet(const std::string& name) const;
  /// `build` marks a cold response-cache fill: its cost lands in the op's
  /// build ledger instead of the serving-latency percentiles.
  void record_latency(const std::string& op, double millis, bool build);

  util::ThreadPool pool_;
  std::unique_ptr<pipeline::DiskStore> store_;
  pipeline::ParseCache cache_;
  analysis::RuleEngine engine_;
  std::vector<ResidentFleet> fleets_;

  struct OpStats {
    std::string op;
    std::vector<double> latency_ms;  // cache hits and non-analysis ops
    std::vector<double> build_ms;    // cold fills, excluded from p50/p99
  };
  mutable std::mutex stats_mutex_;
  std::vector<OpStats> op_stats_;  // insertion-ordered by first request

  // Response cache: fleet + full request -> the Response computed the
  // first time. Entry count is capped (endpoint queries are client-chosen
  // and unbounded); past the cap new keys compute uncached rather than
  // evict — the parameterless ops that dominate warm traffic are always
  // among the first keys.
  static constexpr std::size_t kResponseCacheCap = 256;
  mutable std::mutex response_mutex_;
  std::unordered_map<std::string, Response> response_cache_;
  std::size_t response_hits_ = 0;
};

}  // namespace rd::serve
