#include "graph/dot.h"

#include <string>

namespace rd::graph {

namespace {

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string process_label(const model::Network& network,
                          const ProcessGraph::Vertex& v) {
  switch (v.kind) {
    case ProcessGraph::VertexKind::kLocalRib:
      return network.routers()[v.router].hostname + " local RIB";
    case ProcessGraph::VertexKind::kRouterRib:
      return network.routers()[v.router].hostname + " router RIB";
    case ProcessGraph::VertexKind::kProcessRib: {
      const auto& p = network.processes()[v.process];
      std::string label = network.routers()[v.router].hostname + " " +
                          std::string(config::to_keyword(p.protocol));
      if (p.process_id) label += " " + std::to_string(*p.process_id);
      return label + " RIB";
    }
  }
  return "?";
}

}  // namespace

std::string instance_label(const InstanceSet& set, std::uint32_t index) {
  const RoutingInstance& inst = set.instances[index];
  std::string label = "instance " + std::to_string(index + 1) + ": " +
                      std::string(config::to_keyword(inst.protocol));
  if (inst.bgp_as) label += " AS " + std::to_string(*inst.bgp_as);
  label += ", " + std::to_string(inst.router_count()) + " routers";
  return label;
}

std::string to_dot(const model::Network& network, const ProcessGraph& graph) {
  std::string out = "digraph process_graph {\n  rankdir=LR;\n";
  for (std::uint32_t v = 0; v < graph.vertices().size(); ++v) {
    const auto& vertex = graph.vertices()[v];
    const char* shape =
        vertex.kind == ProcessGraph::VertexKind::kRouterRib ? "box" : "ellipse";
    out += "  v" + std::to_string(v) + " [shape=" + shape + ",label=" +
           quoted(process_label(network, vertex)) + "];\n";
  }
  for (const auto& edge : graph.edges()) {
    std::string attrs;
    switch (edge.kind) {
      case ProcessGraph::EdgeKind::kIgpAdjacency:
        attrs = "dir=both,color=blue";
        break;
      case ProcessGraph::EdgeKind::kBgpSession:
        attrs = "dir=both,color=darkgreen";
        break;
      case ProcessGraph::EdgeKind::kRedistribution:
        attrs = "style=dashed,color=red";
        break;
      case ProcessGraph::EdgeKind::kSelection:
        attrs = "color=gray";
        break;
      case ProcessGraph::EdgeKind::kExternal:
        attrs = "style=dotted,label=\"external\"";
        break;
    }
    if (edge.policy) {
      attrs += ",label=" + quoted(*edge.policy);
    }
    out += "  v" + std::to_string(edge.from) + " -> v" +
           std::to_string(edge.to) + " [" + attrs + "];\n";
  }
  out += "}\n";
  return out;
}

std::string to_dot(const model::Network& network,
                   const InstanceGraph& graph) {
  (void)network;
  std::string out = "digraph instance_graph {\n  rankdir=LR;\n";
  out += "  external [shape=doublecircle,label=\"External World\"];\n";
  for (std::uint32_t i = 0; i < graph.set.instances.size(); ++i) {
    out += "  i" + std::to_string(i) + " [shape=box,style=rounded,label=" +
           quoted(instance_label(graph.set, i)) + "];\n";
  }
  for (const auto& edge : graph.edges) {
    switch (edge.kind) {
      case InstanceEdge::Kind::kRedistribution: {
        std::string attrs = "color=red,style=dashed";
        if (edge.policy) attrs += ",label=" + quoted(*edge.policy);
        out += "  i" + std::to_string(edge.from) + " -> i" +
               std::to_string(edge.to) + " [" + attrs + "];\n";
        break;
      }
      case InstanceEdge::Kind::kEbgpSession:
        out += "  i" + std::to_string(edge.from) + " -> i" +
               std::to_string(edge.to) + " [dir=both,penwidth=2];\n";
        break;
      case InstanceEdge::Kind::kExternal:
        out += "  external -> i" + std::to_string(edge.from) +
               " [dir=both,penwidth=2,style=bold];\n";
        break;
    }
  }
  out += "}\n";
  return out;
}

std::string to_dot(const model::Network& network, const InstanceGraph& graph,
                   const Pathway& pathway) {
  std::string out = "digraph pathway {\n  rankdir=BT;\n";
  out += "  rib [shape=box,label=" +
         quoted(network.routers()[pathway.router].hostname + " Router RIB") +
         "];\n";
  if (pathway.reaches_external) {
    out += "  external [shape=doublecircle,label=\"External World\"];\n";
  }
  for (const auto& node : pathway.nodes) {
    out += "  i" + std::to_string(node.instance) +
           " [shape=box,style=rounded,label=" +
           quoted(instance_label(graph.set, node.instance)) + "];\n";
    if (node.depth == 0) {
      out += "  i" + std::to_string(node.instance) + " -> rib;\n";
    }
  }
  for (const auto& edge : pathway.edges) {
    std::string attrs = edge.kind == InstanceEdge::Kind::kRedistribution
                            ? "color=red,style=dashed"
                            : "penwidth=2";
    if (edge.has_policy) attrs += ",label=\"policy\"";
    out += "  i" + std::to_string(edge.source_instance) + " -> i" +
           std::to_string(edge.sink_instance) + " [" + attrs + "];\n";
  }
  out += "}\n";
  return out;
}

std::string to_dot(const AddressSpaceStructure& structure) {
  std::string out = "digraph address_space {\n";
  for (std::uint32_t n = 0; n < structure.nodes.size(); ++n) {
    const auto& node = structure.nodes[n];
    const char* shape = node.leaf ? "ellipse" : "box";
    out += "  n" + std::to_string(n) + " [shape=" + std::string(shape) +
           ",label=" + quoted(node.block.to_string()) + "];\n";
  }
  for (std::uint32_t n = 0; n < structure.nodes.size(); ++n) {
    for (const std::uint32_t child : structure.nodes[n].children) {
      out += "  n" + std::to_string(n) + " -> n" + std::to_string(child) +
             ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace rd::graph
