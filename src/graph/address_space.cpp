#include "graph/address_space.h"

#include <algorithm>

namespace rd::graph {

namespace {

using ip::Ipv4Address;
using ip::Prefix;

Prefix lowest_common_ancestor(const Prefix& a, const Prefix& b) noexcept {
  const std::uint32_t diff = a.network().value() ^ b.network().value();
  int length = std::min(a.length(), b.length());
  if (diff != 0) {
    int highest = 31;
    while (((diff >> highest) & 1u) == 0) --highest;
    length = std::min(length, 31 - highest);
  }
  return Prefix(a.network(), length);
}

/// An active entry in the join loop: a currently-maximal block and its node.
struct Active {
  Prefix block;
  std::uint32_t node;
};

}  // namespace

std::vector<Prefix> AddressSpaceStructure::root_blocks() const {
  std::vector<Prefix> out;
  out.reserve(roots.size());
  for (const std::uint32_t r : roots) out.push_back(nodes[r].block);
  std::sort(out.begin(), out.end());
  return out;
}

std::int32_t AddressSpaceStructure::root_containing(Ipv4Address addr) const {
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (nodes[roots[i]].block.contains(addr)) {
      return static_cast<std::int32_t>(i);
    }
  }
  return -1;
}

AddressSpaceStructure extract_address_structure(std::vector<Prefix> subnets) {
  AddressSpaceStructure out;
  std::sort(subnets.begin(), subnets.end(), [](const Prefix& a,
                                               const Prefix& b) {
    if (a.network() != b.network()) return a.network() < b.network();
    return a.length() < b.length();
  });
  subnets.erase(std::unique(subnets.begin(), subnets.end()), subnets.end());

  // Leaf nodes. Subnets contained in an earlier (shorter) subnet become
  // children of their deepest container immediately; only maximal subnets
  // stay active for the join loop.
  std::vector<Active> active;
  std::vector<Active> containers;  // chain of nested containers (stack)
  for (const Prefix& subnet : subnets) {
    while (!containers.empty() && !containers.back().block.contains(subnet)) {
      containers.pop_back();
    }
    const auto id = static_cast<std::uint32_t>(out.nodes.size());
    out.nodes.push_back({subnet, -1, {}, true});
    if (!containers.empty()) {
      out.nodes[id].parent = static_cast<std::int32_t>(containers.back().node);
      out.nodes[containers.back().node].children.push_back(id);
    } else {
      active.push_back({subnet, id});
    }
    containers.push_back({subnet, id});
  }

  // Greedy join loop — the paper's §3.4 rule. Active blocks are disjoint and
  // sorted, so prefix sums give "addresses used inside a candidate block".
  while (active.size() > 1) {
    std::vector<std::uint64_t> cum(active.size() + 1, 0);
    for (std::size_t i = 0; i < active.size(); ++i) {
      cum[i + 1] = cum[i] + active[i].block.size();
    }
    auto used_inside = [&](const Prefix& block) {
      const auto lo = std::lower_bound(
          active.begin(), active.end(), block.network(),
          [](const Active& a, Ipv4Address v) { return a.block.network() < v; });
      auto hi = lo;
      while (hi != active.end() && block.contains(hi->block)) ++hi;
      const auto lo_i = static_cast<std::size_t>(lo - active.begin());
      const auto hi_i = static_cast<std::size_t>(hi - active.begin());
      return cum[hi_i] - cum[lo_i];
    };

    int best_length = -1;
    Prefix best_block;
    for (std::size_t i = 0; i + 1 < active.size(); ++i) {
      const Prefix lca =
          lowest_common_ancestor(active[i].block, active[i + 1].block);
      const int shorter =
          std::min(active[i].block.length(), active[i + 1].block.length());
      if (shorter - lca.length() > 2) continue;  // > two low-order bits apart
      if (lca.length() == 0) continue;
      if (used_inside(lca) * 2 < lca.size()) continue;  // < half used
      if (lca.length() > best_length) {
        best_length = lca.length();
        best_block = lca;
      }
    }
    if (best_length < 0) break;

    const auto parent_id = static_cast<std::uint32_t>(out.nodes.size());
    out.nodes.push_back({best_block, -1, {}, false});
    std::vector<Active> next;
    next.reserve(active.size());
    bool inserted = false;
    for (const Active& a : active) {
      if (best_block.contains(a.block)) {
        out.nodes[a.node].parent = static_cast<std::int32_t>(parent_id);
        out.nodes[parent_id].children.push_back(a.node);
        if (!inserted) {
          next.push_back({best_block, parent_id});
          inserted = true;
        }
      } else {
        next.push_back(a);
      }
    }
    active = std::move(next);
  }

  out.roots.reserve(active.size());
  for (const Active& a : active) out.roots.push_back(a.node);
  return out;
}

AddressSpaceStructure extract_address_structure(
    const model::Network& network) {
  return extract_address_structure(network.interface_subnets());
}

std::vector<std::vector<std::uint32_t>> blocks_per_instance(
    const model::Network& network, const InstanceSet& instances,
    const AddressSpaceStructure& structure) {
  std::vector<std::vector<std::uint32_t>> out(instances.instances.size());
  for (std::size_t i = 0; i < instances.instances.size(); ++i) {
    std::vector<std::uint32_t> blocks;
    auto note_subnet = [&](const ip::Prefix& subnet) {
      const std::int32_t root = structure.root_containing(subnet.network());
      if (root >= 0) blocks.push_back(static_cast<std::uint32_t>(root));
    };
    for (const model::ProcessId p : instances.instances[i].processes) {
      const auto& process = network.processes()[p];
      if (config::is_conventional_igp(process.protocol)) {
        for (const model::InterfaceId itf : process.covered_interfaces) {
          if (network.interfaces()[itf].subnet) {
            note_subnet(*network.interfaces()[itf].subnet);
          }
        }
      } else {
        const auto& stanza = network.routers()[process.router]
                                 .router_stanzas[process.stanza_index];
        for (const auto& ns : stanza.networks) note_subnet(ns.prefix());
      }
    }
    std::sort(blocks.begin(), blocks.end());
    blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
    out[i] = std::move(blocks);
  }
  return out;
}

std::vector<MissingRouterSuspect> detect_missing_routers(
    const model::Network& network, const AddressSpaceStructure& structure,
    double internal_fraction_threshold) {
  // Tally interfaces per root block.
  struct Tally {
    std::size_t internal = 0;
    std::size_t external = 0;
    std::vector<model::InterfaceId> external_interfaces;
  };
  std::vector<Tally> tallies(structure.roots.size());
  for (model::InterfaceId i = 0; i < network.interfaces().size(); ++i) {
    const auto& itf = network.interfaces()[i];
    if (!itf.address) continue;
    const std::int32_t root = structure.root_containing(*itf.address);
    if (root < 0) continue;
    auto& tally = tallies[static_cast<std::size_t>(root)];
    if (itf.external_facing) {
      ++tally.external;
      tally.external_interfaces.push_back(i);
    } else {
      ++tally.internal;
    }
  }

  std::vector<MissingRouterSuspect> out;
  for (std::size_t b = 0; b < tallies.size(); ++b) {
    const auto& tally = tallies[b];
    const std::size_t total = tally.internal + tally.external;
    if (total < 5 || tally.external == 0) continue;  // too small to judge
    const double internal_fraction =
        static_cast<double>(tally.internal) / static_cast<double>(total);
    if (internal_fraction < internal_fraction_threshold) continue;
    for (const model::InterfaceId i : tally.external_interfaces) {
      out.push_back({i, static_cast<std::uint32_t>(b), internal_fraction});
    }
  }
  return out;
}

}  // namespace rd::graph
