#pragma once

#include <string>

#include "graph/address_space.h"
#include "graph/instances.h"
#include "graph/pathway.h"
#include "graph/process_graph.h"

namespace rd::graph {

/// Graphviz DOT renderings of the paper's four abstractions, so the figures
/// (Figures 5, 6, 7, 9, 10, 12) can be regenerated visually from any
/// network. Labels use hostnames and protocol/AS identifiers only.
std::string to_dot(const model::Network& network, const ProcessGraph& graph);

std::string to_dot(const model::Network& network,
                   const InstanceGraph& graph);

std::string to_dot(const model::Network& network, const InstanceGraph& graph,
                   const Pathway& pathway);

std::string to_dot(const AddressSpaceStructure& structure);

/// Human-readable one-line label of an instance, e.g. "instance 3: ospf, 12
/// routers" or "instance 5: bgp AS 65001, 6 routers".
std::string instance_label(const InstanceSet& set, std::uint32_t index);

}  // namespace rd::graph
