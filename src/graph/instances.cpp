#include "graph/instances.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <set>

namespace rd::graph {

namespace {

/// Adjacency in the instance sense: IGP adjacencies always join; BGP
/// sessions join only when both endpoints share an AS number (IBGP) — an
/// EBGP session is an instance boundary (paper §3.2).
struct ClosureEdges {
  std::vector<std::pair<model::ProcessId, model::ProcessId>> pairs;
};

ClosureEdges closure_edges(const model::Network& network) {
  ClosureEdges out;
  for (const auto& adj : network.igp_adjacencies()) {
    out.pairs.emplace_back(adj.process_a, adj.process_b);
  }
  for (const auto& session : network.bgp_sessions()) {
    if (session.external() || session.ebgp()) continue;
    out.pairs.emplace_back(session.local_process, session.remote_process);
  }
  return out;
}

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint8_t> rank_;
};

/// Assemble an InstanceSet from a per-process component label. Instances are
/// numbered by order of first appearance (lowest member process id), which
/// makes the result independent of how the labels were computed — the
/// equivalence property the tests rely on.
InstanceSet assemble(const model::Network& network,
                     const std::vector<std::uint32_t>& component) {
  InstanceSet result;
  result.instance_of.assign(network.processes().size(), 0);
  std::vector<std::int64_t> index_of_component(network.processes().size(), -1);
  for (model::ProcessId p = 0; p < network.processes().size(); ++p) {
    const std::uint32_t c = component[p];
    if (index_of_component[c] < 0) {
      index_of_component[c] =
          static_cast<std::int64_t>(result.instances.size());
      RoutingInstance instance;
      instance.protocol = network.processes()[p].protocol;
      if (instance.protocol == config::RoutingProtocol::kBgp) {
        instance.bgp_as = network.processes()[p].process_id;
      }
      result.instances.push_back(std::move(instance));
    }
    const auto idx = static_cast<std::uint32_t>(index_of_component[c]);
    result.instance_of[p] = idx;
    result.instances[idx].processes.push_back(p);
    result.instances[idx].routers.push_back(network.processes()[p].router);
  }
  for (auto& instance : result.instances) {
    auto& routers = instance.routers;
    std::sort(routers.begin(), routers.end());
    routers.erase(std::unique(routers.begin(), routers.end()), routers.end());
  }
  return result;
}

}  // namespace

InstanceSet compute_instances(const model::Network& network) {
  UnionFind uf(network.processes().size());
  for (const auto& [a, b] : closure_edges(network).pairs) uf.unite(a, b);
  std::vector<std::uint32_t> component(network.processes().size());
  for (model::ProcessId p = 0; p < network.processes().size(); ++p) {
    component[p] = uf.find(p);
  }
  return assemble(network, component);
}

InstanceSet compute_instances_bfs(const model::Network& network) {
  // Build an explicit adjacency list, then flood fill, as §3.2 describes:
  // pick an unassigned process, BFS its closure, repeat.
  std::vector<std::vector<model::ProcessId>> neighbors(
      network.processes().size());
  for (const auto& [a, b] : closure_edges(network).pairs) {
    neighbors[a].push_back(b);
    neighbors[b].push_back(a);
  }
  std::vector<std::uint32_t> component(network.processes().size(),
                                       model::kInvalidId);
  for (model::ProcessId seed = 0; seed < network.processes().size(); ++seed) {
    if (component[seed] != model::kInvalidId) continue;
    std::queue<model::ProcessId> frontier;
    frontier.push(seed);
    component[seed] = seed;
    while (!frontier.empty()) {
      const model::ProcessId p = frontier.front();
      frontier.pop();
      for (const model::ProcessId q : neighbors[p]) {
        if (component[q] == model::kInvalidId) {
          component[q] = seed;
          frontier.push(q);
        }
      }
    }
  }
  return assemble(network, component);
}

InstanceGraph InstanceGraph::build(const model::Network& network) {
  InstanceGraph g;
  g.set = compute_instances(network);

  // Redistribution across instances.
  for (const auto& redist : network.redistribution_edges()) {
    if (redist.source_kind != model::RibKind::kProcess) continue;
    const std::uint32_t from = g.set.instance_of[redist.source_process];
    const std::uint32_t to = g.set.instance_of[redist.target_process];
    if (from == to) continue;
    g.edges.push_back({InstanceEdge::Kind::kRedistribution, from, to,
                       redist.router, redist.route_map});
  }

  // EBGP sessions: internal ones connect two instances; external ones (and
  // external-facing IGP adjacencies) connect an instance to the world.
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen_pairs;
  std::set<std::uint32_t> external_instances;
  for (const auto& session : network.bgp_sessions()) {
    const std::uint32_t from = g.set.instance_of[session.local_process];
    if (session.external()) {
      if (external_instances.insert(from).second) {
        g.edges.push_back(
            {InstanceEdge::Kind::kExternal, from, from,
             network.processes()[session.local_process].router,
             std::nullopt});
      }
      continue;
    }
    if (!session.ebgp()) continue;  // IBGP merged into one instance already
    const std::uint32_t to = g.set.instance_of[session.remote_process];
    const auto key = std::minmax(from, to);
    if (!seen_pairs.insert(key).second) continue;
    g.edges.push_back({InstanceEdge::Kind::kEbgpSession, key.first,
                       key.second,
                       network.processes()[session.local_process].router,
                       std::nullopt});
  }
  for (const auto& ext : network.external_igp_adjacencies()) {
    const std::uint32_t from = g.set.instance_of[ext.process];
    if (external_instances.insert(from).second) {
      g.edges.push_back({InstanceEdge::Kind::kExternal, from, from,
                         network.processes()[ext.process].router,
                         std::nullopt});
    }
  }
  return g;
}

}  // namespace rd::graph
