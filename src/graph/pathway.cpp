#include "graph/pathway.h"

#include <algorithm>
#include <queue>
#include <set>
#include <utility>

namespace rd::graph {

Pathway compute_pathway(const model::Network& network,
                        const InstanceGraph& graph, model::RouterId router) {
  Pathway out;
  out.router = router;

  const std::size_t n = graph.set.instances.size();
  // Reverse-flow adjacency: for each instance, which instances feed it.
  struct Feed {
    std::uint32_t source;
    InstanceEdge::Kind kind;
    bool has_policy;
  };
  std::vector<std::vector<Feed>> feeders(n);
  std::vector<bool> fed_externally(n, false);
  for (const auto& edge : graph.edges) {
    switch (edge.kind) {
      case InstanceEdge::Kind::kRedistribution:
        feeders[edge.to].push_back(
            {edge.from, edge.kind, edge.policy.has_value()});
        break;
      case InstanceEdge::Kind::kEbgpSession:
        // Route exchange is bidirectional over a session.
        feeders[edge.to].push_back(
            {edge.from, edge.kind, edge.policy.has_value()});
        feeders[edge.from].push_back(
            {edge.to, edge.kind, edge.policy.has_value()});
        break;
      case InstanceEdge::Kind::kExternal:
        fed_externally[edge.from] = true;
        break;
    }
  }

  // Seed: instances with a process on this router (they feed the router RIB
  // via route selection).
  std::vector<std::uint32_t> depth(n, model::kInvalidId);
  std::queue<std::uint32_t> frontier;
  for (const model::ProcessId p : network.router_processes(router)) {
    const std::uint32_t inst = graph.set.instance_of[p];
    if (depth[inst] == model::kInvalidId) {
      depth[inst] = 0;
      frontier.push(inst);
      out.nodes.push_back({inst, 0});
    }
  }

  while (!frontier.empty()) {
    const std::uint32_t inst = frontier.front();
    frontier.pop();
    if (fed_externally[inst]) out.reaches_external = true;
    for (const Feed& feed : feeders[inst]) {
      out.edges.push_back({feed.source, inst, feed.kind, feed.has_policy});
      if (depth[feed.source] == model::kInvalidId) {
        depth[feed.source] = depth[inst] + 1;
        out.max_depth = std::max(out.max_depth, depth[feed.source]);
        out.nodes.push_back({feed.source, depth[feed.source]});
        frontier.push(feed.source);
      }
    }
  }
  return out;
}

std::vector<PathwayPolicy> locate_pathway_policies(
    const model::Network& network, const InstanceGraph& graph,
    const Pathway& pathway) {
  std::vector<PathwayPolicy> out;

  // Pathway edges can repeat a (source, sink) pair; deduplicate.
  std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (const auto& edge : pathway.edges) {
    pairs.insert({edge.source_instance, edge.sink_instance});
  }

  // Redistribution policies: route-maps on redistribute commands moving
  // routes between the two instances, plus outbound stanza distribute-lists
  // on the importing stanza.
  for (const auto& redist : network.redistribution_edges()) {
    if (redist.source_kind != model::RibKind::kProcess) continue;
    const std::uint32_t from = graph.set.instance_of[redist.source_process];
    const std::uint32_t to = graph.set.instance_of[redist.target_process];
    if (!pairs.contains({from, to})) continue;
    if (redist.route_map) {
      out.push_back({PathwayPolicy::Kind::kRedistributionRouteMap, from, to,
                     redist.router, *redist.route_map, false});
    }
    const auto& target = network.processes()[redist.target_process];
    const auto& stanza = network.routers()[redist.router]
                             .router_stanzas[target.stanza_index];
    for (const auto& dl : stanza.distribute_lists) {
      out.push_back({PathwayPolicy::Kind::kStanzaDistributeList, from, to,
                     redist.router, dl.acl, dl.inbound});
    }
  }

  // Session policies on EBGP edges between instances of the pathway.
  for (const auto& session : network.bgp_sessions()) {
    if (session.external() || !session.ebgp()) continue;
    const std::uint32_t local = graph.set.instance_of[session.local_process];
    const std::uint32_t remote =
        graph.set.instance_of[session.remote_process];
    if (!pairs.contains({remote, local}) && !pairs.contains({local, remote})) {
      continue;
    }
    const auto& process = network.processes()[session.local_process];
    const auto& nbr = network.routers()[process.router]
                          .router_stanzas[process.stanza_index]
                          .neighbors[session.neighbor_index];
    auto add = [&](PathwayPolicy::Kind kind, const std::string& name,
                   bool inbound) {
      // Route flow for an inbound policy is remote -> local.
      out.push_back({kind, inbound ? remote : local, inbound ? local : remote,
                     process.router, name, inbound});
    };
    if (nbr.distribute_list_in) {
      add(PathwayPolicy::Kind::kSessionDistributeList, *nbr.distribute_list_in,
          true);
    }
    if (nbr.distribute_list_out) {
      add(PathwayPolicy::Kind::kSessionDistributeList,
          *nbr.distribute_list_out, false);
    }
    if (nbr.route_map_in) {
      add(PathwayPolicy::Kind::kSessionRouteMap, *nbr.route_map_in, true);
    }
    if (nbr.route_map_out) {
      add(PathwayPolicy::Kind::kSessionRouteMap, *nbr.route_map_out, false);
    }
  }
  return out;
}

}  // namespace rd::graph
