#pragma once

#include <cstdint>
#include <vector>

#include "graph/instances.h"

namespace rd::graph {

/// The route pathway graph for one router (paper §3.3): a breadth-first
/// search backwards along route flow from the router's RIB through the
/// instance graph, showing where every route the router uses can come from.
struct Pathway {
  struct Node {
    std::uint32_t instance = 0;  // index into the InstanceGraph's set
    std::uint32_t depth = 0;     // 0 = feeds the router RIB directly
  };
  struct Edge {
    /// Route flow direction: routes move from `source` into `sink`.
    std::uint32_t source_instance = 0;
    std::uint32_t sink_instance = 0;
    InstanceEdge::Kind kind = InstanceEdge::Kind::kRedistribution;
    bool has_policy = false;
  };

  model::RouterId router = model::kInvalidId;
  std::vector<Node> nodes;  // in BFS order
  std::vector<Edge> edges;
  /// True when some pathway reaches the external world — the router can
  /// learn routes originated outside the network.
  bool reaches_external = false;
  /// Instances whose routes reach this router via the external world only
  /// exist outside the model; this counts the layers of protocols and
  /// redistributions external routes traverse (net5's "at least 3 layers").
  std::uint32_t max_depth = 0;
};

Pathway compute_pathway(const model::Network& network,
                        const InstanceGraph& graph, model::RouterId router);

/// One policy located along a route pathway (paper §3.3: pathways "can be
/// used to locate all the routing policies that affect the routes seen by
/// any particular router, and pinpoint where the policies are applied").
struct PathwayPolicy {
  enum class Kind : std::uint8_t {
    kRedistributionRouteMap,   // route-map on a redistribute command
    kSessionDistributeList,    // per-neighbor distribute-list
    kSessionRouteMap,          // per-neighbor route-map
    kStanzaDistributeList,     // stanza-level distribute-list
  };
  Kind kind = Kind::kRedistributionRouteMap;
  std::uint32_t source_instance = 0;  // route flow: source -> sink
  std::uint32_t sink_instance = 0;
  model::RouterId router = model::kInvalidId;  // where it is applied
  std::string name;                            // ACL id or route-map name
  bool inbound = false;  // direction for session/stanza policies
};

/// Enumerate every policy applied on the edges of a router's pathway, with
/// the router where each is configured.
std::vector<PathwayPolicy> locate_pathway_policies(
    const model::Network& network, const InstanceGraph& graph,
    const Pathway& pathway);

}  // namespace rd::graph
