#include "graph/process_graph.h"

#include <algorithm>
#include <set>
#include <utility>

namespace rd::graph {

ProcessGraph ProcessGraph::build(const model::Network& network) {
  ProcessGraph g;

  // Vertices: every process RIB, then per-router local and router RIBs.
  g.process_vertex_.resize(network.processes().size());
  for (model::ProcessId p = 0; p < network.processes().size(); ++p) {
    g.process_vertex_[p] = static_cast<std::uint32_t>(g.vertices_.size());
    g.vertices_.push_back(
        {VertexKind::kProcessRib, network.processes()[p].router, p});
  }
  g.local_vertex_.resize(network.router_count());
  g.router_vertex_.resize(network.router_count());
  for (model::RouterId r = 0; r < network.router_count(); ++r) {
    g.local_vertex_[r] = static_cast<std::uint32_t>(g.vertices_.size());
    g.vertices_.push_back({VertexKind::kLocalRib, r, model::kInvalidId});
    g.router_vertex_[r] = static_cast<std::uint32_t>(g.vertices_.size());
    g.vertices_.push_back({VertexKind::kRouterRib, r, model::kInvalidId});
  }

  // Selection edges: every process RIB and the local RIB feed the router RIB.
  for (model::ProcessId p = 0; p < network.processes().size(); ++p) {
    const model::RouterId r = network.processes()[p].router;
    g.edges_.push_back({EdgeKind::kSelection, g.process_vertex_[p],
                        g.router_vertex_[r], false, std::nullopt,
                        model::kInvalidId});
  }
  for (model::RouterId r = 0; r < network.router_count(); ++r) {
    g.edges_.push_back({EdgeKind::kSelection, g.local_vertex_[r],
                        g.router_vertex_[r], false, std::nullopt,
                        model::kInvalidId});
  }

  // IGP adjacencies.
  for (const auto& adj : network.igp_adjacencies()) {
    g.edges_.push_back({EdgeKind::kIgpAdjacency,
                        g.process_vertex_[adj.process_a],
                        g.process_vertex_[adj.process_b], true, std::nullopt,
                        adj.link});
  }
  // Potential adjacencies to routers outside the data set.
  for (const auto& ext : network.external_igp_adjacencies()) {
    g.edges_.push_back({EdgeKind::kExternal, g.process_vertex_[ext.process],
                        g.process_vertex_[ext.process], false, std::nullopt,
                        network.interfaces()[ext.interface].link});
  }

  // BGP sessions; a session configured on both endpoints yields two
  // BgpSession records, collapsed here into one edge per process pair.
  std::set<std::pair<model::ProcessId, model::ProcessId>> seen_sessions;
  for (const auto& session : network.bgp_sessions()) {
    if (session.external()) {
      g.edges_.push_back({EdgeKind::kExternal,
                          g.process_vertex_[session.local_process],
                          g.process_vertex_[session.local_process], false,
                          std::nullopt, model::kInvalidId});
      continue;
    }
    const auto key = std::minmax(session.local_process, session.remote_process);
    if (!seen_sessions.insert(key).second) continue;
    g.edges_.push_back({EdgeKind::kBgpSession, g.process_vertex_[key.first],
                        g.process_vertex_[key.second], true, std::nullopt,
                        model::kInvalidId});
  }

  // Redistribution edges.
  for (const auto& redist : network.redistribution_edges()) {
    const std::uint32_t from =
        redist.source_kind == model::RibKind::kLocal
            ? g.local_vertex_[redist.router]
            : g.process_vertex_[redist.source_process];
    g.edges_.push_back({EdgeKind::kRedistribution, from,
                        g.process_vertex_[redist.target_process], false,
                        redist.route_map, model::kInvalidId});
  }

  // Incidence lists.
  g.incident_.resize(g.vertices_.size());
  for (std::uint32_t e = 0; e < g.edges_.size(); ++e) {
    g.incident_[g.edges_[e].from].push_back(e);
    if (g.edges_[e].to != g.edges_[e].from) {
      g.incident_[g.edges_[e].to].push_back(e);
    }
  }
  return g;
}

}  // namespace rd::graph
