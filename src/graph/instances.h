#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "model/network.h"

namespace rd::graph {

/// A routing instance (paper §3.2): the maximal set of routing processes of
/// one protocol that share routing information, computed as the transitive
/// closure of adjacency. The closure stops at protocol boundaries and at
/// EBGP adjacencies between different AS numbers, so a BGP instance is one
/// AS's IBGP-connected mesh.
struct RoutingInstance {
  config::RoutingProtocol protocol = config::RoutingProtocol::kOspf;
  /// The AS number, for BGP instances.
  std::optional<std::uint32_t> bgp_as;
  std::vector<model::ProcessId> processes;
  /// Distinct routers hosting those processes (the paper reports instance
  /// sizes in routers, e.g. net5's 445-router EIGRP instance).
  std::vector<model::RouterId> routers;

  std::size_t router_count() const noexcept { return routers.size(); }
};

/// The partition of a network's routing processes into instances.
struct InstanceSet {
  std::vector<RoutingInstance> instances;
  /// process id -> index into `instances`.
  std::vector<std::uint32_t> instance_of;
};

/// Compute instances via union-find over adjacencies (production path).
InstanceSet compute_instances(const model::Network& network);

/// Same partition via explicit BFS flood fill (the paper's §3.2 narrative
/// description). Kept as an independent implementation: tests assert both
/// produce identical partitions, and the ablation bench compares their cost.
InstanceSet compute_instances_bfs(const model::Network& network);

/// Edges of the routing instance graph (paper Figure 6): the heavy lines
/// where route exchange crosses instances — redistribution between processes
/// of different instances, EBGP sessions between different ASs, and
/// connections to the external world.
struct InstanceEdge {
  enum class Kind : std::uint8_t {
    kRedistribution,  // routes flow from -> to, inside some router
    kEbgpSession,     // bidirectional route exchange between two instances
    kExternal,        // `from` exchanges routes with the outside world
  };
  Kind kind = Kind::kRedistribution;
  std::uint32_t from = 0;  // instance index
  std::uint32_t to = 0;    // instance index; == from for kExternal
  /// Router where the exchange happens (redistribution / session endpoint).
  model::RouterId router = model::kInvalidId;
  std::optional<std::string> policy;  // route-map name, when annotated
};

struct InstanceGraph {
  InstanceSet set;
  std::vector<InstanceEdge> edges;

  static InstanceGraph build(const model::Network& network);
};

}  // namespace rd::graph
