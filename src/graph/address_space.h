#pragma once

#include <cstdint>
#include <vector>

#include "graph/instances.h"
#include "ip/ipv4.h"
#include "model/network.h"

namespace rd::graph {

/// The hierarchical address-block tree recovered from a network's subnets
/// (paper §3.4). Leaves are the subnets mentioned in the configurations;
/// internal nodes are the joined blocks; roots are the network's address
/// blocks ("AB0", "AB1", ... in the paper's Figure 12).
struct AddressSpaceStructure {
  struct Node {
    ip::Prefix block;
    std::int32_t parent = -1;           // -1 for roots
    std::vector<std::uint32_t> children;
    bool leaf = false;  // an original subnet (may also be a root)
  };

  std::vector<Node> nodes;
  std::vector<std::uint32_t> roots;

  /// Root blocks in ascending order — the recovered block plan.
  std::vector<ip::Prefix> root_blocks() const;

  /// Index of the root block containing an address, or -1.
  std::int32_t root_containing(ip::Ipv4Address addr) const;
};

/// Run the paper's join rule over a set of subnets: repeatedly join two
/// subnets whose network numbers differ in no more than the two low-order
/// mask bits, provided at least half of the enlarged block is used; record
/// the join tree.
AddressSpaceStructure extract_address_structure(
    std::vector<ip::Prefix> subnets);

/// Convenience: extract the structure of a network's interface subnets.
AddressSpaceStructure extract_address_structure(const model::Network& network);

/// Associate each routing instance with the root address blocks whose space
/// it touches (via covered interfaces for IGPs, via interface subnets of the
/// hosting routers for BGP) — the paper's first use of the structure (§3.4).
std::vector<std::vector<std::uint32_t>> blocks_per_instance(
    const model::Network& network, const InstanceSet& instances,
    const AddressSpaceStructure& structure);

/// Missing-router heuristic (paper §3.4): an external-facing interface whose
/// address sits inside a root block that is predominantly internal-facing
/// very likely points at a router whose configuration is absent from the
/// data set.
struct MissingRouterSuspect {
  model::InterfaceId interface = model::kInvalidId;
  std::uint32_t root_block = 0;
  /// Fraction of the root block's interfaces that are internal-facing.
  double internal_fraction = 0.0;
};

std::vector<MissingRouterSuspect> detect_missing_routers(
    const model::Network& network, const AddressSpaceStructure& structure,
    double internal_fraction_threshold = 0.8);

}  // namespace rd::graph
