#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/network.h"

namespace rd::graph {

/// The routing process graph (paper §3.1): vertices are RIBs — one per
/// routing process, plus each router's local RIB (connected + static routes)
/// and router RIB (the forwarding table) — and edges are every channel over
/// which routes can move between RIBs.
class ProcessGraph {
 public:
  enum class VertexKind : std::uint8_t {
    kProcessRib,  // one per routing process
    kLocalRib,    // one per router: connected subnets + static routes
    kRouterRib,   // one per router: the forwarding RIB
  };

  struct Vertex {
    VertexKind kind = VertexKind::kProcessRib;
    model::RouterId router = model::kInvalidId;
    model::ProcessId process = model::kInvalidId;  // kProcessRib only
  };

  enum class EdgeKind : std::uint8_t {
    kIgpAdjacency,    // same-protocol processes across a link (bidirectional)
    kBgpSession,      // configured BGP session (bidirectional)
    kRedistribution,  // within one router: source RIB -> target process RIB
    kSelection,       // process/local RIB -> router RIB (route selection)
    kExternal,        // adjacency or session to a router outside the data set
  };

  struct Edge {
    EdgeKind kind = EdgeKind::kIgpAdjacency;
    std::uint32_t from = 0;  // vertex index; for bidirectional kinds the
    std::uint32_t to = 0;    //   (from, to) order is not meaningful
    bool bidirectional = false;
    /// Policy annotation (route-map or distribute-list name), when present.
    std::optional<std::string> policy;
    model::LinkId link = model::kInvalidId;  // kIgpAdjacency only
  };

  static ProcessGraph build(const model::Network& network);

  const std::vector<Vertex>& vertices() const noexcept { return vertices_; }
  const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Vertex index of a process RIB / a router's local RIB / router RIB.
  std::uint32_t process_vertex(model::ProcessId p) const {
    return process_vertex_[p];
  }
  std::uint32_t local_rib_vertex(model::RouterId r) const {
    return local_vertex_[r];
  }
  std::uint32_t router_rib_vertex(model::RouterId r) const {
    return router_vertex_[r];
  }

  /// Edges incident to a vertex (indices into edges()).
  const std::vector<std::uint32_t>& incident_edges(std::uint32_t v) const {
    return incident_[v];
  }

 private:
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::vector<std::uint32_t> process_vertex_;
  std::vector<std::uint32_t> local_vertex_;
  std::vector<std::uint32_t> router_vertex_;
  std::vector<std::vector<std::uint32_t>> incident_;
};

}  // namespace rd::graph
