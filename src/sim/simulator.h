#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/propagation.h"
#include "model/network.h"
#include "sim/event_queue.h"

namespace rd::sim {

/// Protocol timing knobs, classic distance-vector (RIP) defaults. All
/// delays are simulated milliseconds; nothing reads a wall clock.
struct Timing {
  SimTime advertise_interval_ms = 30'000;  // periodic full-table update
  SimTime triggered_min_ms = 1'000;        // triggered-update jitter window
  SimTime triggered_max_ms = 5'000;
  SimTime invalid_after_ms = 180'000;  // route invalidation (expiry) timer
  SimTime gc_after_ms = 120'000;       // holddown before the entry is freed
  SimTime link_delay_min_ms = 10;      // per-edge propagation delay window
  SimTime link_delay_max_ms = 50;
};

/// One failure scenario: the named routers go down at `fail_at_ms` and
/// (when `recover_at_ms` is set — a flap) come back later. Masking follows
/// prop::masked: seeds, endpoints, aggregates, and redistribution points
/// owned by a failed router disappear; session flows need both endpoint
/// routers alive. `failed` must be sorted ascending.
struct Scenario {
  std::string name;
  std::vector<model::RouterId> failed;
  SimTime fail_at_ms = 120'000;
  std::optional<SimTime> recover_at_ms;
};

struct Options {
  std::uint64_t seed = 42;
  /// Hard stop (simulated ms). 0 = automatic: last scenario event plus two
  /// settle windows (a settle window is invalid + gc + 2 advertisement
  /// intervals — after that long with no state change, nothing pending can
  /// change anything again).
  SimTime until_ms = 0;
  Timing timing;
  /// Append a per-event line to ScenarioResult::log — the byte-exact
  /// determinism witness. Off for fleet sweeps (reports carry summaries).
  bool record_log = false;
  /// Compare converged RIBs against the static semi-naïve fixpoint: the
  /// mid-failure state against prop::masked's fixpoint, the final state
  /// against the baseline's (or the masked one when there is no recovery).
  bool cross_check = true;
};

/// Per-scenario outcome. All counters are logical-event counts, identical
/// on every run of the same seed at any host thread count.
struct ScenarioResult {
  std::string name;
  bool had_failure = false;  // scenario had a non-empty failed set
  bool quiesced = false;   // reached quiescence before the time cap
  SimTime end_ms = 0;      // simulated time when the run stopped
  /// Time from the fail (resp. recover) event to the last route change it
  /// caused — the transient length operators care about.
  SimTime settle_after_fail_ms = 0;
  SimTime settle_after_recover_ms = 0;
  std::size_t events_processed = 0;
  std::size_t updates_delivered = 0;  // advertisement deliveries processed
  std::size_t route_changes = 0;
  /// Route changes that left the instance-graph next-hop chain for the
  /// changed route cyclic — a transient forwarding micro-loop.
  std::size_t microloops = 0;
  /// Closed blackhole windows: a (instance, route) that lost its valid
  /// entry and regained one later in the run. Open-at-end outages are the
  /// converged state, not a transient, and are not windows.
  std::size_t blackhole_windows = 0;
  SimTime blackhole_total_ms = 0;
  SimTime blackhole_max_ms = 0;
  std::size_t final_route_count = 0;  // sum of valid entries over instances
  /// Fixpoint cross-checks (Options::cross_check): true when the simulated
  /// RIBs equal the static semi-naïve engine's on the same (masked)
  /// problem; `mismatched_routes` counts the symmetric difference.
  bool degraded_match = true;
  bool final_match = true;
  std::size_t mismatched_routes = 0;
  std::string log;  // event log when Options::record_log
};

/// Runs one scenario of timed distance-vector convergence over the routing
/// instance graph described by `baseline` (prop::discover's output for the
/// intact network). Deterministic in (baseline, scenario, options.seed):
/// the caller may fan scenarios out across threads and merge in scenario
/// order for byte-identical sweeps. `baseline_routes`, when provided, is
/// the precomputed baseline semi-naïve fixpoint (shared across a sweep);
/// pass nullptr to have the run compute what it needs.
ScenarioResult simulate(
    const analysis::prop::Problem& baseline, const Scenario& scenario,
    const Options& options,
    const std::vector<std::vector<model::Route>>* baseline_routes);

}  // namespace rd::sim
