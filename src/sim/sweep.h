#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/instances.h"
#include "model/network.h"
#include "sim/simulator.h"
#include "util/thread_pool.h"

namespace rd::sim {

/// Sweep-level knobs, shared by the CLI, the daemon op, and the fleet
/// bench. Scenario runs derive everything else from `seed`, so two sweeps
/// with equal options are byte-identical at any thread count.
struct SweepOptions {
  std::uint64_t seed = 42;
  SimTime until_ms = 0;  // 0 = per-scenario automatic cap
  /// Cap on failure scenarios per network (0 = all). The fleet report uses
  /// a small cap and says so; single-network reports default to all.
  std::size_t max_scenarios = 0;
  /// Cap on the external route universe fed to the simulation (0 = all).
  /// The first N prefixes in ascending order are kept — deterministic, and
  /// the default route sorts first. Backbone/tier-2 policies mention tens
  /// of thousands of prefixes; simulating timer dynamics does not need all
  /// of them, and the fixpoint cross-check runs on the same truncated
  /// problem so it stays exact. The cap is stated in the report.
  std::size_t max_external_prefixes = 1024;
  bool record_log = false;
  bool cross_check = true;
  Timing timing;
};

/// The scenario set for one network: a no-failure convergence baseline
/// followed by one fail/recover flap per interesting single-router failure
/// (analysis::single_failure_scenarios: articulation routers and sole
/// redistribution points), capped at `max_scenarios` flaps when non-zero.
/// Failure hits at t=240s (well past initial convergence); the outage lasts
/// 1800s so even a worst-case count-to-infinity transient has quiesced
/// before recovery — the mid-failure RIBs the cross-check snapshots are the
/// masked fixpoint, not a moving target.
std::vector<Scenario> flap_scenarios(const model::Network& network,
                                     const graph::InstanceGraph& graph,
                                     std::size_t max_scenarios);

/// Run every scenario on the pool. Scenarios are independent (each builds
/// its own policy compiler over the shared Problem) and results are merged
/// in scenario order, so the output is byte-identical to the serial loop.
std::vector<ScenarioResult> sweep_scenarios(
    const model::Network& network, const graph::InstanceSet& instances,
    const std::vector<Scenario>& scenarios, const SweepOptions& options,
    util::ThreadPool& pool);

/// One network's convergence report: per-scenario table (settle times,
/// transient micro-loops, blackhole windows, fixpoint verdicts) plus
/// totals. No thread count appears in the text — the daemon/CLI
/// differential diffs it verbatim.
std::string simulate_report(const model::Network& network,
                            const graph::InstanceGraph& graph,
                            const SweepOptions& options,
                            util::ThreadPool& pool);

/// The 31-network synthetic fleet: per-network summary rows plus
/// convergence-time distributions per archetype. `fleet_seed` picks the
/// fleet (bench::kFleetSeed = 42 everywhere else); `options.seed` drives
/// the simulations.
std::string fleet_simulation_report(std::uint64_t fleet_seed,
                                    const SweepOptions& options,
                                    util::ThreadPool& pool);

}  // namespace rd::sim
