#include "sim/sweep.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "analysis/whatif.h"
#include "obs/obs.h"
#include "synth/fleet.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace rd::sim {
namespace {

using util::appendf;

/// Failure timing of the standard flap: fail well past initial
/// convergence, keep the outage long enough that the slowest transient
/// (count-to-infinity climbs at triggered-update pace, bounded by the
/// infinity metric) finishes before recovery. See flap_scenarios() docs.
constexpr SimTime kFailAtMs = 240'000;
constexpr SimTime kOutageMs = 1'800'000;

double ms_to_s(SimTime ms) { return static_cast<double>(ms) / 1000.0; }

std::string fmt_seconds(SimTime ms) {
  return util::fmt_double(ms_to_s(ms), 1);
}

}  // namespace

std::vector<Scenario> flap_scenarios(const model::Network& network,
                                     const graph::InstanceGraph& graph,
                                     std::size_t max_scenarios) {
  std::vector<Scenario> out;
  Scenario baseline;
  baseline.name = "baseline-convergence";
  out.push_back(std::move(baseline));
  auto failures = analysis::single_failure_scenarios(network, graph);
  if (max_scenarios != 0 && failures.size() > max_scenarios) {
    failures.resize(max_scenarios);
  }
  for (auto& failure : failures) {
    Scenario scenario;
    scenario.name = failure.name + "-flap";
    scenario.failed = std::move(failure.failed);
    std::sort(scenario.failed.begin(), scenario.failed.end());
    scenario.fail_at_ms = kFailAtMs;
    scenario.recover_at_ms = kFailAtMs + kOutageMs;
    out.push_back(std::move(scenario));
  }
  return out;
}

std::vector<ScenarioResult> sweep_scenarios(
    const model::Network& network, const graph::InstanceSet& instances,
    const std::vector<Scenario>& scenarios, const SweepOptions& options,
    util::ThreadPool& pool) {
  obs::Span span("sim.sweep", "sim");
  span.arg("scenarios", scenarios.size());
  auto universe = analysis::prop::external_universe(network, {});
  if (options.max_external_prefixes != 0 &&
      universe.size() > options.max_external_prefixes) {
    universe.resize(options.max_external_prefixes);
  }
  const analysis::prop::Problem problem =
      analysis::prop::discover(network, instances, {}, universe);
  // The baseline fixpoint is shared by every flap scenario's final check;
  // computed once, read-only afterwards.
  std::vector<std::vector<model::Route>> baseline_routes;
  if (options.cross_check) {
    baseline_routes = analysis::prop::run_semi_naive(problem, {}).routes;
  }
  Options scenario_options;
  scenario_options.seed = options.seed;
  scenario_options.until_ms = options.until_ms;
  scenario_options.timing = options.timing;
  scenario_options.record_log = options.record_log;
  scenario_options.cross_check = options.cross_check;
  return util::parallel_map(pool, scenarios, [&](const Scenario& scenario) {
    return simulate(problem, scenario, scenario_options,
                    options.cross_check ? &baseline_routes : nullptr);
  });
}

std::string simulate_report(const model::Network& network,
                            const graph::InstanceGraph& graph,
                            const SweepOptions& options,
                            util::ThreadPool& pool) {
  std::string out;
  const auto scenarios = flap_scenarios(network, graph, options.max_scenarios);
  const auto results =
      sweep_scenarios(network, graph.set, scenarios, options, pool);
  appendf(out, "=== Convergence simulation ===\n");
  // No thread count here: the output is byte-identical at every
  // concurrency level, and the daemon/CLI differential diffs it.
  appendf(out,
          "seed %llu, %zu scenarios (%zu flaps), %zu routing instances\n",
          static_cast<unsigned long long>(options.seed), results.size(),
          results.size() - 1, graph.set.instances.size());
  if (options.max_external_prefixes != 0) {
    appendf(out,
            "external route universe capped at %zu prefixes (ascending "
            "order; cross-checks run on the same capped problem)\n",
            options.max_external_prefixes);
  }
  util::Table table({"scenario", "quiesced", "settle fail", "settle rec",
                     "changes", "loops", "blackholes", "max bh", "fixpoint"});
  std::size_t mismatches = 0;
  for (const auto& result : results) {
    const bool ok = result.degraded_match && result.final_match;
    if (!ok) ++mismatches;
    table.add_row(
        {result.name, result.quiesced ? "yes" : "NO",
         fmt_seconds(result.settle_after_fail_ms),
         fmt_seconds(result.settle_after_recover_ms),
         util::fmt_int(static_cast<long long>(result.route_changes)),
         util::fmt_int(static_cast<long long>(result.microloops)),
         util::fmt_int(static_cast<long long>(result.blackhole_windows)),
         fmt_seconds(result.blackhole_max_ms), ok ? "ok" : "MISMATCH"});
  }
  out += table.to_string();
  if (options.cross_check) {
    if (mismatches == 0) {
      appendf(out,
              "fixpoint cross-check: every scenario's RIBs match the "
              "static semi-naive engine\n");
    } else {
      appendf(out, "fixpoint cross-check: %zu scenario(s) MISMATCHED\n",
              mismatches);
    }
  }
  return out;
}

std::string fleet_simulation_report(std::uint64_t fleet_seed,
                                    const SweepOptions& options,
                                    util::ThreadPool& pool) {
  std::string out;
  // The fleet tier caps flaps per network so the tier stays minutes, not
  // hours; the cap is stated so nobody mistakes it for full coverage.
  SweepOptions per_network = options;
  if (per_network.max_scenarios == 0) per_network.max_scenarios = 4;
  appendf(out,
          "=== Fleet convergence simulation (fleet seed %llu, sim seed "
          "%llu) ===\n",
          static_cast<unsigned long long>(fleet_seed),
          static_cast<unsigned long long>(options.seed));
  appendf(out,
          "flap scenarios capped at %zu per network (articulation / sole "
          "redistribution routers, analysis::single_failure_scenarios "
          "order)\n",
          per_network.max_scenarios);
  if (per_network.max_external_prefixes != 0) {
    appendf(out,
            "external route universe capped at %zu prefixes per network "
            "(ascending order; cross-checks run on the same capped "
            "problem)\n",
            per_network.max_external_prefixes);
  }

  struct ArchetypeStats {
    std::size_t networks = 0;
    std::size_t scenarios = 0;
    std::size_t quiesced = 0;
    std::size_t microloops = 0;
    std::size_t blackhole_windows = 0;
    std::size_t mismatches = 0;
    std::vector<double> settle_fail_s;
    std::vector<double> settle_recover_s;
  };
  std::vector<std::pair<std::string, ArchetypeStats>> archetypes;
  const auto stats_for = [&](const std::string& name) -> ArchetypeStats& {
    for (auto& [key, value] : archetypes) {
      if (key == name) return value;
    }
    archetypes.emplace_back(name, ArchetypeStats{});
    return archetypes.back().second;
  };

  util::Table networks_table({"network", "archetype", "inst", "scen",
                              "quiesced", "fail p50", "fail max", "rec p50",
                              "rec max", "loops", "bh", "fixpoint"});
  const auto fleet = synth::generate_fleet(fleet_seed);
  for (const auto& net : fleet.networks) {
    const model::Network network = model::Network::build(net.configs);
    const graph::InstanceGraph ig = graph::InstanceGraph::build(network);
    const auto scenarios =
        flap_scenarios(network, ig, per_network.max_scenarios);
    const auto results =
        sweep_scenarios(network, ig.set, scenarios, per_network, pool);

    ArchetypeStats& stats = stats_for(net.archetype);
    ++stats.networks;
    std::vector<double> fail_s;
    std::vector<double> recover_s;
    std::size_t quiesced = 0;
    std::size_t loops = 0;
    std::size_t blackholes = 0;
    std::size_t mismatches = 0;
    for (const auto& result : results) {
      ++stats.scenarios;
      if (result.quiesced) {
        ++quiesced;
        ++stats.quiesced;
      }
      loops += result.microloops;
      blackholes += result.blackhole_windows;
      if (!(result.degraded_match && result.final_match)) ++mismatches;
      if (result.had_failure) {
        fail_s.push_back(ms_to_s(result.settle_after_fail_ms));
        recover_s.push_back(ms_to_s(result.settle_after_recover_ms));
      }
    }
    stats.microloops += loops;
    stats.blackhole_windows += blackholes;
    stats.mismatches += mismatches;
    stats.settle_fail_s.insert(stats.settle_fail_s.end(), fail_s.begin(),
                               fail_s.end());
    stats.settle_recover_s.insert(stats.settle_recover_s.end(),
                                  recover_s.begin(), recover_s.end());
    networks_table.add_row(
        {net.name, net.archetype,
         util::fmt_int(static_cast<long long>(ig.set.instances.size())),
         util::fmt_int(static_cast<long long>(results.size())),
         util::fmt_int(static_cast<long long>(quiesced)),
         fail_s.empty() ? "-" : util::fmt_double(util::quantile(fail_s, 0.5),
                                                 1),
         fail_s.empty()
             ? "-"
             : util::fmt_double(
                   *std::max_element(fail_s.begin(), fail_s.end()), 1),
         recover_s.empty()
             ? "-"
             : util::fmt_double(util::quantile(recover_s, 0.5), 1),
         recover_s.empty()
             ? "-"
             : util::fmt_double(
                   *std::max_element(recover_s.begin(), recover_s.end()), 1),
         util::fmt_int(static_cast<long long>(loops)),
         util::fmt_int(static_cast<long long>(blackholes)),
         mismatches == 0 ? "ok" : "MISMATCH"});
  }
  out += networks_table.to_string();

  appendf(out, "\nConvergence-time distributions per archetype (seconds, "
               "flap scenarios only):\n");
  util::Table archetype_table({"archetype", "networks", "scenarios",
                               "fail p50", "fail p95", "fail max", "rec p50",
                               "rec p95", "rec max", "loops", "bh windows",
                               "fixpoint"});
  std::size_t total_mismatches = 0;
  for (const auto& [name, stats] : archetypes) {
    total_mismatches += stats.mismatches;
    const auto dist = [](const std::vector<double>& values, double q) {
      return values.empty() ? std::string("-")
                            : util::fmt_double(util::quantile(values, q), 1);
    };
    const auto max_of = [](const std::vector<double>& values) {
      return values.empty()
                 ? std::string("-")
                 : util::fmt_double(
                       *std::max_element(values.begin(), values.end()), 1);
    };
    archetype_table.add_row(
        {name, util::fmt_int(static_cast<long long>(stats.networks)),
         util::fmt_int(static_cast<long long>(stats.scenarios)),
         dist(stats.settle_fail_s, 0.5), dist(stats.settle_fail_s, 0.95),
         max_of(stats.settle_fail_s), dist(stats.settle_recover_s, 0.5),
         dist(stats.settle_recover_s, 0.95), max_of(stats.settle_recover_s),
         util::fmt_int(static_cast<long long>(stats.microloops)),
         util::fmt_int(static_cast<long long>(stats.blackhole_windows)),
         stats.mismatches == 0 ? "ok" : "MISMATCH"});
  }
  out += archetype_table.to_string();
  if (options.cross_check) {
    if (total_mismatches == 0) {
      appendf(out,
              "fixpoint cross-check: every scenario on every network "
              "matches the static semi-naive engine\n");
    } else {
      appendf(out, "fixpoint cross-check: %zu scenario(s) MISMATCHED\n",
              total_mismatches);
    }
  }
  return out;
}

}  // namespace rd::sim
