#include "sim/simulator.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/policy.h"
#include "obs/obs.h"
#include "util/rng.h"
#include "util/strings.h"

namespace rd::sim {
namespace {

using analysis::prop::compile_session_dir;
using analysis::prop::compile_stanza_dir;
using analysis::prop::CompiledSessionDir;
using analysis::prop::CompiledStanzaDir;
using analysis::prop::DomainIndex;
using analysis::prop::Problem;
using model::Route;

constexpr SimTime kNever = ~SimTime{0};
constexpr std::uint16_t kNoMetric = 0xFFFF;
constexpr std::int32_t kViaLocal = -1;   // Entry::via_edge: locally sourced
constexpr std::int64_t kMapDeny = -1;    // SimEdge::map: chain denies
constexpr std::int64_t kMapUnknown = -2; // SimEdge::map: not yet evaluated

/// One RIB slot: the state of (instance, domain position). The generation
/// counter ties the entry to its timer-wheel node — bumping it on every
/// state transition orphans whatever node the old state had in the wheel.
struct Entry {
  std::uint16_t metric = kNoMetric;
  std::uint8_t state = 0;  // 0 absent, 1 valid, 2 invalid (holddown)
  std::uint8_t had_valid = 0;
  std::int32_t via_edge = kViaLocal;  // edge the route was learned over
  std::uint32_t src_pos = 0;  // sender-side domain position (loop walks)
  std::uint32_t gen = 0;
  SimTime deadline_ms = 0;  // expiry (valid) / gc (invalid) deadline
  SimTime lost_at_ms = 0;   // when the last valid entry disappeared
};

/// Per-instance RIB: entries stored densely in first-touch order with an
/// open-addressed position index on top. Fleets have thousands of
/// one-router instances holding a handful of routes each — indexing them
/// by domain position directly would cost instances × domain, sparse
/// storage costs only what each instance actually holds. at() references
/// are invalidated by later at() calls (the entry table grows), exactly
/// like vector references; no caller below holds one across an insert.
class InstanceRib {
 public:
  Entry& at(std::uint32_t pos) {
    if (keys_.empty()) grow(16);
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = hash32(pos) & mask;
    while (keys_[i] != 0) {
      if (keys_[i] == pos + 1) return entries_[slots_[i]];
      i = (i + 1) & mask;
    }
    if ((entries_.size() + 1) * 4 > keys_.size() * 3) {
      grow(keys_.size() * 2);
      return at(pos);
    }
    keys_[i] = pos + 1;
    slots_[i] = static_cast<std::uint32_t>(entries_.size());
    pos_of_.push_back(pos);
    entries_.emplace_back();
    return entries_.back();
  }

  Entry* find(std::uint32_t pos) {
    if (keys_.empty()) return nullptr;
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = hash32(pos) & mask;
    while (keys_[i] != 0) {
      if (keys_[i] == pos + 1) return &entries_[slots_[i]];
      i = (i + 1) & mask;
    }
    return nullptr;
  }

  std::size_t size() const noexcept { return entries_.size(); }
  Entry& entry(std::size_t slot) noexcept { return entries_[slot]; }
  std::uint32_t pos(std::size_t slot) const noexcept { return pos_of_[slot]; }

 private:
  static std::uint32_t hash32(std::uint32_t x) noexcept {
    x *= 0x9e3779b9u;
    return x ^ (x >> 16);
  }

  void grow(std::size_t want) {
    std::vector<std::uint32_t> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_slots = std::move(slots_);
    keys_.assign(want, 0);
    slots_.assign(want, 0);
    const std::size_t mask = want - 1;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == 0) continue;
      std::size_t j = hash32(old_keys[i] - 1) & mask;
      while (keys_[j] != 0) j = (j + 1) & mask;
      keys_[j] = old_keys[i];
      slots_[j] = old_slots[i];
    }
  }

  std::vector<std::uint32_t> keys_;   // pos + 1; 0 = empty
  std::vector<std::uint32_t> slots_;  // index into entries_
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> pos_of_;  // slot -> pos
};

/// A directed propagation edge with its policy chain compiled and a
/// per-source-position verdict cache (`map`): what a sender-side position
/// becomes on the receiver side, or kMapDeny. Redistribution rewrites
/// intern into the shared domain exactly like the static engine.
struct SimEdge {
  bool is_flow = true;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  model::RouterId from_router = model::kInvalidId;
  model::RouterId to_router = model::kInvalidId;
  CompiledSessionDir sender_out;  // flow chain
  CompiledSessionDir receiver_in;
  const model::CompiledRouteMap* route_map = nullptr;  // redist chain
  CompiledStanzaDir outbound;
  SimTime delay_ms = 0;
  bool up = true;
  std::vector<std::int64_t> map;  // source pos -> target pos / deny
};

/// A seed or aggregate summary: a single route present in an instance
/// without being learned over an edge, owned by one router.
struct PointSource {
  std::uint32_t instance = 0;
  std::uint32_t pos = 0;
  model::RouterId router = model::kInvalidId;
  std::int32_t aggregate = -1;  // index into aggregates_, or -1 for seeds
};

/// External injections, grouped: endpoints of one instance sharing one
/// compiled inbound chain inject exactly the same universe positions, so
/// the chain is evaluated once into a shared permit bitmap and the group
/// just lists its owner routers. The injection lives while ANY owner does
/// — the same masking rule prop::masked applies per endpoint.
struct InjectionGroup {
  std::uint32_t instance = 0;
  const std::vector<std::uint64_t>* permit_bits = nullptr;
  std::vector<model::RouterId> owners;
};

/// Live aggregate bookkeeping: the summary installs while any strictly
/// contained route is valid in the instance (same predicate as the static
/// engine's aggregation edge, maintained incrementally here).
struct AggregateState {
  std::uint32_t instance = 0;
  std::uint32_t pos = 0;  // domain position of the summary route
  ip::Prefix prefix;
  std::size_t contributors = 0;
};

class Run {
 public:
  Run(const Problem& baseline, const Scenario& scenario,
      const Options& options,
      const std::vector<std::vector<Route>>* baseline_routes)
      : baseline_(baseline),
        scenario_(scenario),
        options_(options),
        timing_(options.timing),
        baseline_routes_(baseline_routes),
        rng_(util::Rng(options.seed).fork(scenario.name)),
        wheel_(std::max(timing_.invalid_after_ms, timing_.gc_after_ms)),
        domain_(baseline.universe),
        index_(baseline.universe.size() + baseline.seeds.size()),
        offer_count_(static_cast<std::uint32_t>(baseline.universe.size())) {
    const std::size_t n = baseline.instance_count;
    infinity_ = static_cast<std::uint16_t>(
        std::clamp<std::size_t>(2 * n + 4, 16, 255));
    for (std::size_t u = 0; u < domain_.size(); ++u) {
      index_.insert(analysis::prop::route_key(domain_[u]),
                    static_cast<std::uint32_t>(u));
    }
    ribs_.resize(n);
    out_edges_.resize(n);
    groups_by_instance_.resize(n);
    triggered_pending_.assign(n, 0);
    build_edges();
    build_sources();
  }

  ScenarioResult run();

 private:
  // --- construction ---------------------------------------------------------

  std::uint32_t intern(const Route& route) {
    const auto next = static_cast<std::uint32_t>(domain_.size());
    const std::uint32_t pos =
        index_.insert(analysis::prop::route_key(route), next);
    if (pos == next) domain_.push_back(route);
    return pos;
  }

  void build_edges() {
    // Self-edges (a flow or redistribution back into the same instance)
    // can never change an instance's route set and only add poisoned
    // noise to the event stream; the static engine keeps them because
    // they are harmless there, the simulator skips them.
    for (const auto& flow : baseline_.flows) {
      if (flow.from_instance == flow.to_instance) continue;
      SimEdge edge;
      edge.is_flow = true;
      edge.from = flow.from_instance;
      edge.to = flow.to_instance;
      edge.from_router = flow.from_router;
      edge.to_router = flow.to_router;
      edge.sender_out = compile_session_dir(compiler_, flow.sender_out, false);
      edge.receiver_in = compile_session_dir(compiler_, flow.receiver_in, true);
      push_edge(std::move(edge));
    }
    for (const auto& redist : baseline_.redist_edges) {
      if (redist.from_instance == redist.to_instance) continue;
      SimEdge edge;
      edge.is_flow = false;
      edge.from = redist.from_instance;
      edge.to = redist.to_instance;
      edge.from_router = redist.router;
      edge.to_router = redist.router;
      if (*redist.route_map) {
        edge.route_map =
            compiler_.route_map(*redist.config, **redist.route_map);
      }
      edge.outbound =
          compile_stanza_dir(compiler_, *redist.config, *redist.stanza, false);
      push_edge(std::move(edge));
    }
  }

  void push_edge(SimEdge edge) {
    edge.delay_ms =
        timing_.link_delay_min_ms +
        rng_.below(timing_.link_delay_max_ms - timing_.link_delay_min_ms + 1);
    out_edges_[edge.from].push_back(static_cast<std::uint32_t>(edges_.size()));
    edges_.push_back(std::move(edge));
  }

  template <typename Chain>
  const std::vector<std::uint64_t>* permit_bits_for(
      std::map<std::vector<const void*>,
               std::unique_ptr<std::vector<std::uint64_t>>>& cache,
      const std::vector<const void*>& key, const Chain& chain) {
    auto& slot = cache[key];
    if (!slot) {
      slot = std::make_unique<std::vector<std::uint64_t>>(
          (offer_count_ + 63) / 64, 0);
      for (std::uint32_t u = 0; u < offer_count_; ++u) {
        if (chain.permits(domain_[u])) {
          (*slot)[u >> 6] |= 1ULL << (u & 63);
        }
      }
    }
    return slot.get();
  }

  void add_group(std::uint32_t instance,
                 const std::vector<std::uint64_t>* bits,
                 model::RouterId router) {
    for (const std::uint32_t id : groups_by_instance_[instance]) {
      if (groups_[id].permit_bits == bits) {
        groups_[id].owners.push_back(router);
        return;
      }
    }
    groups_by_instance_[instance].push_back(
        static_cast<std::uint32_t>(groups_.size()));
    groups_.push_back({instance, bits, {router}});
  }

  void build_sources() {
    for (const auto& seed : baseline_.seeds) {
      add_point({seed.instance, intern(seed.route), seed.router, -1});
    }
    // External injections, one compiled-chain evaluation per distinct
    // chain (fleets have thousands of endpoints sharing a handful of
    // policies), grouped per (instance, chain) with per-owner masking.
    std::map<std::vector<const void*>,
             std::unique_ptr<std::vector<std::uint64_t>>>
        chain_bits;
    for (const auto& endpoint : baseline_.external_endpoints) {
      const CompiledSessionDir inbound =
          compile_session_dir(compiler_, endpoint.policy, true);
      const auto* bits = permit_bits_for(
          chain_bits,
          {inbound.distribute_list, inbound.prefix_list, inbound.route_map},
          inbound);
      add_group(endpoint.instance, bits, endpoint.router);
    }
    for (const auto& endpoint : baseline_.external_igp_endpoints) {
      const CompiledStanzaDir inbound = compile_stanza_dir(
          compiler_, *endpoint.config, *endpoint.stanza, true);
      std::vector<const void*> key;
      key.reserve(inbound.acls.size() + 1);
      key.push_back(nullptr);  // namespace stanza keys apart from sessions
      for (const auto* acl : inbound.acls) key.push_back(acl);
      const auto* bits = permit_bits_for(chain_bits, key, inbound);
      add_group(endpoint.instance, bits, endpoint.router);
    }
    injection_bits_ = std::move(chain_bits);
    for (const auto& point : baseline_.aggregate_points) {
      const std::uint32_t pos = intern(Route{point.prefix, std::nullopt});
      const auto idx = static_cast<std::int32_t>(aggregates_.size());
      aggregates_.push_back({point.instance, pos, point.prefix, 0});
      add_point({point.instance, pos, point.router, idx});
    }
  }

  void add_point(PointSource source) {
    const std::uint64_t key =
        (std::uint64_t{source.instance} << 32) | source.pos;
    point_index_[key].push_back(
        static_cast<std::uint32_t>(point_sources_.size()));
    point_sources_.push_back(source);
  }

  // --- state access ---------------------------------------------------------

  bool router_is_down(model::RouterId router) const {
    return down_active_ &&
           std::binary_search(scenario_.failed.begin(),
                              scenario_.failed.end(), router);
  }

  bool edge_should_be_up(const SimEdge& edge) const {
    return !router_is_down(edge.from_router) &&
           !router_is_down(edge.to_router);
  }

  bool injection_covers(std::uint32_t instance, std::uint32_t pos) const {
    if (pos >= offer_count_) return false;
    for (const std::uint32_t id : groups_by_instance_[instance]) {
      const InjectionGroup& group = groups_[id];
      if (!((*group.permit_bits)[pos >> 6] >> (pos & 63) & 1)) continue;
      for (const model::RouterId owner : group.owners) {
        if (!router_is_down(owner)) return true;
      }
    }
    return false;
  }

  std::string route_text(std::uint32_t pos) const {
    const Route& route = domain_[pos];
    std::string text = route.prefix.to_string();
    if (route.tag) {
      text += '#';
      text += std::to_string(*route.tag);
    }
    return text;
  }

  // --- transitions ----------------------------------------------------------

  void log_line(SimTime t, std::uint32_t instance, std::uint32_t pos,
                const char* how, const Entry& entry) {
    if (!options_.record_log) return;
    util::appendf(result_.log, "t=%llu inst=%u %s %s m=%u via=%d\n",
                  static_cast<unsigned long long>(t), instance, how,
                  route_text(pos).c_str(), unsigned{entry.metric},
                  entry.via_edge >= 0
                      ? static_cast<int>(edges_[entry.via_edge].from)
                      : -1);
  }

  void changed(std::uint32_t instance, std::uint32_t pos, SimTime t,
               const char* how) {
    last_change_ = t;
    ++result_.route_changes;
    if (fail_done_ && !recover_done_) {
      result_.settle_after_fail_ms = t - scenario_.fail_at_ms;
    } else if (recover_done_) {
      result_.settle_after_recover_ms = t - *scenario_.recover_at_ms;
    }
    schedule_triggered(instance, t);
    const Entry& entry = ribs_[instance].at(pos);
    if (entry.state == 1 && entry.via_edge >= 0) {
      check_microloop(instance, pos);
    }
    log_line(t, instance, pos, how, entry);
  }

  void make_valid(std::uint32_t instance, std::uint32_t pos,
                  std::uint16_t metric, std::int32_t via,
                  std::uint32_t src_pos, SimTime t, const char* how) {
    bool was_valid;
    bool closes_window;
    {
      Entry& entry = ribs_[instance].at(pos);
      was_valid = entry.state == 1;
      closes_window = !was_valid && entry.had_valid;
      entry.metric = metric;
      entry.via_edge = via;
      entry.src_pos = src_pos;
      ++entry.gen;
      if (via >= 0) {
        entry.deadline_ms = t + timing_.invalid_after_ms;
        wheel_.insert(entry.deadline_ms, {instance, pos, entry.gen});
      } else {
        entry.deadline_ms = 0;  // local entries never expire
      }
      if (closes_window) {
        const SimTime window = t - entry.lost_at_ms;
        ++result_.blackhole_windows;
        result_.blackhole_total_ms += window;
        result_.blackhole_max_ms = std::max(result_.blackhole_max_ms, window);
      }
      entry.state = 1;
    }  // reference dropped: adjust_aggregates below may grow the table
    if (!was_valid) adjust_aggregates(instance, pos, +1, t);
    changed(instance, pos, t, how);
  }

  void make_invalid(std::uint32_t instance, std::uint32_t pos, SimTime t,
                    const char* how) {
    {
      Entry& entry = ribs_[instance].at(pos);
      entry.state = 2;
      entry.metric = infinity_;
      ++entry.gen;
      entry.deadline_ms = t + timing_.gc_after_ms;
      wheel_.insert(entry.deadline_ms, {instance, pos, entry.gen});
      entry.had_valid = 1;
      entry.lost_at_ms = t;
    }
    adjust_aggregates(instance, pos, -1, t);
    changed(instance, pos, t, how);
  }

  void make_absent(std::uint32_t instance, std::uint32_t pos, SimTime t) {
    Entry& entry = ribs_[instance].at(pos);
    entry.state = 0;
    entry.metric = kNoMetric;
    ++entry.gen;
    // Garbage collection drops the entry from advertisements, but an
    // absent route and an infinity route install identically at every
    // receiver, so this is not a route change and does not reset the
    // quiescence clock.
    log_line(t, instance, pos, "gc", entry);
  }

  /// Maintains each aggregate's contributor count when (instance, pos)
  /// flips valid <-> not-valid, and reconciles the summary entry. Strict
  /// containment mirrors the static engine: the summary's own prefix never
  /// contributes, tagged variants of it included.
  void adjust_aggregates(std::uint32_t instance, std::uint32_t pos, int delta,
                         SimTime t) {
    if (aggregates_.empty()) return;
    const ip::Prefix prefix = domain_[pos].prefix;
    for (std::size_t i = 0; i < aggregates_.size(); ++i) {
      AggregateState& aggregate = aggregates_[i];
      if (aggregate.instance != instance) continue;
      if (prefix == aggregate.prefix) continue;
      if (!aggregate.prefix.contains(prefix)) continue;
      aggregate.contributors += delta;
      reconcile_local(aggregate.instance, aggregate.pos, t,
                      delta > 0 ? "aggregate" : "aggregate-lost");
    }
  }

  /// Re-derives the local-source verdict for (instance, pos): installs the
  /// best live source (seeds and live aggregates at metric 0, external
  /// injections at metric 1), or invalidates a local entry whose sources
  /// are all gone. Remote entries are untouched — a lost local route may
  /// still be re-learned from a neighbor (and until then counts as a
  /// blackhole).
  void reconcile_local(std::uint32_t instance, std::uint32_t pos, SimTime t,
                       const char* how) {
    bool want = false;
    std::uint16_t metric = 1;
    const auto it = point_index_.find((std::uint64_t{instance} << 32) | pos);
    if (it != point_index_.end()) {
      for (const std::uint32_t idx : it->second) {
        const PointSource& source = point_sources_[idx];
        if (router_is_down(source.router)) continue;
        if (source.aggregate >= 0 &&
            aggregates_[source.aggregate].contributors == 0) {
          continue;
        }
        want = true;
        metric = 0;
        break;
      }
    }
    if (!want && injection_covers(instance, pos)) want = true;
    Entry* entry = ribs_[instance].find(pos);
    if (want) {
      if (entry != nullptr && entry->state == 1 &&
          entry->via_edge == kViaLocal) {
        if (entry->metric != metric) {
          entry->metric = metric;
          changed(instance, pos, t, "local-metric");
        }
      } else {
        make_valid(instance, pos, metric, kViaLocal, 0, t, how);
      }
    } else if (entry != nullptr && entry->state == 1 &&
               entry->via_edge == kViaLocal) {
      make_invalid(instance, pos, t, how);
    }
  }

  /// Follows the learned-from chain of a freshly (re)installed route at
  /// instance granularity; revisiting an instance means the next-hop chain
  /// is momentarily cyclic — a transient forwarding micro-loop.
  void check_microloop(std::uint32_t start, std::uint32_t pos) {
    walk_.clear();
    std::uint32_t instance = start;
    for (std::size_t steps = 0; steps <= baseline_.instance_count; ++steps) {
      walk_.push_back(instance);
      const Entry* entry = ribs_[instance].find(pos);
      if (entry == nullptr || entry->state != 1 || entry->via_edge < 0) {
        return;
      }
      const SimEdge& edge = edges_[entry->via_edge];
      if (std::find(walk_.begin(), walk_.end(), edge.from) != walk_.end()) {
        ++result_.microloops;
        return;
      }
      pos = entry->src_pos;
      instance = edge.from;
    }
  }

  // --- protocol machinery ---------------------------------------------------

  void schedule_triggered(std::uint32_t instance, SimTime t) {
    if (out_edges_[instance].empty()) return;  // nobody to tell
    if (triggered_pending_[instance]) return;
    triggered_pending_[instance] = 1;
    Event event;
    event.at_ms = t + timing_.triggered_min_ms +
                  rng_.below(timing_.triggered_max_ms -
                             timing_.triggered_min_ms + 1);
    event.kind = Event::Kind::kTriggered;
    event.instance = instance;
    queue_.push(std::move(event));
  }

  void advertise(std::uint32_t instance, SimTime t) {
    auto payload = std::make_shared<std::vector<AdvEntry>>();
    InstanceRib& rib = ribs_[instance];
    payload->reserve(rib.size());
    for (std::size_t slot = 0; slot < rib.size(); ++slot) {
      const Entry& entry = rib.entry(slot);
      if (entry.state == 1) {
        payload->push_back(
            {rib.pos(slot), entry.metric,
             entry.via_edge >= 0 ? edges_[entry.via_edge].from
                                 : AdvEntry::kLocalVia});
      } else if (entry.state == 2) {
        // Holddown entries advertise at infinity toward everyone; the via
        // no longer matters (poisoning cannot make it worse).
        payload->push_back({rib.pos(slot), infinity_, AdvEntry::kLocalVia});
      }
    }
    if (payload->empty()) return;
    const std::shared_ptr<const std::vector<AdvEntry>> shared =
        std::move(payload);
    for (const std::uint32_t edge_index : out_edges_[instance]) {
      const SimEdge& edge = edges_[edge_index];
      if (!edge.up) continue;
      Event event;
      event.at_ms = t + edge.delay_ms;
      event.kind = Event::Kind::kDeliver;
      event.edge = edge_index;
      event.payload = shared;
      queue_.push(std::move(event));
    }
  }

  std::int64_t map_pos(SimEdge& edge, std::uint32_t pos) {
    if (edge.map.size() <= pos) edge.map.resize(domain_.size(), kMapUnknown);
    std::int64_t verdict = edge.map[pos];
    if (verdict != kMapUnknown) return verdict;
    if (edge.is_flow) {
      verdict = edge.sender_out.permits(domain_[pos]) &&
                        edge.receiver_in.permits(domain_[pos])
                    ? static_cast<std::int64_t>(pos)
                    : kMapDeny;
    } else {
      Route forwarded = domain_[pos];  // copy: intern may grow the domain
      bool permitted = true;
      if (edge.route_map != nullptr) {
        const auto result = edge.route_map->evaluate_nomemo(forwarded);
        permitted = result.permitted;
        if (permitted) forwarded = result.route;
      }
      permitted = permitted && edge.outbound.permits(forwarded);
      verdict = permitted ? static_cast<std::int64_t>(intern(forwarded))
                          : kMapDeny;
    }
    edge.map[pos] = verdict;
    return verdict;
  }

  void apply_update(std::uint32_t edge_index, std::uint32_t pos,
                    std::uint16_t metric, std::uint32_t src_pos, SimTime t) {
    const SimEdge& edge = edges_[edge_index];
    if (metric >= infinity_) {
      Entry* entry = ribs_[edge.to].find(pos);  // never materialize on poison
      if (entry != nullptr && entry->state == 1 &&
          entry->via_edge == static_cast<std::int32_t>(edge_index)) {
        make_invalid(edge.to, pos, t, "poisoned");
      }
      return;
    }
    Entry& entry = ribs_[edge.to].at(pos);
    if (entry.state == 1) {
      if (entry.via_edge == static_cast<std::int32_t>(edge_index)) {
        // Current next hop: refresh the expiry. From the SAME sender-side
        // route, accept ANY metric, up or down — the step that makes
        // counting to infinity possible. A different sender-side route
        // mapping onto this position (rewrite loops: a route and its
        // re-imported tagged twin travel the same redistribution edge)
        // only wins by strict improvement; otherwise the two positions'
        // metrics couple as a = b + 1, b = a + 1 and climb forever even
        // with every real source intact.
        entry.deadline_ms = t + timing_.invalid_after_ms;
        if (entry.src_pos == src_pos) {
          if (entry.metric != metric) {
            entry.metric = metric;
            changed(edge.to, pos, t, "metric");
          }
        } else if (metric < entry.metric) {
          entry.metric = metric;
          entry.src_pos = src_pos;
          changed(edge.to, pos, t, "better-src");
        }
      } else if (entry.via_edge != kViaLocal && metric < entry.metric) {
        make_valid(edge.to, pos, metric, static_cast<std::int32_t>(edge_index),
                   src_pos, t, "switch");
      }
      // Local entries ignore remote offers; equal-or-worse alternates are
      // not tracked (single-path RIB, as in RIP).
      return;
    }
    const char* how = entry.state == 2 ? "restore" : "install";
    make_valid(edge.to, pos, metric, static_cast<std::int32_t>(edge_index),
               src_pos, t, how);
  }

  void deliver(const Event& event, SimTime t) {
    SimEdge& edge = edges_[event.edge];
    if (!edge.up) return;  // sent before the link died: lost in flight
    ++result_.updates_delivered;
    for (const AdvEntry& adv : *event.payload) {
      std::uint32_t metric = adv.metric;
      // Poisoned reverse applies to flows only. A flow reflection can
      // never add a route the sender doesn't already have, so poisoning
      // it kills two-node loops for free. A redistribution re-import IS a
      // real derivation — the static engine has no split horizon, and
      // mutual redistribution deliberately hands routes (rewritten or
      // not) back to the instance they came from.
      if (edge.is_flow && adv.via_instance == edge.to) metric = infinity_;
      const std::int64_t mapped = map_pos(edge, adv.pos);
      if (mapped < 0) continue;
      apply_update(event.edge,
                   static_cast<std::uint32_t>(mapped),
                   static_cast<std::uint16_t>(
                       std::min<std::uint32_t>(metric + 1, infinity_)),
                   adv.pos, t);
    }
  }

  /// (instance, pos) pairs whose local derivations involve a scenario
  /// router — the slots to reconcile when failure state flips.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> scenario_slots() {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> slots;
    for (const PointSource& source : point_sources_) {
      if (std::binary_search(scenario_.failed.begin(), scenario_.failed.end(),
                             source.router)) {
        slots.emplace_back(source.instance, source.pos);
      }
    }
    for (const InjectionGroup& group : groups_) {
      const bool touched = std::any_of(
          group.owners.begin(), group.owners.end(), [&](model::RouterId r) {
            return std::binary_search(scenario_.failed.begin(),
                                      scenario_.failed.end(), r);
          });
      if (!touched) continue;
      for (std::uint32_t pos = 0; pos < offer_count_; ++pos) {
        if ((*group.permit_bits)[pos >> 6] >> (pos & 63) & 1) {
          slots.emplace_back(group.instance, pos);
        }
      }
    }
    std::sort(slots.begin(), slots.end());
    slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
    return slots;
  }

  void handle_fail(SimTime t) {
    // Flags first: the reconciles below produce route changes that must
    // already be attributed to the post-fail settle window.
    fail_done_ = true;
    last_scenario_ = t;
    --scenario_pending_;
    down_active_ = true;
    for (SimEdge& edge : edges_) {
      if (edge.up && !edge_should_be_up(edge)) {
        edge.up = false;
        if (options_.record_log) {
          util::appendf(result_.log, "t=%llu edge %u->%u down\n",
                        static_cast<unsigned long long>(t), edge.from,
                        edge.to);
        }
      }
    }
    for (const auto& [instance, pos] : scenario_slots()) {
      reconcile_local(instance, pos, t, "source-dead");
    }
  }

  void handle_recover(SimTime t) {
    if (options_.cross_check) degraded_sets_ = valid_sets();
    recover_done_ = true;
    last_scenario_ = t;
    --scenario_pending_;
    down_active_ = false;
    for (std::uint32_t i = 0; i < edges_.size(); ++i) {
      SimEdge& edge = edges_[i];
      if (!edge.up) {
        edge.up = true;
        // A restored adjacency exchanges tables immediately, as real
        // protocols do on neighbor-up.
        schedule_triggered(edge.from, t);
        if (options_.record_log) {
          util::appendf(result_.log, "t=%llu edge %u->%u up\n",
                        static_cast<unsigned long long>(t), edge.from,
                        edge.to);
        }
      }
    }
    for (const auto& [instance, pos] : scenario_slots()) {
      reconcile_local(instance, pos, t, "source-restored");
    }
  }

  // --- results --------------------------------------------------------------

  std::vector<std::vector<Route>> valid_sets() {
    std::vector<std::vector<Route>> sets(baseline_.instance_count);
    for (std::uint32_t i = 0; i < ribs_.size(); ++i) {
      InstanceRib& rib = ribs_[i];
      for (std::size_t slot = 0; slot < rib.size(); ++slot) {
        if (rib.entry(slot).state == 1) {
          sets[i].push_back(domain_[rib.pos(slot)]);
        }
      }
      std::sort(sets[i].begin(), sets[i].end());
    }
    return sets;
  }

  /// Symmetric-difference size between the simulated (`a`) and static
  /// (`b`) per-instance sorted route sets. With record_log, mismatches are
  /// also spelled out in the log ("+" simulated-only, "-" static-only) —
  /// the first stop when a cross-check fails.
  std::size_t diff_count(const std::vector<std::vector<Route>>& a,
                         const std::vector<std::vector<Route>>& b,
                         const char* what) {
    std::size_t diff = 0;
    const auto note = [&](std::size_t instance, const Route& route,
                          char sign) {
      ++diff;
      if (!options_.record_log) return;
      std::string text = route.prefix.to_string();
      if (route.tag) {
        text += '#';
        text += std::to_string(*route.tag);
      }
      util::appendf(result_.log, "fixpoint-diff(%s) inst=%zu %c%s\n", what,
                    instance, sign, text.c_str());
    };
    for (std::size_t i = 0; i < a.size(); ++i) {
      std::size_t x = 0;
      std::size_t y = 0;
      while (x < a[i].size() && y < b[i].size()) {
        if (a[i][x] == b[i][y]) {
          ++x;
          ++y;
        } else if (a[i][x] < b[i][y]) {
          note(i, a[i][x], '+');
          ++x;
        } else {
          note(i, b[i][y], '-');
          ++y;
        }
      }
      for (; x < a[i].size(); ++x) note(i, a[i][x], '+');
      for (; y < b[i].size(); ++y) note(i, b[i][y], '-');
    }
    return diff;
  }

  SimTime settle_window() const {
    return timing_.invalid_after_ms + timing_.gc_after_ms +
           2 * timing_.advertise_interval_ms;
  }

  const Problem& baseline_;
  const Scenario& scenario_;
  const Options& options_;
  const Timing& timing_;
  const std::vector<std::vector<Route>>* baseline_routes_;
  util::Rng rng_;
  model::PolicyCompiler compiler_;
  EventQueue queue_;
  TimerWheel wheel_;
  std::vector<Route> domain_;
  DomainIndex index_;
  std::uint32_t offer_count_ = 0;
  std::vector<InstanceRib> ribs_;
  std::vector<SimEdge> edges_;
  std::vector<std::vector<std::uint32_t>> out_edges_;
  std::vector<PointSource> point_sources_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> point_index_;
  std::map<std::vector<const void*>,
           std::unique_ptr<std::vector<std::uint64_t>>>
      injection_bits_;
  std::vector<InjectionGroup> groups_;
  std::vector<std::vector<std::uint32_t>> groups_by_instance_;
  std::vector<AggregateState> aggregates_;
  std::vector<char> triggered_pending_;
  std::vector<std::uint32_t> walk_;
  std::vector<std::vector<Route>> degraded_sets_;
  ScenarioResult result_;
  std::uint16_t infinity_ = 16;
  bool down_active_ = false;
  bool fail_done_ = false;
  bool recover_done_ = false;
  int scenario_pending_ = 0;
  SimTime last_change_ = 0;
  SimTime last_scenario_ = 0;
};

ScenarioResult Run::run() {
  obs::Span span("sim.scenario", "sim");
  span.label(scenario_.name);
  result_.name = scenario_.name;
  result_.had_failure = !scenario_.failed.empty();

  // --- t = 0: install local sources, arm periodic timers, plant the
  // scenario's fail/recover events.
  for (const PointSource& source : point_sources_) {
    reconcile_local(source.instance, source.pos, 0, "origin");
  }
  for (const InjectionGroup& group : groups_) {
    for (std::uint32_t pos = 0; pos < offer_count_; ++pos) {
      if ((*group.permit_bits)[pos >> 6] >> (pos & 63) & 1) {
        reconcile_local(group.instance, pos, 0, "origin");
      }
    }
  }
  for (std::uint32_t i = 0; i < baseline_.instance_count; ++i) {
    if (out_edges_[i].empty()) continue;  // never advertises: no timer
    Event event;
    event.at_ms = 1 + rng_.below(timing_.advertise_interval_ms);
    event.kind = Event::Kind::kPeriodic;
    event.instance = i;
    queue_.push(std::move(event));
  }
  SimTime last_planted = 0;
  if (!scenario_.failed.empty()) {
    Event fail;
    fail.at_ms = scenario_.fail_at_ms;
    fail.kind = Event::Kind::kFail;
    queue_.push(std::move(fail));
    ++scenario_pending_;
    last_planted = scenario_.fail_at_ms;
    if (scenario_.recover_at_ms) {
      Event recover;
      recover.at_ms = *scenario_.recover_at_ms;
      recover.kind = Event::Kind::kRecover;
      queue_.push(std::move(recover));
      ++scenario_pending_;
      last_planted = *scenario_.recover_at_ms;
    }
  }
  const SimTime cap = options_.until_ms != 0
                          ? options_.until_ms
                          : last_planted + 2 * settle_window();

  // --- Main loop: the timer wheel is a second event source, interleaved
  // with the queue in time order, so nothing ever schedules into the past.
  const auto fire = [this](const TimerWheel::Node& node, SimTime granule_end) {
    Entry* entry = ribs_[node.instance].find(node.pos);
    if (entry == nullptr || entry->gen != node.gen || entry->state == 0) {
      return;  // orphaned node
    }
    if (entry->deadline_ms > granule_end) {  // refreshed: repost and wait
      wheel_.insert(entry->deadline_ms, node);
      return;
    }
    if (entry->state == 1) {
      if (entry->via_edge == kViaLocal) return;  // locals never expire
      make_invalid(node.instance, node.pos, granule_end, "expired");
    } else {
      make_absent(node.instance, node.pos, granule_end);
    }
  };
  while (true) {
    const SimTime next_event = queue_.empty() ? kNever : queue_.top().at_ms;
    const SimTime next_wheel =
        wheel_.empty() ? kNever : wheel_.next_granule_end();
    const SimTime t = std::min(next_event, next_wheel);
    if (t == kNever) {
      result_.quiesced = true;
      result_.end_ms = std::max(last_change_, last_scenario_);
      break;
    }
    if (scenario_pending_ == 0 &&
        t > std::max(last_change_, last_scenario_) + settle_window()) {
      result_.quiesced = true;
      result_.end_ms = std::max(last_change_, last_scenario_) +
                       settle_window();
      break;
    }
    if (t > cap) {
      result_.end_ms = cap;  // quiesced stays false: the cap cut us off
      break;
    }
    wheel_.catch_up(t);
    if (next_wheel <= next_event) {
      wheel_.advance_one(fire);
      continue;
    }
    const Event event = queue_.pop();
    ++result_.events_processed;
    switch (event.kind) {
      case Event::Kind::kPeriodic: {
        advertise(event.instance, t);
        Event next;
        next.at_ms = t + timing_.advertise_interval_ms;
        next.kind = Event::Kind::kPeriodic;
        next.instance = event.instance;
        queue_.push(std::move(next));
        break;
      }
      case Event::Kind::kTriggered:
        triggered_pending_[event.instance] = 0;
        advertise(event.instance, t);
        break;
      case Event::Kind::kDeliver:
        deliver(event, t);
        break;
      case Event::Kind::kFail:
        if (options_.record_log) {
          util::appendf(result_.log, "t=%llu fail\n",
                        static_cast<unsigned long long>(t));
        }
        handle_fail(t);
        break;
      case Event::Kind::kRecover:
        if (options_.record_log) {
          util::appendf(result_.log, "t=%llu recover\n",
                        static_cast<unsigned long long>(t));
        }
        handle_recover(t);
        break;
    }
  }

  auto final_sets = valid_sets();
  for (const auto& routes : final_sets) {
    result_.final_route_count += routes.size();
  }

  // --- Fixpoint cross-checks against the static semi-naïve engine.
  if (options_.cross_check) {
    const bool flapped = !scenario_.failed.empty() &&
                         scenario_.recover_at_ms.has_value();
    std::size_t mismatched = 0;
    if (scenario_.failed.empty() || flapped) {
      // The final state of a flap (or no-failure) run is the intact
      // network's fixpoint; a sweep precomputes it once and shares it.
      if (baseline_routes_ != nullptr) {
        mismatched = diff_count(final_sets, *baseline_routes_, "final");
      } else {
        mismatched = diff_count(
            final_sets, analysis::prop::run_semi_naive(baseline_, {}).routes,
            "final");
      }
    } else {
      mismatched = diff_count(
          final_sets,
          analysis::prop::run_semi_naive(
              analysis::prop::masked(baseline_, scenario_.failed), {})
              .routes,
          "final");
    }
    result_.final_match = mismatched == 0;
    if (flapped && recover_done_) {
      const auto expected_degraded =
          analysis::prop::run_semi_naive(
              analysis::prop::masked(baseline_, scenario_.failed), {})
              .routes;
      const std::size_t degraded_diff =
          diff_count(degraded_sets_, expected_degraded, "degraded");
      result_.degraded_match = degraded_diff == 0;
      mismatched += degraded_diff;
    }
    result_.mismatched_routes = mismatched;
  }

  if (span.armed()) {
    span.arg("events", result_.events_processed);
    span.arg("changes", result_.route_changes);
    span.arg("end_ms", result_.end_ms);
  }
  if (obs::counting_enabled()) {
    obs::counter("sim.scenarios").add();
    obs::counter("sim.events").add(result_.events_processed);
    obs::counter("sim.route_changes").add(result_.route_changes);
    obs::counter("sim.microloops").add(result_.microloops);
    obs::counter("sim.blackhole_windows").add(result_.blackhole_windows);
  }
  return std::move(result_);
}

}  // namespace

ScenarioResult simulate(
    const Problem& baseline, const Scenario& scenario, const Options& options,
    const std::vector<std::vector<model::Route>>* baseline_routes) {
  Run run(baseline, scenario, options, baseline_routes);
  return run.run();
}

}  // namespace rd::sim
