#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

namespace rd::sim {

/// Simulated clock: milliseconds since scenario start.
using SimTime = std::uint64_t;

/// One routing-protocol advertisement entry as it travels an edge: the
/// sender-side domain position, the sender's metric, and the instance the
/// sender learned the route from (for split horizon with poisoned reverse,
/// resolved per receiving edge at delivery time). `kLocalVia` marks
/// locally-originated entries, which are never poisoned.
struct AdvEntry {
  std::uint32_t pos = 0;
  std::uint16_t metric = 0;
  std::uint32_t via_instance = kLocalVia;

  static constexpr std::uint32_t kLocalVia = 0xFFFFFFFFu;
};

/// Scheduled occurrences, ordered by (time, sequence). The sequence number
/// is assigned at push, so same-timestamp events fire in schedule order —
/// the total order every run of a seeded scenario reproduces exactly.
struct Event {
  enum class Kind : std::uint8_t {
    kPeriodic,   // instance's periodic full-table advertisement timer
    kTriggered,  // pending triggered update for an instance
    kDeliver,    // an advertisement arriving over one edge
    kFail,       // scenario: routers go down
    kRecover,    // scenario: routers come back
  };

  SimTime at_ms = 0;
  std::uint64_t seq = 0;
  Kind kind = Kind::kPeriodic;
  std::uint32_t instance = 0;  // kPeriodic / kTriggered
  std::uint32_t edge = 0;      // kDeliver
  /// Snapshot of the sender's table, shared by every edge the
  /// advertisement fans out over (per-edge filtering happens at delivery).
  std::shared_ptr<const std::vector<AdvEntry>> payload;
};

/// Binary min-heap on (at_ms, seq). push/pop are the only operations the
/// simulator needs; seq is stamped here so callers cannot get it wrong.
class EventQueue {
 public:
  void push(Event event) {
    event.seq = next_seq_++;
    heap_.push_back(std::move(event));
    std::push_heap(heap_.begin(), heap_.end(), later);
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  const Event& top() const noexcept { return heap_.front(); }

  Event pop() {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Event event = std::move(heap_.back());
    heap_.pop_back();
    return event;
  }

 private:
  /// std::push_heap builds a max-heap; "later" as the comparator puts the
  /// earliest (time, seq) on top.
  static bool later(const Event& a, const Event& b) noexcept {
    return a.at_ms != b.at_ms ? a.at_ms > b.at_ms : a.seq > b.seq;
  }

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Hashed timer wheel for the per-route invalidation and garbage-collect
/// deadlines (DESIGN.md §15). Refreshing a timer is the hot operation —
/// every periodic advertisement refreshes every delivered route — so a
/// refresh only rewrites the entry's own deadline and generation; the
/// wheel node stays where it was and is lazily revalidated when its slot
/// comes due: stale generation → dropped, deadline moved forward →
/// reinserted at the new slot. Each live timer keeps exactly one node.
class TimerWheel {
 public:
  struct Node {
    std::uint32_t instance = 0;
    std::uint32_t pos = 0;
    std::uint32_t gen = 0;
  };

  /// `max_delay_ms` must bound the longest single deadline delta ever
  /// scheduled (the larger of the invalid and gc timers); the ring is
  /// rounded up to a power of two of ~1s granules so a reinserted node can
  /// never collide with the granule currently being drained.
  explicit TimerWheel(SimTime max_delay_ms) {
    std::size_t slots = 2;
    while (slots * kGranularityMs < max_delay_ms + 2 * kGranularityMs) {
      slots *= 2;
    }
    slots_.resize(slots);
  }

  void insert(SimTime deadline_ms, const Node& node) {
    slots_[(deadline_ms / kGranularityMs) & (slots_.size() - 1)].push_back(
        node);
    ++count_;
  }

  bool empty() const noexcept { return count_ == 0; }
  std::size_t size() const noexcept { return count_; }

  /// End of the granule the cursor sits on: the earliest simulated time at
  /// which advance_one() may fire anything. The simulator's main loop
  /// treats this as one more event source and interleaves it with the
  /// EventQueue in time order, so a fired timer can never schedule work
  /// into the past.
  SimTime next_granule_end() const noexcept {
    return (cursor_ + 1) * kGranularityMs;
  }

  /// With no pending nodes the cursor may jump to `now`'s granule, so the
  /// next insert lands within one ring span of it — skipping the granule-
  /// by-granule crawl across idle stretches. Safe only when empty: there
  /// is nothing behind the cursor to drain.
  void catch_up(SimTime now) noexcept {
    if (count_ == 0 && now / kGranularityMs > cursor_) {
      cursor_ = now / kGranularityMs;
    }
  }

  /// Drains the cursor granule, invoking `fire(node, granule_end)` for its
  /// nodes, and steps the cursor. `fire` decides staleness (generation
  /// check, deadline moved forward) and may call insert() to repost — a
  /// refreshed deadline is strictly past the drained granule's end, so
  /// reposts always land in a later granule. Expiry is thus quantized to
  /// the granule (≤ ~1s late), identically on every run.
  template <typename Fn>
  void advance_one(Fn&& fire) {
    auto& slot = slots_[cursor_ & (slots_.size() - 1)];
    if (!slot.empty()) {
      scratch_.clear();
      scratch_.swap(slot);  // reposts go to the (now empty) live slots
      count_ -= scratch_.size();
      const SimTime granule_end = (cursor_ + 1) * kGranularityMs;
      for (const Node& node : scratch_) fire(node, granule_end);
    }
    ++cursor_;
  }

  static constexpr SimTime kGranularityMs = 1024;

 private:
  std::vector<std::vector<Node>> slots_;
  std::vector<Node> scratch_;
  std::size_t count_ = 0;
  std::uint64_t cursor_ = 0;  // granule index: all granules < cursor_ drained
};

}  // namespace rd::sim
