#include "model/network.h"

#include <algorithm>
#include <unordered_map>

#include "ip/prefix_trie.h"

namespace rd::model {

namespace {

/// True when a stanza treats this interface as passive (no adjacencies form
/// over it, so it cannot create an external-facing IGP adjacency).
bool is_passive(const config::RouterStanza& stanza,
                const std::string& interface_name) {
  if (stanza.passive_default) return true;
  return std::find(stanza.passive_interfaces.begin(),
                   stanza.passive_interfaces.end(),
                   interface_name) != stanza.passive_interfaces.end();
}

}  // namespace

Network Network::build_parsed(std::vector<config::ParseResult> parses) {
  std::vector<config::RouterConfig> configs;
  configs.reserve(parses.size());
  std::vector<std::vector<config::ParseDiagnostic>> diagnostics;
  diagnostics.reserve(parses.size());
  for (auto& parse : parses) {
    configs.push_back(std::move(parse.config));
    diagnostics.push_back(std::move(parse.diagnostics));
  }
  Network net = build(std::move(configs));
  net.parse_diagnostics_ = std::move(diagnostics);
  return net;
}

Network Network::build(std::vector<config::RouterConfig> configs) {
  Network net;
  net.routers_ = std::move(configs);
  net.parse_diagnostics_.resize(net.routers_.size());
  net.intern_names();
  net.index_interfaces();
  net.infer_links();
  net.index_processes();
  net.mark_external_facing();
  net.compute_igp_adjacencies();
  net.resolve_bgp_sessions();
  net.build_redistribution_edges();
  return net;
}

void Network::intern_names() {
  // Hostnames first so `router_of_symbol_` stays dense over them; interface
  // and policy names share the same table (symbol equality == name
  // equality fleet-wide).
  router_symbols_.reserve(routers_.size());
  for (RouterId r = 0; r < routers_.size(); ++r) {
    const util::Symbol symbol = names_.intern(routers_[r].hostname);
    router_symbols_.push_back(symbol);
    if (router_of_symbol_.size() <= symbol) {
      router_of_symbol_.resize(symbol + 1, kInvalidId);
    }
    // First router wins on duplicate hostnames, matching the linear-scan
    // behaviour this replaces.
    if (router_of_symbol_[symbol] == kInvalidId) {
      router_of_symbol_[symbol] = r;
    }
  }
  for (const auto& config : routers_) {
    for (const auto& icfg : config.interfaces) names_.intern(icfg.name);
    for (const auto& rm : config.route_maps) names_.intern(rm.name);
    for (const auto& acl : config.access_lists) names_.intern(acl.id);
    for (const auto& pl : config.prefix_lists) names_.intern(pl.name);
  }
}

RouterId Network::find_router(std::string_view hostname) const noexcept {
  const util::Symbol symbol = names_.find(hostname);
  if (symbol == util::kNoSymbol || symbol >= router_of_symbol_.size()) {
    return kInvalidId;
  }
  return router_of_symbol_[symbol];
}

void Network::index_interfaces() {
  router_interfaces_.resize(routers_.size());
  for (RouterId r = 0; r < routers_.size(); ++r) {
    const auto& config = routers_[r];
    for (std::uint32_t c = 0; c < config.interfaces.size(); ++c) {
      const auto& icfg = config.interfaces[c];
      Interface itf;
      itf.router = r;
      itf.config_index = c;
      itf.name = icfg.name;
      itf.name_symbol = names_.find(icfg.name);
      itf.hardware_type = icfg.hardware_type();
      itf.shutdown = icfg.shutdown;
      itf.point_to_point = icfg.point_to_point;
      if (icfg.address) {
        itf.address = icfg.address->address;
        itf.subnet = icfg.address->subnet();
      }
      for (const auto& secondary : icfg.secondary_addresses) {
        itf.secondary_addresses.push_back(secondary.address);
        itf.secondary_subnets.push_back(secondary.subnet());
      }
      router_interfaces_[r].push_back(
          static_cast<InterfaceId>(interfaces_.size()));
      interfaces_.push_back(std::move(itf));
    }
  }
}

void Network::infer_links() {
  // Paper §2.1: logical IP links are inferred by matching interfaces that
  // share a subnet. /32 assignments (loopbacks) are not links.
  std::unordered_map<ip::Prefix, LinkId> by_subnet;
  for (InterfaceId i = 0; i < interfaces_.size(); ++i) {
    Interface& itf = interfaces_[i];
    if (!itf.subnet || itf.subnet->length() == 32 || itf.shutdown) continue;
    const auto [it, inserted] =
        by_subnet.try_emplace(*itf.subnet, static_cast<LinkId>(links_.size()));
    if (inserted) {
      Link link;
      link.subnet = *itf.subnet;
      links_.push_back(std::move(link));
    }
    itf.link = it->second;
    links_[it->second].interfaces.push_back(i);
  }
}

void Network::mark_external_facing() {
  // Set of all addresses owned by interfaces in the data set (primary and
  // secondary).
  std::unordered_map<std::uint32_t, InterfaceId> owned;
  for (InterfaceId i = 0; i < interfaces_.size(); ++i) {
    if (interfaces_[i].address) {
      owned.emplace(interfaces_[i].address->value(), i);
    }
    for (const auto secondary : interfaces_[i].secondary_addresses) {
      owned.emplace(secondary.value(), i);
    }
  }

  // Rule 1 (paper §5.2): point-to-point subnets (/30 and /31) are internal
  // exactly when every usable address is owned by an interface in the data
  // set; otherwise an external router must hold the missing address.
  for (Link& link : links_) {
    if (link.subnet.length() >= 30) {
      const std::uint32_t base = link.subnet.network().value();
      std::size_t usable = 0;
      std::size_t present = 0;
      for (std::uint64_t off = 0; off < link.subnet.size(); ++off) {
        const std::uint32_t candidate =
            base + static_cast<std::uint32_t>(off);
        // /30 network & broadcast addresses are not usable; /31 uses both.
        if (link.subnet.length() == 30 &&
            (off == 0 || off == link.subnet.size() - 1)) {
          continue;
        }
        ++usable;
        if (owned.contains(candidate)) ++present;
      }
      link.external_facing = present < usable;
    }
  }

  // Rule 2 (paper §5.2): a multipoint link is external-facing when one of
  // its addresses is used as a next hop but is not owned by any interface in
  // the data set — an external router must be present to accept the packets.
  // A trie over the multipoint subnets makes this O(next-hops), not
  // O(next-hops x links).
  ip::PrefixTrie<std::vector<LinkId>> multipoint;
  for (LinkId l = 0; l < links_.size(); ++l) {
    if (links_[l].subnet.length() >= 30) continue;
    if (const auto* existing = multipoint.find(links_[l].subnet)) {
      auto copy = *existing;
      copy.push_back(l);
      multipoint.insert(links_[l].subnet, std::move(copy));
    } else {
      multipoint.insert(links_[l].subnet, {l});
    }
  }
  auto note_next_hop = [&](ip::Ipv4Address nh) {
    if (owned.contains(nh.value())) return;
    multipoint.for_each_match(nh, [&](const std::vector<LinkId>& matches) {
      for (const LinkId l : matches) links_[l].external_facing = true;
    });
  };
  for (const auto& config : routers_) {
    for (const auto& route : config.static_routes) {
      if (const auto* nh = std::get_if<ip::Ipv4Address>(&route.next_hop)) {
        note_next_hop(*nh);
      }
    }
    for (const auto& stanza : config.router_stanzas) {
      for (const auto& nbr : stanza.neighbors) note_next_hop(nbr.address);
    }
  }

  // Propagate the link-level conclusion to interfaces.
  for (Interface& itf : interfaces_) {
    if (itf.link != kInvalidId) {
      itf.external_facing = links_[itf.link].external_facing;
    }
  }
}

void Network::index_processes() {
  router_processes_.resize(routers_.size());
  for (RouterId r = 0; r < routers_.size(); ++r) {
    const auto& config = routers_[r];
    for (std::uint32_t s = 0; s < config.router_stanzas.size(); ++s) {
      const auto& stanza = config.router_stanzas[s];
      RoutingProcess process;
      process.router = r;
      process.stanza_index = s;
      process.protocol = stanza.protocol;
      process.process_id = stanza.process_id;
      if (stanza.protocol == config::RoutingProtocol::kIsis) {
        // IS-IS association is per interface ("ip router isis"), not via
        // network statements.
        for (const InterfaceId i : router_interfaces_[r]) {
          const Interface& itf = interfaces_[i];
          const auto& icfg = config.interfaces[itf.config_index];
          if (icfg.isis && itf.address && !itf.shutdown) {
            process.covered_interfaces.push_back(i);
          }
        }
      } else if (config::is_conventional_igp(stanza.protocol)) {
        // Association via network statements: a statement covers every
        // interface whose primary address falls inside it (paper §2.2).
        for (const InterfaceId i : router_interfaces_[r]) {
          const Interface& itf = interfaces_[i];
          if (!itf.address || itf.shutdown) continue;
          bool covered = false;
          for (const auto& ns : stanza.networks) {
            covered = covered || ns.prefix().contains(*itf.address);
            for (const auto secondary : itf.secondary_addresses) {
              covered = covered || ns.prefix().contains(secondary);
            }
            if (covered) break;
          }
          if (covered) process.covered_interfaces.push_back(i);
        }
      }
      router_processes_[r].push_back(
          static_cast<ProcessId>(processes_.size()));
      processes_.push_back(std::move(process));
    }
  }
}

void Network::compute_igp_adjacencies() {
  // Per link, gather (process, interface) pairs; same-protocol pairs on
  // different routers are adjacent (paper §2.2). A process covering a
  // non-passive external-facing interface may be adjacent to a router
  // outside the data set (paper §5.2).
  struct Coverage {
    ProcessId process;
    InterfaceId interface;
  };
  std::vector<std::vector<Coverage>> per_link(links_.size());
  for (ProcessId p = 0; p < processes_.size(); ++p) {
    const RoutingProcess& process = processes_[p];
    const auto& stanza =
        routers_[process.router].router_stanzas[process.stanza_index];
    for (const InterfaceId i : process.covered_interfaces) {
      const Interface& itf = interfaces_[i];
      if (is_passive(stanza, itf.name)) continue;
      if (itf.link != kInvalidId) {
        per_link[itf.link].push_back({p, i});
      }
      if (itf.external_facing) {
        external_igp_adjacencies_.push_back({p, i});
      }
    }
  }
  for (LinkId l = 0; l < links_.size(); ++l) {
    const auto& coverage = per_link[l];
    for (std::size_t a = 0; a < coverage.size(); ++a) {
      for (std::size_t b = a + 1; b < coverage.size(); ++b) {
        const RoutingProcess& pa = processes_[coverage[a].process];
        const RoutingProcess& pb = processes_[coverage[b].process];
        if (pa.router == pb.router) continue;
        if (pa.protocol != pb.protocol) continue;
        igp_adjacencies_.push_back({coverage[a].process, coverage[b].process,
                                    static_cast<LinkId>(l)});
      }
    }
  }
}

void Network::resolve_bgp_sessions() {
  std::unordered_map<std::uint32_t, RouterId> owner_router;
  for (const Interface& itf : interfaces_) {
    if (itf.address) owner_router.emplace(itf.address->value(), itf.router);
  }

  for (ProcessId p = 0; p < processes_.size(); ++p) {
    const RoutingProcess& process = processes_[p];
    if (process.protocol != config::RoutingProtocol::kBgp) continue;
    const auto& stanza =
        routers_[process.router].router_stanzas[process.stanza_index];
    for (std::uint32_t n = 0; n < stanza.neighbors.size(); ++n) {
      const auto& nbr = stanza.neighbors[n];
      BgpSession session;
      session.local_process = p;
      session.neighbor_index = n;
      session.remote_address = nbr.address;
      session.local_as = stanza.process_id.value_or(0);
      session.remote_as = nbr.remote_as;
      // Paper §2.2: BGP processes are adjacent when explicitly configured
      // and mutually reachable. Within the data set, resolve the neighbor
      // address to a router and look for a BGP process with the right AS.
      if (const auto it = owner_router.find(nbr.address.value());
          it != owner_router.end()) {
        for (const ProcessId q : router_processes_[it->second]) {
          const RoutingProcess& remote = processes_[q];
          if (remote.protocol == config::RoutingProtocol::kBgp &&
              remote.process_id.value_or(0) == nbr.remote_as) {
            session.remote_process = q;
            break;
          }
        }
      }
      bgp_sessions_.push_back(session);
    }
  }
}

void Network::build_redistribution_edges() {
  for (ProcessId p = 0; p < processes_.size(); ++p) {
    const RoutingProcess& process = processes_[p];
    const RouterId r = process.router;
    const auto& stanza = routers_[r].router_stanzas[process.stanza_index];
    for (std::uint32_t d = 0; d < stanza.redistributes.size(); ++d) {
      const auto& redist = stanza.redistributes[d];
      RedistributionEdge edge;
      edge.router = r;
      edge.target_process = p;
      edge.redistribute_index = d;
      edge.route_map = redist.route_map;
      if (redist.source != config::RedistributeSource::kProtocol) {
        edge.source_kind = RibKind::kLocal;
        redistribution_edges_.push_back(edge);
        continue;
      }
      // Protocol source: match processes on the same router by protocol and
      // (when given) process id. Ambiguous matches each get an edge.
      bool matched = false;
      for (const ProcessId q : router_processes_[r]) {
        if (q == p) continue;
        const RoutingProcess& source = processes_[q];
        if (source.protocol != redist.protocol) continue;
        if (redist.process_id && source.process_id != redist.process_id) {
          continue;
        }
        edge.source_kind = RibKind::kProcess;
        edge.source_process = q;
        redistribution_edges_.push_back(edge);
        matched = true;
      }
      if (!matched) {
        // Dangling redistribute (source process absent) — a real-world
        // configuration vestige; recorded as an edge from the local RIB so
        // the graph still shows the designer's intent to import something.
        edge.source_kind = RibKind::kLocal;
        redistribution_edges_.push_back(edge);
      }
    }
  }
}

std::optional<InterfaceId> Network::interface_with_address(
    ip::Ipv4Address addr) const {
  for (InterfaceId i = 0; i < interfaces_.size(); ++i) {
    if (interfaces_[i].address == addr) return i;
  }
  return std::nullopt;
}

std::vector<ip::Prefix> Network::interface_subnets() const {
  std::vector<ip::Prefix> out;
  out.reserve(interfaces_.size());
  for (const Interface& itf : interfaces_) {
    if (itf.subnet) out.push_back(*itf.subnet);
    out.insert(out.end(), itf.secondary_subnets.begin(),
               itf.secondary_subnets.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Network::address_is_internal(ip::Ipv4Address addr) const {
  for (const Interface& itf : interfaces_) {
    if (itf.subnet && itf.subnet->contains(addr)) return true;
    for (const auto& secondary : itf.secondary_subnets) {
      if (secondary.contains(addr)) return true;
    }
  }
  return false;
}

}  // namespace rd::model
