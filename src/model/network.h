#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "config/ast.h"
#include "config/parser.h"
#include "ip/ipv4.h"
#include "util/interner.h"

namespace rd::model {

using RouterId = std::uint32_t;
using InterfaceId = std::uint32_t;
using ProcessId = std::uint32_t;
using LinkId = std::uint32_t;

constexpr std::uint32_t kInvalidId = 0xFFFFFFFFu;

/// One interface, resolved network-wide (paper §2.1).
struct Interface {
  RouterId router = kInvalidId;
  std::uint32_t config_index = 0;  // into RouterConfig::interfaces
  std::string name;
  /// `name` interned in the owning Network's fleet-wide symbol table:
  /// comparisons and grouping (hardware-type tallies, adjacency checks)
  /// are integer ops instead of string work.
  util::Symbol name_symbol = util::kNoSymbol;
  std::string hardware_type;
  std::optional<ip::Ipv4Address> address;
  std::optional<ip::Prefix> subnet;
  /// Secondary addressing ("ip address ... secondary"): extra subnets on
  /// the same wire. They participate in address ownership, internality
  /// tests, and the address-structure analysis; the link is identified by
  /// the primary subnet.
  std::vector<ip::Ipv4Address> secondary_addresses;
  std::vector<ip::Prefix> secondary_subnets;
  LinkId link = kInvalidId;  // kInvalidId when unmatched
  bool shutdown = false;
  bool point_to_point = false;
  /// True when the analysis concluded an external router sits on this
  /// interface's link (paper §2.1/§5.2 rules).
  bool external_facing = false;

  bool numbered() const noexcept { return address.has_value(); }
};

/// A logical IP link: the set of interfaces sharing one subnet.
struct Link {
  ip::Prefix subnet;
  std::vector<InterfaceId> interfaces;
  bool external_facing = false;

  bool internal() const noexcept { return !external_facing; }
};

/// One routing process: a "router <proto> <id>" stanza on one router
/// (paper §2.2). For BGP the process_id is the local AS number.
struct RoutingProcess {
  RouterId router = kInvalidId;
  std::uint32_t stanza_index = 0;  // into RouterConfig::router_stanzas
  config::RoutingProtocol protocol = config::RoutingProtocol::kOspf;
  std::optional<std::uint32_t> process_id;
  /// Interfaces associated with this process via network statements
  /// (IGP only; BGP network statements announce prefixes instead).
  std::vector<InterfaceId> covered_interfaces;
};

/// An IGP adjacency: two same-protocol processes on opposite ends of a link,
/// each covering its end (paper §2.2).
struct IgpAdjacency {
  ProcessId process_a = kInvalidId;
  ProcessId process_b = kInvalidId;
  LinkId link = kInvalidId;
};

/// A potential IGP adjacency to a router outside the data set: a process
/// covering a non-passive external-facing interface. This is what makes an
/// IGP instance serve in the inter-domain role (paper §5.2).
struct ExternalIgpAdjacency {
  ProcessId process = kInvalidId;
  InterfaceId interface = kInvalidId;
};

/// One configured BGP session (one "neighbor X remote-as N").
struct BgpSession {
  ProcessId local_process = kInvalidId;
  std::uint32_t neighbor_index = 0;  // into the stanza's neighbors
  ip::Ipv4Address remote_address;
  std::uint32_t local_as = 0;
  std::uint32_t remote_as = 0;
  /// Remote process resolved inside the data set; kInvalidId if the session
  /// terminates outside the network (external peering).
  ProcessId remote_process = kInvalidId;

  bool ebgp() const noexcept { return local_as != remote_as; }
  bool external() const noexcept { return remote_process == kInvalidId; }
};

/// Endpoint kinds for redistribution edges. Connected subnets and static
/// routes live in the per-router "local RIB" (paper Figure 3).
enum class RibKind : std::uint8_t { kProcess, kLocal };

/// A route-redistribution edge inside one router: source RIB -> target
/// process RIB (paper §2.4). Policy (route-map) annotations ride along.
struct RedistributionEdge {
  RouterId router = kInvalidId;
  RibKind source_kind = RibKind::kProcess;
  ProcessId source_process = kInvalidId;  // valid when kProcess
  ProcessId target_process = kInvalidId;
  std::uint32_t redistribute_index = 0;  // into the stanza's redistributes
  std::optional<std::string> route_map;
};

/// The reverse-engineered model of one network, built from the full set of
/// that network's router configurations. This is the substrate every
/// higher-level abstraction (process graph, instances, pathways, address
/// structure) is computed from.
class Network {
 public:
  /// Build the model. Configs are moved in; each becomes one Router.
  /// Routers built this way carry no parse diagnostics (the configs were
  /// constructed in memory, not parsed).
  static Network build(std::vector<config::RouterConfig> configs);

  /// Build the model from full parse results, preserving each router's
  /// parse diagnostics so malformed config lines stay visible in reports
  /// instead of vanishing at the model boundary.
  static Network build_parsed(std::vector<config::ParseResult> parses);

  const std::vector<config::RouterConfig>& routers() const noexcept {
    return routers_;
  }
  /// Per-router parse diagnostics, indexed by RouterId; empty vectors when
  /// the network was built from in-memory configs.
  const std::vector<std::vector<config::ParseDiagnostic>>& parse_diagnostics()
      const noexcept {
    return parse_diagnostics_;
  }
  const std::vector<config::ParseDiagnostic>& parse_diagnostics(
      RouterId r) const {
    return parse_diagnostics_[r];
  }
  std::size_t total_parse_diagnostics() const noexcept {
    std::size_t total = 0;
    for (const auto& diags : parse_diagnostics_) total += diags.size();
    return total;
  }
  const std::vector<Interface>& interfaces() const noexcept {
    return interfaces_;
  }
  const std::vector<Link>& links() const noexcept { return links_; }
  const std::vector<RoutingProcess>& processes() const noexcept {
    return processes_;
  }
  const std::vector<IgpAdjacency>& igp_adjacencies() const noexcept {
    return igp_adjacencies_;
  }
  const std::vector<ExternalIgpAdjacency>& external_igp_adjacencies()
      const noexcept {
    return external_igp_adjacencies_;
  }
  const std::vector<BgpSession>& bgp_sessions() const noexcept {
    return bgp_sessions_;
  }
  const std::vector<RedistributionEdge>& redistribution_edges()
      const noexcept {
    return redistribution_edges_;
  }

  /// Interface ids belonging to a router.
  const std::vector<InterfaceId>& router_interfaces(RouterId r) const {
    return router_interfaces_[r];
  }
  /// Process ids belonging to a router.
  const std::vector<ProcessId>& router_processes(RouterId r) const {
    return router_processes_[r];
  }

  /// Fleet-wide symbol table: every router hostname and interface name,
  /// interned at build time (ROADMAP item 2). Read-only after build, so
  /// analysis workers on any thread may resolve names through it.
  const util::Interner& names() const noexcept { return names_; }
  /// `hostname` interned symbol for a router, usable as an integer key.
  util::Symbol router_symbol(RouterId r) const { return router_symbols_[r]; }
  /// Router with this hostname, or kInvalidId. O(1) via the symbol table
  /// (replaces linear hostname scans at fleet scale).
  RouterId find_router(std::string_view hostname) const noexcept;

  /// The interface (if any) that owns an address, found via exact match.
  std::optional<InterfaceId> interface_with_address(
      ip::Ipv4Address addr) const;

  /// All subnets assigned to interfaces — raw material for the
  /// address-structure analysis (paper §3.4).
  std::vector<ip::Prefix> interface_subnets() const;

  /// True when `addr` falls inside any interface subnet of the network —
  /// the "known to be inside" test of paper §5.2.
  bool address_is_internal(ip::Ipv4Address addr) const;

  std::size_t router_count() const noexcept { return routers_.size(); }

 private:
  Network() = default;

  void intern_names();
  void index_interfaces();
  void infer_links();
  void mark_external_facing();
  void index_processes();
  void compute_igp_adjacencies();
  void resolve_bgp_sessions();
  void build_redistribution_edges();

  std::vector<config::RouterConfig> routers_;
  std::vector<std::vector<config::ParseDiagnostic>> parse_diagnostics_;
  std::vector<Interface> interfaces_;
  std::vector<Link> links_;
  std::vector<RoutingProcess> processes_;
  std::vector<IgpAdjacency> igp_adjacencies_;
  std::vector<ExternalIgpAdjacency> external_igp_adjacencies_;
  std::vector<BgpSession> bgp_sessions_;
  std::vector<RedistributionEdge> redistribution_edges_;
  std::vector<std::vector<InterfaceId>> router_interfaces_;
  std::vector<std::vector<ProcessId>> router_processes_;
  util::Interner names_;
  std::vector<util::Symbol> router_symbols_;   // RouterId -> hostname symbol
  std::vector<RouterId> router_of_symbol_;     // symbol -> RouterId (or kInvalidId)
};

}  // namespace rd::model
