#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "config/ast.h"
#include "ip/ipv4.h"

namespace rd::model {

/// A route as modeled by the paper (§2.3): an IP subnet plus the attributes
/// the analyses need. `tag` carries the IGP route tag used by designs like
/// net5's (§6.1) to steer route selection without BGP attributes.
struct Route {
  ip::Prefix prefix;
  std::optional<std::uint32_t> tag;

  friend bool operator==(const Route&, const Route&) = default;
};

/// Result of pushing a route through a policy.
struct PolicyVerdict {
  bool permitted = false;
  Route route;  // possibly rewritten (set tag / metric)
};

/// Evaluate a standard/extended ACL as a *route* filter (distribute-list
/// semantics): a clause matches when its source spec covers the route's
/// network address. First matching clause wins; no match is an implicit deny.
bool acl_permits_route(const config::AccessList& acl, const Route& route);

/// Evaluate an ip prefix-list over a route: an entry matches when its
/// prefix contains the route's prefix and the route's length satisfies the
/// ge/le bounds (with no bounds, the lengths must match exactly, as in
/// IOS). First match wins; implicit deny at the end.
bool prefix_list_permits_route(const config::PrefixList& prefix_list,
                               const Route& route);

/// Evaluate an ACL as a *packet* filter: match on source/destination
/// addresses, protocol, and port (extended rules). Implicit deny at the
/// end. An empty `protocol` is a wildcard packet that matches any rule's
/// protocol; otherwise an extended rule matches when its protocol is "ip"
/// or equals the packet's.
bool acl_permits_packet(const config::AccessList& acl, ip::Ipv4Address source,
                        ip::Ipv4Address destination,
                        std::optional<std::uint16_t> dst_port = {},
                        std::string_view protocol = {});

/// Evaluate a route-map over a route. Clauses run in sequence order; the
/// first whose match conditions hold decides (permit applies set-clauses,
/// deny drops). No matching clause is an implicit deny, as in IOS
/// redistribution contexts.
PolicyVerdict route_map_evaluate(const config::RouteMap& route_map,
                                 const config::RouterConfig& config,
                                 const Route& route);

/// Apply an optional distribute-list ACL (by id, resolved in `config`) to a
/// route; absent or unresolvable lists permit everything, mirroring IOS
/// behaviour for references to undefined ACLs.
bool distribute_list_permits(const config::RouterConfig& config,
                             std::string_view acl_id, const Route& route);

}  // namespace rd::model
