#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "config/ast.h"
#include "ip/ipv4.h"
#include "ip/prefix_trie.h"
#include "model/header_predicate.h"

namespace rd::model {

/// A route as modeled by the paper (§2.3): an IP subnet plus the attributes
/// the analyses need. `tag` carries the IGP route tag used by designs like
/// net5's (§6.1) to steer route selection without BGP attributes.
struct Route {
  ip::Prefix prefix;
  std::optional<std::uint32_t> tag;

  friend bool operator==(const Route&, const Route&) = default;
};

/// Result of pushing a route through a policy.
struct PolicyVerdict {
  bool permitted = false;
  Route route;  // possibly rewritten (set tag / metric)
};

/// Evaluate a standard/extended ACL as a *route* filter (distribute-list
/// semantics): a clause matches when its source spec covers the route's
/// network address. First matching clause wins; no match is an implicit deny.
bool acl_permits_route(const config::AccessList& acl, const Route& route);

/// Evaluate an ip prefix-list over a route: an entry matches when its
/// prefix contains the route's prefix and the route's length satisfies the
/// ge/le bounds (with no bounds, the lengths must match exactly, as in
/// IOS). First match wins; implicit deny at the end.
bool prefix_list_permits_route(const config::PrefixList& prefix_list,
                               const Route& route);

/// Evaluate an ACL as a *packet* filter: match on source/destination
/// addresses, protocol, and port (extended rules). Implicit deny at the
/// end. An extended rule matches when its protocol is "ip" or equals the
/// packet's; an empty `protocol` is an unspecified-protocol packet and
/// matches only "ip" wildcard clauses (mirroring the symbolic lowering,
/// where it maps to the "other" protocol bit).
bool acl_permits_packet(const config::AccessList& acl, ip::Ipv4Address source,
                        ip::Ipv4Address destination,
                        std::optional<std::uint16_t> dst_port = {},
                        std::string_view protocol = {});

/// Evaluate a route-map over a route. Clauses run in sequence order; the
/// first whose match conditions hold decides (permit applies set-clauses,
/// deny drops). No matching clause is an implicit deny, as in IOS
/// redistribution contexts.
PolicyVerdict route_map_evaluate(const config::RouteMap& route_map,
                                 const config::RouterConfig& config,
                                 const Route& route);

/// Apply an optional distribute-list ACL (by id, resolved in `config`) to a
/// route; absent or unresolvable lists permit everything, mirroring IOS
/// behaviour for references to undefined ACLs.
bool distribute_list_permits(const config::RouterConfig& config,
                             std::string_view acl_id, const Route& route);

/// Static facts about a named route-map, extracted without evaluating any
/// route — the boundary properties the redistribution-safety rules reason
/// about (paper §5.1/§6.1: filters and metric mapping at instance borders).
struct RouteMapFacts {
  /// The name resolved to a defined map. Unresolved names permit every
  /// route on IOS, so an unresolved map never filters and never maps.
  bool resolved = false;
  /// Some route can be denied. False exactly when every route is permitted:
  /// a permit clause with no match conditions appears before any deny
  /// clause (routes falling through all clauses hit the implicit deny, so a
  /// map without such a blanket permit always filters).
  bool may_deny = false;
  /// At least one permit clause carries "set metric" — the map maps metrics
  /// across the boundary for at least part of the route space.
  bool sets_metric = false;
  /// At least one clause matches or sets a route tag — the map takes part
  /// in a tag-based loop-prevention scheme (net5's idiom, §6.1).
  bool uses_tags = false;
};

/// Extract RouteMapFacts for `name` resolved against `config`. A default
/// (all-false) value is returned for dangling references.
RouteMapFacts route_map_facts(const config::RouterConfig& config,
                              std::string_view name);

/// Hash for Route, used by the reachability engine's membership indexes and
/// the compiled-policy verdict caches.
struct RouteHash {
  std::size_t operator()(const Route& route) const noexcept {
    std::uint64_t h = route.prefix.network().value();
    h = h * 0x9e3779b97f4a7c15ULL +
        static_cast<std::uint64_t>(route.prefix.length()) + 1u;
    h = h * 0x9e3779b97f4a7c15ULL + (route.tag ? 1ULL + *route.tag : 0ULL);
    h ^= h >> 32;
    return static_cast<std::size_t>(h);
  }
};

// --- Compiled policies -------------------------------------------------------
//
// The naïve route-propagation loop re-resolves every named filter (linear
// string search in the owning RouterConfig) and re-walks every ACL clause
// for every route on every iteration. The compiled forms below are lowered
// once per analysis run: name references are resolved to pointers, and
// clause bodies become `ip::PrefixTrie` lookups, so evaluating a route is
// O(prefix length) instead of O(clauses). Semantics are bit-for-bit those of
// the interpreting functions above — the differential reachability suite
// checks the two paths against each other.

/// An access list compiled for *route-filter* semantics (acl_permits_route):
/// the first clause whose source spec covers the route's network address
/// decides. The trie stores, per distinct source prefix, the earliest clause
/// using it; evaluation takes the covering clause with the lowest index.
class CompiledAclFilter {
 public:
  explicit CompiledAclFilter(const config::AccessList& acl);

  bool permits_route(const Route& route) const noexcept {
    return permits_address(route.prefix.network());
  }
  bool permits_address(ip::Ipv4Address addr) const noexcept;

 private:
  struct FirstClause {
    std::size_t index = 0;
    bool permit = false;
  };
  ip::PrefixTrie<FirstClause> trie_;
};

/// A prefix list compiled onto a trie keyed by entry prefix. Entries sharing
/// a prefix stay grouped in written order; evaluation visits only the stored
/// prefixes covering the route and applies the ge/le bounds of
/// prefix_list_permits_route, first (lowest-index) match winning.
class CompiledPrefixList {
 public:
  explicit CompiledPrefixList(const config::PrefixList& prefix_list);

  bool permits_route(const Route& route) const;

 private:
  struct Entry {
    std::size_t index = 0;
    int prefix_length = 0;
    std::optional<int> ge;
    std::optional<int> le;
    bool permit = false;
  };
  ip::PrefixTrie<std::vector<Entry>> trie_;
};

/// The exact header set a clause matches under `acl_permits_packet`
/// semantics (for a packet with a *specified* protocol): standard clauses
/// constrain the source only; extended clauses add protocol, destination,
/// and — when an `eq` port is present — the destination port, in which case
/// the portless packet (kNoPort) is excluded.
HeaderPredicate acl_rule_match_region(const config::AclRule& rule,
                                      ProtocolDomain& domain);

/// An access list lowered to packet-set predicates: the exact set of
/// headers the list permits, plus per-clause first-match effectiveness.
/// This is `acl_permits_packet` run on every header at once; the
/// differential suite checks the two against each other.
class SymbolicPacketFilter {
 public:
  SymbolicPacketFilter(const config::AccessList& acl, ProtocolDomain& domain);

  /// Headers on which the list's first matching clause is a permit.
  const HeaderPredicate& permitted() const noexcept { return permitted_; }

  /// Headers each clause actually decides (its match region minus every
  /// earlier clause's). One entry per clause, in clause order.
  const std::vector<HeaderPredicate>& effective() const noexcept {
    return effective_;
  }

  /// Indices of clauses whose effective region is empty — dead clauses the
  /// earlier ones fully shadow (paper §5.3's error-prone IOS filters).
  const std::vector<std::size_t>& shadowed() const noexcept {
    return shadowed_;
  }

 private:
  HeaderPredicate permitted_;
  std::vector<HeaderPredicate> effective_;
  std::vector<std::size_t> shadowed_;
};

class PolicyCompiler;

/// A route-map with every clause's named references resolved to compiled
/// matchers, plus a verdict memo: edges sharing one route-map (the common
/// case — one policy applied to many neighbors) evaluate each distinct route
/// once. The memo makes instances non-shareable across threads; every
/// fixpoint builds its own PolicyCompiler.
class CompiledRouteMap {
 public:
  CompiledRouteMap(const config::RouteMap& route_map,
                   const config::RouterConfig& config,
                   PolicyCompiler& compiler);

  const PolicyVerdict& evaluate(const Route& route) const;

  /// evaluate() without touching the per-object verdict memo: for callers
  /// that maintain their own (cheaper) cache, e.g. the semi-naïve engine's
  /// flat per-universe-position redistribution cache — hashing a Route
  /// into the memo costs more than those callers' array reads.
  PolicyVerdict evaluate_nomemo(const Route& route) const {
    return evaluate_uncached(route);
  }

 private:
  struct Clause {
    bool permit = false;
    /// Distinguishes "no match ip address lines" (condition absent) from
    /// "lines present but none resolved" (condition unsatisfiable).
    bool has_acl_matches = false;
    bool has_prefix_list_matches = false;
    std::vector<const CompiledAclFilter*> acls;
    std::vector<const CompiledPrefixList*> prefix_lists;
    std::optional<std::uint32_t> match_tag;
    std::optional<std::uint32_t> set_tag;
  };
  PolicyVerdict evaluate_uncached(const Route& route) const;

  std::vector<Clause> clauses_;
  mutable std::unordered_map<Route, PolicyVerdict, RouteHash> verdicts_;
};

/// Resolves and caches compiled policy objects, keyed by the AST node they
/// lower, for the lifetime of one analysis run. Unresolvable names yield
/// nullptr, which callers treat exactly as the interpreting functions treat
/// a dangling reference. Not thread-safe: concurrent fixpoints (the what-if
/// sweeps) each own one compiler.
class PolicyCompiler {
 public:
  const CompiledAclFilter* acl(const config::RouterConfig& config,
                               std::string_view id);
  const CompiledPrefixList* prefix_list(const config::RouterConfig& config,
                                        std::string_view name);
  const CompiledRouteMap* route_map(const config::RouterConfig& config,
                                    std::string_view name);

  /// Symbolic lowering of an access list for the header-space engine,
  /// cached like the tries above. All lowerings share the compiler's one
  /// protocol domain, so their predicates are mutually comparable.
  const SymbolicPacketFilter* symbolic_acl(const config::RouterConfig& config,
                                           std::string_view id);

  ProtocolDomain& protocol_domain() noexcept { return domain_; }
  const ProtocolDomain& protocol_domain() const noexcept { return domain_; }

 private:
  std::unordered_map<const config::AccessList*,
                     std::unique_ptr<CompiledAclFilter>>
      acls_;
  std::unordered_map<const config::PrefixList*,
                     std::unique_ptr<CompiledPrefixList>>
      prefix_lists_;
  std::unordered_map<const config::RouteMap*,
                     std::unique_ptr<CompiledRouteMap>>
      route_maps_;
  std::unordered_map<const config::AccessList*,
                     std::unique_ptr<SymbolicPacketFilter>>
      symbolic_acls_;
  ProtocolDomain domain_;
};

}  // namespace rd::model
