#include "model/policy.h"

namespace rd::model {

namespace {

bool source_spec_matches(const config::AclRule& rule, ip::Ipv4Address addr) {
  return rule.any_source || rule.source.contains(addr);
}

bool destination_spec_matches(const config::AclRule& rule,
                              ip::Ipv4Address addr) {
  return rule.any_destination || rule.destination.contains(addr);
}

}  // namespace

bool acl_permits_route(const config::AccessList& acl, const Route& route) {
  for (const auto& rule : acl.rules) {
    if (source_spec_matches(rule, route.prefix.network())) {
      return rule.action == config::FilterAction::kPermit;
    }
  }
  return false;  // implicit deny
}

bool prefix_list_permits_route(const config::PrefixList& prefix_list,
                               const Route& route) {
  for (const auto& entry : prefix_list.entries) {
    if (!entry.prefix.contains(route.prefix)) continue;
    const int length = route.prefix.length();
    if (entry.ge || entry.le) {
      if (entry.ge && length < *entry.ge) continue;
      if (entry.le && length > *entry.le) continue;
      if (!entry.ge && length < entry.prefix.length()) continue;
    } else if (length != entry.prefix.length()) {
      continue;  // exact-length match without ge/le
    }
    return entry.action == config::FilterAction::kPermit;
  }
  return false;  // implicit deny
}

bool acl_permits_packet(const config::AccessList& acl, ip::Ipv4Address source,
                        ip::Ipv4Address destination,
                        std::optional<std::uint16_t> dst_port,
                        std::string_view protocol) {
  for (const auto& rule : acl.rules) {
    if (!source_spec_matches(rule, source)) continue;
    if (rule.extended) {
      if (!protocol.empty() && rule.protocol != "ip" &&
          rule.protocol != protocol) {
        continue;
      }
      if (!destination_spec_matches(rule, destination)) continue;
      if (rule.destination_port && dst_port &&
          *rule.destination_port != *dst_port) {
        continue;
      }
      if (rule.destination_port && !dst_port) continue;
    }
    return rule.action == config::FilterAction::kPermit;
  }
  return false;  // implicit deny
}

PolicyVerdict route_map_evaluate(const config::RouteMap& route_map,
                                 const config::RouterConfig& config,
                                 const Route& route) {
  for (const auto& clause : route_map.clauses) {
    // All match conditions of a clause must hold (AND across kinds; OR
    // across the ACLs of one "match ip address" line, as in IOS).
    if (clause.match_tag && route.tag != clause.match_tag) continue;
    if (!clause.match_ip_address_acls.empty()) {
      bool any = false;
      for (const auto& acl_id : clause.match_ip_address_acls) {
        const auto* acl = config.find_access_list(acl_id);
        if (acl != nullptr && acl_permits_route(*acl, route)) {
          any = true;
          break;
        }
      }
      if (!any) continue;
    }
    if (!clause.match_prefix_lists.empty()) {
      bool any = false;
      for (const auto& pl_name : clause.match_prefix_lists) {
        const auto* pl = config.find_prefix_list(pl_name);
        if (pl != nullptr && prefix_list_permits_route(*pl, route)) {
          any = true;
          break;
        }
      }
      if (!any) continue;
    }
    // "match as-path": the static model carries no AS-path attribute, so
    // the condition is treated as satisfied — a permissive upper bound on
    // reachability, consistent with the paper's avoidance of route-
    // selection modeling. The §6.1 policy-style analysis counts these
    // matches statically instead.
    if (clause.action == config::FilterAction::kDeny) {
      return {false, route};
    }
    Route out = route;
    if (clause.set_tag) out.tag = clause.set_tag;
    return {true, out};
  }
  return {false, route};  // off the end: implicit deny
}

bool distribute_list_permits(const config::RouterConfig& config,
                             std::string_view acl_id, const Route& route) {
  const auto* acl = config.find_access_list(acl_id);
  if (acl == nullptr) return true;
  return acl_permits_route(*acl, route);
}

}  // namespace rd::model
