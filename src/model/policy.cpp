#include "model/policy.h"

#include <limits>
#include <map>
#include <utility>

namespace rd::model {

namespace {

bool source_spec_matches(const config::AclRule& rule, ip::Ipv4Address addr) {
  return rule.any_source || rule.source.contains(addr);
}

bool destination_spec_matches(const config::AclRule& rule,
                              ip::Ipv4Address addr) {
  return rule.any_destination || rule.destination.contains(addr);
}

}  // namespace

bool acl_permits_route(const config::AccessList& acl, const Route& route) {
  for (const auto& rule : acl.rules) {
    if (source_spec_matches(rule, route.prefix.network())) {
      return rule.action == config::FilterAction::kPermit;
    }
  }
  return false;  // implicit deny
}

bool prefix_list_permits_route(const config::PrefixList& prefix_list,
                               const Route& route) {
  for (const auto& entry : prefix_list.entries) {
    if (!entry.prefix.contains(route.prefix)) continue;
    const int length = route.prefix.length();
    if (entry.ge || entry.le) {
      if (entry.ge && length < *entry.ge) continue;
      if (entry.le && length > *entry.le) continue;
      if (!entry.ge && length < entry.prefix.length()) continue;
    } else if (length != entry.prefix.length()) {
      continue;  // exact-length match without ge/le
    }
    return entry.action == config::FilterAction::kPermit;
  }
  return false;  // implicit deny
}

bool acl_permits_packet(const config::AccessList& acl, ip::Ipv4Address source,
                        ip::Ipv4Address destination,
                        std::optional<std::uint16_t> dst_port,
                        std::string_view protocol) {
  for (const auto& rule : acl.rules) {
    if (!source_spec_matches(rule, source)) continue;
    if (rule.extended) {
      // A packet with no (or an unrecognized) protocol matches only "ip"
      // wildcard clauses; it must not slip through protocol-specific
      // entries just because the clause happens to carry no port.
      if (rule.protocol != "ip" && rule.protocol != protocol) continue;
      if (!destination_spec_matches(rule, destination)) continue;
      if (rule.destination_port && dst_port &&
          *rule.destination_port != *dst_port) {
        continue;
      }
      if (rule.destination_port && !dst_port) continue;
    }
    return rule.action == config::FilterAction::kPermit;
  }
  return false;  // implicit deny
}

PolicyVerdict route_map_evaluate(const config::RouteMap& route_map,
                                 const config::RouterConfig& config,
                                 const Route& route) {
  for (const auto& clause : route_map.clauses) {
    // All match conditions of a clause must hold (AND across kinds; OR
    // across the ACLs of one "match ip address" line, as in IOS).
    if (clause.match_tag && route.tag != clause.match_tag) continue;
    if (!clause.match_ip_address_acls.empty()) {
      bool any = false;
      for (const auto& acl_id : clause.match_ip_address_acls) {
        const auto* acl = config.find_access_list(acl_id);
        if (acl != nullptr && acl_permits_route(*acl, route)) {
          any = true;
          break;
        }
      }
      if (!any) continue;
    }
    if (!clause.match_prefix_lists.empty()) {
      bool any = false;
      for (const auto& pl_name : clause.match_prefix_lists) {
        const auto* pl = config.find_prefix_list(pl_name);
        if (pl != nullptr && prefix_list_permits_route(*pl, route)) {
          any = true;
          break;
        }
      }
      if (!any) continue;
    }
    // "match as-path": the static model carries no AS-path attribute, so
    // the condition is treated as satisfied — a permissive upper bound on
    // reachability, consistent with the paper's avoidance of route-
    // selection modeling. The §6.1 policy-style analysis counts these
    // matches statically instead.
    if (clause.action == config::FilterAction::kDeny) {
      return {false, route};
    }
    Route out = route;
    if (clause.set_tag) out.tag = clause.set_tag;
    return {true, out};
  }
  return {false, route};  // off the end: implicit deny
}

bool distribute_list_permits(const config::RouterConfig& config,
                             std::string_view acl_id, const Route& route) {
  const auto* acl = config.find_access_list(acl_id);
  if (acl == nullptr) return true;
  return acl_permits_route(*acl, route);
}

// --- Compiled policies -------------------------------------------------------

CompiledAclFilter::CompiledAclFilter(const config::AccessList& acl) {
  for (std::size_t i = 0; i < acl.rules.size(); ++i) {
    const auto& rule = acl.rules[i];
    const ip::Prefix source = rule.any_source
                                  ? ip::Prefix(ip::Ipv4Address(0u), 0)
                                  : rule.source;
    // First clause per distinct source prefix wins: when two clauses share
    // a source spec the earlier always decides, whatever its action.
    if (trie_.find(source) == nullptr) {
      trie_.insert(source, {i, rule.action == config::FilterAction::kPermit});
    }
  }
}

bool CompiledAclFilter::permits_address(ip::Ipv4Address addr) const noexcept {
  std::size_t best = std::numeric_limits<std::size_t>::max();
  bool permit = false;
  trie_.visit_matches(addr, [&](const FirstClause& clause) {
    if (clause.index < best) {
      best = clause.index;
      permit = clause.permit;
    }
  });
  return best != std::numeric_limits<std::size_t>::max() && permit;
}

CompiledPrefixList::CompiledPrefixList(const config::PrefixList& prefix_list) {
  std::map<ip::Prefix, std::vector<Entry>> grouped;
  for (std::size_t i = 0; i < prefix_list.entries.size(); ++i) {
    const auto& entry = prefix_list.entries[i];
    grouped[entry.prefix].push_back(
        {i, entry.prefix.length(), entry.ge, entry.le,
         entry.action == config::FilterAction::kPermit});
  }
  for (auto& [prefix, entries] : grouped) {
    trie_.insert(prefix, std::move(entries));
  }
}

bool CompiledPrefixList::permits_route(const Route& route) const {
  const int length = route.prefix.length();
  std::size_t best = std::numeric_limits<std::size_t>::max();
  bool permit = false;
  trie_.visit_matches(route.prefix.network(), [&](const std::vector<Entry>&
                                                       entries) {
    for (const auto& entry : entries) {
      // A stored prefix deeper than the route's own length matches the
      // network address but does not contain the route.
      if (entry.prefix_length > length) continue;
      if (entry.ge || entry.le) {
        if (entry.ge && length < *entry.ge) continue;
        if (entry.le && length > *entry.le) continue;
        if (!entry.ge && length < entry.prefix_length) continue;
      } else if (length != entry.prefix_length) {
        continue;  // exact-length match without ge/le
      }
      if (entry.index < best) {
        best = entry.index;
        permit = entry.permit;
      }
    }
  });
  return best != std::numeric_limits<std::size_t>::max() && permit;
}

HeaderPredicate acl_rule_match_region(const config::AclRule& rule,
                                      ProtocolDomain& domain) {
  HeaderAtom atom;  // /0 × /0 × any protocol × [0, kNoPort]
  if (!rule.any_source) atom.source = rule.source;
  if (rule.extended) {
    atom.protocols = domain.clause_mask(rule.protocol);
    if (!rule.any_destination) atom.destination = rule.destination;
    if (rule.destination_port) {
      atom.port_lo = *rule.destination_port;
      atom.port_hi = *rule.destination_port;
    }
  }
  return HeaderPredicate::of(atom);
}

SymbolicPacketFilter::SymbolicPacketFilter(const config::AccessList& acl,
                                           ProtocolDomain& domain) {
  // First-match-wins, run on all headers at once: each clause decides only
  // the part of its match region no earlier clause claimed. Each clause is
  // peeled independently against the earlier clauses' match regions;
  // materializing a running "unclaimed" predicate instead fragments every
  // clause jointly and blows up on host-specific filter lists.
  std::vector<HeaderPredicate> regions;
  regions.reserve(acl.rules.size());
  effective_.reserve(acl.rules.size());
  std::vector<HeaderAtom> scratch;  // reused across every peel below
  for (std::size_t i = 0; i < acl.rules.size(); ++i) {
    const auto& rule = acl.rules[i];
    HeaderPredicate region = acl_rule_match_region(rule, domain);
    HeaderPredicate effective = region;
    for (std::size_t j = 0; j < i && !effective.is_empty(); ++j) {
      effective.subtract_in_place(regions[j], scratch);
    }
    // A single clause region peeled by disjoint holes stays a disjoint
    // union, so the cheap disjoint normalize is exact here.
    effective.normalize_disjoint();
    if (effective.is_empty()) {
      shadowed_.push_back(i);
    } else if (rule.action == config::FilterAction::kPermit) {
      // Effective regions of different clauses are disjoint by first-match
      // construction.
      permitted_.unite_disjoint(effective);
    }
    effective_.push_back(std::move(effective));
    regions.push_back(std::move(region));
  }
  permitted_.normalize_disjoint();
  // Off the end of the list is the implicit deny: headers no clause
  // claims are simply not permitted.
}

CompiledRouteMap::CompiledRouteMap(const config::RouteMap& route_map,
                                   const config::RouterConfig& config,
                                   PolicyCompiler& compiler) {
  clauses_.reserve(route_map.clauses.size());
  for (const auto& clause : route_map.clauses) {
    Clause compiled;
    compiled.permit = clause.action == config::FilterAction::kPermit;
    compiled.has_acl_matches = !clause.match_ip_address_acls.empty();
    compiled.has_prefix_list_matches = !clause.match_prefix_lists.empty();
    for (const auto& acl_id : clause.match_ip_address_acls) {
      if (const auto* acl = compiler.acl(config, acl_id)) {
        compiled.acls.push_back(acl);
      }
    }
    for (const auto& pl_name : clause.match_prefix_lists) {
      if (const auto* pl = compiler.prefix_list(config, pl_name)) {
        compiled.prefix_lists.push_back(pl);
      }
    }
    compiled.match_tag = clause.match_tag;
    compiled.set_tag = clause.set_tag;
    clauses_.push_back(std::move(compiled));
  }
}

const PolicyVerdict& CompiledRouteMap::evaluate(const Route& route) const {
  const auto [it, fresh] = verdicts_.try_emplace(route);
  if (fresh) it->second = evaluate_uncached(route);
  return it->second;
}

PolicyVerdict CompiledRouteMap::evaluate_uncached(const Route& route) const {
  for (const auto& clause : clauses_) {
    // Mirror of route_map_evaluate: AND across match kinds, OR across the
    // matchers of one kind; "match as-path" is treated as satisfied.
    if (clause.match_tag && route.tag != clause.match_tag) continue;
    if (clause.has_acl_matches) {
      bool any = false;
      for (const auto* acl : clause.acls) {
        if (acl->permits_route(route)) {
          any = true;
          break;
        }
      }
      if (!any) continue;
    }
    if (clause.has_prefix_list_matches) {
      bool any = false;
      for (const auto* pl : clause.prefix_lists) {
        if (pl->permits_route(route)) {
          any = true;
          break;
        }
      }
      if (!any) continue;
    }
    if (!clause.permit) return {false, route};
    Route out = route;
    if (clause.set_tag) out.tag = clause.set_tag;
    return {true, out};
  }
  return {false, route};  // off the end: implicit deny
}

RouteMapFacts route_map_facts(const config::RouterConfig& config,
                              std::string_view name) {
  RouteMapFacts facts;
  const auto* map = config.find_route_map(name);
  if (map == nullptr) return facts;
  facts.resolved = true;
  bool blanket_permit_seen = false;
  for (const auto& clause : map->clauses) {
    facts.uses_tags =
        facts.uses_tags || clause.match_tag.has_value() ||
        clause.set_tag.has_value();
    if (clause.action == config::FilterAction::kDeny) {
      if (!blanket_permit_seen) facts.may_deny = true;
      continue;
    }
    facts.sets_metric = facts.sets_metric || clause.set_metric.has_value();
    const bool unconditional = clause.match_ip_address_acls.empty() &&
                               clause.match_prefix_lists.empty() &&
                               clause.match_as_paths.empty() &&
                               !clause.match_tag.has_value();
    if (unconditional) blanket_permit_seen = true;
  }
  // Routes falling off the end hit the implicit deny, so without a blanket
  // permit some route is always deniable.
  if (!blanket_permit_seen) facts.may_deny = true;
  return facts;
}

const CompiledAclFilter* PolicyCompiler::acl(
    const config::RouterConfig& config, std::string_view id) {
  const auto* node = config.find_access_list(id);
  if (node == nullptr) return nullptr;
  auto& slot = acls_[node];
  if (!slot) slot = std::make_unique<CompiledAclFilter>(*node);
  return slot.get();
}

const CompiledPrefixList* PolicyCompiler::prefix_list(
    const config::RouterConfig& config, std::string_view name) {
  const auto* node = config.find_prefix_list(name);
  if (node == nullptr) return nullptr;
  auto& slot = prefix_lists_[node];
  if (!slot) slot = std::make_unique<CompiledPrefixList>(*node);
  return slot.get();
}

const SymbolicPacketFilter* PolicyCompiler::symbolic_acl(
    const config::RouterConfig& config, std::string_view id) {
  const auto* node = config.find_access_list(id);
  if (node == nullptr) return nullptr;
  auto& slot = symbolic_acls_[node];
  if (!slot) slot = std::make_unique<SymbolicPacketFilter>(*node, domain_);
  return slot.get();
}

const CompiledRouteMap* PolicyCompiler::route_map(
    const config::RouterConfig& config, std::string_view name) {
  const auto* node = config.find_route_map(name);
  if (node == nullptr) return nullptr;
  auto& slot = route_maps_[node];
  if (!slot) slot = std::make_unique<CompiledRouteMap>(*node, config, *this);
  return slot.get();
}

}  // namespace rd::model
