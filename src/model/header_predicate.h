#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ip/ipv4.h"

namespace rd::model {

// --- Symbolic packet-set predicates ------------------------------------------
//
// The paper's §6 pathway analysis answers "does *this* packet get through?";
// the header-space engine (analysis/header_space.h) answers "exactly *which*
// packets get through?". Its packet sets are predicates over the header
// coordinates the packet filters can test:
//
//     (source address, destination address, protocol, destination port)
//
// represented as a union of cross-products of one set per coordinate. Each
// coordinate set has a closed, finitely-representable form — prefixes for
// addresses, a bitmask for protocols, an integer interval for ports — so the
// union-of-boxes algebra below (intersect / subtract / emptiness) is exact,
// and predicate equivalence is decidable by symmetric difference.

/// The port coordinate ranges over the real ports 0..65535 plus one extra
/// point, `kNoPort` (65536), standing for "the packet carries no layer-4
/// port" — the header FlowQuery expresses with an empty destination_port.
/// Folding the portless packet into the numeric line keeps every atom a pure
/// cross-product: an ACL clause without an `eq` port matches [0, kNoPort],
/// a clause with `eq p` matches exactly [p, p].
inline constexpr std::uint32_t kNoPort = 65536;

/// Protocol coordinate sets are bitmasks over a `ProtocolDomain`.
inline constexpr std::uint64_t kAllProtocols = ~0ULL;

/// Interns protocol names ("tcp", "udp", "icmp", ...) to bit positions.
///
/// Bit 0 is always "ip": the *unspecified-protocol* packet (FlowQuery's
/// default), which matches only protocol-wildcard clauses. A clause written
/// with protocol "ip" is IOS's wildcard and lowers to `kAllProtocols`; any
/// other clause protocol lowers to its own single bit. Packet protocols
/// never named by a clause share the reserved "unknown" bit — sound, because
/// no clause mask ever contains that bit except the all-ones wildcard.
class ProtocolDomain {
 public:
  ProtocolDomain();

  /// Mask a clause with this protocol keyword matches ("ip" = wildcard).
  /// Interns new names; at most `kMaxNamed` distinct names are
  /// distinguished, later ones share the overflow bit (documented
  /// approximation, unreachable with realistic configurations).
  std::uint64_t clause_mask(std::string_view protocol);

  /// The single coordinate bit of a concrete packet's protocol. Names never
  /// interned by any clause map to the reserved unknown bit.
  std::uint64_t packet_bit(std::string_view protocol) const noexcept;

  /// Name for a coordinate bit index (used to print witnesses); the
  /// reserved bits print as "ip"-compatible placeholders.
  std::string_view bit_name(int bit) const noexcept;

  std::size_t named_count() const noexcept { return names_.size(); }

  static constexpr int kUnknownBit = 63;
  static constexpr std::size_t kMaxNamed = 62;

 private:
  std::vector<std::string> names_;  // names_[i] owns bit i; names_[0] = "ip"
};

/// One cross-product of coordinate sets. Invariant (enforced by
/// HeaderPredicate): never empty — `protocols != 0` and `port_lo <=
/// port_hi`.
struct HeaderAtom {
  ip::Prefix source;                           // source-address set
  ip::Prefix destination;                      // destination-address set
  std::uint64_t protocols = kAllProtocols;     // ProtocolDomain bitmask
  std::uint32_t port_lo = 0;                   // inclusive
  std::uint32_t port_hi = kNoPort;             // inclusive

  bool empty() const noexcept { return protocols == 0 || port_lo > port_hi; }

  /// Does this atom cover every header `other` covers?
  bool covers(const HeaderAtom& other) const noexcept {
    return source.contains(other.source) &&
           destination.contains(other.destination) &&
           (other.protocols & ~protocols) == 0 && port_lo <= other.port_lo &&
           other.port_hi <= port_hi;
  }

  friend bool operator==(const HeaderAtom&, const HeaderAtom&) = default;
};

/// Deterministic ordering for normalization and witness selection.
bool operator<(const HeaderAtom& a, const HeaderAtom& b) noexcept;

/// Set difference of two prefixes as a disjoint prefix cover:
/// `a \ b` — empty when b covers a, `{a}` when they are disjoint, and the
/// sibling prefixes along the trie path from a down to b when b ⊂ a (at
/// most 32 - a.length() prefixes).
std::vector<ip::Prefix> prefix_difference(const ip::Prefix& a,
                                          const ip::Prefix& b);

/// A packet-set predicate: the union of its atoms. Atoms may overlap (the
/// algebra never requires disjointness); emptiness is `atoms().empty()`
/// because empty atoms are never stored.
class HeaderPredicate {
 public:
  HeaderPredicate() = default;

  static HeaderPredicate none() { return {}; }
  /// Every header: both address dimensions 0.0.0.0/0, every protocol,
  /// ports [0, kNoPort].
  static HeaderPredicate all();
  static HeaderPredicate of(HeaderAtom atom);

  bool is_empty() const noexcept { return atoms_.empty(); }
  std::size_t atom_count() const noexcept { return atoms_.size(); }
  const std::vector<HeaderAtom>& atoms() const noexcept { return atoms_; }

  /// Membership of one concrete header. `protocol_bit` is a single
  /// ProtocolDomain bit; `port` is a real port or kNoPort.
  bool contains(ip::Ipv4Address source, ip::Ipv4Address destination,
                std::uint64_t protocol_bit, std::uint32_t port) const noexcept;

  void unite(HeaderAtom atom);
  void unite(const HeaderPredicate& other);
  /// Union with a predicate the caller knows is disjoint from this one
  /// (e.g. first-match effective regions): appends atoms without unite()'s
  /// per-atom cover scan, which is quadratic on large accumulations.
  void unite_disjoint(const HeaderPredicate& other);
  HeaderPredicate intersect(const HeaderAtom& atom) const;
  HeaderPredicate intersect(const HeaderPredicate& other) const;
  HeaderPredicate subtract(const HeaderAtom& atom) const;
  HeaderPredicate subtract(const HeaderPredicate& other) const;

  /// subtract() without the per-call predicate copy: peels `atom` out of
  /// this predicate, using `scratch` as the rebuild buffer (cleared and
  /// swapped in; pass the same vector across calls to amortize its
  /// capacity). Produces the identical atom list to `*this =
  /// subtract(atom)`. The hot path of ACL lowering, which peels every
  /// clause against all earlier clauses.
  void subtract_in_place(const HeaderAtom& atom,
                         std::vector<HeaderAtom>& scratch);
  void subtract_in_place(const HeaderPredicate& other,
                         std::vector<HeaderAtom>& scratch);

  bool disjoint_with(const HeaderPredicate& other) const {
    return intersect(other).is_empty();
  }

  /// True when every header in `other` is also in this predicate. Decided
  /// one atom at a time, so the fragment set stays proportional to a single
  /// atom's splintering rather than the whole predicate's — materializing
  /// subtract(other) on two multi-thousand-atom predicates is intractable.
  bool covers(const HeaderPredicate& other) const;

  /// Exact set equivalence, decided by mutual cover. Two predicates with
  /// different atom lists describing the same set compare equal.
  bool equivalent(const HeaderPredicate& other) const {
    return covers(other) && other.covers(*this);
  }

  /// Sort atoms and drop atoms covered by another single atom. Not a
  /// canonical form (union-of-boxes has none that is cheap), but enough to
  /// make printed output and atom-count metrics deterministic and small.
  void normalize();

  /// normalize() for predicates the caller knows have pairwise-disjoint
  /// atoms (first-match effective regions, unite_disjoint accumulations):
  /// disjoint atoms can neither cover nor equal each other, so the cover
  /// prune is a no-op and sorting alone gives the identical result in
  /// O(n log n).
  void normalize_disjoint();

  /// The least header in the predicate (by the atom ordering, then least
  /// coordinates within the first atom); nullopt when empty. Used to print
  /// deterministic witnesses for violated intents.
  struct Witness {
    ip::Ipv4Address source;
    ip::Ipv4Address destination;
    int protocol_bit = 0;
    std::uint32_t port = 0;  // kNoPort = portless
  };
  std::optional<Witness> witness() const;

  /// "src dst proto-mask ports" per atom, one per line — diagnostics only.
  std::string to_string(const ProtocolDomain& domain) const;

 private:
  std::vector<HeaderAtom> atoms_;
};

}  // namespace rd::model
