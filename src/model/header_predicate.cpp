#include "model/header_predicate.h"

#include <algorithm>
#include <bit>
#include <utility>

namespace rd::model {

namespace {

/// Intersection of two prefixes: with prefixes, overlap means one contains
/// the other, so the intersection is the longer of the two.
std::optional<ip::Prefix> prefix_intersect(const ip::Prefix& a,
                                           const ip::Prefix& b) noexcept {
  if (a.contains(b)) return b;
  if (b.contains(a)) return a;
  return std::nullopt;
}

std::optional<HeaderAtom> atom_intersect(const HeaderAtom& a,
                                         const HeaderAtom& b) noexcept {
  const auto src = prefix_intersect(a.source, b.source);
  if (!src) return std::nullopt;
  const auto dst = prefix_intersect(a.destination, b.destination);
  if (!dst) return std::nullopt;
  HeaderAtom out;
  out.source = *src;
  out.destination = *dst;
  out.protocols = a.protocols & b.protocols;
  out.port_lo = std::max(a.port_lo, b.port_lo);
  out.port_hi = std::min(a.port_hi, b.port_hi);
  if (out.empty()) return std::nullopt;
  return out;
}

/// `a \ b` for the prefix coordinate, emitted in the same sorted order
/// prefix_difference returns but through a stack buffer: the siblings are
/// generated bottom-up in strictly decreasing length, so emitting them in
/// reverse *is* the (length, network) ascending order — no sort, no heap.
template <typename Emit>
void for_each_prefix_difference(const ip::Prefix& a, const ip::Prefix& b,
                                Emit&& emit) {
  if (b.contains(a)) return;
  if (!a.contains(b)) {
    emit(a);
    return;
  }
  ip::Prefix buf[32];
  int n = 0;
  ip::Prefix cursor = b;
  while (cursor.length() > a.length()) {
    buf[n++] = cursor.buddy();
    cursor = cursor.parent();
  }
  for (int i = n - 1; i >= 0; --i) emit(buf[i]);
}

/// Appends the disjoint pieces of `have \ hole` (hole = a non-empty
/// atom_intersect(have, atom)) to `out` — the coordinate-peeling step
/// shared by subtract() and subtract_in_place(), kept byte-identical
/// between the two.
void append_peeled_pieces(const HeaderAtom& have, const HeaderAtom& hole,
                          std::vector<HeaderAtom>& out) {
  // Peel the atom coordinate by coordinate: each piece keeps the hole's
  // coordinates on the dimensions already peeled and the atom's on the
  // rest, so the pieces are disjoint and their union is `have \ hole`.
  // Pieces are appended without unite()'s cover scan — they are disjoint
  // by construction, and the scan turns peeling quadratic on the
  // multi-thousand-atom predicates ACL lowering produces.
  for_each_prefix_difference(have.source, hole.source,
                             [&](const ip::Prefix& src) {
                               HeaderAtom piece = have;
                               piece.source = src;
                               out.push_back(piece);
                             });
  for_each_prefix_difference(have.destination, hole.destination,
                             [&](const ip::Prefix& dst) {
                               HeaderAtom piece = have;
                               piece.source = hole.source;
                               piece.destination = dst;
                               out.push_back(piece);
                             });
  if (const std::uint64_t rest = have.protocols & ~hole.protocols) {
    HeaderAtom piece = have;
    piece.source = hole.source;
    piece.destination = hole.destination;
    piece.protocols = rest;
    out.push_back(piece);
  }
  if (have.port_lo < hole.port_lo) {
    HeaderAtom piece = have;
    piece.source = hole.source;
    piece.destination = hole.destination;
    piece.protocols = hole.protocols;
    piece.port_hi = hole.port_lo - 1;
    out.push_back(piece);
  }
  if (have.port_hi > hole.port_hi) {
    HeaderAtom piece = have;
    piece.source = hole.source;
    piece.destination = hole.destination;
    piece.protocols = hole.protocols;
    piece.port_lo = hole.port_hi + 1;
    out.push_back(piece);
  }
}

}  // namespace

bool operator<(const HeaderAtom& a, const HeaderAtom& b) noexcept {
  if (a.source != b.source) return a.source < b.source;
  if (a.destination != b.destination) return a.destination < b.destination;
  if (a.port_lo != b.port_lo) return a.port_lo < b.port_lo;
  if (a.port_hi != b.port_hi) return a.port_hi < b.port_hi;
  return a.protocols < b.protocols;
}

ProtocolDomain::ProtocolDomain() { names_.emplace_back("ip"); }

std::uint64_t ProtocolDomain::clause_mask(std::string_view protocol) {
  if (protocol == "ip") return kAllProtocols;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == protocol) return 1ULL << i;
  }
  if (names_.size() >= kMaxNamed) return 1ULL << (kMaxNamed - 1);
  names_.emplace_back(protocol);
  return 1ULL << (names_.size() - 1);
}

std::uint64_t ProtocolDomain::packet_bit(
    std::string_view protocol) const noexcept {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == protocol) return 1ULL << i;
  }
  return 1ULL << kUnknownBit;
}

std::string_view ProtocolDomain::bit_name(int bit) const noexcept {
  if (bit >= 0 && static_cast<std::size_t>(bit) < names_.size()) {
    return names_[static_cast<std::size_t>(bit)];
  }
  return bit == kUnknownBit ? "other" : "?";
}

std::vector<ip::Prefix> prefix_difference(const ip::Prefix& a,
                                          const ip::Prefix& b) {
  if (b.contains(a)) return {};
  if (!a.contains(b)) return {a};
  // b is a strict sub-prefix of a: the difference is the buddy at every
  // level on the path from b up to (but excluding) a.
  std::vector<ip::Prefix> out;
  ip::Prefix cursor = b;
  while (cursor.length() > a.length()) {
    out.push_back(cursor.buddy());
    cursor = cursor.parent();
  }
  std::sort(out.begin(), out.end());
  return out;
}

HeaderPredicate HeaderPredicate::all() {
  HeaderAtom atom;  // defaults: /0 × /0 × all protocols × [0, kNoPort]
  return of(atom);
}

HeaderPredicate HeaderPredicate::of(HeaderAtom atom) {
  HeaderPredicate p;
  p.unite(atom);
  return p;
}

bool HeaderPredicate::contains(ip::Ipv4Address source,
                               ip::Ipv4Address destination,
                               std::uint64_t protocol_bit,
                               std::uint32_t port) const noexcept {
  for (const auto& atom : atoms_) {
    if (atom.source.contains(source) &&
        atom.destination.contains(destination) &&
        (atom.protocols & protocol_bit) != 0 && atom.port_lo <= port &&
        port <= atom.port_hi) {
      return true;
    }
  }
  return false;
}

void HeaderPredicate::unite(HeaderAtom atom) {
  if (atom.empty()) return;
  for (const auto& have : atoms_) {
    if (have.covers(atom)) return;
  }
  atoms_.push_back(atom);
}

void HeaderPredicate::unite(const HeaderPredicate& other) {
  for (const auto& atom : other.atoms_) unite(atom);
}

void HeaderPredicate::unite_disjoint(const HeaderPredicate& other) {
  atoms_.insert(atoms_.end(), other.atoms_.begin(), other.atoms_.end());
}

HeaderPredicate HeaderPredicate::intersect(const HeaderAtom& atom) const {
  // Pieces of distinct atoms overlap only where the inputs already did, so
  // they are appended without unite()'s cover scan; callers that need a
  // small atom list normalize() afterwards.
  HeaderPredicate out;
  for (const auto& have : atoms_) {
    if (const auto piece = atom_intersect(have, atom)) {
      out.atoms_.push_back(*piece);
    }
  }
  return out;
}

HeaderPredicate HeaderPredicate::intersect(
    const HeaderPredicate& other) const {
  HeaderPredicate out;
  for (const auto& atom : other.atoms_) {
    out.unite_disjoint(intersect(atom));
  }
  return out;
}

HeaderPredicate HeaderPredicate::subtract(const HeaderAtom& atom) const {
  HeaderPredicate out;
  for (const auto& have : atoms_) {
    const auto hole = atom_intersect(have, atom);
    if (!hole) {
      out.atoms_.push_back(have);
      continue;
    }
    append_peeled_pieces(have, *hole, out.atoms_);
  }
  return out;
}

HeaderPredicate HeaderPredicate::subtract(const HeaderPredicate& other) const {
  HeaderPredicate out = *this;
  std::vector<HeaderAtom> scratch;
  for (const auto& atom : other.atoms_) {
    out.subtract_in_place(atom, scratch);
    if (out.is_empty()) break;
  }
  return out;
}

void HeaderPredicate::subtract_in_place(const HeaderAtom& atom,
                                        std::vector<HeaderAtom>& scratch) {
  // Fast path: when nothing overlaps the atom the predicate is unchanged —
  // the common case when peeling an ACL clause against far-apart earlier
  // clauses — and no atom is copied at all.
  std::size_t first = 0;
  while (first < atoms_.size() && !atom_intersect(atoms_[first], atom)) {
    ++first;
  }
  if (first == atoms_.size()) return;
  scratch.clear();
  scratch.insert(scratch.end(), atoms_.begin(), atoms_.begin() + first);
  for (std::size_t i = first; i < atoms_.size(); ++i) {
    const auto& have = atoms_[i];
    const auto hole = atom_intersect(have, atom);
    if (!hole) {
      scratch.push_back(have);
      continue;
    }
    append_peeled_pieces(have, *hole, scratch);
  }
  atoms_.swap(scratch);
}

void HeaderPredicate::subtract_in_place(const HeaderPredicate& other,
                                        std::vector<HeaderAtom>& scratch) {
  for (const auto& atom : other.atoms_) {
    subtract_in_place(atom, scratch);
    if (is_empty()) return;
  }
}

bool HeaderPredicate::covers(const HeaderPredicate& other) const {
  // Exact-twin lookup first: when the two predicates share structure (e.g.
  // two lowerings of the same access list) almost every atom has a
  // verbatim counterpart, and the O(n^2) single-cover scan below would
  // dominate.
  std::vector<HeaderAtom> sorted = atoms_;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& atom : other.atoms_) {
    if (std::binary_search(sorted.begin(), sorted.end(), atom)) continue;
    // Fast path: a single atom swallows it whole.
    bool swallowed = false;
    for (const auto& mine : atoms_) {
      if (mine.covers(atom)) {
        swallowed = true;
        break;
      }
    }
    if (swallowed) continue;
    // Otherwise peel just this atom; subtract(atom) skips non-overlapping
    // pieces, and the early-empty exit fires as soon as the cover is
    // complete.
    HeaderPredicate rest = HeaderPredicate::of(atom);
    for (const auto& mine : atoms_) {
      rest = rest.subtract(mine);
      if (rest.is_empty()) break;
    }
    if (!rest.is_empty()) return false;
  }
  return true;
}

void HeaderPredicate::normalize() {
  // The single-atom cover pruning below is pairwise; past a few thousand
  // atoms its cost dwarfs what it saves, and sorting alone already gives
  // the determinism callers rely on. Large predicates get sort + exact
  // dedup only.
  if (atoms_.size() > 2048) {
    std::sort(atoms_.begin(), atoms_.end());
    atoms_.erase(std::unique(atoms_.begin(), atoms_.end()), atoms_.end());
    return;
  }
  std::vector<char> dead(atoms_.size(), 0);
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    for (std::size_t j = 0; j < atoms_.size(); ++j) {
      if (i == j || dead[j]) continue;
      if (atoms_[j].covers(atoms_[i]) &&
          (!(atoms_[i] == atoms_[j]) || j < i)) {
        dead[i] = 1;
        break;
      }
    }
  }
  std::vector<HeaderAtom> kept;
  kept.reserve(atoms_.size());
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (!dead[i]) kept.push_back(atoms_[i]);
  }
  std::sort(kept.begin(), kept.end());
  atoms_ = std::move(kept);
}

void HeaderPredicate::normalize_disjoint() {
  // With pairwise-disjoint atoms no distinct atom can cover another (cover
  // implies a shared header, atoms are never empty) and no two atoms are
  // equal, so normalize()'s O(n^2) cover-prune provably removes nothing:
  // sorting alone yields the identical atom list.
  std::sort(atoms_.begin(), atoms_.end());
}

std::optional<HeaderPredicate::Witness> HeaderPredicate::witness() const {
  if (atoms_.empty()) return std::nullopt;
  const HeaderAtom* least = &atoms_.front();
  for (const auto& atom : atoms_) {
    if (atom < *least) least = &atom;
  }
  Witness w;
  w.source = least->source.network();
  w.destination = least->destination.network();
  w.protocol_bit = std::countr_zero(least->protocols);
  w.port = least->port_lo;
  return w;
}

std::string HeaderPredicate::to_string(const ProtocolDomain& domain) const {
  std::string out;
  for (const auto& atom : atoms_) {
    out += atom.source.to_string();
    out += " -> ";
    out += atom.destination.to_string();
    out += " proto ";
    if (atom.protocols == kAllProtocols) {
      out += "any";
    } else {
      bool first = true;
      for (int bit = 0; bit < 64; ++bit) {
        if ((atom.protocols >> bit) & 1) {
          if (!first) out += ',';
          out += domain.bit_name(bit);
          first = false;
        }
      }
    }
    out += " port ";
    if (atom.port_lo == 0 && atom.port_hi == kNoPort) {
      out += "any";
    } else {
      out += atom.port_lo == kNoPort ? std::string("none")
                                     : std::to_string(atom.port_lo);
      if (atom.port_hi != atom.port_lo) {
        out += '-';
        out += atom.port_hi == kNoPort ? std::string("none")
                                       : std::to_string(atom.port_hi);
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace rd::model
