#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "anonymize/ipanon.h"

namespace rd::anonymize {

/// Structure-preserving configuration anonymizer (paper §4.1).
///
/// Reproduces the paper's recipe:
///  - comment text is removed (bare "!" separators survive);
///  - tokens found in the IOS-dialect keyword whitelist pass through;
///  - all other non-numeric tokens are replaced by SHA-1-derived identifiers
///    (the paper's "8aTzlvBrbaW"-style strings);
///  - IP addresses are anonymized prefix-preservingly; netmasks and wildcard
///    masks are structural and pass through unchanged;
///  - public AS numbers are renumbered consistently; private AS numbers
///    (64512-65534) pass through, as in the paper;
///  - other plain integers (process ids, metrics, ports) pass through.
///
/// The same instance must be used for every file of a network so that names
/// and addresses shared across routers stay consistent — link inference on
/// the anonymized fleet must yield the same topology as on the original.
class Anonymizer {
 public:
  explicit Anonymizer(std::uint64_t key);

  /// Anonymize a full configuration text.
  std::string anonymize(std::string_view config_text);

  /// Anonymize one token in isolation (exposed for tests).
  std::string anonymize_token(std::string_view token);

  ip::Ipv4Address anonymize_address(ip::Ipv4Address addr) const noexcept {
    return ip_.anonymize(addr);
  }

  std::uint32_t anonymize_asn(std::uint32_t asn);

  /// Number of distinct free-form tokens hashed so far.
  std::size_t hashed_token_count() const noexcept {
    return token_cache_.size();
  }

 private:
  std::string hash_word(std::string_view word);
  std::string anonymize_line(std::string_view line);

  std::uint64_t key_;
  PrefixPreservingAnonymizer ip_;
  std::unordered_set<std::string> keywords_;
  std::unordered_map<std::string, std::string> token_cache_;
  std::unordered_map<std::uint32_t, std::uint32_t> asn_map_;
  std::unordered_set<std::uint32_t> asn_used_;
};

}  // namespace rd::anonymize
