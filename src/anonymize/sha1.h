#pragma once

// SHA-1 moved to util/hash.h so the pipeline's content-addressed parse
// cache and the anonymizer share one implementation; this header keeps the
// historical rd::anonymize spelling working.

#include "util/hash.h"

namespace rd::anonymize {

using util::Sha1;
using util::base62_token;

}  // namespace rd::anonymize
