#include "anonymize/ipanon.h"

namespace rd::anonymize {
namespace {

// A small keyed mixer (xorshift-multiply, splitmix-style). Used as the PRF
// f_i(prefix): only the low bit of the output is consumed per position.
std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

ip::Ipv4Address PrefixPreservingAnonymizer::anonymize(
    ip::Ipv4Address addr) const noexcept {
  const std::uint32_t in = addr.value();
  std::uint32_t out = 0;
  // Bits 0..29 are permuted prefix-preservingly. The two low-order host
  // bits pass through unchanged: inside a /30 point-to-point subnet the
  // network/broadcast/usable-host positions must survive anonymization, or
  // the external-facing inference (paper §5.2) would misclassify links when
  // run on anonymized data. This is the "structure-preserving" part of the
  // paper's §4.1 scheme; the privacy cost is two bits.
  for (int i = 0; i < 30; ++i) {
    // The first i bits of the input (as a value), plus the position, plus
    // the key, determine the flip for bit i.
    const std::uint32_t prefix_bits = i == 0 ? 0u : (in >> (32 - i));
    const std::uint64_t prf =
        mix(key_ ^ (std::uint64_t{prefix_bits} << 8) ^
            static_cast<std::uint64_t>(i) ^ 0xA5A5A5A5ULL * (i + 1));
    const std::uint32_t in_bit = (in >> (31 - i)) & 1u;
    const std::uint32_t flip = static_cast<std::uint32_t>(prf & 1u);
    out = (out << 1) | (in_bit ^ flip);
  }
  return ip::Ipv4Address((out << 2) | (in & 3u));
}

ip::Prefix PrefixPreservingAnonymizer::anonymize(
    const ip::Prefix& prefix) const noexcept {
  return ip::Prefix(anonymize(prefix.network()), prefix.length());
}

}  // namespace rd::anonymize
