#include "anonymize/anonymizer.h"

#include <cctype>

#include "util/hash.h"
#include "util/strings.h"

namespace rd::anonymize {
namespace {

// The published-command-reference whitelist (paper §4.1): words that appear
// in the IOS command vocabulary carry no user information and pass through.
// This list covers the dialect our parser understands plus common hardware
// interface type names.
constexpr std::string_view kKeywords[] = {
    // structural commands
    "hostname", "interface", "router", "network", "redistribute",
    "distribute-list", "neighbor", "remote-as", "route-map", "access-list",
    "access-group", "address", "secondary", "description", "bandwidth",
    "shutdown", "passive-interface", "default", "default-metric", "router-id",
    "match", "set", "tag", "metric", "metric-type", "subnets", "permit",
    "deny", "host", "any", "eq", "in", "out", "ip", "route", "area", "mask",
    "point-to-point", "update-source", "next-hop-self",
    "route-reflector-client", "send-community", "soft-reconfiguration",
    "synchronization", "no", "end", "version", "local-preference",
    "maximum-paths", "timers", "auto-summary", "log-adjacency-changes",
    "remark", "cost", "ospf", "eigrp", "igrp", "rip", "bgp", "isis",
    "frame-relay", "interface-dlci", "encapsulation", "hdlc", "ppp", "service",
    "line", "vty", "con", "aux", "boot", "logging", "snmp-server", "banner",
    "enable", "inbound", "static", "connected", "domain-lookup", "classless",
    "subnet-zero", "timestamps", "debug", "log", "uptime",
    "password-encryption", "secret", "password", "login", "exec-timeout",
    "system", "flash", "community", "RO", "RW", "location", "unknown",
    "dialer", "pool", "pool-member", "prefix-list", "seq", "ge", "le",
    "standard", "extended", "as-path",
    // protocol names in ACLs
    "tcp", "udp", "icmp", "pim", "gre", "esp", "ahp", "ospfigp",
    // hardware interface types (Table 3 vocabulary)
    "Ethernet", "FastEthernet", "GigabitEthernet", "Serial", "Hssi", "POS",
    "ATM", "TokenRing", "Fddi", "Loopback", "Null", "Tunnel", "Dialer",
    "BRI", "Port-channel", "Multilink", "Virtual-Template", "Async", "CBR",
    "Channel", "Vlan",
};

bool is_identifier_punct(char c) noexcept {
  return c == '/' || c == '.' || c == ':' || c == '-' || c == '_';
}

/// "RD" followed by digits only — the design-rule id grammar. Anything else
/// inside a suppression comment is user text and must not survive.
bool is_rule_id(std::string_view token) noexcept {
  if (token.size() < 3 || token.size() > 8) return false;
  if (token[0] != 'R' || token[1] != 'D') return false;
  for (std::size_t i = 2; i < token.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(token[i])) == 0) return false;
  }
  return true;
}

}  // namespace

Anonymizer::Anonymizer(std::uint64_t key) : key_(key), ip_(key) {
  for (const auto kw : kKeywords) keywords_.emplace(kw);
}

std::string Anonymizer::hash_word(std::string_view word) {
  const std::string key(word);
  if (const auto it = token_cache_.find(key); it != token_cache_.end()) {
    return it->second;
  }
  util::Sha1 sha;
  sha.update(std::string_view(reinterpret_cast<const char*>(&key_),
                              sizeof(key_)));
  sha.update(word);
  std::string hashed = util::base62_token(sha.digest(), 11);
  token_cache_.emplace(key, hashed);
  return hashed;
}

std::uint32_t Anonymizer::anonymize_asn(std::uint32_t asn) {
  if (ip::is_private_asn(asn)) return asn;
  if (const auto it = asn_map_.find(asn); it != asn_map_.end()) {
    return it->second;
  }
  // Derive a stable pseudorandom public ASN; resolve collisions by probing.
  util::Sha1 sha;
  sha.update(std::string_view(reinterpret_cast<const char*>(&key_),
                              sizeof(key_)));
  const std::string text = "asn:" + std::to_string(asn);
  sha.update(text);
  const auto digest = sha.digest();
  std::uint32_t candidate = ((std::uint32_t{digest[0]} << 8 |
                              std::uint32_t{digest[1]}) *
                             (std::uint32_t{digest[2]} + 1u)) %
                                64000u +
                            1u;
  while (asn_used_.contains(candidate) || ip::is_private_asn(candidate)) {
    candidate = candidate % 64000u + 1u;
  }
  asn_used_.insert(candidate);
  asn_map_.emplace(asn, candidate);
  return candidate;
}

std::string Anonymizer::anonymize_token(std::string_view token) {
  // Plain integer: passes through (metrics, ids, ports, sequence numbers).
  // AS-number context is handled in anonymize_line.
  if (util::is_all_digits(token)) return std::string(token);

  // Dotted quad: a mask passes through, an address is mapped.
  if (const auto addr = ip::Ipv4Address::parse(token)) {
    if (ip::Netmask::parse(token) || ip::Netmask::parse_wildcard(token)) {
      return std::string(token);
    }
    return ip_.anonymize(*addr).to_string();
  }

  // CIDR notation ("10.0.0.0/8" in prefix-lists): map the address part
  // prefix-preservingly, keep the structural length.
  if (const auto prefix = ip::Prefix::parse(token)) {
    return ip_.anonymize(*prefix).to_string();
  }

  // Exact keyword match.
  if (keywords_.contains(std::string(token))) return std::string(token);

  // Interface-style token: keyword prefix + unit numbering ("Serial1/0.5").
  std::size_t split = 0;
  while (split < token.size() &&
         (std::isalpha(static_cast<unsigned char>(token[split])) != 0 ||
          token[split] == '-')) {
    ++split;
  }
  if (split > 0 && split < token.size()) {
    bool unit_ok = true;
    for (std::size_t i = split; i < token.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(token[i])) == 0 &&
          !is_identifier_punct(token[i])) {
        unit_ok = false;
        break;
      }
    }
    if (unit_ok && keywords_.contains(std::string(token.substr(0, split)))) {
      return std::string(token);
    }
  }

  // Anything else is user-specific: hash it.
  return hash_word(token);
}

std::string Anonymizer::anonymize_line(std::string_view line) {
  // Preserve leading indentation (it is structural in IOS).
  std::size_t indent = 0;
  while (indent < line.size() && line[indent] == ' ') ++indent;
  const std::string_view body = line.substr(indent);

  // Comment lines lose their text; the bare separator survives. The one
  // exception is "! rdlint-disable <RDid>...": suppressions are structural
  // (rule ids carry no user information) and must survive anonymization so
  // the design-rule engine still honors them on the shared configs.
  if (!body.empty() && body[0] == '!') {
    const auto comment = util::trim(body.substr(1));
    const auto words = util::split_ws(comment);
    if (!words.empty() && util::iequals(words[0], "rdlint-disable")) {
      std::string out(indent, ' ');
      out += "! rdlint-disable";
      for (std::size_t i = 1; i < words.size(); ++i) {
        if (is_rule_id(words[i])) out += ' ' + std::string(words[i]);
      }
      return out;
    }
    return std::string(indent, ' ') + "!";
  }

  const auto tokens = util::split_ws(body);
  std::string out(indent, ' ');
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i != 0) out += ' ';
    const std::string_view token = tokens[i];
    // AS-number context: "router bgp <asn>", "neighbor X remote-as <asn>",
    // "redistribute bgp <asn>".
    const bool asn_position =
        util::is_all_digits(token) && i >= 1 &&
        (util::iequals(tokens[i - 1], "bgp") ||
         util::iequals(tokens[i - 1], "remote-as"));
    if (asn_position) {
      std::uint32_t asn = 0;
      if (util::parse_u32(token, asn)) {
        out += std::to_string(anonymize_asn(asn));
        continue;
      }
    }
    out += anonymize_token(token);
  }
  return out;
}

std::string Anonymizer::anonymize(std::string_view config_text) {
  std::string out;
  out.reserve(config_text.size());
  for (const auto line : util::split_lines(config_text)) {
    out += anonymize_line(line);
    out += '\n';
  }
  return out;
}

}  // namespace rd::anonymize
