#include "anonymize/sha1.h"

#include <cstring>

namespace rd::anonymize {
namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}

}  // namespace

Sha1::Sha1() noexcept {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
}

void Sha1::update(std::string_view data) noexcept {
  update(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
}

void Sha1::update(const std::uint8_t* data, std::size_t len) noexcept {
  total_bytes_ += len;
  while (len > 0) {
    const std::size_t take =
        len < (64 - buffered_) ? len : (64 - buffered_);
    std::memcpy(buffer_ + buffered_, data, take);
    buffered_ += take;
    data += take;
    len -= take;
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
}

std::array<std::uint8_t, 20> Sha1::digest() noexcept {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad = 0x80;
  update(&pad, 1);
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(&zero, 1);
  std::uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update(length_bytes, 8);

  std::array<std::uint8_t, 20> out;
  for (int i = 0; i < 5; ++i) {
    out[static_cast<std::size_t>(4 * i)] =
        static_cast<std::uint8_t>(h_[i] >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(h_[i] >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(h_[i] >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] =
        static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

void Sha1::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t{block[4 * i]} << 24) |
           (std::uint32_t{block[4 * i + 1]} << 16) |
           (std::uint32_t{block[4 * i + 2]} << 8) |
           std::uint32_t{block[4 * i + 3]};
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f;
    std::uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

std::array<std::uint8_t, 20> Sha1::hash(std::string_view data) noexcept {
  Sha1 sha;
  sha.update(data);
  return sha.digest();
}

std::string Sha1::hex(std::string_view data) {
  static constexpr char kHex[] = "0123456789abcdef";
  const auto d = hash(data);
  std::string out;
  out.reserve(40);
  for (std::uint8_t byte : d) {
    out += kHex[byte >> 4];
    out += kHex[byte & 0xF];
  }
  return out;
}

std::string base62_token(const std::array<std::uint8_t, 20>& digest,
                         std::size_t length) {
  static constexpr char kAlphabet[] =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  std::string out;
  out.reserve(length);
  // Consume digest bytes pairwise to reduce modulo bias below anything that
  // matters for identifier generation.
  for (std::size_t i = 0; out.size() < length; ++i) {
    const std::size_t a = digest[(2 * i) % digest.size()];
    const std::size_t b = digest[(2 * i + 1) % digest.size()];
    out += kAlphabet[(a * 256 + b + i) % 62];
  }
  // Identifiers should not start with a digit; rotate into the letters.
  if (out[0] >= '0' && out[0] <= '9') {
    out[0] = kAlphabet[10 + (static_cast<std::size_t>(out[0] - '0') * 5) % 52];
  }
  return out;
}

}  // namespace rd::anonymize
