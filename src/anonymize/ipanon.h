#pragma once

#include <cstdint>

#include "ip/ipv4.h"

namespace rd::anonymize {

/// Prefix-preserving IPv4 address anonymization in the style of tcpdpriv
/// "-a50" / Crypto-PAn: two addresses that share exactly a k-bit prefix map
/// to addresses that share exactly a k-bit prefix. This keeps subnet
/// relationships — the raw material of the paper's link inference and
/// address-structure analyses — intact while hiding the actual values.
///
/// Bit i of the output is bit i of the input XOR a keyed pseudorandom
/// function of the input's first i bits, so the mapping is a permutation on
/// the 32-bit address space for any key. The two low-order bits pass
/// through unchanged (structure preservation: /30 host/network/broadcast
/// positions must survive so the link analyses work on anonymized data).
class PrefixPreservingAnonymizer {
 public:
  explicit PrefixPreservingAnonymizer(std::uint64_t key) noexcept
      : key_(key) {}

  ip::Ipv4Address anonymize(ip::Ipv4Address addr) const noexcept;

  /// Anonymize a prefix: the network bits are mapped, the length is kept.
  ip::Prefix anonymize(const ip::Prefix& prefix) const noexcept;

 private:
  std::uint64_t key_;
};

}  // namespace rd::anonymize
