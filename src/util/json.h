#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace rd::util {

/// Minimal JSON value, serializer, and parser (no external dependencies):
/// enough for exporting analysis reports to downstream tooling and for
/// reading those reports back (rdlint --baseline).
class Json {
 public:
  Json() : value_(nullptr) {}                        // null
  Json(bool b) : value_(b) {}                        // NOLINT(runtime/explicit)
  Json(double d) : value_(d) {}                      // NOLINT(runtime/explicit)
  Json(long long i) : value_(i) {}                   // NOLINT(runtime/explicit)
  Json(std::size_t u) : value_(static_cast<long long>(u)) {}  // NOLINT
  Json(int i) : value_(static_cast<long long>(i)) {}          // NOLINT
  Json(const char* s) : value_(std::string(s)) {}             // NOLINT
  Json(std::string s) : value_(std::move(s)) {}               // NOLINT

  static Json array() {
    Json j;
    j.value_ = Array{};
    return j;
  }
  static Json object() {
    Json j;
    j.value_ = Object{};
    return j;
  }

  /// Append to an array (must be an array).
  Json& push_back(Json element);

  /// Set an object key (must be an object). Insertion order is preserved.
  Json& set(std::string key, Json value);

  /// Serialize. `indent` < 0 emits compact JSON; otherwise pretty-printed
  /// with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document. Returns std::nullopt on malformed
  /// input (including trailing garbage). Numbers without '.', 'e', or a
  /// fraction parse as integers; "\uXXXX" escapes are decoded to UTF-8
  /// (surrogate pairs unsupported — they parse as two replacement-free
  /// 3-byte sequences, fine for the ASCII reports this repo emits).
  static std::optional<Json> parse(std::string_view text);

  bool is_array() const noexcept {
    return std::holds_alternative<Array>(value_);
  }
  bool is_object() const noexcept {
    return std::holds_alternative<Object>(value_);
  }
  bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  bool is_number() const noexcept {
    return std::holds_alternative<long long>(value_) ||
           std::holds_alternative<double>(value_);
  }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
  std::size_t size() const noexcept;

  /// Object member lookup; nullptr when not an object or key absent.
  const Json* get(std::string_view key) const noexcept;
  /// Array element access; nullptr when not an array or out of range.
  const Json* at(std::size_t index) const noexcept;
  /// The string value, or nullptr when not a string.
  const std::string* if_string() const noexcept {
    return std::get_if<std::string>(&value_);
  }
  /// Numeric value widened to double; `fallback` when not a number.
  double number_or(double fallback) const noexcept;
  /// Integer value; doubles are truncated; `fallback` when not a number.
  long long int_or(long long fallback) const noexcept;
  /// Boolean value, or `fallback` when not a bool.
  bool bool_or(bool fallback) const noexcept;

 private:
  struct Array {
    std::vector<Json> elements;
  };
  struct Object {
    std::vector<std::pair<std::string, Json>> members;
  };

  void write(std::string& out, int indent, int depth) const;
  static void write_string(std::string& out, const std::string& s);

  std::variant<std::nullptr_t, bool, long long, double, std::string, Array,
               Object>
      value_;
};

}  // namespace rd::util
