#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace rd::util {

/// Minimal JSON value and serializer (no external dependencies): enough for
/// exporting analysis reports to downstream tooling. Construction only —
/// this is an emitter, not a parser.
class Json {
 public:
  Json() : value_(nullptr) {}                        // null
  Json(bool b) : value_(b) {}                        // NOLINT(runtime/explicit)
  Json(double d) : value_(d) {}                      // NOLINT(runtime/explicit)
  Json(long long i) : value_(i) {}                   // NOLINT(runtime/explicit)
  Json(std::size_t u) : value_(static_cast<long long>(u)) {}  // NOLINT
  Json(int i) : value_(static_cast<long long>(i)) {}          // NOLINT
  Json(const char* s) : value_(std::string(s)) {}             // NOLINT
  Json(std::string s) : value_(std::move(s)) {}               // NOLINT

  static Json array() {
    Json j;
    j.value_ = Array{};
    return j;
  }
  static Json object() {
    Json j;
    j.value_ = Object{};
    return j;
  }

  /// Append to an array (must be an array).
  Json& push_back(Json element);

  /// Set an object key (must be an object). Insertion order is preserved.
  Json& set(std::string key, Json value);

  /// Serialize. `indent` < 0 emits compact JSON; otherwise pretty-printed
  /// with that many spaces per level.
  std::string dump(int indent = -1) const;

  bool is_array() const noexcept {
    return std::holds_alternative<Array>(value_);
  }
  bool is_object() const noexcept {
    return std::holds_alternative<Object>(value_);
  }
  std::size_t size() const noexcept;

 private:
  struct Array {
    std::vector<Json> elements;
  };
  struct Object {
    std::vector<std::pair<std::string, Json>> members;
  };

  void write(std::string& out, int indent, int depth) const;
  static void write_string(std::string& out, const std::string& s);

  std::variant<std::nullptr_t, bool, long long, double, std::string, Array,
               Object>
      value_;
};

}  // namespace rd::util
