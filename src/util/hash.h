#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace rd::util {

/// SHA-1 message digest (RFC 3174), implemented from scratch.
///
/// Two subsystems share this digest: the anonymizer hashes every
/// non-whitelisted token (the paper's scheme), and the pipeline's parse
/// cache keys memoized parse results by configuration-text content hash.
/// (SHA-1 is cryptographically broken for collision resistance, but both
/// uses only need preimage resistance / content addressing, matching the
/// paper's choice.)
class Sha1 {
 public:
  Sha1() noexcept;

  void update(std::string_view data) noexcept;
  void update(const std::uint8_t* data, std::size_t len) noexcept;

  /// Finalize and return the 20-byte digest. The object must not be reused
  /// after finalization.
  std::array<std::uint8_t, 20> digest() noexcept;

  /// One-shot convenience.
  static std::array<std::uint8_t, 20> hash(std::string_view data) noexcept;

  /// Lowercase hex of the full 20-byte digest.
  static std::string hex(std::string_view data);

 private:
  void process_block(const std::uint8_t* block) noexcept;
  void process_blocks(const std::uint8_t* data, std::size_t blocks) noexcept;

  std::uint32_t h_[5];
  std::uint64_t total_bytes_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
};

/// Encode the first `length` characters of a base62 rendering of a digest —
/// yields identifier-safe strings like the paper's "8aTzlvBrbaW".
std::string base62_token(const std::array<std::uint8_t, 20>& digest,
                         std::size_t length);

}  // namespace rd::util
