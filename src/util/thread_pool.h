#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace rd::util {

/// A fixed-size worker pool with deterministic fork/join helpers — no work
/// stealing, no futures. The design center is the pipeline's determinism
/// contract (DESIGN.md "Parallel execution"): `parallel_map` writes result
/// `i` into slot `i`, so the output of a parallel run is byte-identical to
/// the serial loop regardless of scheduling.
///
/// `threads` is the total concurrency level. The caller of `run_indexed`
/// always participates as one executor, so a pool of concurrency 1 spawns
/// zero background threads and degenerates to a plain serial loop; that is
/// also what makes nested `run_indexed` calls (a task fanning out on the
/// pool it runs on) deadlock-free.
class ThreadPool {
 public:
  /// `threads` == 0 picks `default_thread_count()`.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Concurrency level (background workers + the participating caller).
  std::size_t size() const noexcept { return workers_.size() + 1; }

  /// Run `fn(0) .. fn(n-1)`, each index exactly once, across the pool and
  /// the calling thread; blocks until all have finished. Indices are claimed
  /// from a shared counter (no stealing, no per-thread queues). If tasks
  /// throw, every index still runs, and the exception thrown by the
  /// lowest-numbered throwing index is rethrown here — the same exception
  /// a serial loop that deferred its throw would pick, independent of
  /// scheduling.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Fire-and-forget: run `fn` on a background worker as soon as one is
  /// free. With zero background workers (a pool of concurrency 1), `fn`
  /// runs inline before `post` returns — the serial degeneration the
  /// fork/join path has, so a 1-thread rdd daemon processes requests
  /// synchronously in arrival order. Posted tasks interleave with
  /// `run_indexed` helper tasks on the same queue; a posted task may itself
  /// call `run_indexed` on this pool (the caller-participates rule keeps
  /// that deadlock-free). Exceptions must not escape `fn` (std::terminate).
  void post(std::function<void()> fn);

  /// Tasks sitting in the queue, not yet claimed by a worker (posted tasks
  /// plus unclaimed run_indexed helpers). A scheduling observation — racy
  /// by nature — surfaced as the rdd stats endpoint's queue depth.
  std::size_t queue_depth() const;

  /// Worker count from the environment: `RD_THREADS`, when it parses as an
  /// integer in [1, 1024]; anything else (unset, empty, non-numeric, zero,
  /// negative, absurd) falls back to `hardware_concurrency` (minimum 1).
  static std::size_t default_thread_count();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

/// Index-space parallel loop over [0, n).
inline void parallel_for(ThreadPool& pool, std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
  pool.run_indexed(n, fn);
}

/// Map `fn` over `items`; result `i` lands in slot `i`, so the returned
/// vector equals the serial `for` loop's output element-for-element. The
/// result type must be default-constructible.
template <typename T, typename Fn>
auto parallel_map(ThreadPool& pool, const std::vector<T>& items, Fn&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, const T&>>> {
  using R = std::decay_t<std::invoke_result_t<Fn&, const T&>>;
  std::vector<R> out(items.size());
  pool.run_indexed(items.size(),
                   [&](std::size_t i) { out[i] = fn(items[i]); });
  return out;
}

}  // namespace rd::util
