#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rd::util {

Json& Json::push_back(Json element) {
  auto* array = std::get_if<Array>(&value_);
  if (array == nullptr) throw std::logic_error("Json: push_back on non-array");
  array->elements.push_back(std::move(element));
  return *this;
}

Json& Json::set(std::string key, Json value) {
  auto* object = std::get_if<Object>(&value_);
  if (object == nullptr) throw std::logic_error("Json: set on non-object");
  for (auto& [existing, existing_value] : object->members) {
    if (existing == key) {
      existing_value = std::move(value);
      return *this;
    }
  }
  object->members.emplace_back(std::move(key), std::move(value));
  return *this;
}

std::size_t Json::size() const noexcept {
  if (const auto* array = std::get_if<Array>(&value_)) {
    return array->elements.size();
  }
  if (const auto* object = std::get_if<Object>(&value_)) {
    return object->members.size();
  }
  return 0;
}

void Json::write_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent < 0 ? "" : "\n" + std::string(static_cast<std::size_t>(indent) *
                                               (depth + 1),
                                           ' ');
  const std::string close_pad =
      indent < 0
          ? ""
          : "\n" + std::string(static_cast<std::size_t>(indent) * depth, ' ');

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* i = std::get_if<long long>(&value_)) {
    out += std::to_string(*i);
  } else if (const auto* d = std::get_if<double>(&value_)) {
    if (std::isfinite(*d)) {
      // std::to_chars, not snprintf("%.10g"): the latter honors LC_NUMERIC,
      // and a ","-decimal locale would emit invalid JSON.
      char buf[64];
      const auto res = std::to_chars(buf, buf + sizeof(buf), *d,
                                     std::chars_format::general, 10);
      out.append(buf, res.ptr);
    } else {
      out += "null";  // JSON has no NaN/Inf
    }
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    write_string(out, *s);
  } else if (const auto* array = std::get_if<Array>(&value_)) {
    if (array->elements.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const auto& element : array->elements) {
      if (!first) out += ',';
      first = false;
      out += pad;
      element.write(out, indent, depth + 1);
    }
    out += close_pad;
    out += ']';
  } else if (const auto* object = std::get_if<Object>(&value_)) {
    if (object->members.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : object->members) {
      if (!first) out += ',';
      first = false;
      out += pad;
      write_string(out, key);
      out += indent < 0 ? ":" : ": ";
      value.write(out, indent, depth + 1);
    }
    out += close_pad;
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

const Json* Json::get(std::string_view key) const noexcept {
  const auto* object = std::get_if<Object>(&value_);
  if (object == nullptr) return nullptr;
  for (const auto& [existing, value] : object->members) {
    if (existing == key) return &value;
  }
  return nullptr;
}

const Json* Json::at(std::size_t index) const noexcept {
  const auto* array = std::get_if<Array>(&value_);
  if (array == nullptr || index >= array->elements.size()) return nullptr;
  return &array->elements[index];
}

double Json::number_or(double fallback) const noexcept {
  if (const auto* i = std::get_if<long long>(&value_)) {
    return static_cast<double>(*i);
  }
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  return fallback;
}

long long Json::int_or(long long fallback) const noexcept {
  if (const auto* i = std::get_if<long long>(&value_)) return *i;
  if (const auto* d = std::get_if<double>(&value_)) {
    return static_cast<long long>(*d);
  }
  return fallback;
}

bool Json::bool_or(bool fallback) const noexcept {
  if (const auto* b = std::get_if<bool>(&value_)) return *b;
  return fallback;
}

namespace {

/// Recursive-descent JSON reader over a string_view cursor.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  std::optional<Json> run() {
    auto value = parse_value();
    if (!value) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_ws() noexcept {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) noexcept {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view literal) noexcept {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::optional<Json> parse_value() {
    if (depth_ > kMaxDepth) return std::nullopt;
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return Json(std::move(*s));
      }
      case 't':
        if (consume_literal("true")) return Json(true);
        return std::nullopt;
      case 'f':
        if (consume_literal("false")) return Json(false);
        return std::nullopt;
      case 'n':
        if (consume_literal("null")) return Json();
        return std::nullopt;
      default:
        return parse_number();
    }
  }

  std::optional<Json> parse_object() {
    ++pos_;  // '{'
    ++depth_;
    auto object = Json::object();
    skip_ws();
    if (consume('}')) {
      --depth_;
      return object;
    }
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      auto value = parse_value();
      if (!value) return std::nullopt;
      object.set(std::move(*key), std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return std::nullopt;
    }
    --depth_;
    return object;
  }

  std::optional<Json> parse_array() {
    ++pos_;  // '['
    ++depth_;
    auto array = Json::array();
    skip_ws();
    if (consume(']')) {
      --depth_;
      return array;
    }
    while (true) {
      auto value = parse_value();
      if (!value) return std::nullopt;
      array.push_back(std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return std::nullopt;
    }
    --depth_;
    return array;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          std::uint32_t code = 0;
          if (!read_hex4(code)) return std::nullopt;
          if (code >= 0xDC00 && code <= 0xDFFF) {
            return std::nullopt;  // lone low surrogate
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must be followed by "\uDC00".."\uDFFF"; the
            // pair combines into one supplementary-plane code point.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return std::nullopt;  // lone high surrogate
            }
            pos_ += 2;
            std::uint32_t low = 0;
            if (!read_hex4(low)) return std::nullopt;
            if (low < 0xDC00 || low > 0xDFFF) return std::nullopt;
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          // UTF-8 encode the code point (1-4 bytes; surrogate halves can no
          // longer reach here, so the encoding is always valid UTF-8).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  bool read_hex4(std::uint32_t& code) {
    if (pos_ + 4 > text_.size()) return false;
    code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<std::uint32_t>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<std::uint32_t>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<std::uint32_t>(h - 'A' + 10);
      } else {
        return false;
      }
    }
    return true;
  }

  std::optional<Json> parse_number() {
    // The JSON number grammar, enforced positionally:
    //   -? (0 | [1-9][0-9]*) (\.[0-9]+)? ([eE][+-]?[0-9]+)?
    // A free-form scan that accepts '.'/'e'/'+'/'-' anywhere would let
    // malformed tokens like "1-2" or "1..e+" through to the double
    // conversion.
    const std::size_t start = pos_;
    bool integral = true;
    consume('-');
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;  // a leading zero must stand alone ("0", "0.5", not "01")
    } else if (digits() == 0) {
      return std::nullopt;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      integral = false;
      if (digits() == 0) return std::nullopt;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      integral = false;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) return std::nullopt;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return std::nullopt;
    if (integral) {
      long long value = 0;
      const auto res =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (res.ec == std::errc{} && res.ptr == token.data() + token.size()) {
        return Json(value);
      }
      // Overflow: fall through to double.
    }
    double value = 0.0;
    const auto res =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (res.ec != std::errc{} || res.ptr != token.data() + token.size()) {
      return std::nullopt;
    }
    return Json(value);
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return JsonReader(text).run();
}

}  // namespace rd::util
