#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rd::util {

Json& Json::push_back(Json element) {
  auto* array = std::get_if<Array>(&value_);
  if (array == nullptr) throw std::logic_error("Json: push_back on non-array");
  array->elements.push_back(std::move(element));
  return *this;
}

Json& Json::set(std::string key, Json value) {
  auto* object = std::get_if<Object>(&value_);
  if (object == nullptr) throw std::logic_error("Json: set on non-object");
  for (auto& [existing, existing_value] : object->members) {
    if (existing == key) {
      existing_value = std::move(value);
      return *this;
    }
  }
  object->members.emplace_back(std::move(key), std::move(value));
  return *this;
}

std::size_t Json::size() const noexcept {
  if (const auto* array = std::get_if<Array>(&value_)) {
    return array->elements.size();
  }
  if (const auto* object = std::get_if<Object>(&value_)) {
    return object->members.size();
  }
  return 0;
}

void Json::write_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent < 0 ? "" : "\n" + std::string(static_cast<std::size_t>(indent) *
                                               (depth + 1),
                                           ' ');
  const std::string close_pad =
      indent < 0
          ? ""
          : "\n" + std::string(static_cast<std::size_t>(indent) * depth, ' ');

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* i = std::get_if<long long>(&value_)) {
    out += std::to_string(*i);
  } else if (const auto* d = std::get_if<double>(&value_)) {
    if (std::isfinite(*d)) {
      // std::to_chars, not snprintf("%.10g"): the latter honors LC_NUMERIC,
      // and a ","-decimal locale would emit invalid JSON.
      char buf[64];
      const auto res = std::to_chars(buf, buf + sizeof(buf), *d,
                                     std::chars_format::general, 10);
      out.append(buf, res.ptr);
    } else {
      out += "null";  // JSON has no NaN/Inf
    }
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    write_string(out, *s);
  } else if (const auto* array = std::get_if<Array>(&value_)) {
    if (array->elements.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const auto& element : array->elements) {
      if (!first) out += ',';
      first = false;
      out += pad;
      element.write(out, indent, depth + 1);
    }
    out += close_pad;
    out += ']';
  } else if (const auto* object = std::get_if<Object>(&value_)) {
    if (object->members.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : object->members) {
      if (!first) out += ',';
      first = false;
      out += pad;
      write_string(out, key);
      out += indent < 0 ? ":" : ": ";
      value.write(out, indent, depth + 1);
    }
    out += close_pad;
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace rd::util
