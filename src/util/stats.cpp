#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rd::util {

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  double total = 0.0;
  for (double v : values) total += v;
  s.mean = total / static_cast<double>(values.size());
  const std::size_t mid = values.size() / 2;
  s.median = (values.size() % 2 == 1)
                 ? values[mid]
                 : 0.5 * (values[mid - 1] + values[mid]);
  double ss = 0.0;
  for (double v : values) ss += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(ss / static_cast<double>(values.size() - 1))
                 : 0.0;
  return s;
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> values) {
  std::vector<CdfPoint> out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Emit one point per distinct value, at the highest rank of that value.
    if (i + 1 == values.size() || values[i + 1] != values[i]) {
      out.push_back({values[i], static_cast<double>(i + 1) / n});
    }
  }
  return out;
}

std::vector<CdfPoint> cdf_at(const std::vector<double>& values,
                             const std::vector<double>& thresholds) {
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> out;
  out.reserve(thresholds.size());
  const double n = sorted.empty() ? 1.0 : static_cast<double>(sorted.size());
  for (double t : thresholds) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), t);
    out.push_back(
        {t, static_cast<double>(std::distance(sorted.begin(), it)) / n});
  }
  return out;
}

std::vector<HistogramBucket> bucket_histogram(
    const std::vector<double>& values, const std::vector<double>& upper_bounds,
    const std::vector<std::string>& labels) {
  std::vector<HistogramBucket> buckets;
  buckets.reserve(upper_bounds.size() + 1);
  for (std::size_t i = 0; i < upper_bounds.size(); ++i) {
    buckets.push_back({i < labels.size() ? labels[i] : std::string{},
                       upper_bounds[i], 0, 0.0});
  }
  buckets.push_back({labels.size() > upper_bounds.size()
                         ? labels[upper_bounds.size()]
                         : std::string{},
                     std::numeric_limits<double>::infinity(), 0, 0.0});
  for (double v : values) {
    std::size_t idx = buckets.size() - 1;
    for (std::size_t i = 0; i < upper_bounds.size(); ++i) {
      if (v <= upper_bounds[i]) {
        idx = i;
        break;
      }
    }
    ++buckets[idx].count;
  }
  const double n = values.empty() ? 1.0 : static_cast<double>(values.size());
  for (auto& b : buckets) b.fraction = static_cast<double>(b.count) / n;
  return buckets;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace rd::util
