#include "util/hash.h"

#include <cstring>

// The parse cache hashes every configuration text on every snapshot, so
// SHA-1 throughput is the ceiling on the warm-path speedup: a snapshot with
// no changed routers costs exactly one pass of this code over the fleet's
// config bytes. On x86-64 the SHA-NI instruction set does four rounds per
// instruction; we compile that path with a per-function target attribute
// and select it at runtime, keeping the binary runnable on older CPUs.
// Define RD_SHA1_FORCE_PORTABLE to benchmark or test the generic path on
// hardware that would otherwise dispatch to SHA-NI.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(RD_SHA1_FORCE_PORTABLE)
#define RD_SHA1_HAVE_X86_SHA 1
#include <immintrin.h>
#endif

namespace rd::util {
namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}

#if RD_SHA1_HAVE_X86_SHA

// Schedule step: W[4n..4n+3] from the four preceding 4-word groups
// (msg1 covers W[i-16]/W[i-14], the xor adds W[i-8], msg2 adds W[i-3]
// and the rotate).
#define RD_SHA1_SCHED(n)                                                   \
  msg[(n) & 3] = _mm_sha1msg2_epu32(                                       \
      _mm_xor_si128(_mm_sha1msg1_epu32(msg[(n) & 3], msg[((n) + 1) & 3]),  \
                    msg[((n) + 2) & 3]),                                   \
      msg[((n) + 3) & 3])

// Four rounds, then derive the next group's E operand from the pre-round
// ABCD (sha1nexte rotates the old `a` into the new round's `e`).
#define RD_SHA1_GROUP(n, imm)                                     \
  do {                                                            \
    abcd_prev = abcd;                                             \
    abcd = _mm_sha1rnds4_epu32(abcd, e_in, imm);                  \
    if ((n) + 1 < 20) {                                           \
      if ((n) + 1 >= 4) RD_SHA1_SCHED((n) + 1);                   \
      e_in = _mm_sha1nexte_epu32(abcd_prev, msg[((n) + 1) & 3]);  \
    }                                                             \
  } while (0)

__attribute__((target("sha,sse4.1"))) void process_blocks_shani(
    std::uint32_t* h, const std::uint8_t* data, std::size_t blocks) noexcept {
  const __m128i kByteSwap =
      _mm_set_epi64x(0x0001020304050607LL, 0x08090a0b0c0d0e0fLL);
  // Lanes are a,b,c,d from high to low; 0x1B reverses the h[] load order.
  __m128i abcd =
      _mm_shuffle_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(h)),
                        0x1B);
  __m128i e = _mm_set_epi32(static_cast<int>(h[4]), 0, 0, 0);

  for (; blocks > 0; --blocks, data += 64) {
    const __m128i abcd_save = abcd;
    const __m128i e_save = e;
    __m128i msg[4];
    for (int i = 0; i < 4; ++i) {
      msg[i] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16 * i)),
          kByteSwap);
    }
    __m128i e_in = _mm_add_epi32(e, msg[0]);
    __m128i abcd_prev;
    RD_SHA1_GROUP(0, 0);
    RD_SHA1_GROUP(1, 0);
    RD_SHA1_GROUP(2, 0);
    RD_SHA1_GROUP(3, 0);
    RD_SHA1_GROUP(4, 0);
    RD_SHA1_GROUP(5, 1);
    RD_SHA1_GROUP(6, 1);
    RD_SHA1_GROUP(7, 1);
    RD_SHA1_GROUP(8, 1);
    RD_SHA1_GROUP(9, 1);
    RD_SHA1_GROUP(10, 2);
    RD_SHA1_GROUP(11, 2);
    RD_SHA1_GROUP(12, 2);
    RD_SHA1_GROUP(13, 2);
    RD_SHA1_GROUP(14, 2);
    RD_SHA1_GROUP(15, 3);
    RD_SHA1_GROUP(16, 3);
    RD_SHA1_GROUP(17, 3);
    RD_SHA1_GROUP(18, 3);
    RD_SHA1_GROUP(19, 3);
    e = _mm_sha1nexte_epu32(abcd_prev, e_save);
    abcd = _mm_add_epi32(abcd, abcd_save);
  }

  _mm_storeu_si128(reinterpret_cast<__m128i*>(h),
                   _mm_shuffle_epi32(abcd, 0x1B));
  h[4] = static_cast<std::uint32_t>(_mm_extract_epi32(e, 3));
}

#undef RD_SHA1_GROUP
#undef RD_SHA1_SCHED

bool cpu_has_sha_ni() noexcept {
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1");
}

#endif  // RD_SHA1_HAVE_X86_SHA

}  // namespace

Sha1::Sha1() noexcept {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
}

void Sha1::update(std::string_view data) noexcept {
  update(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
}

void Sha1::update(const std::uint8_t* data, std::size_t len) noexcept {
  total_bytes_ += len;
  // Top up a partially filled buffer first, then run whole blocks straight
  // from the input (no copy), buffering only the tail.
  if (buffered_ > 0) {
    const std::size_t take =
        len < (64 - buffered_) ? len : (64 - buffered_);
    std::memcpy(buffer_ + buffered_, data, take);
    buffered_ += take;
    data += take;
    len -= take;
    if (buffered_ == 64) {
      process_blocks(buffer_, 1);
      buffered_ = 0;
    }
  }
  const std::size_t blocks = len / 64;
  if (blocks > 0) {
    process_blocks(data, blocks);
    data += blocks * 64;
    len -= blocks * 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, data, len);
    buffered_ = len;
  }
}

void Sha1::process_blocks(const std::uint8_t* data,
                          std::size_t blocks) noexcept {
#if RD_SHA1_HAVE_X86_SHA
  static const bool kShaNi = cpu_has_sha_ni();
  if (kShaNi) {
    process_blocks_shani(h_, data, blocks);
    return;
  }
#endif
  for (; blocks > 0; --blocks, data += 64) process_block(data);
}

std::array<std::uint8_t, 20> Sha1::digest() noexcept {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad = 0x80;
  update(&pad, 1);
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(&zero, 1);
  std::uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update(length_bytes, 8);

  std::array<std::uint8_t, 20> out;
  for (int i = 0; i < 5; ++i) {
    out[static_cast<std::size_t>(4 * i)] =
        static_cast<std::uint8_t>(h_[i] >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(h_[i] >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(h_[i] >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] =
        static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

void Sha1::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t{block[4 * i]} << 24) |
           (std::uint32_t{block[4 * i + 1]} << 16) |
           (std::uint32_t{block[4 * i + 2]} << 8) |
           std::uint32_t{block[4 * i + 3]};
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  // One loop per round family keeps f and k branch-free inside each loop.
  const auto round = [&](std::uint32_t f, std::uint32_t k,
                         std::uint32_t wi) noexcept {
    const std::uint32_t temp = rotl32(a, 5) + f + e + k + wi;
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  };
  for (int i = 0; i < 20; ++i) round((b & c) | (~b & d), 0x5A827999u, w[i]);
  for (int i = 20; i < 40; ++i) round(b ^ c ^ d, 0x6ED9EBA1u, w[i]);
  for (int i = 40; i < 60; ++i) {
    round((b & c) | (b & d) | (c & d), 0x8F1BBCDCu, w[i]);
  }
  for (int i = 60; i < 80; ++i) round(b ^ c ^ d, 0xCA62C1D6u, w[i]);
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

std::array<std::uint8_t, 20> Sha1::hash(std::string_view data) noexcept {
  Sha1 sha;
  sha.update(data);
  return sha.digest();
}

std::string Sha1::hex(std::string_view data) {
  static constexpr char kHex[] = "0123456789abcdef";
  const auto d = hash(data);
  std::string out;
  out.reserve(40);
  for (std::uint8_t byte : d) {
    out += kHex[byte >> 4];
    out += kHex[byte & 0xF];
  }
  return out;
}

std::string base62_token(const std::array<std::uint8_t, 20>& digest,
                         std::size_t length) {
  static constexpr char kAlphabet[] =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  std::string out;
  out.reserve(length);
  // Consume digest bytes pairwise to reduce modulo bias below anything that
  // matters for identifier generation.
  for (std::size_t i = 0; out.size() < length; ++i) {
    const std::size_t a = digest[(2 * i) % digest.size()];
    const std::size_t b = digest[(2 * i + 1) % digest.size()];
    out += kAlphabet[(a * 256 + b + i) % 62];
  }
  // Identifiers should not start with a digit; rotate into the letters.
  if (out[0] >= '0' && out[0] <= '9') {
    out[0] = kAlphabet[10 + (static_cast<std::size_t>(out[0] - '0') * 5) % 52];
  }
  return out;
}

}  // namespace rd::util
