#include "util/rng.h"

#include <cmath>

namespace rd::util {
namespace {

constexpr std::uint64_t kSplitMixGamma = 0x9E3779B97F4A7C15ULL;

std::uint64_t split_mix(std::uint64_t& state) noexcept {
  state += kSplitMixGamma;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a, used only to mix fork labels into the seed.
std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = split_mix(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::weighted(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.empty() ? 0 : weights.size() - 1;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

double Rng::log_normal(double mu, double sigma) noexcept {
  // Box-Muller; one value per call keeps the stream simple and deterministic.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return std::exp(mu + sigma * z);
}

Rng Rng::fork(std::string_view label) const noexcept {
  // Combine the current state with the label hash; the parent stream is
  // untouched because we only read s_.
  const std::uint64_t mixed = s_[0] ^ rotl(s_[2], 29) ^ fnv1a(label);
  return Rng(mixed);
}

}  // namespace rd::util
