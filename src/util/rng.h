#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace rd::util {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
///
/// Every synthetic workload in this repository derives its randomness from a
/// seed so that fleets, benchmarks, and tests are exactly reproducible across
/// runs and machines. The engine is self-contained: no dependence on
/// std::mt19937 layout or libstdc++ distribution implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform over the full 64-bit range.
  std::uint64_t next() noexcept;

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Pick an index according to a vector of non-negative weights.
  /// Returns weights.size() - 1 if all weights are zero.
  std::size_t weighted(const std::vector<double>& weights) noexcept;

  /// Sample from a (discretized) log-normal-ish heavy-tail distribution used
  /// for config file size modelling: exp(mu + sigma * z), z standard normal.
  double log_normal(double mu, double sigma) noexcept;

  /// Derive an independent child RNG, keyed by a label, without perturbing
  /// this generator's own stream. Useful to give each synthetic network its
  /// own stream so adding a network does not change the others.
  Rng fork(std::string_view label) const noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace rd::util
