#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rd::util {

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept;

/// Split on a single character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Split on runs of ASCII whitespace; empty fields are dropped.
std::vector<std::string_view> split_ws(std::string_view s);

/// split_ws appending into an existing vector — lets callers flatten many
/// lines' tokens into one allocation (the lexer's structure-of-arrays
/// token storage) instead of one vector per line.
void split_ws_into(std::string_view s, std::vector<std::string_view>& out);

/// Split a text blob into lines. Handles both \n and \r\n; the final line is
/// included even without a trailing newline.
std::vector<std::string_view> split_lines(std::string_view text);

bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b) noexcept;

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

/// Join elements with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-append into a string. The formatting engine is vsnprintf, so the
/// produced bytes match std::printf exactly — the property the serve
/// layer's "daemon response == one-shot CLI stdout" contract rests on
/// (serve/queries.cpp builds every report through this).
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...);

/// True if every character is an ASCII digit (and the string is non-empty).
bool is_all_digits(std::string_view s) noexcept;

/// Parse a non-negative integer; returns false on overflow or bad chars.
bool parse_u32(std::string_view s, std::uint32_t& out) noexcept;
bool parse_u64(std::string_view s, std::uint64_t& out) noexcept;

}  // namespace rd::util
