#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/arena.h"

namespace rd::util {

/// Handle to an interned string. Symbols from one Interner are dense
/// (0, 1, 2, ...) in first-intern order, totally ordered, and valid for the
/// interner's lifetime — equality of symbols is equality of strings.
using Symbol = std::uint32_t;

inline constexpr Symbol kNoSymbol = 0xFFFFFFFFu;

/// String interning table: each distinct string is stored once (bytes on an
/// internal Arena) and identified by a dense Symbol, so name comparisons and
/// hash lookups on the model's hot paths are integer operations instead of
/// byte-string work (ROADMAP item 2: router/interface/policy/instance names
/// fleet-wide).
///
/// Open addressing with linear probing over a power-of-two table;
/// `intern()` amortizes rehashing, and a rehash never invalidates Symbols
/// or views — both index side arrays that only grow.
///
/// Thread model: single writer. `intern()` must be externally serialized;
/// `find()`/`view()`/`size()` are safe to call concurrently from any number
/// of threads once writers have quiesced (the parallel pipeline interns
/// while building, then shares the table read-only with analysis workers).
class Interner {
 public:
  explicit Interner(std::size_t expected = 64);

  /// Symbol for `s`, interning it on first sight.
  Symbol intern(std::string_view s);

  /// Symbol for `s`, or kNoSymbol when it was never interned.
  Symbol find(std::string_view s) const noexcept;

  /// The interned bytes of a symbol. O(1); valid for the interner's life.
  std::string_view view(Symbol symbol) const noexcept {
    return views_[symbol];
  }

  /// Number of distinct strings interned.
  std::size_t size() const noexcept { return views_.size(); }

  /// Bytes held by the string storage arena (diagnostics / DESIGN.md §12).
  std::size_t string_bytes() const noexcept { return bytes_.bytes_used(); }

 private:
  static std::uint64_t hash(std::string_view s) noexcept;
  void rehash(std::size_t want);

  struct Slot {
    std::uint64_t hash = 0;
    Symbol symbol = kNoSymbol;  // kNoSymbol marks an empty slot
  };

  std::vector<Slot> slots_;             // power-of-two open-addressed table
  std::vector<std::string_view> views_; // symbol -> bytes (arena-backed)
  Arena bytes_;
};

}  // namespace rd::util
