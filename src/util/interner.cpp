#include "util/interner.h"

namespace rd::util {

Interner::Interner(std::size_t expected) : bytes_(1024) {
  std::size_t want = 16;
  while (want * 3 < expected * 4) want *= 2;
  slots_.assign(want, Slot{});
  views_.reserve(expected);
}

std::uint64_t Interner::hash(std::string_view s) noexcept {
  // FNV-1a, finished with a mix round so short names spread over the table.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 32;
  h *= 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  return h;
}

Symbol Interner::intern(std::string_view s) {
  if ((views_.size() + 1) * 4 > slots_.size() * 3) {
    rehash(slots_.size() * 2);
  }
  const std::uint64_t h = hash(s);
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  while (slots_[i].symbol != kNoSymbol) {
    if (slots_[i].hash == h && views_[slots_[i].symbol] == s) {
      return slots_[i].symbol;
    }
    i = (i + 1) & mask;
  }
  const Symbol symbol = static_cast<Symbol>(views_.size());
  views_.push_back(bytes_.copy_string(s));
  slots_[i] = Slot{h, symbol};
  return symbol;
}

Symbol Interner::find(std::string_view s) const noexcept {
  const std::uint64_t h = hash(s);
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  while (slots_[i].symbol != kNoSymbol) {
    if (slots_[i].hash == h && views_[slots_[i].symbol] == s) {
      return slots_[i].symbol;
    }
    i = (i + 1) & mask;
  }
  return kNoSymbol;
}

void Interner::rehash(std::size_t want) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(want, Slot{});
  const std::size_t mask = want - 1;
  for (const Slot& slot : old) {
    if (slot.symbol == kNoSymbol) continue;
    std::size_t i = static_cast<std::size_t>(slot.hash) & mask;
    while (slots_[i].symbol != kNoSymbol) i = (i + 1) & mask;
    slots_[i] = slot;
  }
}

}  // namespace rd::util
