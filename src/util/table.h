#pragma once

#include <string>
#include <vector>

namespace rd::util {

/// Minimal ASCII table renderer used by the benchmark harnesses to print
/// paper-style tables (Table 1, Table 2, Table 3, ...).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with column alignment; numeric-looking cells are right-aligned.
  std::string to_string() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers for table cells.
std::string fmt_int(long long v);
std::string fmt_double(double v, int decimals);
std::string fmt_percent(double fraction, int decimals);

}  // namespace rd::util
