#include "util/strings.h"

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <limits>

namespace rd::util {

namespace {
bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}

// ASCII-only case folding. std::tolower honors LC_CTYPE, so keyword
// matching could change under e.g. a Turkish locale ('I' -> dotless i) or
// mangle bytes of multi-byte UTF-8 sequences in single-byte locales.
// Config keywords are ASCII; anything non-ASCII passes through untouched.
char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  split_ws_into(s, out);
  return out;
}

void split_ws_into(std::string_view s, std::vector<std::string_view>& out) {
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
}

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      std::size_t end = i;
      if (end > start && text[end - 1] == '\r') --end;
      out.push_back(text.substr(start, end - start));
      start = i + 1;
    }
  }
  if (start < text.size()) {
    std::size_t end = text.size();
    if (end > start && text[end - 1] == '\r') --end;
    out.push_back(text.substr(start, end - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = ascii_lower(c);
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool is_all_digits(std::string_view s) noexcept {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t& out) noexcept {
  if (!is_all_digits(s)) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return false;
    }
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

bool parse_u32(std::string_view s, std::uint32_t& out) noexcept {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v > std::numeric_limits<std::uint32_t>::max()) {
    return false;
  }
  out = static_cast<std::uint32_t>(v);
  return true;
}

void appendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list measure;
  va_copy(measure, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, measure);
  va_end(measure);
  if (needed > 0) {
    const std::size_t old = out.size();
    out.resize(old + static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data() + old, static_cast<std::size_t>(needed) + 1,
                   fmt, args);
    out.resize(old + static_cast<std::size_t>(needed));
  }
  va_end(args);
}

}  // namespace rd::util
