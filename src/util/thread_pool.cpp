#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "obs/obs.h"
#include "util/strings.h"

namespace rd::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  // The caller of run_indexed is always one executor; spawn the rest.
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      if (obs::counting_enabled()) {
        obs::gauge("pool.queue_depth").set(queue_.size());
      }
    }
    task();
  }
}

void ThreadPool::run_indexed(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  // Shared by the caller and any helpers still holding a queued task after
  // the caller returns (they claim an index >= n and exit without touching
  // `fn`, which only outlives this frame through indices < n).
  struct Job {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t total = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::vector<std::exception_ptr> errors;
    std::mutex mutex;
    std::condition_variable cv;
  };
  auto job = std::make_shared<Job>();
  job->total = n;
  job->fn = &fn;
  job->errors.assign(n, nullptr);

  auto drive = [job] {
    for (;;) {
      const std::size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job->total) return;
      try {
        (*job->fn)(i);
      } catch (...) {
        job->errors[i] = std::current_exception();
      }
      // acq_rel: the waiter's acquire load of `done` must see every task's
      // writes (results and errors) once the count reaches total.
      if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          job->total) {
        std::lock_guard<std::mutex> lock(job->mutex);
        job->cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(workers_.size(), n - 1);
  if (helpers > 0) {
    // Observability wrapper: stamp the enqueue time so a dequeued task can
    // record how long it sat in the queue ("pool.queue_wait", an event
    // whose span covers enqueue -> dequeue), then run the claim loop under
    // a "pool.task" span. Only built when tracing is on — the common case
    // enqueues `drive` untouched.
    std::function<void()> queued = drive;
    if (obs::tracing_enabled()) {
      const std::uint64_t enqueue_ns = obs::now_ns();
      queued = [drive, enqueue_ns] {
        const std::uint64_t start_ns = obs::now_ns();
        if (obs::tracing_enabled()) {
          obs::TraceEvent wait;
          wait.name = "pool.queue_wait";
          wait.cat = "pool";
          wait.ts_ns = enqueue_ns;
          wait.dur_ns = start_ns > enqueue_ns ? start_ns - enqueue_ns : 0;
          wait.tid = obs::Registry::instance().thread_id();
          obs::Registry::instance().record(std::move(wait));
        }
        obs::Span span("pool.task", "pool");
        drive();
      };
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (std::size_t i = 0; i < helpers; ++i) queue_.push_back(queued);
      if (obs::counting_enabled()) {
        obs::gauge("pool.tasks_enqueued").add(helpers);
        obs::gauge("pool.queue_depth").set(queue_.size());
      }
    }
    cv_.notify_all();
  }
  drive();
  {
    std::unique_lock<std::mutex> lock(job->mutex);
    job->cv.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->total;
    });
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (job->errors[i]) std::rethrow_exception(job->errors[i]);
  }
}

void ThreadPool::post(std::function<void()> fn) {
  if (workers_.empty()) {
    // Concurrency 1: no background worker will ever drain the queue, so
    // the degenerate pool runs the task inline — same serial semantics
    // run_indexed has at this size.
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(fn));
    if (obs::counting_enabled()) {
      obs::gauge("pool.tasks_enqueued").add(1);
      obs::gauge("pool.queue_depth").set(queue_.size());
    }
  }
  cv_.notify_one();
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("RD_THREADS")) {
    std::uint64_t parsed = 0;
    if (parse_u64(trim(env), parsed) && parsed >= 1 && parsed <= 1024) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace rd::util
