#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace rd::util {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if ((c < '0' || c > '9') && c != '.' && c != '-' && c != '%' && c != ',' &&
        c != '+') {
      return false;
    }
  }
  return true;
}
}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    out += "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      const std::size_t pad = widths[c] - cell.size();
      out += ' ';
      if (looks_numeric(cell)) {
        out.append(pad, ' ');
        out += cell;
      } else {
        out += cell;
        out.append(pad, ' ');
      }
      out += " |";
    }
    out += '\n';
  };

  std::string sep = "+";
  for (std::size_t w : widths) {
    sep.append(w + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out = sep;
  out += "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += ' ';
    out += header_[c];
    out.append(widths[c] - header_[c].size(), ' ');
    out += " |";
  }
  out += '\n';
  out += sep;
  for (const auto& row : rows_) emit_row(row, out);
  out += sep;
  return out;
}

std::string fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace rd::util
