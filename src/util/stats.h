#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rd::util {

/// Summary statistics over a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
};

Summary summarize(std::vector<double> values);

/// One point of an empirical CDF: fraction of samples <= value.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;
};

/// Empirical CDF evaluated at every distinct sample value.
std::vector<CdfPoint> empirical_cdf(std::vector<double> values);

/// Evaluate the empirical CDF at specific thresholds (fraction <= t).
std::vector<CdfPoint> cdf_at(const std::vector<double>& values,
                             const std::vector<double>& thresholds);

/// Histogram with caller-supplied bucket upper bounds (last bucket catches
/// everything above the final bound). Mirrors the x-axis of the paper's
/// Figure 8 (<10, 20, 40, ..., 1280, >1280).
struct HistogramBucket {
  std::string label;
  double upper_bound = 0.0;  // inclusive; +inf for the overflow bucket
  std::size_t count = 0;
  double fraction = 0.0;
};

std::vector<HistogramBucket> bucket_histogram(
    const std::vector<double>& values, const std::vector<double>& upper_bounds,
    const std::vector<std::string>& labels);

/// Quantile of a sample (linear interpolation), q in [0,1].
double quantile(std::vector<double> values, double q);

}  // namespace rd::util
