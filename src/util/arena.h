#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string_view>
#include <type_traits>
#include <vector>

namespace rd::util {

/// Bump allocator over a chain of geometrically-growing blocks.
///
/// The model layers allocate many small, same-lifetime objects — interned
/// name bytes, flattened token arrays, compiled-policy scratch — where
/// node-per-object `new` costs more in allocator metadata and cache misses
/// than the payload itself (ROADMAP item 2). An Arena hands out pointers by
/// bumping an offset, never frees individual objects, and releases
/// everything at once on destruction or `reset()`.
///
/// Only trivially-destructible types may be placed here (enforced by
/// `make`/`make_array`): the arena never runs destructors.
///
/// Not thread-safe; each thread or pipeline stage owns its own arena.
class Arena {
 public:
  /// `first_block` is the initial capacity; later blocks double, capped at
  /// `kMaxBlock`. Oversized single allocations get a dedicated block.
  explicit Arena(std::size_t first_block = 4096) noexcept
      : next_block_size_(first_block < kMinBlock ? kMinBlock : first_block) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Raw storage, aligned to `align` (a power of two). Never returns
  /// nullptr; size 0 yields a unique valid pointer into the current block.
  void* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t));

  /// Construct a trivially-destructible T in place.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return ::new (allocate(sizeof(T), alignof(T)))
        T(static_cast<Args&&>(args)...);
  }

  /// Uninitialized array of trivially-destructible T.
  template <typename T>
  T* make_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(allocate(sizeof(T) * count, alignof(T)));
  }

  /// Copy a string's bytes into the arena; the view stays valid until
  /// `reset()` or destruction. The backbone of Interner.
  std::string_view copy_string(std::string_view s);

  /// Drop every allocation but keep the largest block for reuse, so a
  /// steady-state consumer (e.g. a per-snapshot parse) stops touching the
  /// system allocator after its first cycle.
  void reset() noexcept;

  /// Bytes handed out since construction or the last reset().
  std::size_t bytes_used() const noexcept { return used_; }
  /// Bytes currently owned (all blocks, including unreached capacity).
  std::size_t bytes_reserved() const noexcept { return reserved_; }
  std::size_t block_count() const noexcept { return blocks_.size(); }

 private:
  static constexpr std::size_t kMinBlock = 256;
  static constexpr std::size_t kMaxBlock = std::size_t{1} << 20;  // 1 MiB

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
  };

  void grow(std::size_t at_least);

  std::vector<Block> blocks_;
  std::byte* cursor_ = nullptr;  // next free byte of the current block
  std::byte* end_ = nullptr;     // one past the current block
  std::size_t next_block_size_;
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace rd::util
