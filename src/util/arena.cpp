#include "util/arena.h"

#include <cstring>

namespace rd::util {

void* Arena::allocate(std::size_t size, std::size_t align) {
  auto addr = reinterpret_cast<std::uintptr_t>(cursor_);
  const std::uintptr_t aligned = (addr + (align - 1)) & ~(align - 1);
  const std::size_t padding = aligned - addr;
  if (cursor_ == nullptr ||
      size + padding > static_cast<std::size_t>(end_ - cursor_)) {
    grow(size + align);
    addr = reinterpret_cast<std::uintptr_t>(cursor_);
    const std::uintptr_t realigned = (addr + (align - 1)) & ~(align - 1);
    cursor_ = reinterpret_cast<std::byte*>(realigned + size);
    used_ += size;
    return reinterpret_cast<void*>(realigned);
  }
  cursor_ = reinterpret_cast<std::byte*>(aligned + size);
  used_ += size;
  return reinterpret_cast<void*>(aligned);
}

std::string_view Arena::copy_string(std::string_view s) {
  if (s.empty()) return {};
  char* dst = static_cast<char*>(allocate(s.size(), 1));
  std::memcpy(dst, s.data(), s.size());
  return {dst, s.size()};
}

void Arena::reset() noexcept {
  if (blocks_.empty()) return;
  // Keep only the largest block (always the last: block sizes are
  // non-decreasing until the cap, and oversized blocks are at least as
  // large as the request that forced them).
  std::size_t largest = 0;
  for (std::size_t i = 1; i < blocks_.size(); ++i) {
    if (blocks_[i].capacity >= blocks_[largest].capacity) largest = i;
  }
  Block kept = std::move(blocks_[largest]);
  blocks_.clear();
  cursor_ = kept.data.get();
  end_ = cursor_ + kept.capacity;
  reserved_ = kept.capacity;
  used_ = 0;
  blocks_.push_back(std::move(kept));
}

void Arena::grow(std::size_t at_least) {
  std::size_t size = next_block_size_;
  if (size < at_least) size = at_least;
  Block block{std::make_unique<std::byte[]>(size), size};
  cursor_ = block.data.get();
  end_ = cursor_ + size;
  reserved_ += size;
  blocks_.push_back(std::move(block));
  if (next_block_size_ < kMaxBlock) next_block_size_ *= 2;
}

}  // namespace rd::util
