#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/evolution.h"
#include "pipeline/parse_cache.h"
#include "pipeline/pipeline.h"
#include "util/thread_pool.h"

namespace rd::pipeline {

// --- Incremental snapshot-series analysis -----------------------------------
//
// The paper's §8.2 longitudinal study takes N ordered snapshots of one
// network's configuration files. Between consecutive snapshots almost every
// file is byte-identical, so the series pipeline re-parses only the routers
// whose text changed (ParseCache) and rebuilds the model and analyses per
// snapshot from the merged parse results. The determinism contract carries
// over from the parallel pipeline: the warm, cached path's output —
// signatures, report JSON, diff chain — is byte-identical to a cold,
// cache-free serial pass at every thread count.

/// One snapshot of the network: a label (e.g. the capture date) and the
/// per-router configuration texts in stable router order.
struct SnapshotInput {
  std::string name;
  std::vector<std::string> texts;
};

/// One snapshot's analysis output plus its cache accounting.
struct SnapshotReport {
  /// Full per-network report (pipeline::analyze_network) for this snapshot.
  NetworkReport report;
  /// Canonical model serialization (pipeline::network_signature); the
  /// differential tests prove warm == cold through this.
  std::string signature;
  /// Parses served from / added to the cache while building this snapshot.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

/// The whole series: per-snapshot reports and the N-1 consecutive design
/// diffs (analysis::diff_designs applied along the chain).
struct SeriesReport {
  std::vector<SnapshotReport> snapshots;
  std::vector<analysis::DesignDiff> diffs;
};

/// Build one snapshot's model through the cache: texts are hashed and
/// looked up (in parallel on `pool`), only unseen texts are parsed, and the
/// model is built from the results merged in input index order — the same
/// Network build_network_serial(texts) produces.
model::Network build_network_cached(const std::vector<std::string>& texts,
                                    ParseCache& cache,
                                    util::ThreadPool& pool);

/// Like the above, but stamps per-file source provenance onto the cached
/// parses. The cache keys on content alone (so one text shared by many
/// files still costs one parse); `names[i]` is then applied to the copy of
/// parse `i` exactly the way `config::parse_config(text, name)` would have:
/// `source_file = name`, and a hostname-less config takes the name as its
/// hostname. This is the construction the rdd daemon and the directory-mode
/// CLIs share, so a resident fleet and a one-shot run build byte-identical
/// models with identical finding provenance. `names` must be empty (no
/// provenance) or `texts.size()` long.
model::Network build_network_cached(const std::vector<std::string>& texts,
                                    const std::vector<std::string>& names,
                                    ParseCache& cache,
                                    util::ThreadPool& pool);

/// Analyze N ordered snapshots incrementally. The cache persists across
/// snapshots (and across calls — prime it with one series, keep it for the
/// next), so an unchanged router costs one hash instead of one parse.
SeriesReport analyze_snapshot_series(const std::vector<SnapshotInput>& series,
                                     ParseCache& cache,
                                     util::ThreadPool& pool);
SeriesReport analyze_snapshot_series(const std::vector<SnapshotInput>& series,
                                     ParseCache& cache,
                                     const Options& options = {});

/// Cold reference path: no cache, serial parse, every snapshot from
/// scratch. The differential tests compare the incremental path against
/// this byte-for-byte.
SeriesReport analyze_snapshot_series_serial(
    const std::vector<SnapshotInput>& series);

}  // namespace rd::pipeline
