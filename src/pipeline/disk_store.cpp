#include "pipeline/disk_store.h"

#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include "obs/obs.h"
#include "util/hash.h"

namespace rd::pipeline {
namespace {

constexpr char kMagic[4] = {'R', 'D', 'P', 'S'};
// magic + version + payload length + payload SHA-1.
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 20;

void put_u32(char* out, std::uint32_t v) {
  out[0] = static_cast<char>(v);
  out[1] = static_cast<char>(v >> 8);
  out[2] = static_cast<char>(v >> 16);
  out[3] = static_cast<char>(v >> 24);
}
void put_u64(char* out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out + 4, static_cast<std::uint32_t>(v >> 32));
}
std::uint32_t get_u32(const char* in) {
  return static_cast<std::uint8_t>(in[0]) |
         (std::uint32_t{static_cast<std::uint8_t>(in[1])} << 8) |
         (std::uint32_t{static_cast<std::uint8_t>(in[2])} << 16) |
         (std::uint32_t{static_cast<std::uint8_t>(in[3])} << 24);
}
std::uint64_t get_u64(const char* in) {
  return get_u32(in) | (std::uint64_t{get_u32(in + 4)} << 32);
}

/// Keys come from Sha1::hex, but the store is also reachable through tests
/// and future tools; refuse anything that could escape the directory.
bool valid_key(const std::string& key_hex) {
  if (key_hex.empty() || key_hex.size() > 64) return false;
  for (const char c : key_hex) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

}  // namespace

DiskStore::DiskStore(std::filesystem::path directory)
    : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec || !std::filesystem::is_directory(directory_)) {
    throw std::runtime_error("cannot create parse store directory " +
                             directory_.string());
  }
}

std::filesystem::path DiskStore::entry_path(const std::string& key_hex) const {
  return directory_ / (key_hex + ".rdp");
}

std::optional<std::string> DiskStore::load(const std::string& key_hex) {
  static obs::Counter& hit_counter = obs::counter("disk_store.load_hits");
  static obs::Counter& reject_counter =
      obs::counter("disk_store.load_rejects");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.loads;
  }
  if (!valid_key(key_hex)) return std::nullopt;
  std::ifstream in(entry_path(key_hex), std::ios::binary);
  if (!in) return std::nullopt;  // absent: neither hit nor reject

  const auto reject = [&]() -> std::optional<std::string> {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.load_rejects;
    reject_counter.add();
    return std::nullopt;
  };

  char header[kHeaderSize];
  if (!in.read(header, kHeaderSize)) return reject();
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) return reject();
  if (get_u32(header + 4) != kStoreVersion) return reject();
  const std::uint64_t length = get_u64(header + 8);
  // Cap before allocating: a corrupt length must not drive a huge reserve.
  // 256 MiB is far beyond any real config parse payload.
  if (length > (std::uint64_t{256} << 20)) return reject();
  std::string payload(static_cast<std::size_t>(length), '\0');
  if (length > 0 && !in.read(payload.data(), static_cast<std::streamsize>(
                                                 length))) {
    return reject();  // truncated
  }
  // Trailing bytes mean the length field lies; treat as corrupt.
  if (in.peek() != std::ifstream::traits_type::eof()) return reject();
  const auto digest = util::Sha1::hash(payload);
  if (std::memcmp(digest.data(), header + 16, digest.size()) != 0) {
    return reject();  // bit-flip anywhere in the payload
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.load_hits;
    hit_counter.add();
  }
  return payload;
}

bool DiskStore::save(const std::string& key_hex, std::string_view payload) {
  static obs::Counter& save_counter = obs::counter("disk_store.saves");
  if (!valid_key(key_hex)) return false;
  std::uint64_t temp_id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    temp_id = next_temp_id_++;
  }
  const auto fail = [&] {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.save_failures;
    return false;
  };

  char header[kHeaderSize];
  std::memcpy(header, kMagic, sizeof(kMagic));
  put_u32(header + 4, kStoreVersion);
  put_u64(header + 8, payload.size());
  const auto digest = util::Sha1::hash(payload);
  std::memcpy(header + 16, digest.data(), digest.size());

  // Unique per (process, call) so concurrent writers never share a temp
  // file; the final rename is what makes the entry visible.
  const auto temp = directory_ / ("tmp." + std::to_string(::getpid()) + "." +
                                  std::to_string(temp_id));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out.write(header, kHeaderSize) ||
        !out.write(payload.data(),
                   static_cast<std::streamsize>(payload.size()))) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(temp, ec);
      return fail();
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, entry_path(key_hex), ec);
  if (ec) {
    std::filesystem::remove(temp, ec);
    return fail();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.saves;
    save_counter.add();
  }
  return true;
}

bool DiskStore::contains(const std::string& key_hex) const {
  if (!valid_key(key_hex)) return false;
  std::error_code ec;
  return std::filesystem::is_regular_file(entry_path(key_hex), ec);
}

DiskStore::Stats DiskStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace rd::pipeline
