#include "pipeline/parse_cache.h"

#include <utility>

#include "obs/obs.h"
#include "util/hash.h"

namespace rd::pipeline {

std::shared_ptr<const config::ParseResult> ParseCache::parse(
    const std::string& text) {
  // Looked up once: the registry reference is stable for the process life,
  // so the hot path pays one relaxed load when counting is off.
  static obs::Counter& hit_counter = obs::counter("parse_cache.hits");
  static obs::Counter& miss_counter = obs::counter("parse_cache.misses");
  const Key key = util::Sha1::hash(text);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = entries_.find(key); it != entries_.end()) {
      ++hits_;
      hit_counter.add();
      return it->second;
    }
    ++misses_;
    miss_counter.add();
  }
  // Parse outside the lock; a concurrent miss on the same key parses too,
  // and try_emplace below keeps whichever result lands first.
  obs::Span span("parse_cache.parse", "pipeline");
  auto parsed =
      std::make_shared<const config::ParseResult>(config::parse_config(text));
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.try_emplace(key, std::move(parsed));
  return it->second;
}

ParseCache::Stats ParseCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {hits_, misses_, entries_.size()};
}

void ParseCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace rd::pipeline
