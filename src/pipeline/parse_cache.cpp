#include "pipeline/parse_cache.h"

#include <utility>

#include "obs/obs.h"
#include "util/hash.h"

namespace rd::pipeline {

std::shared_ptr<const config::ParseResult> ParseCache::parse(
    const std::string& text) {
  // Looked up once: the registry reference is stable for the process life,
  // so the hot path pays one relaxed load when counting is off.
  static obs::Counter& hit_counter = obs::counter("parse_cache.hits");
  static obs::Counter& miss_counter = obs::counter("parse_cache.misses");
  static obs::Gauge& duplicate_gauge =
      obs::gauge("parse_cache.duplicate_parses");
  const Key key = util::Sha1::hash(text);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = entries_.find(key); it != entries_.end()) {
      ++hits_;
      hit_counter.add();
      return it->second;
    }
  }
  // Parse outside the lock; a concurrent miss on the same key parses too,
  // and try_emplace below keeps whichever result lands first. A miss is
  // counted only when the insert wins, so `misses == entries` always
  // reconciles; the loser's work is a *duplicate parse* — a separate,
  // scheduling-dependent stat (an obs gauge, not a deterministic counter).
  obs::Span span("parse_cache.parse", "pipeline");
  auto parsed =
      std::make_shared<const config::ParseResult>(config::parse_config(text));
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.try_emplace(key, std::move(parsed));
  if (inserted) {
    ++misses_;
    miss_counter.add();
  } else {
    ++hits_;
    hit_counter.add();
    ++duplicate_parses_;
    duplicate_gauge.add();
  }
  return it->second;
}

ParseCache::Stats ParseCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {hits_, misses_, duplicate_parses_, entries_.size()};
}

void ParseCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
  duplicate_parses_ = 0;
}

}  // namespace rd::pipeline
