#include "pipeline/parse_cache.h"

#include <utility>

#include "config/serialize.h"
#include "obs/obs.h"
#include "pipeline/disk_store.h"
#include "util/hash.h"

namespace rd::pipeline {
namespace {

std::string key_hex(const std::array<std::uint8_t, 20>& key) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (const auto byte : key) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xf]);
  }
  return out;
}

}  // namespace

std::shared_ptr<const config::ParseResult> ParseCache::parse(
    const std::string& text) {
  // Looked up once: the registry reference is stable for the process life,
  // so the hot path pays one relaxed load when counting is off.
  static obs::Counter& hit_counter = obs::counter("parse_cache.hits");
  const Key key = util::Sha1::hash(text);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = entries_.find(key); it != entries_.end()) {
      ++hits_;
      hit_counter.add();
      lru_.splice(lru_.begin(), lru_, it->second.lru_slot);
      return it->second.result;
    }
  }

  // Memory miss. Try the persistent store before parsing: a verified
  // payload decodes in a fraction of a parse. Verification (magic, version,
  // length, checksum) lives in DiskStore::load; decode_parse_result rejects
  // structurally bad payloads on top, so nothing short of a valid entry
  // reaches the cache — anything else falls through to the cold parse.
  if (store_ != nullptr) {
    const auto hex = key_hex(key);
    if (const auto payload = store_->load(hex)) {
      if (auto decoded = config::decode_parse_result(*payload)) {
        auto shared = std::make_shared<const config::ParseResult>(
            std::move(*decoded));
        std::lock_guard<std::mutex> lock(mutex_);
        return insert_locked(key, std::move(shared), text.size(), true);
      }
      std::lock_guard<std::mutex> lock(mutex_);
      ++disk_rejects_;
    }
  }

  // Parse outside the lock; a concurrent miss on the same key parses too,
  // and the insert keeps whichever result lands first. A miss is counted
  // only when the insert wins; the loser's work is a *duplicate parse* — a
  // separate, scheduling-dependent stat (an obs gauge, not a deterministic
  // counter).
  obs::Span span("parse_cache.parse", "pipeline");
  auto parsed =
      std::make_shared<const config::ParseResult>(config::parse_config(text));
  if (store_ != nullptr) {
    // Write-back so the next process lifetime starts warm. Failures are
    // counted by the store and otherwise ignored: persistence is an
    // optimization, never a correctness requirement.
    store_->save(key_hex(key), config::encode_parse_result(*parsed));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return insert_locked(key, std::move(parsed), text.size(), false);
}

std::shared_ptr<const config::ParseResult> ParseCache::insert_locked(
    const Key& key, std::shared_ptr<const config::ParseResult> parsed,
    std::size_t cost, bool from_disk) {
  static obs::Counter& hit_counter = obs::counter("parse_cache.hits");
  static obs::Counter& miss_counter = obs::counter("parse_cache.misses");
  static obs::Counter& disk_hit_counter =
      obs::counter("parse_cache.disk_hits");
  static obs::Gauge& duplicate_gauge =
      obs::gauge("parse_cache.duplicate_parses");
  if (const auto it = entries_.find(key); it != entries_.end()) {
    // Lost the race: someone inserted while we parsed/decoded. Count the
    // discarded work and serve the winner so all callers share one result.
    ++hits_;
    ++duplicate_parses_;
    hit_counter.add();
    duplicate_gauge.add();
    lru_.splice(lru_.begin(), lru_, it->second.lru_slot);
    return it->second.result;
  }
  lru_.push_front(key);
  Entry entry;
  entry.result = std::move(parsed);
  entry.cost = cost;
  entry.lru_slot = lru_.begin();
  auto result = entry.result;
  entries_.emplace(key, std::move(entry));
  bytes_ += cost;
  if (from_disk) {
    ++disk_hits_;
    disk_hit_counter.add();
  } else {
    ++misses_;
    miss_counter.add();
  }
  evict_to_limit_locked();
  return result;
}

void ParseCache::evict_to_limit_locked() {
  if (byte_limit_ == 0) return;
  static obs::Counter& eviction_counter =
      obs::counter("parse_cache.evictions");
  while (bytes_ > byte_limit_ && !lru_.empty()) {
    eviction_counter.add();
    const Key victim = lru_.back();
    lru_.pop_back();
    const auto it = entries_.find(victim);
    bytes_ -= it->second.cost;
    entries_.erase(it);
    ++evictions_;
  }
}

void ParseCache::set_byte_limit(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  byte_limit_ = bytes;
  evict_to_limit_locked();
}

void ParseCache::attach_store(DiskStore* store) {
  std::lock_guard<std::mutex> lock(mutex_);
  store_ = store;
}

ParseCache::Stats ParseCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.duplicate_parses = duplicate_parses_;
  s.entries = entries_.size();
  s.bytes = bytes_;
  s.byte_limit = byte_limit_;
  s.evictions = evictions_;
  s.disk_hits = disk_hits_;
  s.disk_rejects = disk_rejects_;
  return s;
}

void ParseCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  hits_ = 0;
  misses_ = 0;
  duplicate_parses_ = 0;
  evictions_ = 0;
  disk_hits_ = 0;
  disk_rejects_ = 0;
}

}  // namespace rd::pipeline
