#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/network.h"
#include "util/thread_pool.h"

namespace rd::pipeline {

/// Knobs for the parallel entry points.
struct Options {
  /// Concurrency level; 0 picks `util::ThreadPool::default_thread_count()`
  /// (the `RD_THREADS` env override, else hardware_concurrency).
  std::size_t threads = 0;
};

// --- Per-network pipeline (parse -> model) ----------------------------------
//
// The paper's front end (§2) parses each router's configuration file
// independently; only the model-build step (link inference onward) looks
// across routers. That makes the parse embarrassingly parallel. The
// determinism contract: configs are assembled in input index order before
// `model::Network::build` runs, so the parallel path's Network is
// byte-identical (same ids, same vector orders, same serializations) to the
// serial path's.

/// Serial reference path: parse texts[0..n) in order, build the model.
model::Network build_network_serial(const std::vector<std::string>& texts);

/// Parallel path: texts parsed concurrently on `pool`, results merged in
/// index order, model built from the ordered configs.
model::Network build_network_parallel(const std::vector<std::string>& texts,
                                      util::ThreadPool& pool);
model::Network build_network_parallel(const std::vector<std::string>& texts,
                                      const Options& options = {});

/// Canonical JSON serialization of everything the model derived: routers,
/// interfaces, links, routing processes, IGP adjacencies, BGP sessions, and
/// redistribution edges, all in id order. Two Networks with equal signatures
/// are indistinguishable to every downstream analysis; the differential
/// tests compare serial and parallel pipelines through this.
std::string network_signature(const model::Network& network);

// --- Fleet analysis ---------------------------------------------------------
//
// The paper applies its pipeline to 31 independent networks; the analyses
// (census, design classification, consistency, lint, reachability) never
// look across networks, so the fleet fans out one task per network and the
// reports merge in input index order.

/// One network's input: a name and its per-router configuration texts.
struct FleetInput {
  std::string name;
  std::vector<std::string> texts;
};

/// One network's analysis report. `json` is the full deterministic report
/// (inventory, interface census, design classification, consistency and
/// lint findings, reachability summary); `instance_graph_dot` is the
/// Figure-6-style DOT rendering. The scalar fields are convenience copies
/// for table printing.
struct NetworkReport {
  std::string name;
  std::string archetype;
  std::size_t routers = 0;
  std::size_t links = 0;
  std::size_t instances = 0;
  std::size_t consistency_findings = 0;
  std::size_t lint_findings = 0;
  /// All design-rule findings (suppressions applied) and the subset with
  /// error severity — the CLI exit-code gate.
  std::size_t rule_findings = 0;
  std::size_t rule_errors = 0;
  std::size_t parse_diagnostics = 0;
  std::size_t internet_reaching_instances = 0;
  std::string json;
  std::string instance_graph_dot;
};

/// Run the per-network §8.1-style passes over an already-built model.
NetworkReport analyze_network(const std::string& name,
                              const model::Network& network);

/// Serial reference: parse + build + analyze each input in order.
std::vector<NetworkReport> analyze_fleet_serial(
    const std::vector<FleetInput>& inputs);

/// Parallel fleet analysis: one task per network, reports merged in input
/// index order — element-for-element identical to the serial path.
std::vector<NetworkReport> analyze_fleet_parallel(
    const std::vector<FleetInput>& inputs, const Options& options = {});
std::vector<NetworkReport> analyze_fleet_parallel(
    const std::vector<FleetInput>& inputs, util::ThreadPool& pool);

}  // namespace rd::pipeline
