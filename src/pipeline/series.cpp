#include "pipeline/series.h"

#include <memory>
#include <optional>
#include <utility>

namespace rd::pipeline {

model::Network build_network_cached(const std::vector<std::string>& texts,
                                    ParseCache& cache,
                                    util::ThreadPool& pool) {
  // Hash + lookup (+ parse on miss) in parallel; results land in input
  // index order, so the model build sees the same config sequence as the
  // serial path. The cache returns shared immutable results; the model
  // needs owned copies (Network::build moves its inputs in), and copying a
  // parsed config is far cheaper than re-parsing its text.
  auto shared = util::parallel_map(
      pool, texts,
      [&cache](const std::string& text) { return cache.parse(text); });
  std::vector<config::ParseResult> parses;
  parses.reserve(shared.size());
  for (const auto& entry : shared) parses.push_back(*entry);
  return model::Network::build_parsed(std::move(parses));
}

model::Network build_network_cached(const std::vector<std::string>& texts,
                                    const std::vector<std::string>& names,
                                    ParseCache& cache,
                                    util::ThreadPool& pool) {
  auto shared = util::parallel_map(
      pool, texts,
      [&cache](const std::string& text) { return cache.parse(text); });
  std::vector<config::ParseResult> parses;
  parses.reserve(shared.size());
  for (std::size_t i = 0; i < shared.size(); ++i) {
    config::ParseResult copy = *shared[i];
    if (!names.empty()) {
      // Reproduce parse_config(text, name) on the content-keyed parse.
      copy.config.source_file = names[i];
      if (copy.config.hostname.empty()) copy.config.hostname = names[i];
    }
    parses.push_back(std::move(copy));
  }
  return model::Network::build_parsed(std::move(parses));
}

SeriesReport analyze_snapshot_series(const std::vector<SnapshotInput>& series,
                                     ParseCache& cache,
                                     util::ThreadPool& pool) {
  SeriesReport out;
  out.snapshots.reserve(series.size());
  if (series.size() > 1) out.diffs.reserve(series.size() - 1);

  // Snapshots are processed in order (each diff needs its predecessor's
  // model); parallelism lives inside each snapshot's parse fan-out.
  std::optional<model::Network> previous;
  for (const auto& snapshot : series) {
    const auto before = cache.stats();
    model::Network network = build_network_cached(snapshot.texts, cache, pool);
    const auto after = cache.stats();

    SnapshotReport entry;
    entry.report = analyze_network(snapshot.name, network);
    entry.signature = network_signature(network);
    entry.cache_hits = after.hits - before.hits;
    entry.cache_misses = after.misses - before.misses;
    out.snapshots.push_back(std::move(entry));

    if (previous) out.diffs.push_back(analysis::diff_designs(*previous, network));
    previous = std::move(network);
  }
  return out;
}

SeriesReport analyze_snapshot_series(const std::vector<SnapshotInput>& series,
                                     ParseCache& cache,
                                     const Options& options) {
  util::ThreadPool pool(options.threads);
  return analyze_snapshot_series(series, cache, pool);
}

SeriesReport analyze_snapshot_series_serial(
    const std::vector<SnapshotInput>& series) {
  SeriesReport out;
  out.snapshots.reserve(series.size());
  if (series.size() > 1) out.diffs.reserve(series.size() - 1);

  std::optional<model::Network> previous;
  for (const auto& snapshot : series) {
    model::Network network = build_network_serial(snapshot.texts);
    SnapshotReport entry;
    entry.report = analyze_network(snapshot.name, network);
    entry.signature = network_signature(network);
    entry.cache_misses = snapshot.texts.size();  // every parse is cold
    out.snapshots.push_back(std::move(entry));
    if (previous) out.diffs.push_back(analysis::diff_designs(*previous, network));
    previous = std::move(network);
  }
  return out;
}

}  // namespace rd::pipeline
