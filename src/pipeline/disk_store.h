#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace rd::pipeline {

/// A content-addressed on-disk blob store: the persistence layer under
/// ParseCache (DESIGN.md §14). Keys are the cache's SHA-1 content digests
/// rendered as lowercase hex; values are opaque payloads (in practice
/// config::encode_parse_result output). Because the key is a content hash,
/// entries are immutable and never invalidated — a changed config text is a
/// different key — so one store directory can be shared by many fleets,
/// many daemons, and many successive process lifetimes.
///
/// File format: a fixed header (magic "RDPS", u32 format version, u64
/// payload length, 20-byte SHA-1 of the payload) followed by the payload.
/// `load` re-verifies all three, so a truncated, bit-flipped, or
/// wrong-version file is *rejected* (nullopt) rather than misread; the
/// caller then falls back to a cold parse, and the next `save` replaces the
/// bad file. A rejected file is never trusted for its length alone.
///
/// Durability/atomicity: `save` writes to a unique temp file in the store
/// directory and renames it over the final name. rename(2) is atomic on
/// POSIX, so concurrent writers (threads or processes) racing on one key
/// each install a complete file and readers only ever observe a fully
/// written one. Save failures are reported, never thrown — persistence is
/// an optimization, not a correctness requirement.
class DiskStore {
 public:
  struct Stats {
    std::size_t loads = 0;          // load() calls
    std::size_t load_hits = 0;      // returned a verified payload
    std::size_t load_rejects = 0;   // file present but failed verification
    std::size_t saves = 0;          // save() calls that installed a file
    std::size_t save_failures = 0;  // I/O errors (payload not persisted)
  };

  /// Opens (creating if needed) the store rooted at `directory`. Throws
  /// std::runtime_error when the directory cannot be created.
  explicit DiskStore(std::filesystem::path directory);

  /// The verified payload for `key_hex`, or nullopt when absent, truncated,
  /// corrupted, or written by a different format version.
  std::optional<std::string> load(const std::string& key_hex);

  /// Atomically persist `payload` under `key_hex`. Returns false (and
  /// counts a failure) on I/O errors. Overwrites any existing entry.
  bool save(const std::string& key_hex, std::string_view payload);

  /// True when a (not-yet-verified) entry file exists for the key.
  bool contains(const std::string& key_hex) const;

  const std::filesystem::path& directory() const { return directory_; }

  Stats stats() const;

  /// On-disk format version; bumped when the header layout changes. The
  /// *payload* carries its own version (config::kParseFormatVersion), so
  /// payload-format evolution does not require a store-format bump: a
  /// stale payload fails its own decode and falls back to a cold parse.
  static constexpr std::uint32_t kStoreVersion = 1;

 private:
  std::filesystem::path entry_path(const std::string& key_hex) const;

  std::filesystem::path directory_;
  mutable std::mutex mutex_;  // guards counters only; file I/O runs outside
  Stats stats_;
  std::uint64_t next_temp_id_ = 0;
};

}  // namespace rd::pipeline
