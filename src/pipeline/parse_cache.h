#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "config/parser.h"

namespace rd::pipeline {

/// A content-addressed memo of per-router parse results, the cacheable unit
/// of the snapshot-series workload (paper §8.2): between consecutive
/// snapshots of a network, almost every router's configuration file is
/// byte-identical, so its parse — the front end's dominant cost — can be
/// reused verbatim.
///
/// Keying: SHA-1 of the configuration text (util/hash.h, shared with the
/// anonymizer). The key depends on nothing but content, so identical texts
/// dedup across routers, networks, and snapshots, and invalidation is
/// automatic — a changed text is a different key. Entries are immutable
/// `shared_ptr<const ParseResult>`s; the cache never evicts (a fleet's
/// worth of parsed configs is small, and eviction would reintroduce the
/// cold-path cost it exists to remove).
///
/// Thread safety: `parse` may be called concurrently from ThreadPool tasks.
/// Hash and parse run outside the lock; only the map lookup/insert and the
/// hit/miss counters are serialized. When two threads race to parse the
/// same new text, both parse but the first insert wins and both return the
/// winning entry, so callers always share one result per content key.
///
/// Accounting: a miss is counted when an insert wins, so `misses ==
/// entries` always; every other call is a hit (`hits + misses` = total
/// calls) — both counts are therefore scheduling-independent. A racer
/// whose parse is discarded additionally bumps `duplicate_parses`, the
/// only scheduling-dependent figure (wasted work, not set semantics).
class ParseCache {
 public:
  struct Stats {
    std::size_t hits = 0;    // calls served an existing entry
    std::size_t misses = 0;  // calls whose parse was inserted (== entries)
    std::size_t duplicate_parses = 0;  // lost races: parsed, then discarded
    std::size_t entries = 0;           // distinct content keys resident
  };

  /// Return the parse of `text`, memoized by content hash.
  std::shared_ptr<const config::ParseResult> parse(const std::string& text);

  Stats stats() const;

  /// Drop every entry and reset the counters.
  void clear();

 private:
  using Key = std::array<std::uint8_t, 20>;
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      // The key is itself a cryptographic digest; fold the first bytes.
      std::size_t h = 0;
      for (std::size_t i = 0; i < sizeof(std::size_t); ++i) {
        h = (h << 8) | key[i];
      }
      return h;
    }
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, std::shared_ptr<const config::ParseResult>, KeyHash>
      entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t duplicate_parses_ = 0;
};

}  // namespace rd::pipeline
