#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "config/parser.h"

namespace rd::pipeline {

class DiskStore;

/// A content-addressed memo of per-router parse results, the cacheable unit
/// of the snapshot-series workload (paper §8.2) and the resident state of
/// the rdd analysis daemon: between consecutive snapshots of a network —
/// and between consecutive queries against a resident fleet — almost every
/// router's configuration file is byte-identical, so its parse (the front
/// end's dominant cost) can be reused verbatim.
///
/// Keying: SHA-1 of the configuration text (util/hash.h, shared with the
/// anonymizer). The key depends on nothing but content, so identical texts
/// dedup across routers, networks, fleets, and snapshots, and invalidation
/// is automatic — a changed text is a different key. Entries are immutable
/// `shared_ptr<const ParseResult>`s.
///
/// Memory bound: by default the cache never evicts (a fleet's worth of
/// parsed configs is small). `set_byte_limit` arms an LRU eviction policy:
/// each entry is charged its configuration text's byte size (a stable,
/// content-only proxy for the parse's footprint), and inserts evict
/// least-recently-used entries until the charged total fits the cap. An
/// evicted entry's result stays alive for callers already holding it; only
/// the memo forgets it.
///
/// Persistence: `attach_store` plugs in a DiskStore (content-addressed,
/// survives restarts, shared across fleets and processes). A memory miss
/// then tries the store before parsing — a verified stored payload is
/// decoded (config::decode_parse_result) instead of parsed — and a cold
/// parse is written back. A truncated/corrupt/stale-format store entry is
/// rejected by verification and falls back to the cold parse path; it is
/// never trusted. The store pointer is not owned and must outlive the
/// cache; attach it before concurrent use.
///
/// Thread safety: `parse` may be called concurrently from ThreadPool tasks.
/// Hash, store I/O, decode, and parse run outside the lock; only the map
/// lookup/insert, LRU list, and counters are serialized. When two threads
/// race to produce the same new key, the first insert wins and both return
/// the winning entry, so callers always share one result per content key.
///
/// Accounting: a `miss` is counted when a *parsed* insert wins, a
/// `disk_hit` when a *decoded* insert wins; every other call is a hit.
/// Without eviction or a store, `misses == entries` always (the PR 2
/// contract). With eviction, a re-parse after eviction counts as a fresh
/// miss (or disk hit), so `misses >= entries`. `duplicate_parses` counts
/// lost races — parsed or decoded, then discarded — the only
/// scheduling-dependent figure.
class ParseCache {
 public:
  struct Stats {
    std::size_t hits = 0;    // calls served an in-memory entry
    std::size_t misses = 0;  // calls whose cold parse was inserted
    std::size_t duplicate_parses = 0;  // lost races: work done, discarded
    std::size_t entries = 0;           // distinct content keys resident
    std::size_t bytes = 0;        // charged bytes resident (text sizes)
    std::size_t byte_limit = 0;   // LRU cap; 0 = unbounded
    std::size_t evictions = 0;    // entries dropped by the LRU policy
    std::size_t disk_hits = 0;    // calls served by decoding a store entry
    std::size_t disk_rejects = 0; // store payloads that failed decode
  };

  /// Return the parse of `text`, memoized by content hash.
  std::shared_ptr<const config::ParseResult> parse(const std::string& text);

  /// Arm (or, with 0, disarm) the LRU byte cap. Applies immediately:
  /// setting a cap below the resident total evicts down to it.
  void set_byte_limit(std::size_t bytes);

  /// Attach (nullptr: detach) the persistent store. Not owned; must
  /// outlive the cache. Call before concurrent use.
  void attach_store(DiskStore* store);
  DiskStore* store() const noexcept { return store_; }

  Stats stats() const;

  /// Drop every entry and reset the counters. Leaves the byte limit and
  /// the attached store in place.
  void clear();

 private:
  using Key = std::array<std::uint8_t, 20>;
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      // The key is itself a cryptographic digest; fold the first bytes.
      std::size_t h = 0;
      for (std::size_t i = 0; i < sizeof(std::size_t); ++i) {
        h = (h << 8) | key[i];
      }
      return h;
    }
  };
  struct Entry {
    std::shared_ptr<const config::ParseResult> result;
    std::size_t cost = 0;               // charged bytes (source text size)
    std::list<Key>::iterator lru_slot;  // position in lru_ (front = hottest)
  };

  /// Insert under the lock; returns the resident entry (the winner when a
  /// race lost). `from_disk` routes the accounting.
  std::shared_ptr<const config::ParseResult> insert_locked(
      const Key& key, std::shared_ptr<const config::ParseResult> parsed,
      std::size_t cost, bool from_disk);
  void evict_to_limit_locked();

  mutable std::mutex mutex_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::list<Key> lru_;  // most recently used at the front
  std::size_t bytes_ = 0;
  std::size_t byte_limit_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t duplicate_parses_ = 0;
  std::size_t evictions_ = 0;
  std::size_t disk_hits_ = 0;
  std::size_t disk_rejects_ = 0;
  DiskStore* store_ = nullptr;
};

}  // namespace rd::pipeline
