#include "pipeline/pipeline.h"

#include <map>
#include <utility>

#include "analysis/archetype.h"
#include "analysis/census.h"
#include "analysis/dataflow.h"
#include "analysis/header_space.h"
#include "analysis/reachability.h"
#include "analysis/rules.h"
#include "config/parser.h"
#include "graph/dot.h"
#include "graph/instances.h"
#include "obs/obs.h"
#include "util/json.h"

namespace rd::pipeline {

namespace {

// Full ParseResult, not just the config: diagnostics ride along so the
// model and reports can surface malformed lines (dropping them here was the
// bug this pipeline once had).
config::ParseResult parse_one(const std::string& text) {
  static obs::Counter& routers = obs::counter("parse.routers");
  static obs::Counter& diagnostics = obs::counter("parse.diagnostics");
  obs::Span span("parse.router", "pipeline");
  auto result = config::parse_config(text);
  span.arg("bytes", text.size());
  span.arg("diagnostics", result.diagnostics.size());
  routers.add();
  diagnostics.add(result.diagnostics.size());
  return result;
}

// util::Json has no uint32_t constructor; ids need an explicit widening.
util::Json uid(std::uint32_t v) {
  return util::Json(static_cast<long long>(v));
}

}  // namespace

model::Network build_network_serial(const std::vector<std::string>& texts) {
  std::vector<config::ParseResult> parses;
  parses.reserve(texts.size());
  {
    obs::Span span("parse.network", "pipeline");
    span.arg("routers", texts.size());
    for (const auto& text : texts) parses.push_back(parse_one(text));
  }
  obs::Span span("model.build", "pipeline");
  return model::Network::build_parsed(std::move(parses));
}

model::Network build_network_parallel(const std::vector<std::string>& texts,
                                      util::ThreadPool& pool) {
  std::vector<config::ParseResult> parses;
  {
    obs::Span span("parse.network", "pipeline");
    span.arg("routers", texts.size());
    parses = util::parallel_map(pool, texts, parse_one);
  }
  obs::Span span("model.build", "pipeline");
  return model::Network::build_parsed(std::move(parses));
}

model::Network build_network_parallel(const std::vector<std::string>& texts,
                                      const Options& options) {
  util::ThreadPool pool(options.threads);
  return build_network_parallel(texts, pool);
}

std::string network_signature(const model::Network& network) {
  using util::Json;
  auto root = Json::object();

  auto routers = Json::array();
  for (const auto& config : network.routers()) {
    auto r = Json::object();
    r.set("hostname", config.hostname);
    r.set("interfaces", config.interfaces.size());
    r.set("stanzas", config.router_stanzas.size());
    r.set("acls", config.access_lists.size());
    r.set("route_maps", config.route_maps.size());
    r.set("statics", config.static_routes.size());
    routers.push_back(std::move(r));
  }
  root.set("routers", std::move(routers));

  auto interfaces = Json::array();
  for (const auto& itf : network.interfaces()) {
    auto i = Json::object();
    i.set("router", uid(itf.router));
    i.set("name", itf.name);
    i.set("hw", itf.hardware_type);
    i.set("address", itf.address ? itf.address->to_string() : "-");
    i.set("subnet", itf.subnet ? itf.subnet->to_string() : "-");
    auto secondaries = Json::array();
    for (const auto& prefix : itf.secondary_subnets) {
      secondaries.push_back(prefix.to_string());
    }
    i.set("secondaries", std::move(secondaries));
    i.set("link", uid(itf.link));
    i.set("shutdown", itf.shutdown);
    i.set("p2p", itf.point_to_point);
    i.set("external", itf.external_facing);
    interfaces.push_back(std::move(i));
  }
  root.set("interfaces", std::move(interfaces));

  auto links = Json::array();
  for (const auto& link : network.links()) {
    auto l = Json::object();
    l.set("subnet", link.subnet.to_string());
    auto members = Json::array();
    for (const auto id : link.interfaces) members.push_back(uid(id));
    l.set("interfaces", std::move(members));
    l.set("external", link.external_facing);
    links.push_back(std::move(l));
  }
  root.set("links", std::move(links));

  auto processes = Json::array();
  for (const auto& process : network.processes()) {
    auto p = Json::object();
    p.set("router", uid(process.router));
    p.set("protocol", static_cast<int>(process.protocol));
    p.set("id", process.process_id ? uid(*process.process_id) : Json());
    auto covered = Json::array();
    for (const auto id : process.covered_interfaces) covered.push_back(uid(id));
    p.set("covers", std::move(covered));
    processes.push_back(std::move(p));
  }
  root.set("processes", std::move(processes));

  auto igp = Json::array();
  for (const auto& adj : network.igp_adjacencies()) {
    auto a = Json::object();
    a.set("a", uid(adj.process_a));
    a.set("b", uid(adj.process_b));
    a.set("link", uid(adj.link));
    igp.push_back(std::move(a));
  }
  root.set("igp_adjacencies", std::move(igp));

  auto external_igp = Json::array();
  for (const auto& adj : network.external_igp_adjacencies()) {
    auto a = Json::object();
    a.set("process", uid(adj.process));
    a.set("interface", uid(adj.interface));
    external_igp.push_back(std::move(a));
  }
  root.set("external_igp_adjacencies", std::move(external_igp));

  auto sessions = Json::array();
  for (const auto& session : network.bgp_sessions()) {
    auto s = Json::object();
    s.set("local", uid(session.local_process));
    s.set("remote_address", session.remote_address.to_string());
    s.set("local_as", uid(session.local_as));
    s.set("remote_as", uid(session.remote_as));
    s.set("remote", uid(session.remote_process));
    sessions.push_back(std::move(s));
  }
  root.set("bgp_sessions", std::move(sessions));

  auto redists = Json::array();
  for (const auto& edge : network.redistribution_edges()) {
    auto e = Json::object();
    e.set("router", uid(edge.router));
    e.set("source_kind", static_cast<int>(edge.source_kind));
    e.set("source", uid(edge.source_process));
    e.set("target", uid(edge.target_process));
    e.set("route_map", edge.route_map ? Json(*edge.route_map) : Json());
    redists.push_back(std::move(e));
  }
  root.set("redistribution_edges", std::move(redists));

  auto diagnostics = Json::array();
  for (const auto& router_diags : network.parse_diagnostics()) {
    auto per_router = Json::array();
    for (const auto& diag : router_diags) {
      auto d = Json::object();
      d.set("line", diag.line);
      d.set("message", diag.message);
      per_router.push_back(std::move(d));
    }
    diagnostics.push_back(std::move(per_router));
  }
  root.set("parse_diagnostics", std::move(diagnostics));

  return root.dump();
}

NetworkReport analyze_network(const std::string& name,
                              const model::Network& network) {
  using util::Json;
  obs::Span network_span("analyze.network", "pipeline");
  network_span.label(name);
  const auto ig = [&] {
    obs::Span span("analyze.instance_graph", "pipeline");
    return graph::InstanceGraph::build(network);
  }();
  const auto classification = analysis::classify_design(network, ig.set);
  const auto census = analysis::interface_census(network);
  // One engine run covers the consistency and lint sections below plus the
  // vulnerability and cross-router rules; the registry is immutable and
  // shared across the (possibly concurrent) per-network tasks.
  static const auto engine = analysis::RuleEngine::with_default_rules();
  const auto rules_result = [&] {
    obs::Span span("analyze.rules", "pipeline");
    return engine.run(network, ig);
  }();
  const auto reach = [&] {
    obs::Span span("analyze.reachability", "pipeline");
    return analysis::ReachabilityAnalysis::run(network, ig.set);
  }();
  // Abstract route-provenance fixpoint over the instance graph (DESIGN.md
  // §13). Cheap relative to reachability — the domain is instances, not
  // routers — and its summary only appears when the network actually has
  // cross-instance edges, so single-instance reports keep their old shape.
  const auto flow = [&] {
    obs::Span span("analyze.dataflow", "pipeline");
    return analysis::InstanceDataflow(network, ig);
  }();
  obs::counter("fleet.networks").add();

  const auto category_of = [&](const analysis::Finding& f) -> std::string {
    const auto* info = engine.find(f.rule_id);
    return info != nullptr ? info->category : std::string();
  };
  const auto name_of = [&](const analysis::Finding& f) -> std::string {
    const auto* info = engine.find(f.rule_id);
    return info != nullptr ? info->name : std::string();
  };

  NetworkReport report;
  report.name = name;
  report.archetype = std::string(analysis::to_string(classification.archetype));
  report.routers = network.router_count();
  report.links = network.links().size();
  report.instances = ig.set.instances.size();
  report.rule_findings = rules_result.findings.size();
  report.rule_errors = rules_result.errors;
  for (const auto& finding : rules_result.findings) {
    const auto category = category_of(finding);
    if (category == "consistency") ++report.consistency_findings;
    if (category == "lint") ++report.lint_findings;
  }

  auto root = Json::object();
  root.set("name", name);

  auto inventory = Json::object();
  inventory.set("routers", network.router_count());
  inventory.set("interfaces", network.interfaces().size());
  inventory.set("unnumbered", analysis::unnumbered_interface_count(network));
  inventory.set("links", network.links().size());
  inventory.set("instances", ig.set.instances.size());
  inventory.set("instance_edges", ig.edges.size());
  root.set("inventory", std::move(inventory));

  // Parse diagnostics, per router: what the lenient parser skipped. These
  // were historically dropped at the model boundary; an operator reading a
  // fleet report must see that config lines went unmodeled.
  report.parse_diagnostics = network.total_parse_diagnostics();
  auto diags_json = Json::object();
  diags_json.set("total", report.parse_diagnostics);
  auto diags_routers = Json::array();
  for (model::RouterId r = 0; r < network.router_count(); ++r) {
    const auto& router_diags = network.parse_diagnostics(r);
    if (router_diags.empty()) continue;
    auto entry = Json::object();
    entry.set("router", network.routers()[r].hostname);
    entry.set("count", router_diags.size());
    auto messages = Json::array();
    for (const auto& diag : router_diags) {
      auto m = Json::object();
      m.set("line", diag.line);
      m.set("message", diag.message);
      messages.push_back(std::move(m));
    }
    entry.set("messages", std::move(messages));
    diags_routers.push_back(std::move(entry));
  }
  diags_json.set("routers", std::move(diags_routers));
  root.set("parse_diagnostics", std::move(diags_json));

  auto census_json = Json::object();
  for (const auto& [type, count] : census) census_json.set(type, count);
  root.set("census", std::move(census_json));

  auto design = Json::object();
  design.set("archetype", report.archetype);
  design.set("bgp_instances", classification.features.bgp_instance_count);
  design.set("igp_instances", classification.features.igp_instance_count);
  design.set("staging_igp_instances",
             classification.features.staging_igp_instances);
  design.set("internal_as", classification.features.internal_as_count);
  design.set("external_ebgp", classification.features.external_ebgp_sessions);
  design.set("internal_ebgp", classification.features.internal_ebgp_sessions);
  root.set("design", std::move(design));

  // The consistency and lint sections keep their pre-engine shape (kind
  // strings equal the rule names), now derived from the unified run so
  // rdlint-disable suppressions apply here too.
  auto consistency_json = Json::array();
  for (const auto& finding : rules_result.findings) {
    if (category_of(finding) != "consistency") continue;
    auto f = Json::object();
    f.set("kind", name_of(finding));
    f.set("router_a", uid(finding.router));
    f.set("router_b", uid(finding.router_b));
    f.set("detail", finding.detail);
    if (finding.where.line != 0) f.set("line", finding.where.line);
    consistency_json.push_back(std::move(f));
  }
  root.set("consistency", std::move(consistency_json));

  std::map<std::string, std::size_t> lint_by_kind;
  for (const auto& finding : rules_result.findings) {
    if (category_of(finding) == "lint") ++lint_by_kind[name_of(finding)];
  }
  auto lint_json = Json::object();
  lint_json.set("total", report.lint_findings);
  for (const auto& [kind, count] : lint_by_kind) lint_json.set(kind, count);
  root.set("lint", std::move(lint_json));

  // The unified design-rule summary (per-rule counts; full findings with
  // provenance are the rdlint CLI's output).
  auto rules_json = Json::object();
  rules_json.set("total", rules_result.findings.size());
  rules_json.set("errors", rules_result.errors);
  rules_json.set("warnings", rules_result.warnings);
  rules_json.set("info", rules_result.infos);
  rules_json.set("suppressed", rules_result.suppressed);
  std::map<std::string, std::size_t> by_rule;
  for (const auto& finding : rules_result.findings) ++by_rule[finding.rule_id];
  auto by_rule_json = Json::object();
  for (const auto& [rule, count] : by_rule) by_rule_json.set(rule, count);
  rules_json.set("by_rule", std::move(by_rule_json));
  root.set("rules", std::move(rules_json));

  std::size_t internet_reaching = 0;
  std::size_t external_routes = 0;
  std::size_t total_routes = 0;
  for (std::uint32_t i = 0; i < ig.set.instances.size(); ++i) {
    if (reach.instance_reaches_internet(i)) ++internet_reaching;
    external_routes += reach.external_route_count(i);
    total_routes += reach.instance_routes(i).size();
  }
  report.internet_reaching_instances = internet_reaching;
  auto reach_json = Json::object();
  reach_json.set("internet_reaching_instances", internet_reaching);
  reach_json.set("external_routes", external_routes);
  reach_json.set("total_routes", total_routes);
  reach_json.set("announced_externally", reach.announced_externally().size());
  reach_json.set("iterations", reach.iterations_used());
  reach_json.set("converged", reach.converged());
  root.set("reachability", std::move(reach_json));

  // Intent assertions (§6.2), verified against the exact symbolic header
  // space. The section (and its metrics keys below) only appears when a
  // config declares "! rd-intent" lines, so intent-free reports are
  // byte-for-byte what they were before this analysis existed.
  const auto intents = analysis::collect_intents(network);
  std::size_t intents_holding = 0;
  if (!intents.empty()) {
    const auto outcomes = [&] {
      obs::Span span("analyze.intents", "pipeline");
      return analysis::verify_intents(network, ig.set, reach, intents);
    }();
    auto violations = Json::array();
    for (const auto& outcome : outcomes) {
      if (outcome.holds) {
        ++intents_holding;
        continue;
      }
      auto violation = Json::object();
      violation.set("intent", outcome.intent.describe());
      violation.set("witness", outcome.witness ? outcome.witness->describe()
                                               : std::string());
      violations.push_back(std::move(violation));
    }
    auto intents_json = Json::object();
    intents_json.set("declared", outcomes.size());
    intents_json.set("holding", intents_holding);
    intents_json.set("violations", std::move(violations));
    root.set("intents", std::move(intents_json));
  }

  // Route-redistribution dataflow summary (§6 redistribution glue). Like
  // "intents", the section only appears when there is something to say —
  // at least one cross-instance edge — so reports of single-instance
  // networks are byte-for-byte unchanged.
  if (!flow.edges().empty()) {
    std::size_t session_edges = 0;
    for (const auto& edge : flow.edges()) {
      if (edge.kind == analysis::DataflowEdge::Kind::kSession) {
        ++session_edges;
      }
    }
    auto flow_json = Json::object();
    flow_json.set("edges", flow.edges().size());
    flow_json.set("session_edges", session_edges);
    flow_json.set("facts", flow.fact_count());
    flow_json.set("loop_events", flow.loop_events().size());
    flow_json.set("iterations", flow.iterations());
    flow_json.set("converged", flow.converged());
    root.set("redistribution", std::move(flow_json));
  }

  // Deterministic per-network metrics (DESIGN.md §10): logical-event counts
  // computed from this network's results, never from the global obs
  // registry (whose totals depend on what else ran in the process) and
  // never wall times (which go solely to the trace file). Keys are emitted
  // pre-sorted, so serial and parallel reports stay byte-identical.
  auto metrics = Json::object();
  auto counters = Json::object();
  if (!flow.edges().empty()) {
    counters.set("dataflow.edges", flow.edges().size());
    counters.set("dataflow.facts", flow.fact_count());
    counters.set("dataflow.iterations", flow.iterations());
    counters.set("dataflow.loop_events", flow.loop_events().size());
  }
  counters.set("graph.instance_edges", ig.edges.size());
  counters.set("graph.instances", ig.set.instances.size());
  if (!intents.empty()) {
    counters.set("intents.declared", intents.size());
    counters.set("intents.holding", intents_holding);
  }
  counters.set("model.interfaces", network.interfaces().size());
  counters.set("model.links", network.links().size());
  counters.set("parse.diagnostics", report.parse_diagnostics);
  counters.set("parse.routers", network.router_count());
  counters.set("reachability.external_routes", external_routes);
  counters.set("reachability.iterations", reach.iterations_used());
  counters.set("reachability.routes", total_routes);
  counters.set("rules.errors", rules_result.errors);
  counters.set("rules.evaluated", engine.rules().size());
  counters.set("rules.findings", rules_result.findings.size());
  counters.set("rules.suppressed", rules_result.suppressed);
  counters.set("rules.warnings", rules_result.warnings);
  metrics.set("counters", std::move(counters));
  root.set("metrics", std::move(metrics));

  report.json = root.dump();
  report.instance_graph_dot = graph::to_dot(network, ig);
  return report;
}

std::vector<NetworkReport> analyze_fleet_serial(
    const std::vector<FleetInput>& inputs) {
  std::vector<NetworkReport> reports;
  reports.reserve(inputs.size());
  for (const auto& input : inputs) {
    reports.push_back(
        analyze_network(input.name, build_network_serial(input.texts)));
  }
  return reports;
}

std::vector<NetworkReport> analyze_fleet_parallel(
    const std::vector<FleetInput>& inputs, util::ThreadPool& pool) {
  // One task per network; each task runs the whole per-network pipeline
  // (parse serially within the task — the fleet-level fan-out already
  // saturates the pool). parallel_map merges reports in input index order.
  return util::parallel_map(pool, inputs, [](const FleetInput& input) {
    return analyze_network(input.name, build_network_serial(input.texts));
  });
}

std::vector<NetworkReport> analyze_fleet_parallel(
    const std::vector<FleetInput>& inputs, const Options& options) {
  util::ThreadPool pool(options.threads);
  return analyze_fleet_parallel(inputs, pool);
}

}  // namespace rd::pipeline
