#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "ip/ipv4.h"

namespace rd::config {

/// Routing protocols recognized by the configuration dialect. The paper's
/// data set (Table 1) contained OSPF, EIGRP (plus two IGRP instances), RIP,
/// and BGP; IS-IS is parsed but never appeared in the 31 networks.
enum class RoutingProtocol : std::uint8_t {
  kOspf,
  kEigrp,
  kIgrp,
  kRip,
  kBgp,
  kIsis,
};

std::string_view to_keyword(RoutingProtocol protocol) noexcept;
std::optional<RoutingProtocol> protocol_from_keyword(
    std::string_view keyword) noexcept;

/// True for protocols conventionally classed as IGPs (everything but BGP).
bool is_conventional_igp(RoutingProtocol protocol) noexcept;

/// "ip address A.B.C.D M.M.M.M" on an interface.
struct InterfaceAddress {
  ip::Ipv4Address address;
  ip::Netmask mask;

  ip::Prefix subnet() const noexcept {
    return ip::Prefix(address, mask.length());
  }
  friend bool operator==(const InterfaceAddress&,
                         const InterfaceAddress&) = default;
};

/// One "interface <Name>" stanza.
///
/// Source provenance (`line`, 1-based, 0 = unknown/synthesized) is carried
/// on this and every other command-level AST node so static-analysis
/// findings can point at the offending config line. Provenance is excluded
/// from equality: a synthesized config and its written-then-reparsed twin
/// are the same configuration even though only the latter has line numbers.
struct InterfaceConfig {
  std::string name;  // e.g. "Serial1/0.5" or "FastEthernet0/1"
  std::optional<InterfaceAddress> address;
  std::vector<InterfaceAddress> secondary_addresses;
  std::optional<std::string> description;
  std::optional<std::string> access_group_in;   // "ip access-group N in"
  std::optional<std::string> access_group_out;  // "ip access-group N out"
  bool point_to_point = false;
  bool shutdown = false;
  std::optional<std::uint32_t> bandwidth_kbps;
  std::optional<std::uint32_t> ospf_cost;  // "ip ospf cost N"
  /// "ip router isis": IS-IS is enabled per interface rather than via
  /// network statements. (The paper's data set contained no IS-IS; the
  /// dialect supports it for completeness.)
  bool isis = false;
  /// Attribute lines the parser recognizes as valid but does not model
  /// (e.g. "frame-relay interface-dlci 28"); preserved for round-tripping.
  std::vector<std::string> extra_lines;
  std::size_t line = 0;  // source line of the "interface" command

  /// Hardware type parsed from the name ("Serial", "FastEthernet", ...).
  std::string hardware_type() const;

  friend bool operator==(const InterfaceConfig& a, const InterfaceConfig& b) {
    return a.name == b.name && a.address == b.address &&
           a.secondary_addresses == b.secondary_addresses &&
           a.description == b.description &&
           a.access_group_in == b.access_group_in &&
           a.access_group_out == b.access_group_out &&
           a.point_to_point == b.point_to_point &&
           a.shutdown == b.shutdown &&
           a.bandwidth_kbps == b.bandwidth_kbps &&
           a.ospf_cost == b.ospf_cost && a.isis == b.isis &&
           a.extra_lines == b.extra_lines;
  }
};

enum class FilterAction : std::uint8_t { kPermit, kDeny };

/// One clause of an access list. Standard clauses match on source only;
/// extended clauses carry a protocol, destination, and optional port.
struct AclRule {
  FilterAction action = FilterAction::kPermit;
  bool extended = false;
  std::string protocol;  // "ip", "tcp", "udp", "icmp", "pim"; empty=standard
  bool any_source = false;
  ip::Prefix source;  // valid when !any_source
  bool any_destination = true;
  ip::Prefix destination;  // valid when !any_destination (extended only)
  std::optional<std::uint16_t> destination_port;  // "eq <port>"
  std::size_t line = 0;  // source line of the clause; not part of equality

  friend bool operator==(const AclRule& a, const AclRule& b) {
    return a.action == b.action && a.extended == b.extended &&
           a.protocol == b.protocol && a.any_source == b.any_source &&
           a.source == b.source && a.any_destination == b.any_destination &&
           a.destination == b.destination &&
           a.destination_port == b.destination_port;
  }
};

/// "access-list <id> ..." (numbered) or "ip access-list standard|extended
/// <name>" (named) — a list of clauses. `named` records which syntax the
/// list was written in; `extended_block` records the named-mode flavour.
struct AccessList {
  std::string id;  // "143" or a name like "MGMT-IN"
  bool named = false;
  bool extended_block = false;  // named-mode "extended" (vs "standard")
  std::vector<AclRule> rules;
  std::size_t line = 0;  // source line where the list first appears

  friend bool operator==(const AccessList& a, const AccessList& b) {
    return a.id == b.id && a.named == b.named &&
           a.extended_block == b.extended_block && a.rules == b.rules;
  }
};

/// One entry of an "ip prefix-list": sequence, action, prefix, and the
/// optional ge/le length bounds.
struct PrefixListEntry {
  std::uint32_t sequence = 5;
  FilterAction action = FilterAction::kPermit;
  ip::Prefix prefix;
  std::optional<int> ge;  // match lengths >= ge
  std::optional<int> le;  // match lengths <= le

  friend bool operator==(const PrefixListEntry&,
                         const PrefixListEntry&) = default;
};

struct PrefixList {
  std::string name;
  std::vector<PrefixListEntry> entries;

  friend bool operator==(const PrefixList&, const PrefixList&) = default;
};

/// "ip as-path access-list <id> permit|deny <regex>": matches on the BGP
/// AS-path attribute. The static analyses treat the regex as opaque text —
/// its presence is what matters for the §6.1 policy-style comparison
/// (AS-path-based vs address-based policies).
struct AsPathEntry {
  FilterAction action = FilterAction::kPermit;
  std::string regex;  // e.g. "^$", "_701_", "^65001(_.*)?$"

  friend bool operator==(const AsPathEntry&, const AsPathEntry&) = default;
};

struct AsPathAccessList {
  std::string id;
  std::vector<AsPathEntry> entries;

  friend bool operator==(const AsPathAccessList&,
                         const AsPathAccessList&) = default;
};

/// One numbered clause of a route-map.
struct RouteMapClause {
  FilterAction action = FilterAction::kPermit;
  std::uint32_t sequence = 10;
  std::vector<std::string> match_ip_address_acls;  // "match ip address N..."
  /// "match ip address prefix-list NAME..."
  std::vector<std::string> match_prefix_lists;
  /// "match as-path N..." — requires BGP attributes (§6.1).
  std::vector<std::string> match_as_paths;
  std::optional<std::uint32_t> match_tag;
  std::optional<std::uint32_t> set_tag;
  std::optional<std::uint32_t> set_metric;
  std::optional<std::uint32_t> set_local_preference;
  std::size_t line = 0;  // source line of the "route-map" head

  friend bool operator==(const RouteMapClause& a, const RouteMapClause& b) {
    return a.action == b.action && a.sequence == b.sequence &&
           a.match_ip_address_acls == b.match_ip_address_acls &&
           a.match_prefix_lists == b.match_prefix_lists &&
           a.match_as_paths == b.match_as_paths &&
           a.match_tag == b.match_tag && a.set_tag == b.set_tag &&
           a.set_metric == b.set_metric &&
           a.set_local_preference == b.set_local_preference;
  }
};

struct RouteMap {
  std::string name;
  std::vector<RouteMapClause> clauses;

  friend bool operator==(const RouteMap&, const RouteMap&) = default;
};

/// "network <addr> <wildcard> [area N]" under an IGP stanza, or
/// "network <addr> mask <netmask>" under BGP.
struct NetworkStatement {
  ip::Ipv4Address address;
  ip::Netmask mask;  // stored as a netmask; IGP text uses the wildcard form
  std::optional<std::uint32_t> area;  // OSPF only
  std::size_t line = 0;

  ip::Prefix prefix() const noexcept {
    return ip::Prefix(address, mask.length());
  }
  friend bool operator==(const NetworkStatement& a,
                         const NetworkStatement& b) {
    return a.address == b.address && a.mask == b.mask && a.area == b.area;
  }
};

/// Source of a "redistribute ..." command.
enum class RedistributeSource : std::uint8_t {
  kConnected,
  kStatic,
  kProtocol,
};

struct Redistribute {
  RedistributeSource source = RedistributeSource::kProtocol;
  RoutingProtocol protocol = RoutingProtocol::kOspf;  // when kProtocol
  std::optional<std::uint32_t> process_id;            // "redistribute ospf 64"
  std::optional<std::string> route_map;               // "match route-map X"
  std::optional<std::uint32_t> metric;
  std::optional<std::uint32_t> metric_type;  // OSPF "metric-type 1"
  bool subnets = false;                      // OSPF "subnets" keyword
  std::size_t line = 0;

  friend bool operator==(const Redistribute& a, const Redistribute& b) {
    return a.source == b.source && a.protocol == b.protocol &&
           a.process_id == b.process_id && a.route_map == b.route_map &&
           a.metric == b.metric && a.metric_type == b.metric_type &&
           a.subnets == b.subnets;
  }
};

/// "distribute-list <acl> in|out [<interface>]" under a router stanza.
struct DistributeList {
  std::string acl;
  bool inbound = true;
  std::optional<std::string> interface;

  friend bool operator==(const DistributeList&,
                         const DistributeList&) = default;
};

/// "neighbor <ip> ..." lines of a BGP stanza, merged per neighbor address.
struct BgpNeighbor {
  ip::Ipv4Address address;
  std::uint32_t remote_as = 0;
  std::optional<std::string> distribute_list_in;
  std::optional<std::string> distribute_list_out;
  std::optional<std::string> prefix_list_in;   // "neighbor X prefix-list N in"
  std::optional<std::string> prefix_list_out;
  std::optional<std::string> route_map_in;
  std::optional<std::string> route_map_out;
  std::optional<std::string> update_source;
  std::optional<std::string> description;
  bool next_hop_self = false;
  bool route_reflector_client = false;
  std::size_t line = 0;  // first "neighbor <ip> ..." line for this peer

  friend bool operator==(const BgpNeighbor& a, const BgpNeighbor& b) {
    return a.address == b.address && a.remote_as == b.remote_as &&
           a.distribute_list_in == b.distribute_list_in &&
           a.distribute_list_out == b.distribute_list_out &&
           a.prefix_list_in == b.prefix_list_in &&
           a.prefix_list_out == b.prefix_list_out &&
           a.route_map_in == b.route_map_in &&
           a.route_map_out == b.route_map_out &&
           a.update_source == b.update_source &&
           a.description == b.description &&
           a.next_hop_self == b.next_hop_self &&
           a.route_reflector_client == b.route_reflector_client;
  }
};

/// "aggregate-address A.B.C.D M.M.M.M [summary-only]" under BGP: originate
/// a summary when any contained route is present — the §3.1 enterprise
/// technique of crafting "a small number of key routes that summarize the
/// external routes".
struct AggregateAddress {
  ip::Ipv4Address address;
  ip::Netmask mask;
  bool summary_only = false;  // suppress the more-specific routes

  ip::Prefix prefix() const noexcept {
    return ip::Prefix(address, mask.length());
  }
  friend bool operator==(const AggregateAddress&,
                         const AggregateAddress&) = default;
};

/// One "router <protocol> [<id>]" stanza.
struct RouterStanza {
  RoutingProtocol protocol = RoutingProtocol::kOspf;
  /// OSPF/EIGRP/IGRP process id, or the local AS number for BGP. RIP has no
  /// id in IOS.
  std::optional<std::uint32_t> process_id;
  std::vector<NetworkStatement> networks;
  std::vector<AggregateAddress> aggregates;  // BGP only
  std::vector<Redistribute> redistributes;
  std::vector<DistributeList> distribute_lists;
  std::vector<BgpNeighbor> neighbors;  // BGP only
  std::optional<ip::Ipv4Address> router_id;
  std::vector<std::string> passive_interfaces;
  bool passive_default = false;
  std::optional<std::uint32_t> default_metric;
  bool synchronization = false;  // BGP; parsed for realism
  std::size_t line = 0;          // source line of the "router" command

  friend bool operator==(const RouterStanza& a, const RouterStanza& b) {
    return a.protocol == b.protocol && a.process_id == b.process_id &&
           a.networks == b.networks && a.aggregates == b.aggregates &&
           a.redistributes == b.redistributes &&
           a.distribute_lists == b.distribute_lists &&
           a.neighbors == b.neighbors && a.router_id == b.router_id &&
           a.passive_interfaces == b.passive_interfaces &&
           a.passive_default == b.passive_default &&
           a.default_metric == b.default_metric &&
           a.synchronization == b.synchronization;
  }
};

/// "ip route <dest> <mask> <next-hop>" at top level.
struct StaticRoute {
  ip::Ipv4Address destination;
  ip::Netmask mask;
  /// Next hop is either an IP address or an exit interface name.
  std::variant<ip::Ipv4Address, std::string> next_hop;
  std::optional<std::uint32_t> administrative_distance;
  std::size_t line = 0;

  ip::Prefix prefix() const noexcept {
    return ip::Prefix(destination, mask.length());
  }
  friend bool operator==(const StaticRoute& a, const StaticRoute& b) {
    return a.destination == b.destination && a.mask == b.mask &&
           a.next_hop == b.next_hop &&
           a.administrative_distance == b.administrative_distance;
  }
};

/// An operator intent declared in a config comment:
///
///   ! rd-intent deny  <src-prefix> <dst-prefix> [<protocol> [<port>]]
///   ! rd-intent allow <src-prefix> <dst-prefix> [<protocol> [<port>]]
///
/// "deny" asserts no packet in the region can flow end to end; "allow"
/// asserts every packet in it can. The default protocol "ip" means any
/// protocol; an absent port means any port (including portless packets).
/// The header-space engine checks these assertions symbolically (rule
/// RD052 and audit_network's intent section).
struct IntentDirective {
  bool expect_reachable = false;  // "allow" vs "deny"
  ip::Prefix source;
  ip::Prefix destination;
  std::string protocol = "ip";
  std::optional<std::uint16_t> port;
  std::size_t line = 0;  // comment line; not part of equality

  friend bool operator==(const IntentDirective& a, const IntentDirective& b) {
    return a.expect_reachable == b.expect_reachable && a.source == b.source &&
           a.destination == b.destination && a.protocol == b.protocol &&
           a.port == b.port;
  }
};

/// The complete parsed configuration of one router — the unit of analysis.
struct RouterConfig {
  std::string hostname;
  std::string source_file;  // provenance; empty when parsed from memory
  std::vector<InterfaceConfig> interfaces;
  std::vector<RouterStanza> router_stanzas;
  std::vector<AccessList> access_lists;
  std::vector<PrefixList> prefix_lists;
  std::vector<AsPathAccessList> as_path_lists;
  std::vector<RouteMap> route_maps;
  std::vector<StaticRoute> static_routes;
  /// Rule ids named in "! rdlint-disable <RDid>..." comments anywhere in the
  /// source text: design-rule findings for those rules are suppressed on
  /// this router. Sorted and deduplicated.
  std::vector<std::string> lint_suppressions;
  /// Intent assertions from "! rd-intent ..." comments, in source order.
  std::vector<IntentDirective> intents;
  /// Number of configuration command lines in the source text (comment and
  /// blank lines excluded) — the quantity plotted in the paper's Figure 4.
  std::size_t line_count = 0;

  const InterfaceConfig* find_interface(std::string_view name) const noexcept;
  const AccessList* find_access_list(std::string_view id) const noexcept;
  const PrefixList* find_prefix_list(std::string_view name) const noexcept;
  const AsPathAccessList* find_as_path_list(
      std::string_view id) const noexcept;
  const RouteMap* find_route_map(std::string_view name) const noexcept;
};

}  // namespace rd::config
