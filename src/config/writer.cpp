#include "config/writer.h"

#include <string>

namespace rd::config {
namespace {

void write_interface(const InterfaceConfig& itf, std::string& out) {
  out += "interface " + itf.name;
  if (itf.point_to_point) out += " point-to-point";
  out += '\n';
  if (itf.description) out += " description " + *itf.description + '\n';
  if (itf.bandwidth_kbps) {
    out += " bandwidth " + std::to_string(*itf.bandwidth_kbps) + '\n';
  }
  if (itf.address) {
    out += " ip address " + itf.address->address.to_string() + ' ' +
           itf.address->mask.to_string() + '\n';
  }
  for (const auto& secondary : itf.secondary_addresses) {
    out += " ip address " + secondary.address.to_string() + ' ' +
           secondary.mask.to_string() + " secondary\n";
  }
  if (itf.access_group_in) {
    out += " ip access-group " + *itf.access_group_in + " in\n";
  }
  if (itf.access_group_out) {
    out += " ip access-group " + *itf.access_group_out + " out\n";
  }
  if (itf.ospf_cost) {
    out += " ip ospf cost " + std::to_string(*itf.ospf_cost) + '\n';
  }
  if (itf.isis) out += " ip router isis\n";
  for (const auto& extra : itf.extra_lines) out += ' ' + extra + '\n';
  if (itf.shutdown) out += " shutdown\n";
  out += "!\n";
}

void write_redistribute(const Redistribute& redist, std::string& out) {
  out += " redistribute ";
  switch (redist.source) {
    case RedistributeSource::kConnected:
      out += "connected";
      break;
    case RedistributeSource::kStatic:
      out += "static";
      break;
    case RedistributeSource::kProtocol:
      out += to_keyword(redist.protocol);
      if (redist.process_id) out += ' ' + std::to_string(*redist.process_id);
      break;
  }
  if (redist.metric) out += " metric " + std::to_string(*redist.metric);
  if (redist.metric_type) {
    out += " metric-type " + std::to_string(*redist.metric_type);
  }
  if (redist.subnets) out += " subnets";
  if (redist.route_map) out += " route-map " + *redist.route_map;
  out += '\n';
}

void write_network(const RouterStanza& stanza, const NetworkStatement& ns,
                   std::string& out) {
  out += " network " + ns.address.to_string();
  if (stanza.protocol == RoutingProtocol::kBgp) {
    out += " mask " + ns.mask.to_string();
  } else {
    out += ' ' + ns.mask.to_wildcard_string();
    if (ns.area) out += " area " + std::to_string(*ns.area);
  }
  out += '\n';
}

void write_neighbor(const BgpNeighbor& nbr, std::string& out) {
  const std::string head = " neighbor " + nbr.address.to_string() + ' ';
  out += head + "remote-as " + std::to_string(nbr.remote_as) + '\n';
  if (nbr.description) out += head + "description " + *nbr.description + '\n';
  if (nbr.update_source) {
    out += head + "update-source " + *nbr.update_source + '\n';
  }
  if (nbr.next_hop_self) out += head + "next-hop-self\n";
  if (nbr.route_reflector_client) out += head + "route-reflector-client\n";
  if (nbr.distribute_list_in) {
    out += head + "distribute-list " + *nbr.distribute_list_in + " in\n";
  }
  if (nbr.distribute_list_out) {
    out += head + "distribute-list " + *nbr.distribute_list_out + " out\n";
  }
  if (nbr.prefix_list_in) {
    out += head + "prefix-list " + *nbr.prefix_list_in + " in\n";
  }
  if (nbr.prefix_list_out) {
    out += head + "prefix-list " + *nbr.prefix_list_out + " out\n";
  }
  if (nbr.route_map_in) {
    out += head + "route-map " + *nbr.route_map_in + " in\n";
  }
  if (nbr.route_map_out) {
    out += head + "route-map " + *nbr.route_map_out + " out\n";
  }
}

void write_router(const RouterStanza& stanza, std::string& out) {
  out += "router ";
  out += to_keyword(stanza.protocol);
  if (stanza.process_id) out += ' ' + std::to_string(*stanza.process_id);
  out += '\n';
  if (stanza.router_id) {
    out += " router-id " + stanza.router_id->to_string() + '\n';
  }
  for (const auto& redist : stanza.redistributes) {
    write_redistribute(redist, out);
  }
  for (const auto& ns : stanza.networks) write_network(stanza, ns, out);
  for (const auto& aggregate : stanza.aggregates) {
    out += " aggregate-address " + aggregate.address.to_string() + ' ' +
           aggregate.mask.to_string();
    if (aggregate.summary_only) out += " summary-only";
    out += '\n';
  }
  if (stanza.passive_default) out += " passive-interface default\n";
  for (const auto& itf : stanza.passive_interfaces) {
    out += " passive-interface " + itf + '\n';
  }
  for (const auto& nbr : stanza.neighbors) write_neighbor(nbr, out);
  for (const auto& dl : stanza.distribute_lists) {
    out += " distribute-list " + dl.acl + (dl.inbound ? " in" : " out");
    if (dl.interface) out += ' ' + *dl.interface;
    out += '\n';
  }
  if (stanza.default_metric) {
    out += " default-metric " + std::to_string(*stanza.default_metric) + '\n';
  }
  if (stanza.protocol == RoutingProtocol::kBgp && !stanza.synchronization) {
    out += " no synchronization\n";
  }
  out += "!\n";
}

std::string addr_spec(bool any, const ip::Prefix& prefix) {
  if (any) return "any";
  if (prefix.length() == 32) return "host " + prefix.network().to_string();
  return prefix.network().to_string() + ' ' +
         prefix.mask().to_wildcard_string();
}

void write_acl_rule_body(const AclRule& rule, std::string& out) {
  out += rule.action == FilterAction::kPermit ? "permit" : "deny";
  if (rule.extended) {
    out += ' ' + rule.protocol;
    out += ' ' + addr_spec(rule.any_source, rule.source);
    out += ' ' + addr_spec(rule.any_destination, rule.destination);
    if (rule.destination_port) {
      out += " eq " + std::to_string(*rule.destination_port);
    }
  } else {
    out += ' ' + addr_spec(rule.any_source, rule.source);
  }
  out += '\n';
}

void write_access_list(const AccessList& acl, std::string& out) {
  if (acl.named) {
    out += "ip access-list ";
    out += acl.extended_block ? "extended " : "standard ";
    out += acl.id + '\n';
    for (const auto& rule : acl.rules) {
      out += ' ';
      write_acl_rule_body(rule, out);
    }
    out += "!\n";
    return;
  }
  for (const auto& rule : acl.rules) {
    out += "access-list " + acl.id + ' ';
    write_acl_rule_body(rule, out);
  }
}

void write_prefix_list(const PrefixList& pl, std::string& out) {
  for (const auto& entry : pl.entries) {
    out += "ip prefix-list " + pl.name + " seq " +
           std::to_string(entry.sequence) +
           (entry.action == FilterAction::kPermit ? " permit " : " deny ") +
           entry.prefix.to_string();
    if (entry.ge) out += " ge " + std::to_string(*entry.ge);
    if (entry.le) out += " le " + std::to_string(*entry.le);
    out += '\n';
  }
}

void write_route_map(const RouteMap& rm, std::string& out) {
  for (const auto& clause : rm.clauses) {
    out += "route-map " + rm.name +
           (clause.action == FilterAction::kPermit ? " permit " : " deny ") +
           std::to_string(clause.sequence) + '\n';
    if (!clause.match_ip_address_acls.empty()) {
      out += " match ip address";
      for (const auto& acl : clause.match_ip_address_acls) out += ' ' + acl;
      out += '\n';
    }
    if (!clause.match_prefix_lists.empty()) {
      out += " match ip address prefix-list";
      for (const auto& pl : clause.match_prefix_lists) out += ' ' + pl;
      out += '\n';
    }
    if (!clause.match_as_paths.empty()) {
      out += " match as-path";
      for (const auto& ap : clause.match_as_paths) out += ' ' + ap;
      out += '\n';
    }
    if (clause.match_tag) {
      out += " match tag " + std::to_string(*clause.match_tag) + '\n';
    }
    if (clause.set_tag) {
      out += " set tag " + std::to_string(*clause.set_tag) + '\n';
    }
    if (clause.set_metric) {
      out += " set metric " + std::to_string(*clause.set_metric) + '\n';
    }
    if (clause.set_local_preference) {
      out += " set local-preference " +
             std::to_string(*clause.set_local_preference) + '\n';
    }
  }
}

void write_static_route(const StaticRoute& route, std::string& out) {
  out += "ip route " + route.destination.to_string() + ' ' +
         route.mask.to_string() + ' ';
  if (const auto* nh = std::get_if<ip::Ipv4Address>(&route.next_hop)) {
    out += nh->to_string();
  } else {
    out += std::get<std::string>(route.next_hop);
  }
  if (route.administrative_distance) {
    out += ' ' + std::to_string(*route.administrative_distance);
  }
  out += '\n';
}

}  // namespace

std::string write_config(const RouterConfig& config) {
  std::string out;
  out.reserve(4096);
  // Standard IOS housekeeping preamble. The parser recognizes these as
  // benign and skips them; they are part of what Figure 4's line counts
  // measure in real configurations.
  out +=
      "version 12.2\n"
      "service timestamps debug uptime\n"
      "service timestamps log uptime\n"
      "service password-encryption\n"
      "!\n";
  out += "hostname " + config.hostname + "\n!\n";
  if (!config.lint_suppressions.empty()) {
    out += "! rdlint-disable";
    for (const auto& id : config.lint_suppressions) out += ' ' + id;
    out += "\n!\n";
  }
  if (!config.intents.empty()) {
    for (const auto& intent : config.intents) {
      out += "! rd-intent ";
      out += intent.expect_reachable ? "allow " : "deny ";
      out += intent.source.to_string() + ' ' + intent.destination.to_string();
      if (intent.protocol != "ip" || intent.port) {
        out += ' ' + intent.protocol;
      }
      if (intent.port) out += ' ' + std::to_string(*intent.port);
      out += '\n';
    }
    out += "!\n";
  }
  out +=
      "boot system flash\n"
      "enable secret 5 $1$ yJxd3pqT3BrJ\n"
      "no ip domain-lookup\n"
      "ip classless\n"
      "ip subnet-zero\n"
      "!\n";
  for (const auto& itf : config.interfaces) write_interface(itf, out);
  for (const auto& stanza : config.router_stanzas) write_router(stanza, out);
  for (const auto& acl : config.access_lists) write_access_list(acl, out);
  if (!config.access_lists.empty()) out += "!\n";
  for (const auto& pl : config.prefix_lists) write_prefix_list(pl, out);
  if (!config.prefix_lists.empty()) out += "!\n";
  for (const auto& ap : config.as_path_lists) {
    for (const auto& entry : ap.entries) {
      out += "ip as-path access-list " + ap.id +
             (entry.action == FilterAction::kPermit ? " permit " : " deny ") +
             entry.regex + '\n';
    }
  }
  if (!config.as_path_lists.empty()) out += "!\n";
  for (const auto& rm : config.route_maps) write_route_map(rm, out);
  if (!config.route_maps.empty()) out += "!\n";
  for (const auto& route : config.static_routes) {
    write_static_route(route, out);
  }
  out +=
      "!\n"
      "snmp-server community public RO\n"
      "snmp-server location unknown\n"
      "!\n"
      "line con 0\n"
      " exec-timeout 5 0\n"
      "line aux 0\n"
      "line vty 0 4\n"
      " password 7 striVb2qkWdy\n"
      " login\n"
      "!\n";
  out += "end\n";
  return out;
}

}  // namespace rd::config
