#include "config/ast.h"

#include "util/strings.h"

namespace rd::config {

std::string_view to_keyword(RoutingProtocol protocol) noexcept {
  switch (protocol) {
    case RoutingProtocol::kOspf:
      return "ospf";
    case RoutingProtocol::kEigrp:
      return "eigrp";
    case RoutingProtocol::kIgrp:
      return "igrp";
    case RoutingProtocol::kRip:
      return "rip";
    case RoutingProtocol::kBgp:
      return "bgp";
    case RoutingProtocol::kIsis:
      return "isis";
  }
  return "unknown";
}

std::optional<RoutingProtocol> protocol_from_keyword(
    std::string_view keyword) noexcept {
  if (util::iequals(keyword, "ospf")) return RoutingProtocol::kOspf;
  if (util::iequals(keyword, "eigrp")) return RoutingProtocol::kEigrp;
  if (util::iequals(keyword, "igrp")) return RoutingProtocol::kIgrp;
  if (util::iequals(keyword, "rip")) return RoutingProtocol::kRip;
  if (util::iequals(keyword, "bgp")) return RoutingProtocol::kBgp;
  if (util::iequals(keyword, "isis") || util::iequals(keyword, "is-is")) {
    return RoutingProtocol::kIsis;
  }
  return std::nullopt;
}

bool is_conventional_igp(RoutingProtocol protocol) noexcept {
  return protocol != RoutingProtocol::kBgp;
}

std::string InterfaceConfig::hardware_type() const {
  // The hardware type is the leading alphabetic run of the interface name:
  // "Serial1/0.5" -> "Serial", "FastEthernet0/1" -> "FastEthernet".
  std::size_t end = 0;
  while (end < name.size() &&
         ((name[end] >= 'a' && name[end] <= 'z') ||
          (name[end] >= 'A' && name[end] <= 'Z') || name[end] == '-')) {
    ++end;
  }
  return name.substr(0, end);
}

const InterfaceConfig* RouterConfig::find_interface(
    std::string_view name) const noexcept {
  for (const auto& itf : interfaces) {
    if (itf.name == name) return &itf;
  }
  return nullptr;
}

const AccessList* RouterConfig::find_access_list(
    std::string_view id) const noexcept {
  for (const auto& acl : access_lists) {
    if (acl.id == id) return &acl;
  }
  return nullptr;
}

const PrefixList* RouterConfig::find_prefix_list(
    std::string_view name) const noexcept {
  for (const auto& pl : prefix_lists) {
    if (pl.name == name) return &pl;
  }
  return nullptr;
}

const AsPathAccessList* RouterConfig::find_as_path_list(
    std::string_view id) const noexcept {
  for (const auto& list : as_path_lists) {
    if (list.id == id) return &list;
  }
  return nullptr;
}

const RouteMap* RouterConfig::find_route_map(
    std::string_view name) const noexcept {
  for (const auto& rm : route_maps) {
    if (rm.name == name) return &rm;
  }
  return nullptr;
}

}  // namespace rd::config
