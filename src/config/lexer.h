#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

namespace rd::config {

/// One command line of an IOS configuration, tokenized.
///
/// IOS configuration is line-oriented: top-level commands start in column 0
/// and sub-mode commands (interface attributes, router-stanza attributes) are
/// indented by one space. The lexer preserves that structure; the parser uses
/// it to delimit blocks.
struct Line {
  std::size_t number = 0;  // 1-based line number in the source text
  int indent = 0;          // count of leading spaces
  std::string_view raw;    // trimmed command text
  /// Whitespace-split fields — a window into the owning Lexed's flat token
  /// array, not a per-line allocation.
  std::span<const std::string_view> tokens;
};

/// A tokenized configuration. All lines' tokens live in one flat array
/// (structure-of-arrays: a fleet-scale parse used to make one vector
/// allocation per command line, dominating lexer time and fragmenting the
/// heap), and each Line::tokens spans its slice. Move-safe: spans are
/// rebuilt against the moved storage.
struct Lexed {
  std::vector<Line> lines;
  std::vector<std::string_view> token_storage;

  Lexed() = default;
  Lexed(Lexed&& other) noexcept { *this = std::move(other); }
  Lexed& operator=(Lexed&& other) noexcept;
  Lexed(const Lexed&) = delete;
  Lexed& operator=(const Lexed&) = delete;
};

/// Tokenize a configuration text. Comment lines (leading '!' possibly after
/// whitespace) and blank lines are dropped; everything else becomes a Line.
/// Views point into `text`, which must outlive the result.
Lexed lex(std::string_view text);

/// Count configuration command lines (what the paper's Figure 4 measures):
/// all non-blank, non-comment lines.
std::size_t count_command_lines(std::string_view text);

}  // namespace rd::config
