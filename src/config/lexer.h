#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace rd::config {

/// One command line of an IOS configuration, tokenized.
///
/// IOS configuration is line-oriented: top-level commands start in column 0
/// and sub-mode commands (interface attributes, router-stanza attributes) are
/// indented by one space. The lexer preserves that structure; the parser uses
/// it to delimit blocks.
struct Line {
  std::size_t number = 0;  // 1-based line number in the source text
  int indent = 0;          // count of leading spaces
  std::string_view raw;    // trimmed command text
  std::vector<std::string_view> tokens;  // whitespace-split fields
};

/// Tokenize a configuration text. Comment lines (leading '!' possibly after
/// whitespace) and blank lines are dropped; everything else becomes a Line.
/// Views point into `text`, which must outlive the result.
std::vector<Line> lex(std::string_view text);

/// Count configuration command lines (what the paper's Figure 4 measures):
/// all non-blank, non-comment lines.
std::size_t count_command_lines(std::string_view text);

}  // namespace rd::config
