#include "config/serialize.h"

#include <cstring>

namespace rd::config {
namespace {

// --- Writer -----------------------------------------------------------------

class Writer {
 public:
  explicit Writer(std::string& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void size(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }
  void addr(ip::Ipv4Address a) { u32(a.value()); }
  void mask(ip::Netmask m) { u8(static_cast<std::uint8_t>(m.length())); }
  void prefix(const ip::Prefix& p) {
    u32(p.network().value());
    u8(static_cast<std::uint8_t>(p.length()));
  }

  template <typename T, typename Fn>
  void opt(const std::optional<T>& v, Fn&& write_value) {
    boolean(v.has_value());
    if (v) write_value(*v);
  }
  void opt_u16(const std::optional<std::uint16_t>& v) {
    opt(v, [this](std::uint16_t x) { u16(x); });
  }
  void opt_u32(const std::optional<std::uint32_t>& v) {
    opt(v, [this](std::uint32_t x) { u32(x); });
  }
  void opt_int(const std::optional<int>& v) {
    opt(v, [this](int x) { u32(static_cast<std::uint32_t>(x)); });
  }
  void opt_str(const std::optional<std::string>& v) {
    opt(v, [this](const std::string& x) { str(x); });
  }
  void opt_addr(const std::optional<ip::Ipv4Address>& v) {
    opt(v, [this](ip::Ipv4Address x) { addr(x); });
  }

  template <typename T, typename Fn>
  void vec(const std::vector<T>& items, Fn&& write_item) {
    u32(static_cast<std::uint32_t>(items.size()));
    for (const auto& item : items) write_item(item);
  }
  void str_vec(const std::vector<std::string>& items) {
    vec(items, [this](const std::string& s) { str(s); });
  }

 private:
  std::string& out_;
};

// --- Reader -----------------------------------------------------------------

/// Bounds-checked cursor over the payload. Every accessor returns false on
/// truncation or an out-of-range tag; decode_parse_result propagates the
/// first failure as nullopt. Sizes are additionally sanity-capped against
/// the remaining byte count so a corrupt length cannot drive a
/// multi-gigabyte reserve.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t& v) {
    if (pos_ >= data_.size()) return false;
    v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }
  bool u16(std::uint16_t& v) {
    std::uint8_t lo = 0, hi = 0;
    if (!u8(lo) || !u8(hi)) return false;
    v = static_cast<std::uint16_t>(lo | (std::uint16_t{hi} << 8));
    return true;
  }
  bool u32(std::uint32_t& v) {
    std::uint16_t lo = 0, hi = 0;
    if (!u16(lo) || !u16(hi)) return false;
    v = lo | (std::uint32_t{hi} << 16);
    return true;
  }
  bool u64(std::uint64_t& v) {
    std::uint32_t lo = 0, hi = 0;
    if (!u32(lo) || !u32(hi)) return false;
    v = lo | (std::uint64_t{hi} << 32);
    return true;
  }
  bool boolean(bool& v) {
    std::uint8_t b = 0;
    if (!u8(b) || b > 1) return false;
    v = b != 0;
    return true;
  }
  bool size(std::size_t& v) {
    std::uint64_t x = 0;
    if (!u64(x)) return false;
    v = static_cast<std::size_t>(x);
    return true;
  }
  bool str(std::string& s) {
    std::uint32_t n = 0;
    if (!u32(n) || n > data_.size() - pos_) return false;
    s.assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool addr(ip::Ipv4Address& a) {
    std::uint32_t v = 0;
    if (!u32(v)) return false;
    a = ip::Ipv4Address(v);
    return true;
  }
  bool mask(ip::Netmask& m) {
    std::uint8_t len = 0;
    if (!u8(len) || len > 32) return false;
    m = ip::Netmask::from_length(len);
    return true;
  }
  bool prefix(ip::Prefix& p) {
    std::uint32_t net = 0;
    std::uint8_t len = 0;
    if (!u32(net) || !u8(len) || len > 32) return false;
    // Reject payloads whose stored network has host bits below the mask:
    // a genuine encode always writes the canonical form.
    const ip::Prefix candidate(ip::Ipv4Address(net), len);
    if (candidate.network().value() != net) return false;
    p = candidate;
    return true;
  }

  template <typename T, typename Fn>
  bool opt(std::optional<T>& v, Fn&& read_value) {
    bool present = false;
    if (!boolean(present)) return false;
    if (!present) {
      v.reset();
      return true;
    }
    T value{};
    if (!read_value(value)) return false;
    v = std::move(value);
    return true;
  }
  bool opt_u16(std::optional<std::uint16_t>& v) {
    return opt(v, [this](std::uint16_t& x) { return u16(x); });
  }
  bool opt_u32(std::optional<std::uint32_t>& v) {
    return opt(v, [this](std::uint32_t& x) { return u32(x); });
  }
  bool opt_int(std::optional<int>& v) {
    return opt(v, [this](int& x) {
      std::uint32_t raw = 0;
      if (!u32(raw)) return false;
      x = static_cast<int>(raw);
      return true;
    });
  }
  bool opt_str(std::optional<std::string>& v) {
    return opt(v, [this](std::string& x) { return str(x); });
  }
  bool opt_addr(std::optional<ip::Ipv4Address>& v) {
    return opt(v, [this](ip::Ipv4Address& x) { return addr(x); });
  }

  template <typename T, typename Fn>
  bool vec(std::vector<T>& items, Fn&& read_item) {
    std::uint32_t n = 0;
    if (!u32(n)) return false;
    // Every element costs at least one encoded byte; a count beyond the
    // remaining bytes is structurally impossible.
    if (n > data_.size() - pos_) return false;
    items.clear();
    items.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      T item{};
      if (!read_item(item)) return false;
      items.push_back(std::move(item));
    }
    return true;
  }
  bool str_vec(std::vector<std::string>& items) {
    return vec(items, [this](std::string& s) { return str(s); });
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- Per-node encode/decode -------------------------------------------------

void encode_interface_address(Writer& w, const InterfaceAddress& a) {
  w.addr(a.address);
  w.mask(a.mask);
}
bool decode_interface_address(Reader& r, InterfaceAddress& a) {
  return r.addr(a.address) && r.mask(a.mask);
}

void encode_interface(Writer& w, const InterfaceConfig& itf) {
  w.str(itf.name);
  w.opt(itf.address,
        [&w](const InterfaceAddress& a) { encode_interface_address(w, a); });
  w.vec(itf.secondary_addresses, [&w](const InterfaceAddress& a) {
    encode_interface_address(w, a);
  });
  w.opt_str(itf.description);
  w.opt_str(itf.access_group_in);
  w.opt_str(itf.access_group_out);
  w.boolean(itf.point_to_point);
  w.boolean(itf.shutdown);
  w.opt_u32(itf.bandwidth_kbps);
  w.opt_u32(itf.ospf_cost);
  w.boolean(itf.isis);
  w.str_vec(itf.extra_lines);
  w.size(itf.line);
}
bool decode_interface(Reader& r, InterfaceConfig& itf) {
  return r.str(itf.name) &&
         r.opt(itf.address,
               [&r](InterfaceAddress& a) {
                 return decode_interface_address(r, a);
               }) &&
         r.vec(itf.secondary_addresses,
               [&r](InterfaceAddress& a) {
                 return decode_interface_address(r, a);
               }) &&
         r.opt_str(itf.description) && r.opt_str(itf.access_group_in) &&
         r.opt_str(itf.access_group_out) && r.boolean(itf.point_to_point) &&
         r.boolean(itf.shutdown) && r.opt_u32(itf.bandwidth_kbps) &&
         r.opt_u32(itf.ospf_cost) && r.boolean(itf.isis) &&
         r.str_vec(itf.extra_lines) && r.size(itf.line);
}

void encode_acl_rule(Writer& w, const AclRule& rule) {
  w.u8(static_cast<std::uint8_t>(rule.action));
  w.boolean(rule.extended);
  w.str(rule.protocol);
  w.boolean(rule.any_source);
  w.prefix(rule.source);
  w.boolean(rule.any_destination);
  w.prefix(rule.destination);
  w.opt_u16(rule.destination_port);
  w.size(rule.line);
}
bool decode_acl_rule(Reader& r, AclRule& rule) {
  std::uint8_t action = 0;
  if (!r.u8(action) || action > 1) return false;
  rule.action = static_cast<FilterAction>(action);
  return r.boolean(rule.extended) && r.str(rule.protocol) &&
         r.boolean(rule.any_source) && r.prefix(rule.source) &&
         r.boolean(rule.any_destination) && r.prefix(rule.destination) &&
         r.opt_u16(rule.destination_port) && r.size(rule.line);
}

void encode_access_list(Writer& w, const AccessList& acl) {
  w.str(acl.id);
  w.boolean(acl.named);
  w.boolean(acl.extended_block);
  w.vec(acl.rules, [&w](const AclRule& rule) { encode_acl_rule(w, rule); });
  w.size(acl.line);
}
bool decode_access_list(Reader& r, AccessList& acl) {
  return r.str(acl.id) && r.boolean(acl.named) &&
         r.boolean(acl.extended_block) &&
         r.vec(acl.rules,
               [&r](AclRule& rule) { return decode_acl_rule(r, rule); }) &&
         r.size(acl.line);
}

void encode_prefix_list(Writer& w, const PrefixList& pl) {
  w.str(pl.name);
  w.vec(pl.entries, [&w](const PrefixListEntry& e) {
    w.u32(e.sequence);
    w.u8(static_cast<std::uint8_t>(e.action));
    w.prefix(e.prefix);
    w.opt_int(e.ge);
    w.opt_int(e.le);
  });
}
bool decode_prefix_list(Reader& r, PrefixList& pl) {
  return r.str(pl.name) &&
         r.vec(pl.entries, [&r](PrefixListEntry& e) {
           std::uint8_t action = 0;
           if (!r.u32(e.sequence) || !r.u8(action) || action > 1) return false;
           e.action = static_cast<FilterAction>(action);
           return r.prefix(e.prefix) && r.opt_int(e.ge) && r.opt_int(e.le);
         });
}

void encode_as_path_list(Writer& w, const AsPathAccessList& list) {
  w.str(list.id);
  w.vec(list.entries, [&w](const AsPathEntry& e) {
    w.u8(static_cast<std::uint8_t>(e.action));
    w.str(e.regex);
  });
}
bool decode_as_path_list(Reader& r, AsPathAccessList& list) {
  return r.str(list.id) && r.vec(list.entries, [&r](AsPathEntry& e) {
    std::uint8_t action = 0;
    if (!r.u8(action) || action > 1) return false;
    e.action = static_cast<FilterAction>(action);
    return r.str(e.regex);
  });
}

void encode_route_map(Writer& w, const RouteMap& map) {
  w.str(map.name);
  w.vec(map.clauses, [&w](const RouteMapClause& c) {
    w.u8(static_cast<std::uint8_t>(c.action));
    w.u32(c.sequence);
    w.str_vec(c.match_ip_address_acls);
    w.str_vec(c.match_prefix_lists);
    w.str_vec(c.match_as_paths);
    w.opt_u32(c.match_tag);
    w.opt_u32(c.set_tag);
    w.opt_u32(c.set_metric);
    w.opt_u32(c.set_local_preference);
    w.size(c.line);
  });
}
bool decode_route_map(Reader& r, RouteMap& map) {
  return r.str(map.name) && r.vec(map.clauses, [&r](RouteMapClause& c) {
    std::uint8_t action = 0;
    if (!r.u8(action) || action > 1) return false;
    c.action = static_cast<FilterAction>(action);
    return r.u32(c.sequence) && r.str_vec(c.match_ip_address_acls) &&
           r.str_vec(c.match_prefix_lists) && r.str_vec(c.match_as_paths) &&
           r.opt_u32(c.match_tag) && r.opt_u32(c.set_tag) &&
           r.opt_u32(c.set_metric) && r.opt_u32(c.set_local_preference) &&
           r.size(c.line);
  });
}

void encode_router_stanza(Writer& w, const RouterStanza& s) {
  w.u8(static_cast<std::uint8_t>(s.protocol));
  w.opt_u32(s.process_id);
  w.vec(s.networks, [&w](const NetworkStatement& n) {
    w.addr(n.address);
    w.mask(n.mask);
    w.opt_u32(n.area);
    w.size(n.line);
  });
  w.vec(s.aggregates, [&w](const AggregateAddress& a) {
    w.addr(a.address);
    w.mask(a.mask);
    w.boolean(a.summary_only);
  });
  w.vec(s.redistributes, [&w](const Redistribute& red) {
    w.u8(static_cast<std::uint8_t>(red.source));
    w.u8(static_cast<std::uint8_t>(red.protocol));
    w.opt_u32(red.process_id);
    w.opt_str(red.route_map);
    w.opt_u32(red.metric);
    w.opt_u32(red.metric_type);
    w.boolean(red.subnets);
    w.size(red.line);
  });
  w.vec(s.distribute_lists, [&w](const DistributeList& d) {
    w.str(d.acl);
    w.boolean(d.inbound);
    w.opt_str(d.interface);
  });
  w.vec(s.neighbors, [&w](const BgpNeighbor& n) {
    w.addr(n.address);
    w.u32(n.remote_as);
    w.opt_str(n.distribute_list_in);
    w.opt_str(n.distribute_list_out);
    w.opt_str(n.prefix_list_in);
    w.opt_str(n.prefix_list_out);
    w.opt_str(n.route_map_in);
    w.opt_str(n.route_map_out);
    w.opt_str(n.update_source);
    w.opt_str(n.description);
    w.boolean(n.next_hop_self);
    w.boolean(n.route_reflector_client);
    w.size(n.line);
  });
  w.opt_addr(s.router_id);
  w.str_vec(s.passive_interfaces);
  w.boolean(s.passive_default);
  w.opt_u32(s.default_metric);
  w.boolean(s.synchronization);
  w.size(s.line);
}
bool decode_router_stanza(Reader& r, RouterStanza& s) {
  std::uint8_t protocol = 0;
  if (!r.u8(protocol) ||
      protocol > static_cast<std::uint8_t>(RoutingProtocol::kIsis)) {
    return false;
  }
  s.protocol = static_cast<RoutingProtocol>(protocol);
  if (!r.opt_u32(s.process_id)) return false;
  if (!r.vec(s.networks, [&r](NetworkStatement& n) {
        return r.addr(n.address) && r.mask(n.mask) && r.opt_u32(n.area) &&
               r.size(n.line);
      })) {
    return false;
  }
  if (!r.vec(s.aggregates, [&r](AggregateAddress& a) {
        return r.addr(a.address) && r.mask(a.mask) &&
               r.boolean(a.summary_only);
      })) {
    return false;
  }
  if (!r.vec(s.redistributes, [&r](Redistribute& red) {
        std::uint8_t source = 0, protocol_byte = 0;
        if (!r.u8(source) ||
            source > static_cast<std::uint8_t>(RedistributeSource::kProtocol) ||
            !r.u8(protocol_byte) ||
            protocol_byte > static_cast<std::uint8_t>(RoutingProtocol::kIsis)) {
          return false;
        }
        red.source = static_cast<RedistributeSource>(source);
        red.protocol = static_cast<RoutingProtocol>(protocol_byte);
        return r.opt_u32(red.process_id) && r.opt_str(red.route_map) &&
               r.opt_u32(red.metric) && r.opt_u32(red.metric_type) &&
               r.boolean(red.subnets) && r.size(red.line);
      })) {
    return false;
  }
  if (!r.vec(s.distribute_lists, [&r](DistributeList& d) {
        return r.str(d.acl) && r.boolean(d.inbound) && r.opt_str(d.interface);
      })) {
    return false;
  }
  if (!r.vec(s.neighbors, [&r](BgpNeighbor& n) {
        return r.addr(n.address) && r.u32(n.remote_as) &&
               r.opt_str(n.distribute_list_in) &&
               r.opt_str(n.distribute_list_out) &&
               r.opt_str(n.prefix_list_in) && r.opt_str(n.prefix_list_out) &&
               r.opt_str(n.route_map_in) && r.opt_str(n.route_map_out) &&
               r.opt_str(n.update_source) && r.opt_str(n.description) &&
               r.boolean(n.next_hop_self) &&
               r.boolean(n.route_reflector_client) && r.size(n.line);
      })) {
    return false;
  }
  return r.opt_addr(s.router_id) && r.str_vec(s.passive_interfaces) &&
         r.boolean(s.passive_default) && r.opt_u32(s.default_metric) &&
         r.boolean(s.synchronization) && r.size(s.line);
}

void encode_static_route(Writer& w, const StaticRoute& route) {
  w.addr(route.destination);
  w.mask(route.mask);
  if (std::holds_alternative<ip::Ipv4Address>(route.next_hop)) {
    w.u8(0);
    w.addr(std::get<ip::Ipv4Address>(route.next_hop));
  } else {
    w.u8(1);
    w.str(std::get<std::string>(route.next_hop));
  }
  w.opt_u32(route.administrative_distance);
  w.size(route.line);
}
bool decode_static_route(Reader& r, StaticRoute& route) {
  if (!r.addr(route.destination) || !r.mask(route.mask)) return false;
  std::uint8_t tag = 0;
  if (!r.u8(tag) || tag > 1) return false;
  if (tag == 0) {
    ip::Ipv4Address hop;
    if (!r.addr(hop)) return false;
    route.next_hop = hop;
  } else {
    std::string hop;
    if (!r.str(hop)) return false;
    route.next_hop = std::move(hop);
  }
  return r.opt_u32(route.administrative_distance) && r.size(route.line);
}

void encode_intent(Writer& w, const IntentDirective& intent) {
  w.boolean(intent.expect_reachable);
  w.prefix(intent.source);
  w.prefix(intent.destination);
  w.str(intent.protocol);
  w.opt_u16(intent.port);
  w.size(intent.line);
}
bool decode_intent(Reader& r, IntentDirective& intent) {
  return r.boolean(intent.expect_reachable) && r.prefix(intent.source) &&
         r.prefix(intent.destination) && r.str(intent.protocol) &&
         r.opt_u16(intent.port) && r.size(intent.line);
}

}  // namespace

std::string encode_parse_result(const ParseResult& result) {
  std::string out;
  Writer w(out);
  w.u32(kParseFormatVersion);
  const RouterConfig& c = result.config;
  w.str(c.hostname);
  w.str(c.source_file);
  w.vec(c.interfaces,
        [&w](const InterfaceConfig& itf) { encode_interface(w, itf); });
  w.vec(c.router_stanzas,
        [&w](const RouterStanza& s) { encode_router_stanza(w, s); });
  w.vec(c.access_lists,
        [&w](const AccessList& acl) { encode_access_list(w, acl); });
  w.vec(c.prefix_lists,
        [&w](const PrefixList& pl) { encode_prefix_list(w, pl); });
  w.vec(c.as_path_lists,
        [&w](const AsPathAccessList& l) { encode_as_path_list(w, l); });
  w.vec(c.route_maps, [&w](const RouteMap& m) { encode_route_map(w, m); });
  w.vec(c.static_routes,
        [&w](const StaticRoute& route) { encode_static_route(w, route); });
  w.str_vec(c.lint_suppressions);
  w.vec(c.intents,
        [&w](const IntentDirective& intent) { encode_intent(w, intent); });
  w.size(c.line_count);
  w.vec(result.diagnostics, [&w](const ParseDiagnostic& d) {
    w.size(d.line);
    w.str(d.message);
  });
  return out;
}

std::optional<ParseResult> decode_parse_result(std::string_view payload) {
  Reader r(payload);
  std::uint32_t version = 0;
  if (!r.u32(version) || version != kParseFormatVersion) return std::nullopt;
  ParseResult result;
  RouterConfig& c = result.config;
  const bool ok =
      r.str(c.hostname) && r.str(c.source_file) &&
      r.vec(c.interfaces,
            [&r](InterfaceConfig& itf) { return decode_interface(r, itf); }) &&
      r.vec(c.router_stanzas,
            [&r](RouterStanza& s) { return decode_router_stanza(r, s); }) &&
      r.vec(c.access_lists,
            [&r](AccessList& acl) { return decode_access_list(r, acl); }) &&
      r.vec(c.prefix_lists,
            [&r](PrefixList& pl) { return decode_prefix_list(r, pl); }) &&
      r.vec(c.as_path_lists,
            [&r](AsPathAccessList& l) { return decode_as_path_list(r, l); }) &&
      r.vec(c.route_maps,
            [&r](RouteMap& m) { return decode_route_map(r, m); }) &&
      r.vec(c.static_routes,
            [&r](StaticRoute& route) {
              return decode_static_route(r, route);
            }) &&
      r.str_vec(c.lint_suppressions) &&
      r.vec(c.intents,
            [&r](IntentDirective& intent) { return decode_intent(r, intent); }) &&
      r.size(c.line_count) &&
      r.vec(result.diagnostics, [&r](ParseDiagnostic& d) {
        return r.size(d.line) && r.str(d.message);
      });
  if (!ok || !r.exhausted()) return std::nullopt;
  return result;
}

}  // namespace rd::config
