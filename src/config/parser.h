#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "config/ast.h"

namespace rd::config {

/// A note emitted while parsing: an unrecognized or malformed command.
/// Parsing is lenient (the pipeline must survive real-world configs), so
/// diagnostics never abort a parse; they record what was skipped.
struct ParseDiagnostic {
  std::size_t line = 0;
  std::string message;
};

struct ParseResult {
  RouterConfig config;
  std::vector<ParseDiagnostic> diagnostics;
};

/// Parse one router's configuration text into the typed model.
ParseResult parse_config(std::string_view text,
                         std::string_view source_file = {});

}  // namespace rd::config
