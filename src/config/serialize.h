#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "config/parser.h"

namespace rd::config {

/// Binary serialization of a ParseResult — the payload of the persistent
/// parse store (pipeline/disk_store.h).
///
/// The format is a flat little-endian field dump in declaration order:
/// every field of every AST node, including source-line provenance and the
/// parse diagnostics, so a decoded result is indistinguishable from the
/// parse that produced it (rule findings keep their file:line pointers, the
/// writer round-trips, equality holds). Strings are u32-length-prefixed
/// bytes; vectors are u32-count-prefixed elements; optionals are a u8
/// presence flag.
///
/// Versioning: the payload starts with a u32 format version. `decode`
/// returns nullopt — never a partial or misread result — when the version
/// is not the current one, when any length runs past the buffer, or when
/// any enum/tag byte is out of range. The disk store adds an outer
/// magic + checksum envelope on top of this, so a truncated or bit-flipped
/// store file is rejected before or during decode and the caller falls
/// back to a cold parse.
inline constexpr std::uint32_t kParseFormatVersion = 1;

/// Serialize `result` to the versioned binary payload.
std::string encode_parse_result(const ParseResult& result);

/// Decode a payload produced by `encode_parse_result`. Returns nullopt on
/// any structural problem (wrong version, truncation, bad tag, trailing
/// bytes); never throws on malformed input.
std::optional<ParseResult> decode_parse_result(std::string_view payload);

}  // namespace rd::config
