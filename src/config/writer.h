#pragma once

#include <string>

#include "config/ast.h"

namespace rd::config {

/// Serialize a router configuration back to IOS-dialect text.
///
/// write_config(parse_config(text)) is idempotent on the modeled subset:
/// parsing the output yields an equal RouterConfig (round-trip property,
/// covered by tests). The synthetic fleet generator emits all its
/// configuration files through this writer so that the analysis pipeline
/// consumes genuine configuration *text*, exactly as the paper's did.
std::string write_config(const RouterConfig& config);

}  // namespace rd::config
