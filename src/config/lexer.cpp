#include "config/lexer.h"

#include "util/strings.h"

namespace rd::config {

std::vector<Line> lex(std::string_view text) {
  std::vector<Line> out;
  const auto lines = util::split_lines(text);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string_view raw = lines[i];
    int indent = 0;
    while (static_cast<std::size_t>(indent) < raw.size() &&
           raw[static_cast<std::size_t>(indent)] == ' ') {
      ++indent;
    }
    const std::string_view body = util::trim(raw);
    if (body.empty() || body[0] == '!') continue;
    Line line;
    line.number = i + 1;
    line.indent = indent;
    line.raw = body;
    line.tokens = util::split_ws(body);
    out.push_back(std::move(line));
  }
  return out;
}

std::size_t count_command_lines(std::string_view text) {
  std::size_t count = 0;
  for (const auto raw : util::split_lines(text)) {
    const std::string_view body = util::trim(raw);
    if (!body.empty() && body[0] != '!') ++count;
  }
  return count;
}

}  // namespace rd::config
