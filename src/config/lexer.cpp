#include "config/lexer.h"

#include <utility>

#include "util/strings.h"

namespace rd::config {

Lexed& Lexed::operator=(Lexed&& other) noexcept {
  if (this == &other) return *this;
  lines = std::move(other.lines);
  token_storage = std::move(other.token_storage);
  // token_storage's buffer moved wholesale, so the spans inside `lines`
  // still point at live storage — nothing to fix up. (Guaranteed because
  // vector move steals the allocation; this assignment exists to document
  // and pin that invariant against a member being added carelessly.)
  other.lines.clear();
  return *this;
}

Lexed lex(std::string_view text) {
  Lexed out;
  const auto lines = util::split_lines(text);
  // First pass: collect lines and flatten every token into one array,
  // recording each line's [offset, count) slice.
  std::vector<std::pair<std::size_t, std::size_t>> slices;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string_view raw = lines[i];
    int indent = 0;
    while (static_cast<std::size_t>(indent) < raw.size() &&
           raw[static_cast<std::size_t>(indent)] == ' ') {
      ++indent;
    }
    const std::string_view body = util::trim(raw);
    if (body.empty() || body[0] == '!') continue;
    Line line;
    line.number = i + 1;
    line.indent = indent;
    line.raw = body;
    const std::size_t offset = out.token_storage.size();
    util::split_ws_into(body, out.token_storage);
    slices.emplace_back(offset, out.token_storage.size() - offset);
    out.lines.push_back(line);
  }
  // Second pass: the storage is final (no more reallocation), so the spans
  // can point into it.
  for (std::size_t i = 0; i < out.lines.size(); ++i) {
    out.lines[i].tokens = {out.token_storage.data() + slices[i].first,
                           slices[i].second};
  }
  return out;
}

std::size_t count_command_lines(std::string_view text) {
  std::size_t count = 0;
  for (const auto raw : util::split_lines(text)) {
    const std::string_view body = util::trim(raw);
    if (!body.empty() && body[0] != '!') ++count;
  }
  return count;
}

}  // namespace rd::config
