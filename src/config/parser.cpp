#include "config/parser.h"

#include <algorithm>

#include "config/lexer.h"
#include "util/strings.h"

namespace rd::config {
namespace {

using util::iequals;
using util::parse_u32;

/// Classful default mask, used when an EIGRP/RIP/IGRP network statement gives
/// no wildcard: class A -> /8, B -> /16, C -> /24, otherwise /32.
ip::Netmask classful_mask(ip::Ipv4Address addr) noexcept {
  const std::uint32_t v = addr.value();
  if ((v & 0x80000000u) == 0) return ip::Netmask::from_length(8);
  if ((v & 0xC0000000u) == 0x80000000u) return ip::Netmask::from_length(16);
  if ((v & 0xE0000000u) == 0xC0000000u) return ip::Netmask::from_length(24);
  return ip::Netmask::from_length(32);
}

class Parser {
 public:
  explicit Parser(std::string_view text)
      : lexed_(lex(text)), lines_(lexed_.lines) {}

  ParseResult run(std::string_view source_file) {
    result_.config.source_file = std::string(source_file);
    result_.config.line_count = 0;
    while (pos_ < lines_.size()) {
      const Line& line = lines_[pos_];
      if (line.indent > 0) {
        // Orphan sub-mode line: skip with a diagnostic.
        diag(line, "sub-mode command outside any block");
        ++pos_;
        continue;
      }
      dispatch_top_level(line);
    }
    return std::move(result_);
  }

 private:
  void diag(const Line& line, std::string message) {
    result_.diagnostics.push_back({line.number, std::move(message)});
  }

  const Line* peek_sub() const noexcept {
    if (pos_ < lines_.size() && lines_[pos_].indent > 0) return &lines_[pos_];
    return nullptr;
  }

  void dispatch_top_level(const Line& line) {
    const auto& t = line.tokens;
    ++pos_;
    if (iequals(t[0], "hostname") && t.size() >= 2) {
      result_.config.hostname = std::string(t[1]);
    } else if (iequals(t[0], "interface") && t.size() >= 2) {
      parse_interface(line);
    } else if (iequals(t[0], "router") && t.size() >= 2) {
      parse_router(line);
    } else if (iequals(t[0], "access-list") && t.size() >= 3) {
      parse_access_list(line);
    } else if (iequals(t[0], "route-map") && t.size() >= 2) {
      parse_route_map(line);
    } else if (iequals(t[0], "ip") && t.size() >= 2 &&
               iequals(t[1], "route")) {
      parse_static_route(line);
    } else if (iequals(t[0], "ip") && t.size() >= 4 &&
               iequals(t[1], "access-list")) {
      parse_named_access_list(line);
    } else if (iequals(t[0], "ip") && t.size() >= 3 &&
               iequals(t[1], "prefix-list")) {
      parse_prefix_list(line);
    } else if (iequals(t[0], "ip") && t.size() >= 5 &&
               iequals(t[1], "as-path") && iequals(t[2], "access-list")) {
      parse_as_path_list(line);
    } else if (iequals(t[0], "version") || iequals(t[0], "end") ||
               iequals(t[0], "service") || iequals(t[0], "no") ||
               iequals(t[0], "boot") || iequals(t[0], "logging") ||
               iequals(t[0], "snmp-server") || iequals(t[0], "line") ||
               iequals(t[0], "banner") || iequals(t[0], "enable") ||
               iequals(t[0], "ip")) {
      // Benign top-level commands the model does not need; consume any
      // sub-block they own (e.g. "line vty 0 4").
      skip_block();
    } else {
      diag(line, "unrecognized top-level command: " + std::string(t[0]));
      skip_block();
    }
  }

  void skip_block() {
    while (peek_sub() != nullptr) ++pos_;
  }

  // --- interface ---------------------------------------------------------

  void parse_interface(const Line& head) {
    InterfaceConfig itf;
    itf.line = head.number;
    itf.name = std::string(head.tokens[1]);
    for (std::size_t i = 2; i < head.tokens.size(); ++i) {
      if (iequals(head.tokens[i], "point-to-point")) itf.point_to_point = true;
    }
    while (const Line* sub = peek_sub()) {
      ++pos_;
      if (!parse_interface_attr(*sub, itf)) {
        itf.extra_lines.emplace_back(sub->raw);
      }
    }
    result_.config.interfaces.push_back(std::move(itf));
  }

  bool parse_interface_attr(const Line& line, InterfaceConfig& itf) {
    const auto& t = line.tokens;
    if (iequals(t[0], "ip") && t.size() >= 4 && iequals(t[1], "address")) {
      const auto addr = ip::Ipv4Address::parse(t[2]);
      const auto mask = ip::Netmask::parse(t[3]);
      if (!addr || !mask) {
        diag(line, "malformed ip address");
        return true;  // recognized but malformed; do not stash as extra
      }
      const InterfaceAddress ia{*addr, *mask};
      if (t.size() >= 5 && iequals(t[4], "secondary")) {
        itf.secondary_addresses.push_back(ia);
      } else {
        itf.address = ia;
      }
      return true;
    }
    if (iequals(t[0], "ip") && t.size() >= 4 &&
        iequals(t[1], "access-group")) {
      if (iequals(t[3], "in")) {
        itf.access_group_in = std::string(t[2]);
      } else {
        itf.access_group_out = std::string(t[2]);
      }
      return true;
    }
    if (iequals(t[0], "ip") && t.size() >= 3 && iequals(t[1], "router") &&
        iequals(t[2], "isis")) {
      itf.isis = true;
      return true;
    }
    if (iequals(t[0], "ip") && t.size() >= 4 && iequals(t[1], "ospf") &&
        iequals(t[2], "cost")) {
      std::uint32_t cost = 0;
      if (parse_u32(t[3], cost)) itf.ospf_cost = cost;
      return true;
    }
    if (iequals(t[0], "description")) {
      itf.description = std::string(util::trim(
          line.raw.substr(std::string_view("description").size())));
      return true;
    }
    if (iequals(t[0], "bandwidth") && t.size() >= 2) {
      std::uint32_t bw = 0;
      if (parse_u32(t[1], bw)) itf.bandwidth_kbps = bw;
      return true;
    }
    if (iequals(t[0], "shutdown")) {
      itf.shutdown = true;
      return true;
    }
    return false;
  }

  // --- router stanza ------------------------------------------------------

  void parse_router(const Line& head) {
    const auto protocol = protocol_from_keyword(head.tokens[1]);
    if (!protocol) {
      diag(head, "unknown routing protocol: " + std::string(head.tokens[1]));
      skip_block();
      return;
    }
    RouterStanza stanza;
    stanza.line = head.number;
    stanza.protocol = *protocol;
    if (head.tokens.size() >= 3) {
      std::uint32_t id = 0;
      if (parse_u32(head.tokens[2], id)) stanza.process_id = id;
    }
    while (const Line* sub = peek_sub()) {
      ++pos_;
      parse_router_attr(*sub, stanza);
    }
    result_.config.router_stanzas.push_back(std::move(stanza));
  }

  void parse_router_attr(const Line& line, RouterStanza& stanza) {
    const auto& t = line.tokens;
    if (iequals(t[0], "network") && t.size() >= 2) {
      parse_network_statement(line, stanza);
    } else if (iequals(t[0], "redistribute") && t.size() >= 2) {
      parse_redistribute(line, stanza);
    } else if (iequals(t[0], "distribute-list") && t.size() >= 3) {
      DistributeList dl;
      dl.acl = std::string(t[1]);
      dl.inbound = iequals(t[2], "in");
      if (t.size() >= 4) dl.interface = std::string(t[3]);
      stanza.distribute_lists.push_back(std::move(dl));
    } else if (iequals(t[0], "aggregate-address") && t.size() >= 3) {
      const auto addr = ip::Ipv4Address::parse(t[1]);
      const auto mask = ip::Netmask::parse(t[2]);
      if (!addr || !mask) {
        diag(line, "malformed aggregate-address");
        return;
      }
      AggregateAddress aggregate;
      aggregate.address = *addr;
      aggregate.mask = *mask;
      for (std::size_t i = 3; i < t.size(); ++i) {
        if (iequals(t[i], "summary-only")) aggregate.summary_only = true;
      }
      stanza.aggregates.push_back(aggregate);
    } else if (iequals(t[0], "neighbor") && t.size() >= 3) {
      parse_neighbor(line, stanza);
    } else if (iequals(t[0], "router-id") && t.size() >= 2) {
      stanza.router_id = ip::Ipv4Address::parse(t[1]);
    } else if (iequals(t[0], "passive-interface") && t.size() >= 2) {
      if (iequals(t[1], "default")) {
        stanza.passive_default = true;
      } else {
        stanza.passive_interfaces.emplace_back(t[1]);
      }
    } else if (iequals(t[0], "default-metric") && t.size() >= 2) {
      std::uint32_t metric = 0;
      if (parse_u32(t[1], metric)) stanza.default_metric = metric;
    } else if (iequals(t[0], "synchronization")) {
      stanza.synchronization = true;
    } else if (iequals(t[0], "no") && t.size() >= 2 &&
               iequals(t[1], "synchronization")) {
      stanza.synchronization = false;
    } else if (iequals(t[0], "no") || iequals(t[0], "maximum-paths") ||
               iequals(t[0], "timers") || iequals(t[0], "area") ||
               iequals(t[0], "auto-summary") || iequals(t[0], "version") ||
               iequals(t[0], "bgp") || iequals(t[0], "log-adjacency-changes")) {
      // Recognized-but-unmodeled stanza attributes.
    } else {
      diag(line, "unrecognized router attribute: " + std::string(t[0]));
    }
  }

  void parse_network_statement(const Line& line, RouterStanza& stanza) {
    const auto& t = line.tokens;
    const auto addr = ip::Ipv4Address::parse(t[1]);
    if (!addr) {
      diag(line, "malformed network statement");
      return;
    }
    NetworkStatement ns;
    ns.line = line.number;
    ns.address = *addr;
    if (t.size() >= 4 && iequals(t[2], "mask")) {
      // BGP form: network A mask M
      const auto mask = ip::Netmask::parse(t[3]);
      if (!mask) {
        diag(line, "malformed network mask");
        return;
      }
      ns.mask = *mask;
    } else if (t.size() >= 3 && !iequals(t[2], "area")) {
      // IGP form: network A WILDCARD [area N]
      const auto mask = ip::Netmask::parse_wildcard(t[2]);
      if (!mask) {
        diag(line, "malformed network wildcard");
        return;
      }
      ns.mask = *mask;
    } else {
      ns.mask = classful_mask(*addr);
    }
    for (std::size_t i = 2; i + 1 < t.size(); ++i) {
      if (iequals(t[i], "area")) {
        std::uint32_t area = 0;
        if (parse_u32(t[i + 1], area)) ns.area = area;
      }
    }
    stanza.networks.push_back(ns);
  }

  void parse_redistribute(const Line& line, RouterStanza& stanza) {
    const auto& t = line.tokens;
    Redistribute redist;
    redist.line = line.number;
    std::size_t opt_start = 2;
    if (iequals(t[1], "connected")) {
      redist.source = RedistributeSource::kConnected;
    } else if (iequals(t[1], "static")) {
      redist.source = RedistributeSource::kStatic;
    } else if (const auto protocol = protocol_from_keyword(t[1])) {
      redist.source = RedistributeSource::kProtocol;
      redist.protocol = *protocol;
      std::uint32_t id = 0;
      if (t.size() >= 3 && parse_u32(t[2], id)) {
        redist.process_id = id;
        opt_start = 3;
      }
    } else {
      diag(line, "unknown redistribute source: " + std::string(t[1]));
      return;
    }
    for (std::size_t i = opt_start; i < t.size(); ++i) {
      if (iequals(t[i], "metric") && i + 1 < t.size()) {
        std::uint32_t metric = 0;
        if (parse_u32(t[i + 1], metric)) redist.metric = metric;
        ++i;
      } else if (iequals(t[i], "metric-type") && i + 1 < t.size()) {
        std::uint32_t mt = 0;
        if (parse_u32(t[i + 1], mt)) redist.metric_type = mt;
        ++i;
      } else if (iequals(t[i], "subnets")) {
        redist.subnets = true;
      } else if (iequals(t[i], "route-map") && i + 1 < t.size()) {
        redist.route_map = std::string(t[i + 1]);
        ++i;
      } else if (iequals(t[i], "match")) {
        // "match route-map X" (the paper's dialect) or "match internal ..."
        // The route-map branch is handled above on the next token.
      } else if (iequals(t[i], "internal") || iequals(t[i], "external")) {
        // OSPF route-class selectors; accepted, not modeled.
      } else {
        diag(line, "unrecognized redistribute option: " + std::string(t[i]));
      }
    }
    stanza.redistributes.push_back(std::move(redist));
  }

  void parse_neighbor(const Line& line, RouterStanza& stanza) {
    const auto& t = line.tokens;
    const auto addr = ip::Ipv4Address::parse(t[1]);
    if (!addr) {
      diag(line, "malformed neighbor address");
      return;
    }
    auto it = std::find_if(
        stanza.neighbors.begin(), stanza.neighbors.end(),
        [&](const BgpNeighbor& n) { return n.address == *addr; });
    if (it == stanza.neighbors.end()) {
      stanza.neighbors.push_back(BgpNeighbor{});
      it = std::prev(stanza.neighbors.end());
      it->address = *addr;
      it->line = line.number;  // first line mentioning this peer
    }
    BgpNeighbor& nbr = *it;
    if (iequals(t[2], "remote-as") && t.size() >= 4) {
      std::uint32_t asn = 0;
      if (parse_u32(t[3], asn)) nbr.remote_as = asn;
    } else if (iequals(t[2], "distribute-list") && t.size() >= 5) {
      if (iequals(t[4], "in")) {
        nbr.distribute_list_in = std::string(t[3]);
      } else {
        nbr.distribute_list_out = std::string(t[3]);
      }
    } else if (iequals(t[2], "route-map") && t.size() >= 5) {
      if (iequals(t[4], "in")) {
        nbr.route_map_in = std::string(t[3]);
      } else {
        nbr.route_map_out = std::string(t[3]);
      }
    } else if (iequals(t[2], "prefix-list") && t.size() >= 5) {
      if (iequals(t[4], "in")) {
        nbr.prefix_list_in = std::string(t[3]);
      } else {
        nbr.prefix_list_out = std::string(t[3]);
      }
    } else if (iequals(t[2], "update-source") && t.size() >= 4) {
      nbr.update_source = std::string(t[3]);
    } else if (iequals(t[2], "description")) {
      std::string desc;
      for (std::size_t i = 3; i < t.size(); ++i) {
        if (i > 3) desc += ' ';
        desc += std::string(t[i]);
      }
      nbr.description = std::move(desc);
    } else if (iequals(t[2], "next-hop-self")) {
      nbr.next_hop_self = true;
    } else if (iequals(t[2], "route-reflector-client")) {
      nbr.route_reflector_client = true;
    } else if (iequals(t[2], "send-community") || iequals(t[2], "version") ||
               iequals(t[2], "soft-reconfiguration")) {
      // Accepted, not modeled.
    } else {
      diag(line, "unrecognized neighbor attribute: " + std::string(t[2]));
    }
  }

  // --- access lists -------------------------------------------------------

  void parse_access_list(const Line& line) {
    const auto& t = line.tokens;
    const std::string id(t[1]);
    if (iequals(t[2], "remark")) return;  // comments inside ACLs
    AclRule rule;
    if (!parse_acl_rule(line, /*action_index=*/2, rule)) return;
    // extended_block is a named-mode property only.
    append_acl_rule(id, /*named=*/false, /*extended_block=*/false,
                    line.number, std::move(rule));
  }

  void parse_named_access_list(const Line& head) {
    // "ip access-list standard|extended NAME" followed by indented clauses.
    const bool extended = iequals(head.tokens[2], "extended");
    if (!extended && !iequals(head.tokens[2], "standard")) {
      diag(head, "unknown access-list flavour");
      skip_block();
      return;
    }
    const std::string id(head.tokens[3]);
    // Register the (possibly empty) list so references resolve.
    bool exists = false;
    for (const auto& acl : result_.config.access_lists) {
      exists = exists || acl.id == id;
    }
    if (!exists) {
      AccessList acl;
      acl.id = id;
      acl.named = true;
      acl.extended_block = extended;
      acl.line = head.number;
      result_.config.access_lists.push_back(std::move(acl));
    }
    while (const Line* sub = peek_sub()) {
      ++pos_;
      if (iequals(sub->tokens[0], "remark")) continue;
      AclRule rule;
      if (parse_acl_rule(*sub, /*action_index=*/0, rule)) {
        append_acl_rule(id, /*named=*/true, extended, head.number,
                        std::move(rule));
      }
    }
  }

  void append_acl_rule(const std::string& id, bool named, bool extended_block,
                       std::size_t line, AclRule rule) {
    for (auto& acl : result_.config.access_lists) {
      if (acl.id == id) {
        acl.rules.push_back(std::move(rule));
        return;
      }
    }
    AccessList acl;
    acl.id = id;
    acl.named = named;
    acl.extended_block = extended_block;
    acl.line = line;
    acl.rules.push_back(std::move(rule));
    result_.config.access_lists.push_back(std::move(acl));
  }

  /// Parse one permit/deny clause starting at `action_index`. Returns false
  /// (with a diagnostic) on malformed input.
  bool parse_acl_rule(const Line& line, std::size_t action_index,
                      AclRule& rule) {
    const auto& t = line.tokens;
    if (t.size() <= action_index) {
      diag(line, "truncated access-list clause");
      return false;
    }
    rule.line = line.number;
    if (iequals(t[action_index], "permit")) {
      rule.action = FilterAction::kPermit;
    } else if (iequals(t[action_index], "deny")) {
      rule.action = FilterAction::kDeny;
    } else {
      diag(line, "malformed access-list action");
      return false;
    }

    std::size_t i = action_index + 1;
    if (i >= t.size()) {
      diag(line, "truncated access-list");
      return false;
    }

    // Extended form starts with a protocol keyword; standard form starts
    // with an address spec.
    const bool extended = !iequals(t[i], "any") && !iequals(t[i], "host") &&
                          !ip::Ipv4Address::parse(t[i]).has_value();
    rule.extended = extended;
    if (extended) {
      rule.protocol = util::to_lower(t[i]);
      ++i;
    }

    auto parse_addr_spec = [&](bool& any, ip::Prefix& prefix) -> bool {
      if (i >= t.size()) return false;
      if (iequals(t[i], "any")) {
        any = true;
        ++i;
        return true;
      }
      if (iequals(t[i], "host")) {
        if (i + 1 >= t.size()) return false;
        const auto addr = ip::Ipv4Address::parse(t[i + 1]);
        if (!addr) return false;
        any = false;
        prefix = ip::Prefix::host(*addr);
        i += 2;
        return true;
      }
      const auto addr = ip::Ipv4Address::parse(t[i]);
      if (!addr) return false;
      // A wildcard may follow; without one the spec is a host match.
      if (i + 1 < t.size()) {
        if (const auto wc = ip::Netmask::parse_wildcard(t[i + 1])) {
          any = false;
          prefix = ip::Prefix(*addr, wc->length());
          i += 2;
          return true;
        }
      }
      any = false;
      prefix = ip::Prefix::host(*addr);
      ++i;
      return true;
    };

    if (!parse_addr_spec(rule.any_source, rule.source)) {
      diag(line, "malformed access-list source");
      return false;
    }
    if (extended) {
      if (!parse_addr_spec(rule.any_destination, rule.destination)) {
        diag(line, "malformed access-list destination");
        return false;
      }
      if (i + 1 < t.size() && iequals(t[i], "eq")) {
        std::uint32_t port = 0;
        if (parse_u32(t[i + 1], port) && port <= 65535) {
          rule.destination_port = static_cast<std::uint16_t>(port);
        }
      }
    } else {
      rule.any_destination = true;
    }
    return true;
  }

  // "ip as-path access-list N permit|deny <regex...>"
  void parse_as_path_list(const Line& line) {
    const auto& t = line.tokens;
    const std::string id(t[3]);
    AsPathEntry entry;
    if (iequals(t[4], "permit")) {
      entry.action = FilterAction::kPermit;
    } else if (iequals(t[4], "deny")) {
      entry.action = FilterAction::kDeny;
    } else {
      diag(line, "malformed as-path access-list action");
      return;
    }
    // The regex is the remainder of the line, spaces preserved as single
    // separators (AS-path regexes rarely contain runs of spaces).
    std::string regex;
    for (std::size_t i = 5; i < t.size(); ++i) {
      if (!regex.empty()) regex += ' ';
      regex += std::string(t[i]);
    }
    if (regex.empty()) {
      diag(line, "empty as-path regex");
      return;
    }
    entry.regex = std::move(regex);
    for (auto& list : result_.config.as_path_lists) {
      if (list.id == id) {
        list.entries.push_back(std::move(entry));
        return;
      }
    }
    AsPathAccessList list;
    list.id = id;
    list.entries.push_back(std::move(entry));
    result_.config.as_path_lists.push_back(std::move(list));
  }

  // "ip prefix-list NAME [seq N] permit|deny A.B.C.D/L [ge X] [le Y]"
  void parse_prefix_list(const Line& line) {
    const auto& t = line.tokens;
    PrefixListEntry entry;
    const std::string name(t[2]);
    std::size_t i = 3;
    if (i + 1 < t.size() && iequals(t[i], "seq")) {
      std::uint32_t seq = 0;
      if (parse_u32(t[i + 1], seq)) entry.sequence = seq;
      i += 2;
    }
    if (i >= t.size()) {
      diag(line, "truncated prefix-list");
      return;
    }
    if (iequals(t[i], "permit")) {
      entry.action = FilterAction::kPermit;
    } else if (iequals(t[i], "deny")) {
      entry.action = FilterAction::kDeny;
    } else if (iequals(t[i], "description")) {
      return;  // accepted, not modeled
    } else {
      diag(line, "malformed prefix-list action");
      return;
    }
    ++i;
    if (i >= t.size()) {
      diag(line, "truncated prefix-list");
      return;
    }
    const auto prefix = ip::Prefix::parse(t[i]);
    if (!prefix) {
      diag(line, "malformed prefix-list prefix");
      return;
    }
    entry.prefix = *prefix;
    ++i;
    while (i + 1 < t.size()) {
      std::uint32_t bound = 0;
      if (iequals(t[i], "ge") && parse_u32(t[i + 1], bound) && bound <= 32) {
        entry.ge = static_cast<int>(bound);
      } else if (iequals(t[i], "le") && parse_u32(t[i + 1], bound) &&
                 bound <= 32) {
        entry.le = static_cast<int>(bound);
      } else {
        diag(line, "unrecognized prefix-list option");
      }
      i += 2;
    }
    for (auto& pl : result_.config.prefix_lists) {
      if (pl.name == name) {
        pl.entries.push_back(entry);
        return;
      }
    }
    PrefixList pl;
    pl.name = name;
    pl.entries.push_back(entry);
    result_.config.prefix_lists.push_back(std::move(pl));
  }

  // --- route maps ---------------------------------------------------------

  void parse_route_map(const Line& head) {
    const auto& t = head.tokens;
    const std::string name(t[1]);
    RouteMapClause clause;
    clause.line = head.number;
    if (t.size() >= 3 && iequals(t[2], "deny")) {
      clause.action = FilterAction::kDeny;
    }
    if (t.size() >= 4) {
      std::uint32_t seq = 0;
      if (parse_u32(t[3], seq)) clause.sequence = seq;
    }
    while (const Line* sub = peek_sub()) {
      ++pos_;
      const auto& st = sub->tokens;
      if (iequals(st[0], "match") && st.size() >= 4 &&
          iequals(st[1], "ip") && iequals(st[2], "address")) {
        if (iequals(st[3], "prefix-list")) {
          for (std::size_t i = 4; i < st.size(); ++i) {
            clause.match_prefix_lists.emplace_back(st[i]);
          }
        } else {
          for (std::size_t i = 3; i < st.size(); ++i) {
            clause.match_ip_address_acls.emplace_back(st[i]);
          }
        }
      } else if (iequals(st[0], "match") && st.size() >= 3 &&
                 iequals(st[1], "as-path")) {
        for (std::size_t i = 2; i < st.size(); ++i) {
          clause.match_as_paths.emplace_back(st[i]);
        }
      } else if (iequals(st[0], "match") && st.size() >= 3 &&
                 iequals(st[1], "tag")) {
        std::uint32_t tag = 0;
        if (parse_u32(st[2], tag)) clause.match_tag = tag;
      } else if (iequals(st[0], "set") && st.size() >= 3 &&
                 iequals(st[1], "tag")) {
        std::uint32_t tag = 0;
        if (parse_u32(st[2], tag)) clause.set_tag = tag;
      } else if (iequals(st[0], "set") && st.size() >= 3 &&
                 iequals(st[1], "metric")) {
        std::uint32_t metric = 0;
        if (parse_u32(st[2], metric)) clause.set_metric = metric;
      } else if (iequals(st[0], "set") && st.size() >= 3 &&
                 iequals(st[1], "local-preference")) {
        std::uint32_t pref = 0;
        if (parse_u32(st[2], pref)) clause.set_local_preference = pref;
      } else {
        diag(*sub, "unrecognized route-map attribute");
      }
    }
    for (auto& rm : result_.config.route_maps) {
      if (rm.name == name) {
        rm.clauses.push_back(std::move(clause));
        return;
      }
    }
    RouteMap rm;
    rm.name = name;
    rm.clauses.push_back(std::move(clause));
    result_.config.route_maps.push_back(std::move(rm));
  }

  // --- static routes ------------------------------------------------------

  void parse_static_route(const Line& line) {
    const auto& t = line.tokens;
    if (t.size() < 5) {
      diag(line, "truncated static route");
      return;
    }
    const auto dest = ip::Ipv4Address::parse(t[2]);
    const auto mask = ip::Netmask::parse(t[3]);
    if (!dest || !mask) {
      diag(line, "malformed static route");
      return;
    }
    StaticRoute route;
    route.line = line.number;
    route.destination = *dest;
    route.mask = *mask;
    if (const auto nh = ip::Ipv4Address::parse(t[4])) {
      route.next_hop = *nh;
    } else {
      route.next_hop = std::string(t[4]);
    }
    if (t.size() >= 6) {
      std::uint32_t ad = 0;
      if (parse_u32(t[5], ad)) route.administrative_distance = ad;
    }
    result_.config.static_routes.push_back(std::move(route));
  }

  Lexed lexed_;
  const std::vector<Line>& lines_;
  std::size_t pos_ = 0;
  ParseResult result_;
};

/// Scan the raw text for "! rdlint-disable <RDid>..." comments. Comments
/// are dropped by the lexer, so suppressions are collected here, straight
/// from the source. Ids are sorted and deduplicated.
std::vector<std::string> collect_suppressions(std::string_view text) {
  std::vector<std::string> ids;
  for (const auto raw : util::split_lines(text)) {
    const auto body = util::trim(raw);
    if (body.empty() || body[0] != '!') continue;
    const auto tokens = util::split_ws(body.substr(1));
    if (tokens.empty() || !iequals(tokens[0], "rdlint-disable")) continue;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      ids.emplace_back(tokens[i]);
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

/// Scan for "! rd-intent deny|allow <src> <dst> [<proto> [<port>]]"
/// comments (see config::IntentDirective). Like the suppressions above,
/// intents live in comments the lexer drops, so they are collected straight
/// from the source. Malformed directives are ignored — a comment is never a
/// parse error.
std::vector<IntentDirective> collect_intents(std::string_view text) {
  std::vector<IntentDirective> intents;
  std::size_t line_number = 0;
  for (const auto raw : util::split_lines(text)) {
    ++line_number;
    const auto body = util::trim(raw);
    if (body.empty() || body[0] != '!') continue;
    const auto tokens = util::split_ws(body.substr(1));
    if (tokens.size() < 4 || !iequals(tokens[0], "rd-intent")) continue;
    IntentDirective intent;
    if (iequals(tokens[1], "deny")) {
      intent.expect_reachable = false;
    } else if (iequals(tokens[1], "allow")) {
      intent.expect_reachable = true;
    } else {
      continue;
    }
    const auto source = ip::Prefix::parse(tokens[2]);
    const auto destination = ip::Prefix::parse(tokens[3]);
    if (!source || !destination) continue;
    intent.source = *source;
    intent.destination = *destination;
    if (tokens.size() >= 5) intent.protocol = util::to_lower(tokens[4]);
    if (tokens.size() >= 6) {
      std::uint32_t port = 0;
      if (!parse_u32(tokens[5], port) || port > 65535) continue;
      intent.port = static_cast<std::uint16_t>(port);
    }
    intent.line = line_number;
    intents.push_back(std::move(intent));
  }
  return intents;
}

}  // namespace

ParseResult parse_config(std::string_view text, std::string_view source_file) {
  Parser parser(text);
  ParseResult result = parser.run(source_file);
  result.config.line_count = count_command_lines(text);
  result.config.lint_suppressions = collect_suppressions(text);
  result.config.intents = collect_intents(text);
  if (result.config.hostname.empty()) {
    result.config.hostname = std::string(source_file);
  }
  return result;
}

}  // namespace rd::config
