#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rd::ip {

/// An IPv4 address as a host-order 32-bit value with value semantics.
class Ipv4Address {
 public:
  constexpr Ipv4Address() noexcept = default;
  constexpr explicit Ipv4Address(std::uint32_t value) noexcept
      : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const noexcept { return value_; }

  /// Parse dotted-quad notation ("66.251.75.144"); nullopt on any error.
  static std::optional<Ipv4Address> parse(std::string_view text) noexcept;

  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) noexcept =
      default;

 private:
  std::uint32_t value_ = 0;
};

/// A netmask such as 255.255.255.252. Only contiguous masks are valid.
class Netmask {
 public:
  constexpr Netmask() noexcept = default;

  /// Construct from a prefix length in [0, 32].
  static constexpr Netmask from_length(int length) noexcept {
    Netmask m;
    m.length_ = length < 0 ? 0 : (length > 32 ? 32 : length);
    return m;
  }

  /// Parse a dotted-quad netmask; rejects non-contiguous masks.
  static std::optional<Netmask> parse(std::string_view text) noexcept;

  /// Interpret a dotted quad as a Cisco wildcard mask (0.0.0.3 == /30).
  /// Rejects non-contiguous wildcards.
  static std::optional<Netmask> parse_wildcard(std::string_view text) noexcept;

  constexpr int length() const noexcept { return length_; }

  constexpr std::uint32_t bits() const noexcept {
    return length_ == 0 ? 0u : (~std::uint32_t{0} << (32 - length_));
  }
  constexpr std::uint32_t wildcard_bits() const noexcept { return ~bits(); }

  std::string to_string() const;           // "255.255.255.252"
  std::string to_wildcard_string() const;  // "0.0.0.3"

  friend constexpr auto operator<=>(Netmask, Netmask) noexcept = default;

 private:
  int length_ = 0;
};

/// An IPv4 prefix: network address + mask length. The network address is
/// always stored canonicalized (host bits zeroed).
class Prefix {
 public:
  constexpr Prefix() noexcept = default;
  constexpr Prefix(Ipv4Address addr, int length) noexcept
      : length_(length < 0 ? 0 : (length > 32 ? 32 : length)),
        network_(addr.value() & Netmask::from_length(length_).bits()) {}

  /// Parse "10.0.0.0/8"; nullopt on any error. Host bits are silently
  /// canonicalized ("10.0.0.5/8" parses as "10.0.0.0/8").
  static std::optional<Prefix> parse(std::string_view text) noexcept;

  /// Like `parse`, but rejects non-canonical input: any host bit set below
  /// the mask ("10.0.0.5/8") yields nullopt. Callers that must distinguish
  /// sloppy from canonical notation (the lint pass) use this.
  static std::optional<Prefix> parse_strict(std::string_view text) noexcept;

  /// Construct from parts, rejecting host bits the same way `parse_strict`
  /// does; nullopt when `addr` is not the canonical network address.
  static constexpr std::optional<Prefix> make_strict(Ipv4Address addr,
                                                     int length) noexcept {
    const Prefix canonical(addr, length);
    if (canonical.network() != addr) return std::nullopt;
    return canonical;
  }

  /// The prefix containing a single address.
  static constexpr Prefix host(Ipv4Address addr) noexcept {
    return Prefix(addr, 32);
  }

  constexpr Ipv4Address network() const noexcept { return network_; }
  constexpr int length() const noexcept { return length_; }
  constexpr Netmask mask() const noexcept {
    return Netmask::from_length(length_);
  }

  constexpr bool contains(Ipv4Address addr) const noexcept {
    return (addr.value() & mask().bits()) == network_.value();
  }
  constexpr bool contains(const Prefix& other) const noexcept {
    return other.length_ >= length_ && contains(other.network_);
  }
  constexpr bool overlaps(const Prefix& other) const noexcept {
    return contains(other) || other.contains(*this);
  }

  /// Number of addresses covered (2^(32-length)), as a 64-bit count.
  constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - length_);
  }

  /// Broadcast / last address in the prefix.
  constexpr Ipv4Address last_address() const noexcept {
    return Ipv4Address(network_.value() | mask().wildcard_bits());
  }

  /// The enclosing prefix one bit shorter; identity at length 0.
  constexpr Prefix parent() const noexcept {
    return length_ == 0 ? *this : Prefix(network_, length_ - 1);
  }

  /// The sibling prefix sharing this prefix's parent; identity at length 0.
  constexpr Prefix buddy() const noexcept {
    if (length_ == 0) return *this;
    const std::uint32_t flip = std::uint32_t{1} << (32 - length_);
    return Prefix(Ipv4Address(network_.value() ^ flip), length_);
  }

  std::string to_string() const;  // "10.0.0.0/8"

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) noexcept =
      default;

 private:
  int length_ = 0;
  Ipv4Address network_;
};

/// Classification used throughout the analyses: RFC1918 private space.
bool is_rfc1918(Ipv4Address addr) noexcept;

/// Private AS number range (64512-65534, RFC 1930 / the range the paper's
/// anonymizer leaves unhashed).
bool is_private_asn(std::uint32_t asn) noexcept;

}  // namespace rd::ip

template <>
struct std::hash<rd::ip::Ipv4Address> {
  std::size_t operator()(rd::ip::Ipv4Address a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<rd::ip::Prefix> {
  std::size_t operator()(const rd::ip::Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{p.network().value()} << 6) |
        static_cast<std::uint64_t>(p.length()));
  }
};
