#include "ip/aggregate.h"

#include <algorithm>
#include <cassert>

namespace rd::ip {

namespace {

// Lowest common ancestor of two prefixes in the binary prefix tree.
Prefix lowest_common_ancestor(const Prefix& a, const Prefix& b) noexcept {
  const std::uint32_t xa = a.network().value();
  const std::uint32_t xb = b.network().value();
  int length = std::min(a.length(), b.length());
  const std::uint32_t diff = xa ^ xb;
  if (diff != 0) {
    // Highest differing bit bounds the common length from above.
    int highest = 31;
    while (((diff >> highest) & 1u) == 0) --highest;
    length = std::min(length, 31 - highest);
  }
  return Prefix(a.network(), length);
}

bool prefix_less(const Prefix& a, const Prefix& b) noexcept {
  if (a.network() != b.network()) return a.network() < b.network();
  return a.length() < b.length();
}

}  // namespace

std::vector<Prefix> remove_contained(std::vector<Prefix> prefixes) {
  std::sort(prefixes.begin(), prefixes.end(), prefix_less);
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()),
                 prefixes.end());
  std::vector<Prefix> out;
  out.reserve(prefixes.size());
  for (const Prefix& p : prefixes) {
    // Sorted order guarantees a container, if any, appears earlier, and the
    // most recent survivor is the only candidate container.
    if (!out.empty() && out.back().contains(p)) continue;
    out.push_back(p);
  }
  return out;
}

std::vector<Prefix> aggregate_exact(std::vector<Prefix> prefixes) {
  std::vector<Prefix> current = remove_contained(std::move(prefixes));
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Prefix> next;
    next.reserve(current.size());
    std::size_t i = 0;
    while (i < current.size()) {
      if (i + 1 < current.size() && current[i].length() > 0 &&
          current[i].length() == current[i + 1].length() &&
          current[i].buddy() == current[i + 1]) {
        next.push_back(current[i].parent());
        i += 2;
        changed = true;
      } else {
        next.push_back(current[i]);
        ++i;
      }
    }
    current = remove_contained(std::move(next));
  }
  return current;
}

std::vector<Prefix> cover_half_used(std::vector<Prefix> prefixes) {
  std::vector<Prefix> current = remove_contained(std::move(prefixes));
  // Prefix sums over the sorted, disjoint set let us compute "addresses used
  // inside a candidate block" with two binary searches.
  while (current.size() > 1) {
    std::vector<std::uint64_t> cum(current.size() + 1, 0);
    for (std::size_t i = 0; i < current.size(); ++i) {
      cum[i + 1] = cum[i] + current[i].size();
    }
    auto used_inside = [&](const Prefix& block) {
      // All current prefixes are disjoint; those inside `block` form a
      // contiguous run in sorted order.
      const auto lo = std::lower_bound(
          current.begin(), current.end(), block.network(),
          [](const Prefix& p, Ipv4Address a) { return p.network() < a; });
      auto hi = lo;
      while (hi != current.end() && block.contains(*hi)) ++hi;
      const auto lo_i = static_cast<std::size_t>(lo - current.begin());
      const auto hi_i = static_cast<std::size_t>(hi - current.begin());
      return cum[hi_i] - cum[lo_i];
    };

    // Only adjacent pairs in sorted order can realize a minimal join; pick
    // the join with the longest (smallest) resulting block so the tree is
    // built bottom-up, mirroring the paper's incremental expansion.
    int best_length = -1;
    Prefix best_block;
    for (std::size_t i = 0; i + 1 < current.size(); ++i) {
      const Prefix lca = lowest_common_ancestor(current[i], current[i + 1]);
      // "Differ in no more than the least two bits": the joined block may
      // expand each member by at most two mask bits.
      const int shorter = std::min(current[i].length(), current[i + 1].length());
      if (shorter - lca.length() > 2) continue;
      if (lca.length() == 0) continue;
      if (used_inside(lca) * 2 < lca.size()) continue;  // < half used
      if (lca.length() > best_length) {
        best_length = lca.length();
        best_block = lca;
      }
    }
    if (best_length < 0) break;

    std::vector<Prefix> next;
    next.reserve(current.size());
    bool inserted = false;
    for (const Prefix& p : current) {
      if (best_block.contains(p)) {
        if (!inserted) {
          next.push_back(best_block);
          inserted = true;
        }
      } else {
        next.push_back(p);
      }
    }
    current = remove_contained(std::move(next));
  }
  return current;
}

std::uint64_t total_addresses(const std::vector<Prefix>& prefixes) {
  std::uint64_t total = 0;
  for (const Prefix& p : prefixes) total += p.size();
  return total;
}

}  // namespace rd::ip
