#pragma once

#include <vector>

#include "ip/ipv4.h"

namespace rd::ip {

/// Exact CIDR aggregation: repeatedly merge buddy prefixes into their parent
/// and drop prefixes contained in others. The result covers exactly the same
/// address set as the input, with the minimum number of prefixes.
std::vector<Prefix> aggregate_exact(std::vector<Prefix> prefixes);

/// The paper's address-structure join rule (§3.4): repeatedly join two
/// subnets whose network numbers differ in no more than the two low-order
/// bits of the shorter mask — i.e. expand a prefix as long as at least half
/// of the enlarged block is "used" by input subnets. Returns the roots of the
/// resulting cover (deduplicated, contained prefixes removed).
///
/// Unlike aggregate_exact, the result may cover more address space than the
/// input; that slack is what reveals a network's intended block plan.
std::vector<Prefix> cover_half_used(std::vector<Prefix> prefixes);

/// Remove duplicates and prefixes wholly contained in another input prefix.
std::vector<Prefix> remove_contained(std::vector<Prefix> prefixes);

/// Total address count covered by a set of non-overlapping prefixes.
std::uint64_t total_addresses(const std::vector<Prefix>& prefixes);

}  // namespace rd::ip
