#include "ip/ipv4.h"

#include <cstdio>

#include "util/strings.h"

namespace rd::ip {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) noexcept {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto part : parts) {
    std::uint32_t octet = 0;
    if (!util::parse_u32(part, octet) || octet > 255 || part.size() > 3) {
      return std::nullopt;
    }
    // Reject leading zeros like "01" which are ambiguous in some parsers.
    if (part.size() > 1 && part[0] == '0') return std::nullopt;
    value = (value << 8) | octet;
  }
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xFF,
                (value_ >> 16) & 0xFF, (value_ >> 8) & 0xFF, value_ & 0xFF);
  return buf;
}

namespace {

// Returns the prefix length if bits is a contiguous run of ones from the MSB
// (a valid netmask), otherwise -1.
int contiguous_mask_length(std::uint32_t bits) noexcept {
  if (bits == 0) return 0;
  int length = 0;
  std::uint32_t probe = 0x80000000u;
  while (probe != 0 && (bits & probe) != 0) {
    ++length;
    probe >>= 1;
  }
  // All remaining bits must be zero.
  const std::uint32_t expect =
      length == 0 ? 0u : (~std::uint32_t{0} << (32 - length));
  return bits == expect ? length : -1;
}

}  // namespace

std::optional<Netmask> Netmask::parse(std::string_view text) noexcept {
  const auto addr = Ipv4Address::parse(text);
  if (!addr) return std::nullopt;
  const int length = contiguous_mask_length(addr->value());
  if (length < 0) return std::nullopt;
  return from_length(length);
}

std::optional<Netmask> Netmask::parse_wildcard(
    std::string_view text) noexcept {
  const auto addr = Ipv4Address::parse(text);
  if (!addr) return std::nullopt;
  const int length = contiguous_mask_length(~addr->value());
  if (length < 0) return std::nullopt;
  return from_length(length);
}

std::string Netmask::to_string() const {
  return Ipv4Address(bits()).to_string();
}

std::string Netmask::to_wildcard_string() const {
  return Ipv4Address(wildcard_bits()).to_string();
}

std::optional<Prefix> Prefix::parse(std::string_view text) noexcept {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Address::parse(text.substr(0, slash));
  std::uint32_t length = 0;
  if (!addr || !util::parse_u32(text.substr(slash + 1), length) ||
      length > 32) {
    return std::nullopt;
  }
  return Prefix(*addr, static_cast<int>(length));
}

std::optional<Prefix> Prefix::parse_strict(std::string_view text) noexcept {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Address::parse(text.substr(0, slash));
  std::uint32_t length = 0;
  if (!addr || !util::parse_u32(text.substr(slash + 1), length) ||
      length > 32) {
    return std::nullopt;
  }
  return make_strict(*addr, static_cast<int>(length));
}

std::string Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

bool is_rfc1918(Ipv4Address addr) noexcept {
  static constexpr Prefix k10{Ipv4Address(10, 0, 0, 0), 8};
  static constexpr Prefix k172{Ipv4Address(172, 16, 0, 0), 12};
  static constexpr Prefix k192{Ipv4Address(192, 168, 0, 0), 16};
  return k10.contains(addr) || k172.contains(addr) || k192.contains(addr);
}

bool is_private_asn(std::uint32_t asn) noexcept {
  return asn >= 64512 && asn <= 65534;
}

}  // namespace rd::ip
