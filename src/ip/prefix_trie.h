#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "ip/ipv4.h"

namespace rd::ip {

/// A binary (Patricia-style, one bit per level) trie keyed by IPv4 prefix.
/// Supports exact insert/lookup and longest-prefix match; used by the
/// analyses for address-block attribution and route-filter evaluation.
template <typename Value>
class PrefixTrie {
 public:
  PrefixTrie() = default;

  /// Insert or overwrite the value at an exact prefix.
  void insert(const Prefix& prefix, Value value) {
    Node* node = descend_create(prefix);
    if (!node->value) ++size_;
    node->value = std::move(value);
  }

  /// Insert unless an existing entry already covers `prefix` (an ancestor
  /// entry or an exact one). Keeps a covering index minimal: under a
  /// cover, a new entry can never change the answer of a covering query
  /// such as `longest_match(addr) != nullptr`. Feed prefixes shortest
  /// first so covers land before what they cover. Returns true when the
  /// value was stored.
  bool insert_uncovered(const Prefix& prefix, Value value) {
    Node* node = &root_;
    if (node->value) return false;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      auto& slot = node->child[bit_at(prefix.network(), depth) ? 1 : 0];
      if (!slot) slot = std::make_unique<Node>();
      node = slot.get();
      if (node->value) return false;
    }
    node->value = std::move(value);
    ++size_;
    return true;
  }

  /// Exact-match lookup.
  const Value* find(const Prefix& prefix) const noexcept {
    const Node* node = &root_;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      node = child_of(node, bit_at(prefix.network(), depth));
      if (node == nullptr) return nullptr;
    }
    return node->value ? &*node->value : nullptr;
  }

  /// Longest-prefix match for an address; nullptr when nothing covers it.
  const Value* longest_match(Ipv4Address addr) const noexcept {
    const Node* node = &root_;
    const Value* best = node->value ? &*node->value : nullptr;
    for (int depth = 0; depth < 32; ++depth) {
      node = child_of(node, bit_at(addr, depth));
      if (node == nullptr) break;
      if (node->value) best = &*node->value;
    }
    return best;
  }

  /// Longest prefix (with its value) covering `addr`.
  std::optional<std::pair<Prefix, const Value*>> longest_match_prefix(
      Ipv4Address addr) const {
    const Node* node = &root_;
    std::optional<std::pair<Prefix, const Value*>> best;
    if (node->value) best = {Prefix(addr, 0), &*node->value};
    for (int depth = 0; depth < 32; ++depth) {
      node = child_of(node, bit_at(addr, depth));
      if (node == nullptr) break;
      if (node->value) best = {Prefix(addr, depth + 1), &*node->value};
    }
    return best;
  }

  /// Visit the value of every stored prefix that contains `addr`, from the
  /// shortest to the longest match.
  void for_each_match(Ipv4Address addr,
                      const std::function<void(const Value&)>& fn) const {
    visit_matches(addr, fn);
  }

  /// for_each_match without the std::function indirection — the compiled
  /// policy filters sit on the reachability engine's per-route hot path,
  /// where the erased call per matching node was measurable.
  template <typename Fn>
  void visit_matches(Ipv4Address addr, Fn&& fn) const {
    const Node* node = &root_;
    if (node->value) fn(*node->value);
    for (int depth = 0; depth < 32; ++depth) {
      node = child_of(node, bit_at(addr, depth));
      if (node == nullptr) return;
      if (node->value) fn(*node->value);
    }
  }

  /// True if any stored prefix contains (or equals) `prefix`'s network.
  bool covers(const Prefix& prefix) const noexcept {
    const Node* node = &root_;
    if (node->value) return true;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      node = child_of(node, bit_at(prefix.network(), depth));
      if (node == nullptr) return false;
      if (node->value) return true;
    }
    return false;
  }

  /// Visit every (prefix, value) pair in lexicographic prefix order.
  void for_each(
      const std::function<void(const Prefix&, const Value&)>& fn) const {
    walk(&root_, Prefix(Ipv4Address(0u), 0), fn);
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

 private:
  struct Node {
    std::optional<Value> value;
    std::unique_ptr<Node> child[2];
  };

  static bool bit_at(Ipv4Address addr, int depth) noexcept {
    return (addr.value() >> (31 - depth)) & 1u;
  }

  static const Node* child_of(const Node* node, bool bit) noexcept {
    return node->child[bit ? 1 : 0].get();
  }

  Node* descend_create(const Prefix& prefix) {
    Node* node = &root_;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      auto& slot = node->child[bit_at(prefix.network(), depth) ? 1 : 0];
      if (!slot) slot = std::make_unique<Node>();
      node = slot.get();
    }
    return node;
  }

  void walk(const Node* node, Prefix at,
            const std::function<void(const Prefix&, const Value&)>& fn) const {
    if (node->value) fn(at, *node->value);
    if (at.length() == 32) return;
    for (int bit = 0; bit < 2; ++bit) {
      const Node* child = node->child[bit].get();
      if (child == nullptr) continue;
      const std::uint32_t flip =
          bit == 1 ? (std::uint32_t{1} << (31 - at.length())) : 0u;
      walk(child,
           Prefix(Ipv4Address(at.network().value() | flip), at.length() + 1),
           fn);
    }
  }

  Node root_;
  std::size_t size_ = 0;
};

}  // namespace rd::ip
