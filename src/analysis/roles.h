#pragma once

#include <cstddef>
#include <map>

#include "graph/instances.h"
#include "model/network.h"

namespace rd::analysis {

/// Intra-/inter-domain role tallies for one network (paper §5.2, Table 1).
///
/// An IGP *instance* serves in the inter-domain role when any of its
/// processes is potentially adjacent to a router outside the network (it
/// covers a non-passive external-facing interface); otherwise it serves
/// intra-domain. An EBGP *session* is inter-domain when it terminates
/// outside the data set, and intra-domain when both endpoints are inside the
/// network (internal compartment boundaries, corporate-merger vestiges, ...).
struct RoleCounts {
  /// protocol -> (intra-domain instance count, inter-domain instance count).
  /// BGP is excluded here; see the session counts below.
  std::map<config::RoutingProtocol, std::pair<std::size_t, std::size_t>>
      igp_instances;
  std::size_t ebgp_intra_sessions = 0;
  std::size_t ebgp_inter_sessions = 0;
  std::size_t ibgp_sessions = 0;
  bool uses_bgp = false;

  RoleCounts& operator+=(const RoleCounts& other);
};

RoleCounts classify_roles(const model::Network& network,
                          const graph::InstanceSet& instances);

}  // namespace rd::analysis
