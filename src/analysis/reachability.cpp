#include "analysis/reachability.h"

#include <algorithm>

namespace rd::analysis {

namespace {

using model::Route;

/// Outbound/inbound policy of one BGP session endpoint, resolved in the
/// endpoint router's config.
struct SessionPolicy {
  const config::RouterConfig* config = nullptr;
  const config::BgpNeighbor* neighbor = nullptr;
};

bool session_permits(const SessionPolicy& policy, bool inbound,
                     const Route& route) {
  if (policy.config == nullptr || policy.neighbor == nullptr) return true;
  const auto& dl = inbound ? policy.neighbor->distribute_list_in
                           : policy.neighbor->distribute_list_out;
  if (dl && !model::distribute_list_permits(*policy.config, *dl, route)) {
    return false;
  }
  const auto& pl_name = inbound ? policy.neighbor->prefix_list_in
                                : policy.neighbor->prefix_list_out;
  if (pl_name) {
    const auto* pl = policy.config->find_prefix_list(*pl_name);
    if (pl != nullptr && !model::prefix_list_permits_route(*pl, route)) {
      return false;
    }
  }
  const auto& rm_name = inbound ? policy.neighbor->route_map_in
                                : policy.neighbor->route_map_out;
  if (rm_name) {
    const auto* rm = policy.config->find_route_map(*rm_name);
    if (rm != nullptr &&
        !model::route_map_evaluate(*rm, *policy.config, route).permitted) {
      return false;
    }
  }
  return true;
}

/// Stanza-level distribute-lists (IGP): apply all matching direction.
bool stanza_permits(const config::RouterConfig& config,
                    const config::RouterStanza& stanza, bool inbound,
                    const Route& route) {
  for (const auto& dl : stanza.distribute_lists) {
    if (dl.inbound != inbound) continue;
    if (!model::distribute_list_permits(config, dl.acl, route)) return false;
  }
  return true;
}

}  // namespace

ReachabilityAnalysis ReachabilityAnalysis::run(
    const model::Network& network, const graph::InstanceSet& instances,
    const Options& options) {
  ReachabilityAnalysis analysis;
  const std::size_t n = instances.instances.size();
  analysis.routes_.resize(n);

  // --- External offer universe: default route + policy-mentioned prefixes
  // + caller-supplied prefixes. Internal subnets are excluded so external
  // origin stays meaningful.
  analysis.external_origin_.insert(ip::Prefix(ip::Ipv4Address(0u), 0));
  for (const auto& config : network.routers()) {
    for (const auto& acl : config.access_lists) {
      for (const auto& rule : acl.rules) {
        if (rule.action != config::FilterAction::kPermit) continue;
        if (!rule.any_source && !rule.extended) {
          analysis.external_origin_.insert(rule.source);
        }
      }
    }
    for (const auto& pl : config.prefix_lists) {
      for (const auto& entry : pl.entries) {
        if (entry.action == config::FilterAction::kPermit) {
          analysis.external_origin_.insert(entry.prefix);
        }
      }
    }
  }
  for (const auto& prefix : options.external_prefixes) {
    analysis.external_origin_.insert(prefix);
  }
  // Remove prefixes that are actually internal subnets.
  for (auto it = analysis.external_origin_.begin();
       it != analysis.external_origin_.end();) {
    if (it->length() > 0 && network.address_is_internal(it->network())) {
      it = analysis.external_origin_.erase(it);
    } else {
      ++it;
    }
  }

  auto add_route = [&](std::uint32_t instance, const Route& route) {
    return analysis.routes_[instance].insert(route).second;
  };

  // --- Origination.
  for (model::ProcessId p = 0; p < network.processes().size(); ++p) {
    const auto& process = network.processes()[p];
    const std::uint32_t inst = instances.instance_of[p];
    const auto& config = network.routers()[process.router];
    const auto& stanza = config.router_stanzas[process.stanza_index];
    if (config::is_conventional_igp(process.protocol)) {
      for (const model::InterfaceId i : process.covered_interfaces) {
        if (network.interfaces()[i].subnet) {
          add_route(inst, {*network.interfaces()[i].subnet, std::nullopt});
        }
      }
    } else {
      for (const auto& ns : stanza.networks) {
        add_route(inst, {ns.prefix(), std::nullopt});
      }
    }
  }

  // --- Local-RIB redistribution (connected / static): one-time injection.
  for (const auto& redist : network.redistribution_edges()) {
    if (redist.source_kind != model::RibKind::kLocal) continue;
    const auto& target = network.processes()[redist.target_process];
    const std::uint32_t inst = instances.instance_of[redist.target_process];
    const auto& config = network.routers()[redist.router];
    const auto& command = config.router_stanzas[target.stanza_index]
                              .redistributes[redist.redistribute_index];

    std::vector<Route> local_routes;
    if (command.source == config::RedistributeSource::kConnected ||
        command.source == config::RedistributeSource::kProtocol) {
      // kProtocol reaching here means a dangling source; treat as connected
      // so the designer's intent (import something locally) is preserved.
      for (const model::InterfaceId i :
           network.router_interfaces(redist.router)) {
        if (network.interfaces()[i].subnet) {
          local_routes.push_back({*network.interfaces()[i].subnet, {}});
        }
      }
    }
    if (command.source == config::RedistributeSource::kStatic) {
      for (const auto& sr : config.static_routes) {
        local_routes.push_back({sr.prefix(), {}});
      }
    }
    for (const Route& route : local_routes) {
      if (command.route_map) {
        const auto* rm = config.find_route_map(*command.route_map);
        if (rm != nullptr) {
          const auto verdict = model::route_map_evaluate(*rm, config, route);
          if (verdict.permitted) add_route(inst, verdict.route);
          continue;
        }
      }
      add_route(inst, route);
    }
  }

  // --- Pre-resolve session policies for internal sessions.
  struct InternalFlow {
    std::uint32_t from_instance;
    std::uint32_t to_instance;
    SessionPolicy sender_out;  // policy at the sending end
    SessionPolicy receiver_in;
  };
  std::vector<InternalFlow> flows;
  for (const auto& session : network.bgp_sessions()) {
    if (session.external() || !session.ebgp()) continue;
    // Flow into the configuring endpoint: remote instance -> local instance.
    const auto& local_process = network.processes()[session.local_process];
    const auto& local_config = network.routers()[local_process.router];
    const auto& local_stanza =
        local_config.router_stanzas[local_process.stanza_index];
    InternalFlow flow;
    flow.from_instance = instances.instance_of[session.remote_process];
    flow.to_instance = instances.instance_of[session.local_process];
    flow.receiver_in = {&local_config,
                        &local_stanza.neighbors[session.neighbor_index]};
    // The sender's outbound policy toward us, when the mirror session is
    // configured.
    const auto& remote_process = network.processes()[session.remote_process];
    const auto& remote_config = network.routers()[remote_process.router];
    const auto& remote_stanza =
        remote_config.router_stanzas[remote_process.stanza_index];
    for (const auto& nbr : remote_stanza.neighbors) {
      // Any interface address of the local router identifies us.
      bool ours = false;
      for (const model::InterfaceId i :
           network.router_interfaces(local_process.router)) {
        if (network.interfaces()[i].address == nbr.address) {
          ours = true;
          break;
        }
      }
      if (ours) {
        flow.sender_out = {&remote_config, &nbr};
        break;
      }
    }
    flows.push_back(flow);
  }

  // --- External session endpoints (for injection and announcement).
  struct ExternalEndpoint {
    std::uint32_t instance;
    SessionPolicy policy;
  };
  std::vector<ExternalEndpoint> external_endpoints;
  std::size_t endpoint_index = 0;
  auto endpoint_active = [&](std::size_t index) {
    return !options.active_external_endpoints ||
           options.active_external_endpoints->contains(index);
  };
  for (const auto& session : network.bgp_sessions()) {
    if (!session.external()) continue;
    const std::size_t index = endpoint_index++;
    if (!endpoint_active(index)) continue;
    const auto& process = network.processes()[session.local_process];
    const auto& config = network.routers()[process.router];
    const auto& stanza = config.router_stanzas[process.stanza_index];
    external_endpoints.push_back(
        {instances.instance_of[session.local_process],
         {&config, &stanza.neighbors[session.neighbor_index]}});
  }
  // External IGP adjacencies also exchange routes with the world; stanza
  // distribute-lists are their only policy hook.
  struct ExternalIgpEndpoint {
    std::uint32_t instance;
    const config::RouterConfig* config;
    const config::RouterStanza* stanza;
  };
  std::vector<ExternalIgpEndpoint> external_igp_endpoints;
  for (const auto& ext : network.external_igp_adjacencies()) {
    const std::size_t index = endpoint_index++;
    if (!endpoint_active(index)) continue;
    const auto& process = network.processes()[ext.process];
    const auto& config = network.routers()[process.router];
    external_igp_endpoints.push_back(
        {instances.instance_of[ext.process], &config,
         &config.router_stanzas[process.stanza_index]});
  }

  // --- BGP aggregation points ("aggregate-address", §3.1 summarization):
  // the summary originates once any contained more-specific is present.
  struct AggregatePoint {
    std::uint32_t instance;
    ip::Prefix prefix;
  };
  std::vector<AggregatePoint> aggregate_points;
  for (model::ProcessId p = 0; p < network.processes().size(); ++p) {
    const auto& process = network.processes()[p];
    if (process.protocol != config::RoutingProtocol::kBgp) continue;
    const auto& stanza = network.routers()[process.router]
                             .router_stanzas[process.stanza_index];
    for (const auto& aggregate : stanza.aggregates) {
      aggregate_points.push_back(
          {instances.instance_of[p], aggregate.prefix()});
    }
  }

  // --- Fixpoint propagation.
  bool changed = true;
  while (changed && analysis.iterations_ < options.max_iterations) {
    changed = false;
    ++analysis.iterations_;

    // Aggregation (suppression of more-specifics is not modeled — the
    // analysis stays an upper bound on reachability).
    for (const auto& point : aggregate_points) {
      bool contained = false;
      for (const auto& route : analysis.routes_[point.instance]) {
        if (route.prefix != point.prefix &&
            point.prefix.contains(route.prefix)) {
          contained = true;
          break;
        }
      }
      if (contained &&
          add_route(point.instance, {point.prefix, std::nullopt})) {
        changed = true;
      }
    }

    // External world -> instances.
    for (const auto& endpoint : external_endpoints) {
      for (const auto& prefix : analysis.external_origin_) {
        const Route route{prefix, std::nullopt};
        if (!session_permits(endpoint.policy, /*inbound=*/true, route)) {
          continue;
        }
        if (add_route(endpoint.instance, route)) changed = true;
      }
    }
    for (const auto& endpoint : external_igp_endpoints) {
      for (const auto& prefix : analysis.external_origin_) {
        const Route route{prefix, std::nullopt};
        if (!stanza_permits(*endpoint.config, *endpoint.stanza,
                            /*inbound=*/true, route)) {
          continue;
        }
        if (add_route(endpoint.instance, route)) changed = true;
      }
    }

    // Internal EBGP flows.
    for (const auto& flow : flows) {
      // Copy: the source set may grow while we insert into the target.
      const std::set<Route> source = analysis.routes_[flow.from_instance];
      for (const Route& route : source) {
        if (!session_permits(flow.sender_out, /*inbound=*/false, route)) {
          continue;
        }
        if (!session_permits(flow.receiver_in, /*inbound=*/true, route)) {
          continue;
        }
        if (add_route(flow.to_instance, route)) changed = true;
      }
    }

    // Redistribution between instances.
    for (const auto& redist : network.redistribution_edges()) {
      if (redist.source_kind != model::RibKind::kProcess) continue;
      const std::uint32_t from = instances.instance_of[redist.source_process];
      const std::uint32_t to = instances.instance_of[redist.target_process];
      if (from == to) continue;
      const auto& config = network.routers()[redist.router];
      const auto& target = network.processes()[redist.target_process];
      const auto& stanza = config.router_stanzas[target.stanza_index];
      const std::set<Route> source = analysis.routes_[from];
      for (const Route& route : source) {
        Route forwarded = route;
        if (redist.route_map) {
          const auto* rm = config.find_route_map(*redist.route_map);
          if (rm != nullptr) {
            const auto verdict = model::route_map_evaluate(*rm, config, route);
            if (!verdict.permitted) continue;
            forwarded = verdict.route;
          }
        }
        if (!stanza_permits(config, stanza, /*inbound=*/false, forwarded)) {
          continue;
        }
        if (add_route(to, forwarded)) changed = true;
      }
    }
  }

  // --- What the network announces to the world.
  for (const auto& endpoint : external_endpoints) {
    for (const Route& route : analysis.routes_[endpoint.instance]) {
      if (session_permits(endpoint.policy, /*inbound=*/false, route)) {
        analysis.announced_.insert(route);
      }
    }
  }
  for (const auto& endpoint : external_igp_endpoints) {
    for (const Route& route : analysis.routes_[endpoint.instance]) {
      if (stanza_permits(*endpoint.config, *endpoint.stanza,
                         /*inbound=*/false, route)) {
        analysis.announced_.insert(route);
      }
    }
  }
  return analysis;
}

bool ReachabilityAnalysis::instance_has_route_to(std::uint32_t instance,
                                                 ip::Ipv4Address addr) const {
  for (const auto& route : routes_[instance]) {
    if (route.prefix.length() > 0 && route.prefix.contains(addr)) return true;
  }
  return false;
}

bool ReachabilityAnalysis::instance_reaches_internet(
    std::uint32_t instance) const {
  for (const auto& route : routes_[instance]) {
    if (route.prefix.length() == 0) return true;  // default route
  }
  return false;
}

std::size_t ReachabilityAnalysis::external_route_count(
    std::uint32_t instance) const {
  std::size_t count = 0;
  for (const auto& route : routes_[instance]) {
    if (external_origin_.contains(route.prefix)) ++count;
  }
  return count;
}

bool ReachabilityAnalysis::two_way_reachable(std::uint32_t instance_a,
                                             ip::Ipv4Address addr_a,
                                             std::uint32_t instance_b,
                                             ip::Ipv4Address addr_b) const {
  return instance_has_route_to(instance_a, addr_b) &&
         instance_has_route_to(instance_b, addr_a);
}

}  // namespace rd::analysis
