#include "analysis/reachability.h"

#include <algorithm>
#include <string>
#include <utility>

#include "analysis/propagation.h"
#include "obs/obs.h"

namespace rd::analysis {

ReachabilityAnalysis ReachabilityAnalysis::run(
    const model::Network& network, const graph::InstanceSet& instances,
    const Options& options) {
  obs::Span run_span("reachability.run", "reachability");
  run_span.arg("instances", instances.instances.size());
  run_span.arg("naive", options.engine == Engine::kNaive ? 1 : 0);
  ReachabilityAnalysis analysis;
  const std::size_t n = instances.instances.size();

  // --- External offer universe (prop::external_universe): default route +
  // policy-mentioned prefixes + caller-supplied prefixes, internal subnets
  // excluded, sorted and deduplicated.
  analysis.external_origin_ =
      prop::external_universe(network, options.external_prefixes);

  prop::DiscoverOptions discover_options;
  discover_options.max_iterations = options.max_iterations;
  discover_options.active_external_endpoints =
      options.active_external_endpoints;
  const prop::Problem problem = prop::discover(
      network, instances, discover_options, analysis.external_origin_);
  prop::FixpointResult result =
      options.engine == Engine::kNaive
          ? prop::run_naive(problem)
          : prop::run_semi_naive(problem, options.shuffle_seed);

  analysis.routes_ = std::move(result.routes);
  analysis.announced_ = std::move(result.announced);
  analysis.iterations_ = result.iterations;
  analysis.converged_ = result.converged;

  // Logical-event counters: identical totals for both engines and at every
  // thread count (the fixpoint is confluent), so they belong in the
  // deterministic counter set. Summed once here, not per add_route.
  if (obs::counting_enabled()) {
    std::size_t total_routes = 0;
    for (const auto& routes : analysis.routes_) total_routes += routes.size();
    obs::counter("reachability.runs").add();
    obs::counter("reachability.iterations").add(result.iterations);
    obs::counter("reachability.routes").add(total_routes);
    obs::counter("reachability.announced").add(analysis.announced_.size());
  }

  // --- Covering index bookkeeping. Routes sort shortest-prefix-first, so
  // "holds a default" is just a front() check; the per-instance tries are
  // built on first query (see instance_has_route_to) — eager construction
  // cost rivaled the whole semi-naïve fixpoint at fleet scale, and many
  // callers never query coverage at all.
  analysis.route_tries_.resize(n);
  analysis.trie_built_.assign(n, 0);
  analysis.has_default_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& routes = analysis.routes_[i];
    if (!routes.empty() && routes.front().prefix.length() == 0) {
      analysis.has_default_[i] = 1;
    }
  }
  return analysis;
}

bool ReachabilityAnalysis::instance_holds(std::uint32_t instance,
                                          const model::Route& route) const {
  const auto& routes = routes_[instance];
  return std::binary_search(routes.begin(), routes.end(), route);
}

bool ReachabilityAnalysis::instance_has_route_to(std::uint32_t instance,
                                                 ip::Ipv4Address addr) const {
  if (!trie_built_[instance]) {
    // Routes are sorted shortest-prefix-first, so insert_uncovered stores
    // only a minimal cover — a prefix under an already-indexed cover can
    // never change the boolean covering answer below.
    for (const auto& route : routes_[instance]) {
      if (route.prefix.length() > 0) {
        route_tries_[instance].insert_uncovered(route.prefix, 1);
      }
    }
    trie_built_[instance] = 1;
  }
  return route_tries_[instance].longest_match(addr) != nullptr;
}

bool ReachabilityAnalysis::instance_reaches_internet(
    std::uint32_t instance) const {
  return has_default_[instance] != 0;
}

std::size_t ReachabilityAnalysis::external_route_count(
    std::uint32_t instance) const {
  std::size_t count = 0;
  for (const auto& route : routes_[instance]) {
    if (std::binary_search(external_origin_.begin(), external_origin_.end(),
                           route.prefix)) {
      ++count;
    }
  }
  return count;
}

bool ReachabilityAnalysis::two_way_reachable(std::uint32_t instance_a,
                                             ip::Ipv4Address addr_a,
                                             std::uint32_t instance_b,
                                             ip::Ipv4Address addr_b) const {
  return instance_has_route_to(instance_a, addr_b) &&
         instance_has_route_to(instance_b, addr_a);
}

std::string ReachabilityAnalysis::convergence_warning() const {
  if (converged_) return {};
  return "warning: route propagation stopped after " +
         std::to_string(iterations_) +
         " iterations without reaching a fixpoint; reachability results are "
         "a lower bound (raise Options::max_iterations)";
}

}  // namespace rd::analysis
