#include "analysis/reachability.h"

#include <algorithm>
#include <cstddef>
#include <tuple>
#include <utility>

#include "obs/obs.h"
#include "util/rng.h"

namespace rd::analysis {

namespace {

using model::Route;

/// Outbound/inbound policy of one BGP session endpoint, resolved in the
/// endpoint router's config.
struct SessionPolicy {
  const config::RouterConfig* config = nullptr;
  const config::BgpNeighbor* neighbor = nullptr;
};

/// Interpreting evaluation (the kNaive oracle path): named filters are
/// re-resolved in the owning config on every call.
bool session_permits(const SessionPolicy& policy, bool inbound,
                     const Route& route) {
  if (policy.config == nullptr || policy.neighbor == nullptr) return true;
  const auto& dl = inbound ? policy.neighbor->distribute_list_in
                           : policy.neighbor->distribute_list_out;
  if (dl && !model::distribute_list_permits(*policy.config, *dl, route)) {
    return false;
  }
  const auto& pl_name = inbound ? policy.neighbor->prefix_list_in
                                : policy.neighbor->prefix_list_out;
  if (pl_name) {
    const auto* pl = policy.config->find_prefix_list(*pl_name);
    if (pl != nullptr && !model::prefix_list_permits_route(*pl, route)) {
      return false;
    }
  }
  const auto& rm_name = inbound ? policy.neighbor->route_map_in
                                : policy.neighbor->route_map_out;
  if (rm_name) {
    const auto* rm = policy.config->find_route_map(*rm_name);
    if (rm != nullptr &&
        !model::route_map_evaluate(*rm, *policy.config, route).permitted) {
      return false;
    }
  }
  return true;
}

/// Stanza-level distribute-lists (IGP): apply all matching direction.
bool stanza_permits(const config::RouterConfig& config,
                    const config::RouterStanza& stanza, bool inbound,
                    const Route& route) {
  for (const auto& dl : stanza.distribute_lists) {
    if (dl.inbound != inbound) continue;
    if (!model::distribute_list_permits(config, dl.acl, route)) return false;
  }
  return true;
}

// --- Shared problem discovery ------------------------------------------------
//
// Both engines evaluate the same propagation rules; the Problem struct is
// the rule set resolved once — seeds, edges, endpoints — so the engines
// differ only in evaluation strategy.

struct InternalFlow {
  std::uint32_t from_instance = 0;
  std::uint32_t to_instance = 0;
  SessionPolicy sender_out;  // policy at the sending end
  SessionPolicy receiver_in;
};

struct ExternalEndpoint {
  std::uint32_t instance = 0;
  SessionPolicy policy;
};

/// External IGP adjacencies also exchange routes with the world; stanza
/// distribute-lists are their only policy hook.
struct ExternalIgpEndpoint {
  std::uint32_t instance = 0;
  const config::RouterConfig* config = nullptr;
  const config::RouterStanza* stanza = nullptr;
};

struct AggregatePoint {
  std::uint32_t instance = 0;
  ip::Prefix prefix;
};

/// A kProcess redistribution edge with its policy context resolved.
struct RedistEdge {
  std::uint32_t from_instance = 0;
  std::uint32_t to_instance = 0;
  const config::RouterConfig* config = nullptr;
  const config::RouterStanza* stanza = nullptr;  // target stanza
  const std::optional<std::string>* route_map = nullptr;
};

struct Problem {
  std::size_t instance_count = 0;
  std::size_t max_iterations = 0;
  std::vector<std::size_t> instance_process_counts;
  std::vector<std::pair<std::uint32_t, Route>> seeds;  // origination + local RIB
  std::vector<Route> universe;  // external offers, ascending by prefix
  std::vector<InternalFlow> flows;
  std::vector<ExternalEndpoint> external_endpoints;
  std::vector<ExternalIgpEndpoint> external_igp_endpoints;
  std::vector<AggregatePoint> aggregate_points;
  std::vector<RedistEdge> redist_edges;
};

Problem discover(const model::Network& network,
                 const graph::InstanceSet& instances,
                 const ReachabilityAnalysis::Options& options,
                 const std::set<ip::Prefix>& external_origin) {
  Problem problem;
  problem.instance_count = instances.instances.size();
  problem.max_iterations = options.max_iterations;
  problem.instance_process_counts.reserve(problem.instance_count);
  for (const auto& instance : instances.instances) {
    problem.instance_process_counts.push_back(instance.processes.size());
  }
  problem.universe.reserve(external_origin.size());
  for (const auto& prefix : external_origin) {
    problem.universe.push_back({prefix, std::nullopt});
  }

  // --- Origination seeds.
  for (model::ProcessId p = 0; p < network.processes().size(); ++p) {
    const auto& process = network.processes()[p];
    const std::uint32_t inst = instances.instance_of[p];
    const auto& config = network.routers()[process.router];
    const auto& stanza = config.router_stanzas[process.stanza_index];
    if (config::is_conventional_igp(process.protocol)) {
      for (const model::InterfaceId i : process.covered_interfaces) {
        if (network.interfaces()[i].subnet) {
          problem.seeds.emplace_back(
              inst, Route{*network.interfaces()[i].subnet, std::nullopt});
        }
      }
    } else {
      for (const auto& ns : stanza.networks) {
        problem.seeds.emplace_back(inst, Route{ns.prefix(), std::nullopt});
      }
    }
  }

  // --- Local-RIB redistribution (connected / static): one-time injection.
  for (const auto& redist : network.redistribution_edges()) {
    if (redist.source_kind != model::RibKind::kLocal) continue;
    const auto& target = network.processes()[redist.target_process];
    const std::uint32_t inst = instances.instance_of[redist.target_process];
    const auto& config = network.routers()[redist.router];
    const auto& command = config.router_stanzas[target.stanza_index]
                              .redistributes[redist.redistribute_index];

    std::vector<Route> local_routes;
    if (command.source == config::RedistributeSource::kConnected ||
        command.source == config::RedistributeSource::kProtocol) {
      // kProtocol reaching here means a dangling source; treat as connected
      // so the designer's intent (import something locally) is preserved.
      for (const model::InterfaceId i :
           network.router_interfaces(redist.router)) {
        if (network.interfaces()[i].subnet) {
          local_routes.push_back({*network.interfaces()[i].subnet, {}});
        }
      }
    }
    if (command.source == config::RedistributeSource::kStatic) {
      for (const auto& sr : config.static_routes) {
        local_routes.push_back({sr.prefix(), {}});
      }
    }
    for (const Route& route : local_routes) {
      if (command.route_map) {
        const auto* rm = config.find_route_map(*command.route_map);
        if (rm != nullptr) {
          const auto verdict = model::route_map_evaluate(*rm, config, route);
          if (verdict.permitted) problem.seeds.emplace_back(inst, verdict.route);
          continue;
        }
      }
      problem.seeds.emplace_back(inst, route);
    }
  }

  // --- Internal EBGP session flows.
  for (const auto& session : network.bgp_sessions()) {
    if (session.external() || !session.ebgp()) continue;
    // Flow into the configuring endpoint: remote instance -> local instance.
    const auto& local_process = network.processes()[session.local_process];
    const auto& local_config = network.routers()[local_process.router];
    const auto& local_stanza =
        local_config.router_stanzas[local_process.stanza_index];
    InternalFlow flow;
    flow.from_instance = instances.instance_of[session.remote_process];
    flow.to_instance = instances.instance_of[session.local_process];
    flow.receiver_in = {&local_config,
                        &local_stanza.neighbors[session.neighbor_index]};
    // The sender's outbound policy toward us, when the mirror session is
    // configured.
    const auto& remote_process = network.processes()[session.remote_process];
    const auto& remote_config = network.routers()[remote_process.router];
    const auto& remote_stanza =
        remote_config.router_stanzas[remote_process.stanza_index];
    for (const auto& nbr : remote_stanza.neighbors) {
      // Any interface address of the local router identifies us.
      bool ours = false;
      for (const model::InterfaceId i :
           network.router_interfaces(local_process.router)) {
        if (network.interfaces()[i].address == nbr.address) {
          ours = true;
          break;
        }
      }
      if (ours) {
        flow.sender_out = {&remote_config, &nbr};
        break;
      }
    }
    problem.flows.push_back(flow);
  }

  // --- External session endpoints (for injection and announcement).
  std::vector<std::size_t> active;
  if (options.active_external_endpoints) {
    active = *options.active_external_endpoints;
    std::sort(active.begin(), active.end());
  }
  std::size_t endpoint_index = 0;
  auto endpoint_active = [&](std::size_t index) {
    return !options.active_external_endpoints ||
           std::binary_search(active.begin(), active.end(), index);
  };
  for (const auto& session : network.bgp_sessions()) {
    if (!session.external()) continue;
    const std::size_t index = endpoint_index++;
    if (!endpoint_active(index)) continue;
    const auto& process = network.processes()[session.local_process];
    const auto& config = network.routers()[process.router];
    const auto& stanza = config.router_stanzas[process.stanza_index];
    problem.external_endpoints.push_back(
        {instances.instance_of[session.local_process],
         {&config, &stanza.neighbors[session.neighbor_index]}});
  }
  for (const auto& ext : network.external_igp_adjacencies()) {
    const std::size_t index = endpoint_index++;
    if (!endpoint_active(index)) continue;
    const auto& process = network.processes()[ext.process];
    const auto& config = network.routers()[process.router];
    problem.external_igp_endpoints.push_back(
        {instances.instance_of[ext.process], &config,
         &config.router_stanzas[process.stanza_index]});
  }

  // --- BGP aggregation points ("aggregate-address", §3.1 summarization):
  // the summary originates once any contained more-specific is present.
  for (model::ProcessId p = 0; p < network.processes().size(); ++p) {
    const auto& process = network.processes()[p];
    if (process.protocol != config::RoutingProtocol::kBgp) continue;
    const auto& stanza = network.routers()[process.router]
                             .router_stanzas[process.stanza_index];
    for (const auto& aggregate : stanza.aggregates) {
      problem.aggregate_points.push_back(
          {instances.instance_of[p], aggregate.prefix()});
    }
  }

  // --- Inter-instance redistribution edges.
  for (const auto& redist : network.redistribution_edges()) {
    if (redist.source_kind != model::RibKind::kProcess) continue;
    const std::uint32_t from = instances.instance_of[redist.source_process];
    const std::uint32_t to = instances.instance_of[redist.target_process];
    if (from == to) continue;
    const auto& config = network.routers()[redist.router];
    const auto& target = network.processes()[redist.target_process];
    problem.redist_edges.push_back(
        {from, to, &config, &config.router_stanzas[target.stanza_index],
         &redist.route_map});
  }
  return problem;
}

// --- Engines -----------------------------------------------------------------

struct FixpointResult {
  std::vector<std::vector<Route>> routes;  // per instance, sorted
  std::vector<Route> announced;            // sorted
  std::size_t iterations = 0;
  bool converged = true;
};

/// The original full-rescan evaluator, kept byte-for-byte in semantics as
/// the differential oracle: std::set storage, interpreting policy
/// evaluation, deep-copied source sets, a global `changed` flag.
FixpointResult run_naive(const Problem& problem) {
  FixpointResult result;
  std::vector<std::set<Route>> sets(problem.instance_count);
  auto add_route = [&](std::uint32_t instance, const Route& route) {
    return sets[instance].insert(route).second;
  };
  for (const auto& [instance, route] : problem.seeds) {
    add_route(instance, route);
  }

  bool changed = true;
  while (changed && result.iterations < problem.max_iterations) {
    changed = false;
    ++result.iterations;

    // Aggregation (suppression of more-specifics is not modeled — the
    // analysis stays an upper bound on reachability).
    for (const auto& point : problem.aggregate_points) {
      bool contained = false;
      for (const auto& route : sets[point.instance]) {
        if (route.prefix != point.prefix &&
            point.prefix.contains(route.prefix)) {
          contained = true;
          break;
        }
      }
      if (contained &&
          add_route(point.instance, {point.prefix, std::nullopt})) {
        changed = true;
      }
    }

    // External world -> instances.
    for (const auto& endpoint : problem.external_endpoints) {
      for (const Route& route : problem.universe) {
        if (!session_permits(endpoint.policy, /*inbound=*/true, route)) {
          continue;
        }
        if (add_route(endpoint.instance, route)) changed = true;
      }
    }
    for (const auto& endpoint : problem.external_igp_endpoints) {
      for (const Route& route : problem.universe) {
        if (!stanza_permits(*endpoint.config, *endpoint.stanza,
                            /*inbound=*/true, route)) {
          continue;
        }
        if (add_route(endpoint.instance, route)) changed = true;
      }
    }

    // Internal EBGP flows.
    for (const auto& flow : problem.flows) {
      // Copy: the source set may grow while we insert into the target.
      const std::set<Route> source = sets[flow.from_instance];
      for (const Route& route : source) {
        if (!session_permits(flow.sender_out, /*inbound=*/false, route)) {
          continue;
        }
        if (!session_permits(flow.receiver_in, /*inbound=*/true, route)) {
          continue;
        }
        if (add_route(flow.to_instance, route)) changed = true;
      }
    }

    // Redistribution between instances.
    for (const auto& edge : problem.redist_edges) {
      const std::set<Route> source = sets[edge.from_instance];
      for (const Route& route : source) {
        Route forwarded = route;
        if (*edge.route_map) {
          const auto* rm = edge.config->find_route_map(**edge.route_map);
          if (rm != nullptr) {
            const auto verdict =
                model::route_map_evaluate(*rm, *edge.config, route);
            if (!verdict.permitted) continue;
            forwarded = verdict.route;
          }
        }
        if (!stanza_permits(*edge.config, *edge.stanza, /*inbound=*/false,
                            forwarded)) {
          continue;
        }
        if (add_route(edge.to_instance, forwarded)) changed = true;
      }
    }
  }
  result.converged = !changed;

  // --- What the network announces to the world.
  std::set<Route> announced;
  for (const auto& endpoint : problem.external_endpoints) {
    for (const Route& route : sets[endpoint.instance]) {
      if (session_permits(endpoint.policy, /*inbound=*/false, route)) {
        announced.insert(route);
      }
    }
  }
  for (const auto& endpoint : problem.external_igp_endpoints) {
    for (const Route& route : sets[endpoint.instance]) {
      if (stanza_permits(*endpoint.config, *endpoint.stanza,
                         /*inbound=*/false, route)) {
        announced.insert(route);
      }
    }
  }
  result.announced.assign(announced.begin(), announced.end());
  result.routes.resize(problem.instance_count);
  for (std::size_t i = 0; i < problem.instance_count; ++i) {
    result.routes[i].assign(sets[i].begin(), sets[i].end());
  }
  return result;
}

/// One direction of a BGP session's policy chain, lowered to compiled
/// matchers. Null members mean "permit" — absent filters and dangling name
/// references alike, matching the interpreting path exactly.
struct CompiledSessionDir {
  const model::CompiledAclFilter* distribute_list = nullptr;
  const model::CompiledPrefixList* prefix_list = nullptr;
  const model::CompiledRouteMap* route_map = nullptr;

  bool permits(const Route& route) const {
    if (distribute_list && !distribute_list->permits_route(route)) {
      return false;
    }
    if (prefix_list && !prefix_list->permits_route(route)) return false;
    if (route_map && !route_map->evaluate(route).permitted) return false;
    return true;
  }
};

CompiledSessionDir compile_session_dir(model::PolicyCompiler& compiler,
                                       const SessionPolicy& policy,
                                       bool inbound) {
  CompiledSessionDir out;
  if (policy.config == nullptr || policy.neighbor == nullptr) return out;
  const auto& dl = inbound ? policy.neighbor->distribute_list_in
                           : policy.neighbor->distribute_list_out;
  if (dl) out.distribute_list = compiler.acl(*policy.config, *dl);
  const auto& pl = inbound ? policy.neighbor->prefix_list_in
                           : policy.neighbor->prefix_list_out;
  if (pl) out.prefix_list = compiler.prefix_list(*policy.config, *pl);
  const auto& rm = inbound ? policy.neighbor->route_map_in
                           : policy.neighbor->route_map_out;
  if (rm) out.route_map = compiler.route_map(*policy.config, *rm);
  return out;
}

/// Stanza distribute-lists of one direction; unresolvable ACL references
/// permit (as distribute_list_permits does) and are simply dropped.
struct CompiledStanzaDir {
  std::vector<const model::CompiledAclFilter*> acls;

  bool permits(const Route& route) const {
    for (const auto* acl : acls) {
      if (!acl->permits_route(route)) return false;
    }
    return true;
  }
};

CompiledStanzaDir compile_stanza_dir(model::PolicyCompiler& compiler,
                                     const config::RouterConfig& config,
                                     const config::RouterStanza& stanza,
                                     bool inbound) {
  CompiledStanzaDir out;
  for (const auto& dl : stanza.distribute_lists) {
    if (dl.inbound != inbound) continue;
    if (const auto* acl = compiler.acl(config, dl.acl)) out.acls.push_back(acl);
  }
  return out;
}

/// Open-addressed membership index over one instance's route log. Slots
/// hold 1-based log positions, so the table owns no Route storage, probes
/// stay in one flat allocation, and teardown is a single vector free —
/// a node-based std::unordered_set spent measurable time on both counts.
class RouteIndex {
 public:
  /// Size the table for `expected` entries up front, so bulk phases (the
  /// external-universe injection in particular) skip the doubling
  /// rehashes. Only honored while the table is still empty — resizing a
  /// populated table would invalidate its probe sequences.
  void reserve(std::size_t expected) {
    if (count_ != 0) return;
    std::size_t want = 16;
    while (want * 3 < expected * 4) want *= 2;
    if (want > slots_.size()) slots_.assign(want, 0);
  }

  /// True when `route` was absent; the caller must then append it to
  /// `log`, which this call has already indexed at position log.size().
  bool insert(const Route& route, const std::vector<Route>& log) {
    if (slots_.empty()) {
      slots_.resize(16, 0);
    } else if ((count_ + 1) * 4 > slots_.size() * 3) {
      grow(log);
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = model::RouteHash{}(route) & mask;
    while (slots_[i] != 0) {
      if (log[slots_[i] - 1] == route) return false;
      i = (i + 1) & mask;
    }
    slots_[i] = static_cast<std::uint32_t>(log.size()) + 1;
    ++count_;
    return true;
  }

 private:
  void grow(const std::vector<Route>& log) {
    std::vector<std::uint32_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, 0);
    const std::size_t mask = slots_.size() - 1;
    for (const std::uint32_t slot : old) {
      if (slot == 0) continue;
      std::size_t i = model::RouteHash{}(log[slot - 1]) & mask;
      while (slots_[i] != 0) i = (i + 1) & mask;
      slots_[i] = slot;
    }
  }

  std::vector<std::uint32_t> slots_;
  std::size_t count_ = 0;
};

/// The delta-driven evaluator: per-instance append-only route logs with a
/// hashed membership index, per-edge cursors into the source log, and a
/// dirty-instance worklist. Each edge evaluates each source route exactly
/// once over the run, through policies compiled once up front.
FixpointResult run_semi_naive(const Problem& problem,
                              std::optional<std::uint64_t> shuffle_seed) {
  FixpointResult result;
  const std::size_t n = problem.instance_count;

  // --- Compile every edge's policy chain. The compiler dedups by AST node,
  // so edges sharing a policy share one compiled object — and one route-map
  // verdict memo.
  model::PolicyCompiler compiler;
  struct CompiledFlow {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    CompiledSessionDir sender_out;
    CompiledSessionDir receiver_in;
  };
  std::vector<CompiledFlow> flows;
  flows.reserve(problem.flows.size());
  for (const auto& flow : problem.flows) {
    flows.push_back({flow.from_instance, flow.to_instance,
                     compile_session_dir(compiler, flow.sender_out, false),
                     compile_session_dir(compiler, flow.receiver_in, true)});
  }
  struct CompiledRedist {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    const model::CompiledRouteMap* route_map = nullptr;  // null: pass through
    CompiledStanzaDir outbound;
  };
  std::vector<CompiledRedist> redists;
  redists.reserve(problem.redist_edges.size());
  for (const auto& edge : problem.redist_edges) {
    CompiledRedist compiled;
    compiled.from = edge.from_instance;
    compiled.to = edge.to_instance;
    if (*edge.route_map) {
      compiled.route_map = compiler.route_map(*edge.config, **edge.route_map);
    }
    compiled.outbound =
        compile_stanza_dir(compiler, *edge.config, *edge.stanza, false);
    redists.push_back(std::move(compiled));
  }
  struct CompiledExternal {
    std::uint32_t instance = 0;
    CompiledSessionDir inbound;
    CompiledSessionDir outbound;
  };
  std::vector<CompiledExternal> externals;
  externals.reserve(problem.external_endpoints.size());
  for (const auto& endpoint : problem.external_endpoints) {
    externals.push_back({endpoint.instance,
                         compile_session_dir(compiler, endpoint.policy, true),
                         compile_session_dir(compiler, endpoint.policy, false)});
  }
  struct CompiledIgpExternal {
    std::uint32_t instance = 0;
    CompiledStanzaDir inbound;
    CompiledStanzaDir outbound;
  };
  std::vector<CompiledIgpExternal> igp_externals;
  igp_externals.reserve(problem.external_igp_endpoints.size());
  for (const auto& endpoint : problem.external_igp_endpoints) {
    igp_externals.push_back(
        {endpoint.instance,
         compile_stanza_dir(compiler, *endpoint.config, *endpoint.stanza, true),
         compile_stanza_dir(compiler, *endpoint.config, *endpoint.stanza,
                            false)});
  }

  // --- Route logs: append-only per instance, with an open-addressed
  // membership index. Only instances that face the external world receive
  // the offer universe, so only they reserve capacity for it; everyone
  // gets a per-process route allowance so growth doesn't dominate.
  std::vector<std::vector<Route>> log(n);
  std::vector<RouteIndex> member(n);
  std::vector<char> dirty(n, 0);
  std::vector<char> faces_world(n, 0);
  for (const auto& endpoint : externals) faces_world[endpoint.instance] = 1;
  for (const auto& endpoint : igp_externals) faces_world[endpoint.instance] = 1;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t expected =
        (faces_world[i] ? problem.universe.size() : 0) +
        4 * problem.instance_process_counts[i];
    log[i].reserve(expected);
    member[i].reserve(expected);
  }
  auto add_route = [&](std::uint32_t instance, const Route& route) {
    if (!member[instance].insert(route, log[instance])) return false;
    log[instance].push_back(route);
    dirty[instance] = 1;
    return true;
  };

  for (const auto& [instance, route] : problem.seeds) {
    add_route(instance, route);
  }
  // External injection happens exactly once: the offer universe and the
  // inbound policies are constant, so re-offering every iteration (as the
  // naïve loop does) can never add anything new after the first pass.
  // Endpoints sharing an instance and a compiled chain are interchangeable
  // here (identical offers, identical announcements below), so each
  // distinct (instance, chain) pair is evaluated once.
  std::set<std::tuple<std::uint32_t, const void*, const void*, const void*>>
      seen_session;
  auto session_seen = [&](std::uint32_t instance,
                          const CompiledSessionDir& dir) {
    return !seen_session
                .insert({instance, dir.distribute_list, dir.prefix_list,
                         dir.route_map})
                .second;
  };
  std::set<std::pair<std::uint32_t,
                     std::vector<const model::CompiledAclFilter*>>>
      seen_stanza;
  auto stanza_seen = [&](std::uint32_t instance,
                         const CompiledStanzaDir& dir) {
    return !seen_stanza.insert({instance, dir.acls}).second;
  };
  for (const auto& endpoint : externals) {
    if (session_seen(endpoint.instance, endpoint.inbound)) continue;
    for (const Route& route : problem.universe) {
      if (endpoint.inbound.permits(route)) add_route(endpoint.instance, route);
    }
  }
  for (const auto& endpoint : igp_externals) {
    if (stanza_seen(endpoint.instance, endpoint.inbound)) continue;
    for (const Route& route : problem.universe) {
      if (endpoint.inbound.permits(route)) add_route(endpoint.instance, route);
    }
  }

  // --- Edges grouped by source instance, each holding a cursor into the
  // source log. An aggregation point is an edge from an instance to itself.
  struct Edge {
    enum class Kind : std::uint8_t { kFlow, kRedist, kAggregate };
    Kind kind = Kind::kFlow;
    std::size_t index = 0;   // into flows / redists / aggregate_points
    std::size_t cursor = 0;  // first unseen entry of the source log
  };
  std::vector<std::vector<Edge>> edges_by_source(n);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    edges_by_source[flows[i].from].push_back({Edge::Kind::kFlow, i, 0});
  }
  for (std::size_t i = 0; i < redists.size(); ++i) {
    edges_by_source[redists[i].from].push_back({Edge::Kind::kRedist, i, 0});
  }
  for (std::size_t i = 0; i < problem.aggregate_points.size(); ++i) {
    edges_by_source[problem.aggregate_points[i].instance].push_back(
        {Edge::Kind::kAggregate, i, 0});
  }
  if (shuffle_seed) {
    // Fisher–Yates per source list. The fixpoint is confluent, so this can
    // only change the order work is discovered in, never the result — the
    // differential stress test runs many seeds to prove it.
    util::Rng rng(*shuffle_seed);
    for (auto& edges : edges_by_source) {
      for (std::size_t i = edges.size(); i > 1; --i) {
        std::swap(edges[i - 1], edges[rng.below(i)]);
      }
    }
  }
  std::vector<char> aggregate_done(problem.aggregate_points.size(), 0);

  // --- Worklist rounds. A round drains every dirty instance; an edge only
  // looks at log entries appended since its cursor. Routes discovered
  // mid-round land in the next round's worklist.
  std::vector<std::uint32_t> current;
  while (true) {
    current.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
      if (dirty[i]) {
        current.push_back(i);
        dirty[i] = 0;
      }
    }
    if (current.empty()) break;
    if (result.iterations >= problem.max_iterations) {
      result.converged = false;
      break;
    }
    ++result.iterations;

    // Per-round span with the semi-naïve delta sizes: how many instances
    // were dirty and how many routes this round appended. The size sum is
    // only taken when tracing is on.
    obs::Span round_span("reachability.round", "reachability");
    std::size_t before = 0;
    if (round_span.armed()) {
      round_span.arg("round", result.iterations);
      round_span.arg("dirty_instances", current.size());
      for (const auto& entries : log) before += entries.size();
    }

    for (const std::uint32_t instance : current) {
      for (Edge& edge : edges_by_source[instance]) {
        // Snapshot the bound: entries appended while this edge runs (e.g.
        // an aggregate writing into its own source) stay for the next
        // round. Entries are read by index — push_back may reallocate.
        const std::size_t bound = log[instance].size();
        switch (edge.kind) {
          case Edge::Kind::kFlow: {
            const CompiledFlow& flow = flows[edge.index];
            for (std::size_t r = edge.cursor; r < bound; ++r) {
              const Route route = log[instance][r];
              if (!flow.sender_out.permits(route)) continue;
              if (!flow.receiver_in.permits(route)) continue;
              add_route(flow.to, route);
            }
            break;
          }
          case Edge::Kind::kRedist: {
            const CompiledRedist& redist = redists[edge.index];
            for (std::size_t r = edge.cursor; r < bound; ++r) {
              Route forwarded = log[instance][r];
              if (redist.route_map) {
                const auto& verdict = redist.route_map->evaluate(forwarded);
                if (!verdict.permitted) continue;
                forwarded = verdict.route;
              }
              if (!redist.outbound.permits(forwarded)) continue;
              add_route(redist.to, forwarded);
            }
            break;
          }
          case Edge::Kind::kAggregate: {
            if (aggregate_done[edge.index]) break;
            const AggregatePoint& point = problem.aggregate_points[edge.index];
            for (std::size_t r = edge.cursor; r < bound; ++r) {
              const Route route = log[instance][r];
              if (route.prefix != point.prefix &&
                  point.prefix.contains(route.prefix)) {
                add_route(point.instance, {point.prefix, std::nullopt});
                aggregate_done[edge.index] = 1;
                break;
              }
            }
            break;
          }
        }
        edge.cursor = bound;
      }
    }
    if (round_span.armed()) {
      std::size_t after = 0;
      for (const auto& entries : log) after += entries.size();
      round_span.arg("routes_appended", after - before);
    }
  }

  // --- Announce pass, through the compiled outbound chains: one
  // evaluation per distinct (instance, chain) pair, deduplicated through a
  // membership index as it is collected — endpoints announce heavily
  // overlapping sets, and sorting the concatenation was measurably slower
  // than probing per permitted route.
  seen_session.clear();
  seen_stanza.clear();
  RouteIndex announced_member;
  auto announce = [&](const Route& route) {
    if (announced_member.insert(route, result.announced)) {
      result.announced.push_back(route);
    }
  };
  for (const auto& endpoint : externals) {
    if (session_seen(endpoint.instance, endpoint.outbound)) continue;
    for (const Route& route : log[endpoint.instance]) {
      if (endpoint.outbound.permits(route)) announce(route);
    }
  }
  for (const auto& endpoint : igp_externals) {
    if (stanza_seen(endpoint.instance, endpoint.outbound)) continue;
    for (const Route& route : log[endpoint.instance]) {
      if (endpoint.outbound.permits(route)) announce(route);
    }
  }
  std::sort(result.announced.begin(), result.announced.end());

  result.routes = std::move(log);
  for (auto& routes : result.routes) {
    std::sort(routes.begin(), routes.end());  // membership index kept us
                                              // duplicate-free already
  }
  return result;
}

}  // namespace

ReachabilityAnalysis ReachabilityAnalysis::run(
    const model::Network& network, const graph::InstanceSet& instances,
    const Options& options) {
  obs::Span run_span("reachability.run", "reachability");
  run_span.arg("instances", instances.instances.size());
  run_span.arg("naive", options.engine == Engine::kNaive ? 1 : 0);
  ReachabilityAnalysis analysis;
  const std::size_t n = instances.instances.size();

  // --- External offer universe: default route + policy-mentioned prefixes
  // + caller-supplied prefixes. Internal subnets are excluded so external
  // origin stays meaningful. Candidates are collected into a vector and
  // sorted once — at fleet scale there are thousands, and the internal
  // test runs against a covering trie of interface subnets instead of
  // Network's per-call linear interface scan.
  std::vector<ip::Prefix> origin;
  origin.push_back(ip::Prefix(ip::Ipv4Address(0u), 0));
  for (const auto& config : network.routers()) {
    for (const auto& acl : config.access_lists) {
      for (const auto& rule : acl.rules) {
        if (rule.action != config::FilterAction::kPermit) continue;
        if (!rule.any_source && !rule.extended) {
          origin.push_back(rule.source);
        }
      }
    }
    for (const auto& pl : config.prefix_lists) {
      for (const auto& entry : pl.entries) {
        if (entry.action == config::FilterAction::kPermit) {
          origin.push_back(entry.prefix);
        }
      }
    }
  }
  for (const auto& prefix : options.external_prefixes) {
    origin.push_back(prefix);
  }
  std::sort(origin.begin(), origin.end());
  origin.erase(std::unique(origin.begin(), origin.end()), origin.end());
  ip::PrefixTrie<char> internal;
  for (const auto& itf : network.interfaces()) {
    if (itf.subnet) internal.insert(*itf.subnet, 1);
    for (const auto& secondary : itf.secondary_subnets) {
      internal.insert(secondary, 1);
    }
  }
  std::erase_if(origin, [&](const ip::Prefix& prefix) {
    return prefix.length() > 0 &&
           internal.longest_match(prefix.network()) != nullptr;
  });
  analysis.external_origin_ =
      std::set<ip::Prefix>(origin.begin(), origin.end());

  const Problem problem =
      discover(network, instances, options, analysis.external_origin_);
  FixpointResult result = options.engine == Engine::kNaive
                              ? run_naive(problem)
                              : run_semi_naive(problem, options.shuffle_seed);

  analysis.routes_ = std::move(result.routes);
  analysis.announced_ = std::move(result.announced);
  analysis.iterations_ = result.iterations;
  analysis.converged_ = result.converged;

  // Logical-event counters: identical totals for both engines and at every
  // thread count (the fixpoint is confluent), so they belong in the
  // deterministic counter set. Summed once here, not per add_route.
  if (obs::counting_enabled()) {
    std::size_t total_routes = 0;
    for (const auto& routes : analysis.routes_) total_routes += routes.size();
    obs::counter("reachability.runs").add();
    obs::counter("reachability.iterations").add(result.iterations);
    obs::counter("reachability.routes").add(total_routes);
    obs::counter("reachability.announced").add(analysis.announced_.size());
  }

  // --- Covering index bookkeeping. Routes sort shortest-prefix-first, so
  // "holds a default" is just a front() check; the per-instance tries are
  // built on first query (see instance_has_route_to) — eager construction
  // cost rivaled the whole semi-naïve fixpoint at fleet scale, and many
  // callers never query coverage at all.
  analysis.route_tries_.resize(n);
  analysis.trie_built_.assign(n, 0);
  analysis.has_default_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& routes = analysis.routes_[i];
    if (!routes.empty() && routes.front().prefix.length() == 0) {
      analysis.has_default_[i] = 1;
    }
  }
  return analysis;
}

bool ReachabilityAnalysis::instance_holds(std::uint32_t instance,
                                          const model::Route& route) const {
  const auto& routes = routes_[instance];
  return std::binary_search(routes.begin(), routes.end(), route);
}

bool ReachabilityAnalysis::instance_has_route_to(std::uint32_t instance,
                                                 ip::Ipv4Address addr) const {
  if (!trie_built_[instance]) {
    // Routes are sorted shortest-prefix-first, so insert_uncovered stores
    // only a minimal cover — a prefix under an already-indexed cover can
    // never change the boolean covering answer below.
    for (const auto& route : routes_[instance]) {
      if (route.prefix.length() > 0) {
        route_tries_[instance].insert_uncovered(route.prefix, 1);
      }
    }
    trie_built_[instance] = 1;
  }
  return route_tries_[instance].longest_match(addr) != nullptr;
}

bool ReachabilityAnalysis::instance_reaches_internet(
    std::uint32_t instance) const {
  return has_default_[instance] != 0;
}

std::size_t ReachabilityAnalysis::external_route_count(
    std::uint32_t instance) const {
  std::size_t count = 0;
  for (const auto& route : routes_[instance]) {
    if (external_origin_.contains(route.prefix)) ++count;
  }
  return count;
}

bool ReachabilityAnalysis::two_way_reachable(std::uint32_t instance_a,
                                             ip::Ipv4Address addr_a,
                                             std::uint32_t instance_b,
                                             ip::Ipv4Address addr_b) const {
  return instance_has_route_to(instance_a, addr_b) &&
         instance_has_route_to(instance_b, addr_a);
}

std::string ReachabilityAnalysis::convergence_warning() const {
  if (converged_) return {};
  return "warning: route propagation stopped after " +
         std::to_string(iterations_) +
         " iterations without reaching a fixpoint; reachability results are "
         "a lower bound (raise Options::max_iterations)";
}

}  // namespace rd::analysis
