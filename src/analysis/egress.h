#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/reachability.h"
#include "graph/instances.h"
#include "model/network.h"
#include "util/thread_pool.h"

namespace rd::analysis {

/// Egress-point attribution (paper §5.1: "will packets sent to the outside
/// world by router 3 use the egress point at the far left of the network,
/// or the far right?").
///
/// Each external connection (EBGP session or external-facing IGP adjacency)
/// is an entry/egress point. The analysis runs the route-propagation
/// fixpoint once per point with only that point active; an instance (and
/// hence the routers attached to it) can use a point as egress exactly when
/// externally-originated routes from that point reach it.
class EgressAnalysis {
 public:
  struct EgressPoint {
    std::size_t index = 0;  // endpoint index (sessions first, then IGP)
    model::RouterId router = model::kInvalidId;
    std::string description;  // neighbor address or interface name
  };

  /// One independent fixpoint per point, fanned out across `pool`; the
  /// per-point results merge in point order, so output is identical at any
  /// thread count.
  static EgressAnalysis run(const model::Network& network,
                            const graph::InstanceSet& instances,
                            const ReachabilityAnalysis::Options& base,
                            util::ThreadPool& pool);
  static EgressAnalysis run(const model::Network& network,
                            const graph::InstanceSet& instances,
                            const ReachabilityAnalysis::Options& base);
  static EgressAnalysis run(const model::Network& network,
                            const graph::InstanceSet& instances) {
    return run(network, instances, ReachabilityAnalysis::Options{});
  }

  const std::vector<EgressPoint>& points() const noexcept { return points_; }

  /// Endpoint indices usable as egress by an instance.
  const std::vector<std::size_t>& instance_egress(
      std::uint32_t instance) const {
    return per_instance_[instance];
  }

  /// Endpoint indices usable by a router (union over the instances of its
  /// processes).
  std::vector<std::size_t> router_egress(const model::Network& network,
                                         const graph::InstanceSet& instances,
                                         model::RouterId router) const;

 private:
  std::vector<EgressPoint> points_;
  std::vector<std::vector<std::size_t>> per_instance_;
};

}  // namespace rd::analysis
