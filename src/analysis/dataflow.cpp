#include "analysis/dataflow.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>

#include "analysis/vulnerability.h"
#include "obs/obs.h"

namespace rd::analysis {

std::uint8_t distance_internal(config::RoutingProtocol protocol) noexcept {
  using config::RoutingProtocol;
  switch (protocol) {
    case RoutingProtocol::kEigrp: return 90;
    case RoutingProtocol::kIgrp: return 100;
    case RoutingProtocol::kOspf: return 110;
    case RoutingProtocol::kIsis: return 115;
    case RoutingProtocol::kRip: return 120;
    case RoutingProtocol::kBgp: return 200;  // IBGP
  }
  return 255;
}

std::uint8_t distance_external(config::RoutingProtocol protocol) noexcept {
  using config::RoutingProtocol;
  switch (protocol) {
    case RoutingProtocol::kEigrp: return 170;
    case RoutingProtocol::kIgrp: return 100;
    case RoutingProtocol::kOspf: return 110;  // OSPF external
    case RoutingProtocol::kIsis: return 115;
    case RoutingProtocol::kRip: return 120;
    case RoutingProtocol::kBgp: return 200;  // redistributed into BGP
  }
  return 255;
}

MetricClass metric_class(config::RoutingProtocol protocol) noexcept {
  using config::RoutingProtocol;
  switch (protocol) {
    case RoutingProtocol::kRip: return MetricClass::kHopCount;
    case RoutingProtocol::kOspf:
    case RoutingProtocol::kIsis: return MetricClass::kCost;
    case RoutingProtocol::kEigrp:
    case RoutingProtocol::kIgrp: return MetricClass::kComposite;
    case RoutingProtocol::kBgp: return MetricClass::kPath;
  }
  return MetricClass::kCost;
}

std::string_view metric_class_name(MetricClass cls) noexcept {
  switch (cls) {
    case MetricClass::kHopCount: return "hop-count";
    case MetricClass::kCost: return "cost";
    case MetricClass::kComposite: return "composite";
    case MetricClass::kPath: return "path-attribute";
  }
  return "cost";
}

std::string instance_label(const graph::InstanceSet& set, std::uint32_t i) {
  const auto& inst = set.instances[i];
  std::string label = "instance ";
  label += std::to_string(i + 1);
  label += " (";
  label += config::to_keyword(inst.protocol);
  if (inst.bgp_as) {
    label += " as ";
    label += std::to_string(*inst.bgp_as);
  }
  label += ')';
  return label;
}

namespace {

using model::Route;

struct FactHash {
  std::size_t operator()(const RouteFact& fact) const noexcept {
    std::uint64_t h = model::RouteHash{}(fact.route);
    h = h * 0x9e3779b97f4a7c15ULL + fact.origin;
    h = h * 0x9e3779b97f4a7c15ULL + fact.exit_router;
    h ^= h >> 32;
    return static_cast<std::size_t>(h);
  }
};

/// Session-direction policy chain (distribute-list, prefix-list, route-map),
/// mirroring the reachability engine's session_permits. The route-map goes
/// through the compiler so sessions sharing a policy share a verdict memo.
bool session_permits(model::PolicyCompiler& compiler,
                     const config::RouterConfig* config,
                     const config::BgpNeighbor* neighbor, bool inbound,
                     const Route& route) {
  if (config == nullptr || neighbor == nullptr) return true;
  const auto& dl =
      inbound ? neighbor->distribute_list_in : neighbor->distribute_list_out;
  if (dl && !model::distribute_list_permits(*config, *dl, route)) return false;
  const auto& pl_name =
      inbound ? neighbor->prefix_list_in : neighbor->prefix_list_out;
  if (pl_name) {
    const auto* pl = config->find_prefix_list(*pl_name);
    if (pl != nullptr && !model::prefix_list_permits_route(*pl, route)) {
      return false;
    }
  }
  const auto& rm_name =
      inbound ? neighbor->route_map_in : neighbor->route_map_out;
  if (rm_name) {
    const auto* rm = compiler.route_map(*config, *rm_name);
    if (rm != nullptr && !rm->evaluate(route).permitted) return false;
  }
  return true;
}

/// Outbound stanza distribute-lists filter what a process exports — applied
/// to redistribution exactly as the reachability engine applies them.
bool stanza_out_permits(const config::RouterConfig& config,
                        const config::RouterStanza& stanza,
                        const Route& route) {
  for (const auto& dl : stanza.distribute_lists) {
    if (dl.inbound) continue;
    if (!model::distribute_list_permits(config, dl.acl, route)) return false;
  }
  return true;
}

/// 1-based source line of the redistribute command behind a model edge.
std::size_t redistribute_line(const model::Network& network,
                              const model::RedistributionEdge& edge) {
  const auto& process = network.processes()[edge.target_process];
  const auto& stanza =
      network.routers()[edge.router].router_stanzas[process.stanza_index];
  return stanza.redistributes[edge.redistribute_index].line;
}

/// Per-edge resolved evaluation context (kept off the public edge struct).
struct EdgeAux {
  const config::RouterConfig* config = nullptr;        // entry-side router
  const config::RouterStanza* target_stanza = nullptr; // kRedistribution
  const model::CompiledRouteMap* map = nullptr;        // null: pass-through
  const config::BgpNeighbor* receiver_in = nullptr;    // kSession
  const config::RouterConfig* sender_config = nullptr; // kSession
  const config::BgpNeighbor* sender_out = nullptr;     // kSession
};

Finding make_finding(model::RouterId router, std::string subject,
                     std::string detail, std::size_t line,
                     model::RouterId router_b = model::kInvalidId) {
  Finding f;
  f.router = router;
  f.router_b = router_b;
  f.subject = std::move(subject);
  f.detail = std::move(detail);
  f.where.line = line;
  return f;
}

std::string router_name(const model::Network& network, model::RouterId r) {
  return r == model::kInvalidId ? std::string("?")
                                : network.routers()[r].hostname;
}

}  // namespace

InstanceDataflow::InstanceDataflow(const model::Network& network,
                                   const graph::InstanceGraph& graph) {
  const auto& set = graph.set;
  const std::size_t n = set.instances.size();
  model::PolicyCompiler compiler;
  std::vector<EdgeAux> aux;

  // --- Edges: cross-instance redistribution commands, in model order.
  const auto& redists = network.redistribution_edges();
  for (std::size_t m = 0; m < redists.size(); ++m) {
    const auto& redist = redists[m];
    if (redist.source_kind != model::RibKind::kProcess) continue;
    const std::uint32_t from = set.instance_of[redist.source_process];
    const std::uint32_t to = set.instance_of[redist.target_process];
    if (from == to) continue;
    const auto& config = network.routers()[redist.router];
    const auto& target = network.processes()[redist.target_process];
    DataflowEdge edge;
    edge.kind = DataflowEdge::Kind::kRedistribution;
    edge.from = from;
    edge.to = to;
    edge.router = redist.router;
    edge.exit_router = redist.router;
    edge.model_index = m;
    edge.line = redistribute_line(network, redist);
    edge.route_map = redist.route_map;
    EdgeAux a;
    a.config = &config;
    a.target_stanza = &config.router_stanzas[target.stanza_index];
    if (redist.route_map) a.map = compiler.route_map(config, *redist.route_map);
    edges_.push_back(std::move(edge));
    aux.push_back(a);
  }

  // --- Edges: internal EBGP sessions (one per direction: remote -> local).
  const auto& sessions = network.bgp_sessions();
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    const auto& session = sessions[s];
    if (session.external() || !session.ebgp()) continue;
    const auto& local = network.processes()[session.local_process];
    const auto& remote = network.processes()[session.remote_process];
    const auto& local_config = network.routers()[local.router];
    const auto& local_stanza = local_config.router_stanzas[local.stanza_index];
    DataflowEdge edge;
    edge.kind = DataflowEdge::Kind::kSession;
    edge.from = set.instance_of[session.remote_process];
    edge.to = set.instance_of[session.local_process];
    edge.router = local.router;
    edge.exit_router = remote.router;
    edge.model_index = s;
    edge.line = local_stanza.neighbors[session.neighbor_index].line;
    EdgeAux a;
    a.config = &local_config;
    a.receiver_in = &local_stanza.neighbors[session.neighbor_index];
    // The sender's outbound policy toward us, when the mirror session is
    // configured: any interface address of the local router identifies us.
    const auto& remote_config = network.routers()[remote.router];
    const auto& remote_stanza =
        remote_config.router_stanzas[remote.stanza_index];
    for (const auto& nbr : remote_stanza.neighbors) {
      bool ours = false;
      for (const model::InterfaceId i :
           network.router_interfaces(local.router)) {
        if (network.interfaces()[i].address == nbr.address) {
          ours = true;
          break;
        }
      }
      if (ours) {
        a.sender_config = &remote_config;
        a.sender_out = &nbr;
        break;
      }
    }
    edges_.push_back(std::move(edge));
    aux.push_back(a);
  }

  // --- Seeds, mirroring the reachability engine's discovery.
  std::vector<std::vector<RouteFact>> logs(n);
  std::vector<std::unordered_set<RouteFact, FactHash>> present(n);
  auto add_fact = [&](std::uint32_t inst, const RouteFact& fact) {
    if (!present[inst].insert(fact).second) return false;
    logs[inst].push_back(fact);
    ++total_facts_;
    return true;
  };
  // Origination: IGP covered subnets / BGP network statements.
  for (model::ProcessId p = 0; p < network.processes().size(); ++p) {
    const auto& process = network.processes()[p];
    const std::uint32_t inst = set.instance_of[p];
    const auto& config = network.routers()[process.router];
    const auto& stanza = config.router_stanzas[process.stanza_index];
    if (config::is_conventional_igp(process.protocol)) {
      for (const model::InterfaceId i : process.covered_interfaces) {
        if (network.interfaces()[i].subnet) {
          add_fact(inst, {inst, model::kInvalidId,
                          {*network.interfaces()[i].subnet, std::nullopt}});
        }
      }
    } else {
      for (const auto& ns : stanza.networks) {
        add_fact(inst, {inst, model::kInvalidId, {ns.prefix(), std::nullopt}});
      }
    }
  }
  // Local-RIB redistribution (connected / static) through its route-map.
  for (const auto& redist : redists) {
    if (redist.source_kind != model::RibKind::kLocal) continue;
    const std::uint32_t inst = set.instance_of[redist.target_process];
    const auto& target = network.processes()[redist.target_process];
    const auto& config = network.routers()[redist.router];
    const auto& command = config.router_stanzas[target.stanza_index]
                              .redistributes[redist.redistribute_index];
    std::vector<Route> local_routes;
    if (command.source == config::RedistributeSource::kConnected ||
        command.source == config::RedistributeSource::kProtocol) {
      for (const model::InterfaceId i :
           network.router_interfaces(redist.router)) {
        if (network.interfaces()[i].subnet) {
          local_routes.push_back({*network.interfaces()[i].subnet, {}});
        }
      }
    }
    if (command.source == config::RedistributeSource::kStatic) {
      for (const auto& sr : config.static_routes) {
        local_routes.push_back({sr.prefix(), {}});
      }
    }
    for (const Route& route : local_routes) {
      if (command.route_map) {
        const auto* rm = compiler.route_map(config, *command.route_map);
        if (rm != nullptr) {
          const auto& verdict = rm->evaluate(route);
          if (verdict.permitted) {
            add_fact(inst, {inst, model::kInvalidId, verdict.route});
          }
          continue;
        }
      }
      add_fact(inst, {inst, model::kInvalidId, route});
    }
  }
  // BGP aggregates, as unconditional origination (the abstract domain does
  // not track the contained-more-specific trigger the concrete engine
  // models — over-approximating keeps the rules sound for loop detection).
  for (model::ProcessId p = 0; p < network.processes().size(); ++p) {
    const auto& process = network.processes()[p];
    if (process.protocol != config::RoutingProtocol::kBgp) continue;
    const auto& stanza = network.routers()[process.router]
                             .router_stanzas[process.stanza_index];
    for (const auto& aggregate : stanza.aggregates) {
      add_fact(set.instance_of[p],
               {set.instance_of[p], model::kInvalidId,
                {aggregate.prefix(), std::nullopt}});
    }
  }

  // --- Semi-naïve fixpoint: per-edge cursors into the source instance's
  // append-only log; edges fire in index order, so entry records and loop
  // events come out in a deterministic order.
  std::vector<std::size_t> cursor(edges_.size(), 0);
  std::set<std::pair<std::size_t, std::uint32_t>> loops_seen;
  std::set<std::pair<std::uint32_t, std::uint32_t>> entries_seen;
  constexpr std::size_t kMaxRounds = 256;
  bool changed = true;
  while (changed) {
    if (iterations_ == kMaxRounds) {
      converged_ = false;
      break;
    }
    ++iterations_;
    changed = false;
    for (std::size_t ei = 0; ei < edges_.size(); ++ei) {
      const DataflowEdge& edge = edges_[ei];
      const EdgeAux& a = aux[ei];
      // Edges never target their own source, so the source log is stable
      // while this edge drains it.
      const std::size_t end = logs[edge.from].size();
      for (std::size_t fi = cursor[ei]; fi < end; ++fi) {
        const RouteFact fact = logs[edge.from][fi];
        if (edge.kind == DataflowEdge::Kind::kSession) {
          // AS-path loop prevention: BGP never re-learns its own routes.
          if (fact.origin == edge.to) continue;
          if (!session_permits(compiler, a.sender_config, a.sender_out,
                               /*inbound=*/false, fact.route)) {
            continue;
          }
          if (!session_permits(compiler, a.config, a.receiver_in,
                               /*inbound=*/true, fact.route)) {
            continue;
          }
          RouteFact next = fact;
          if (next.exit_router == model::kInvalidId) {
            next.exit_router = edge.exit_router;
          }
          if (add_fact(edge.to, next)) changed = true;
          continue;
        }
        // Redistribution: route-map (unresolved names pass through, as in
        // IOS), then the target stanza's outbound distribute-lists.
        Route route = fact.route;
        if (a.map != nullptr) {
          const auto& verdict = a.map->evaluate(route);
          if (!verdict.permitted) continue;
          route = verdict.route;
        }
        if (!stanza_out_permits(*a.config, *a.target_stanza, route)) continue;
        if (fact.origin == edge.to) {
          // The instance's own route coming home. A same-router bounce is
          // broken by that router's RIB (it prefers what it already has);
          // a multi-router cycle is live only when the carried copy's
          // distance beats the native route on the shared routers.
          if (fact.exit_router != model::kInvalidId &&
              fact.exit_router != edge.router &&
              distance_external(set.instances[edge.from].protocol) <
                  distance_internal(set.instances[fact.origin].protocol)) {
            if (loops_seen.emplace(ei, fact.origin).second) {
              loop_events_.push_back({ei, fact.origin, fact.exit_router,
                                      route});
            }
          }
          continue;  // never re-inject: keeps the fact domain finite
        }
        if (entries_seen.emplace(fact.origin, edge.to).second) {
          entries_.push_back({fact.origin, edge.to, ei});
        }
        RouteFact next{fact.origin,
                       fact.exit_router == model::kInvalidId
                           ? edge.router
                           : fact.exit_router,
                       route};
        if (add_fact(edge.to, next)) changed = true;
      }
      cursor[ei] = end;
    }
  }

  fact_counts_.reserve(n);
  for (const auto& log : logs) fact_counts_.push_back(log.size());

  obs::counter("dataflow.runs").add();
  obs::counter("dataflow.facts").add(total_facts_);
  obs::counter("dataflow.iterations").add(iterations_);
  obs::counter("dataflow.loop_events").add(loop_events_.size());
}

// --- RD060: redistribution loop ---------------------------------------------

std::vector<Finding> RedistributionSafety::redistribution_loop(
    const RuleContext& ctx) {
  std::vector<Finding> out;
  InstanceDataflow flow(ctx.network, ctx.graph);
  const auto& set = ctx.graph.set;
  for (const LoopEvent& event : flow.loop_events()) {
    const DataflowEdge& edge = flow.edges()[event.edge];
    std::string detail = "routes of ";
    detail += instance_label(set, event.origin);
    detail += " leave via ";
    detail += router_name(ctx.network, event.exit_router);
    detail += ", transit ";
    detail += instance_label(set, edge.from);
    detail += ", and this command re-injects them into their origin (e.g. ";
    detail += event.witness.prefix.to_string();
    detail += "); the re-injected copy (distance ";
    detail += std::to_string(
        distance_external(set.instances[edge.from].protocol));
    detail += ") beats the native route (distance ";
    detail += std::to_string(
        distance_internal(set.instances[event.origin].protocol));
    detail += ") and no tag or prefix filter breaks the cycle";
    out.push_back(make_finding(edge.router,
                               instance_label(set, event.origin),
                               std::move(detail), edge.line,
                               event.exit_router));
  }
  return out;
}

// --- RD061: metric loss at a boundary ---------------------------------------

std::vector<Finding> RedistributionSafety::metric_loss(const RuleContext& ctx) {
  std::vector<Finding> out;
  const auto& set = ctx.graph.set;
  const auto& network = ctx.network;
  for (const auto& redist : network.redistribution_edges()) {
    if (redist.source_kind != model::RibKind::kProcess) continue;
    const std::uint32_t from = set.instance_of[redist.source_process];
    const std::uint32_t to = set.instance_of[redist.target_process];
    if (from == to) continue;
    const auto source_proto = set.instances[from].protocol;
    const auto target_proto = set.instances[to].protocol;
    // BGP assigns path attributes on injection; only protocol-to-protocol
    // boundaries with incompatible metric algebras can lose the metric.
    if (target_proto == config::RoutingProtocol::kBgp) continue;
    if (metric_class(source_proto) == metric_class(target_proto)) continue;
    const auto& config = network.routers()[redist.router];
    const auto& target = network.processes()[redist.target_process];
    const auto& stanza = config.router_stanzas[target.stanza_index];
    const auto& command = stanza.redistributes[redist.redistribute_index];
    if (command.metric) continue;
    if (stanza.default_metric) continue;
    if (command.route_map) {
      const auto facts = model::route_map_facts(config, *command.route_map);
      if (facts.resolved && facts.sets_metric) continue;
    }
    std::string subject = instance_label(set, from);
    subject += " -> ";
    subject += instance_label(set, to);
    std::string detail = "redistribution from ";
    detail += config::to_keyword(source_proto);
    detail += " (";
    detail += metric_class_name(metric_class(source_proto));
    detail += " metric) into ";
    detail += config::to_keyword(target_proto);
    detail += " (";
    detail += metric_class_name(metric_class(target_proto));
    detail +=
        " metric) carries no metric mapping: no metric on the command, no "
        "default-metric on the process, no set metric in the route-map";
    out.push_back(make_finding(redist.router, std::move(subject),
                               std::move(detail), command.line));
  }
  return out;
}

// --- RD062: administrative-distance inversion --------------------------------

std::vector<Finding> RedistributionSafety::distance_inversion(
    const RuleContext& ctx) {
  std::vector<Finding> out;
  InstanceDataflow flow(ctx.network, ctx.graph);
  const auto& set = ctx.graph.set;
  for (const EntryRecord& entry : flow.entries()) {
    const auto origin_proto = set.instances[entry.origin].protocol;
    const auto carrier_proto = set.instances[entry.instance].protocol;
    if (distance_external(carrier_proto) >= distance_internal(origin_proto)) {
      continue;
    }
    const DataflowEdge& edge = flow.edges()[entry.edge];
    // The inversion bites on a router that hears both the native route
    // (inside the origin instance) and the redistributed copy (inside the
    // carrier) — any shared router other than the redistribution point.
    std::vector<model::RouterId> origin_routers =
        set.instances[entry.origin].routers;
    std::vector<model::RouterId> carrier_routers =
        set.instances[entry.instance].routers;
    std::sort(origin_routers.begin(), origin_routers.end());
    std::sort(carrier_routers.begin(), carrier_routers.end());
    std::vector<model::RouterId> shared;
    std::set_intersection(origin_routers.begin(), origin_routers.end(),
                          carrier_routers.begin(), carrier_routers.end(),
                          std::back_inserter(shared));
    std::erase(shared, edge.router);
    if (shared.empty()) continue;
    std::string subject = instance_label(set, entry.origin);
    subject += " -> ";
    subject += instance_label(set, entry.instance);
    std::string detail = "routes of ";
    detail += instance_label(set, entry.origin);
    detail += " redistributed here arrive in ";
    detail += instance_label(set, entry.instance);
    detail += " with administrative distance ";
    detail += std::to_string(distance_external(carrier_proto));
    detail += ", beating the native distance ";
    detail += std::to_string(distance_internal(origin_proto));
    detail += " on ";
    detail += router_name(ctx.network, shared.front());
    detail += "; which copy wins there depends on arrival order";
    out.push_back(make_finding(edge.router, std::move(subject),
                               std::move(detail), edge.line, shared.front()));
  }
  return out;
}

// --- RD063: mutual redistribution without a filter ---------------------------

std::vector<Finding> RedistributionSafety::unfiltered_mutual(
    const RuleContext& ctx) {
  const auto& set = ctx.graph.set;
  const auto& network = ctx.network;
  // Per ordered instance pair: is any edge in that direction unable to deny
  // anything, and where is the first such open command?
  struct Direction {
    bool open = false;          // some edge filters nothing
    model::RouterId router = model::kInvalidId;
    std::size_t line = 0;
    std::string why;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, Direction> directions;
  for (const auto& redist : network.redistribution_edges()) {
    if (redist.source_kind != model::RibKind::kProcess) continue;
    const std::uint32_t from = set.instance_of[redist.source_process];
    const std::uint32_t to = set.instance_of[redist.target_process];
    if (from == to) continue;
    auto& dir = directions[{from, to}];
    if (dir.open) continue;
    const auto& config = network.routers()[redist.router];
    std::string why;
    if (!redist.route_map) {
      why = "no route-map";
    } else {
      const auto facts = model::route_map_facts(config, *redist.route_map);
      if (!facts.resolved) {
        why = "route-map " + *redist.route_map + " is not defined";
      } else if (!facts.may_deny) {
        why = "route-map " + *redist.route_map + " permits every route";
      }
    }
    if (why.empty()) continue;
    dir.open = true;
    dir.router = redist.router;
    const auto& target = network.processes()[redist.target_process];
    dir.line = config.router_stanzas[target.stanza_index]
                   .redistributes[redist.redistribute_index]
                   .line;
    dir.why = std::move(why);
  }
  std::vector<Finding> out;
  for (const auto& [key, dir] : directions) {
    const auto [from, to] = key;
    if (from > to) continue;  // handle each unordered pair once
    const auto reverse = directions.find({to, from});
    if (reverse == directions.end()) continue;  // not mutual
    const Direction* anchor = nullptr;
    if (dir.open) {
      anchor = &dir;
    } else if (reverse->second.open) {
      anchor = &reverse->second;
    }
    if (anchor == nullptr) continue;
    std::string subject = instance_label(set, from);
    subject += " <-> ";
    subject += instance_label(set, to);
    std::string detail =
        "mutual redistribution between the two instances with an unfiltered "
        "direction (";
    detail += anchor->why;
    detail +=
        "): any route leaking in one direction can be handed straight back";
    out.push_back(make_finding(anchor->router, std::move(subject),
                               std::move(detail), anchor->line));
  }
  return out;
}

// --- RD064: single-point redistribution --------------------------------------

std::vector<Finding> RedistributionSafety::single_point(const RuleContext& ctx) {
  std::vector<Finding> out;
  const auto& set = ctx.graph.set;
  const auto& network = ctx.network;
  for (const auto& pair : redistribution_redundancy(network, ctx.graph)) {
    if (!pair.single_point_of_failure()) continue;
    // Pairs where either side is a single-router instance are the business
    // of RD031 (structural single point of failure); this rule targets the
    // §6 smell of two multi-router populations meeting in one box.
    if (set.instances[pair.instance_a].router_count() < 2 ||
        set.instances[pair.instance_b].router_count() < 2) {
      continue;
    }
    // A BGP AS meeting an IGP at its one border router is the normal
    // injection design, not a smell; the paper's concern is two IGP
    // populations stitched together through a single box.
    if (set.instances[pair.instance_a].protocol ==
            config::RoutingProtocol::kBgp ||
        set.instances[pair.instance_b].protocol ==
            config::RoutingProtocol::kBgp) {
      continue;
    }
    // Only pairs glued by *redistribution*: instances exchanging routes
    // purely over EBGP sessions (e.g. a hub AS fanning out to spoke ASs)
    // concentrate on one router by design, and BGP's session model — not a
    // redistribution boundary — is what fails with the router.
    bool redistributes = false;
    for (const auto& edge : ctx.graph.edges) {
      if (edge.kind != graph::InstanceEdge::Kind::kRedistribution) continue;
      const std::pair<std::uint32_t, std::uint32_t> key =
          std::minmax(edge.from, edge.to);
      if (key == std::pair<std::uint32_t, std::uint32_t>(
                     std::minmax(pair.instance_a, pair.instance_b))) {
        redistributes = true;
        break;
      }
    }
    if (!redistributes) continue;
    const model::RouterId point = pair.connecting_routers.front();
    // Losing `point` must actually disconnect the pair in the instance
    // graph — no alternate route-exchange path through other instances.
    std::vector<std::vector<std::uint32_t>> adjacent(set.instances.size());
    for (const auto& edge : ctx.graph.edges) {
      if (edge.kind == graph::InstanceEdge::Kind::kExternal) continue;
      if (edge.router == point) continue;
      adjacent[edge.from].push_back(edge.to);
      adjacent[edge.to].push_back(edge.from);
    }
    std::vector<char> seen(set.instances.size(), 0);
    std::vector<std::uint32_t> stack{pair.instance_a};
    seen[pair.instance_a] = 1;
    bool connected = false;
    while (!stack.empty()) {
      const std::uint32_t at = stack.back();
      stack.pop_back();
      if (at == pair.instance_b) {
        connected = true;
        break;
      }
      for (const std::uint32_t next : adjacent[at]) {
        if (!seen[next]) {
          seen[next] = 1;
          stack.push_back(next);
        }
      }
    }
    if (connected) continue;
    // Anchor at the first redistribute command joining the pair on `point`.
    std::size_t line = 0;
    for (const auto& redist : network.redistribution_edges()) {
      if (redist.source_kind != model::RibKind::kProcess) continue;
      if (redist.router != point) continue;
      const std::uint32_t from = set.instance_of[redist.source_process];
      const std::uint32_t to = set.instance_of[redist.target_process];
      const std::pair<std::uint32_t, std::uint32_t> key =
          std::minmax(from, to);
      if (key != std::pair<std::uint32_t, std::uint32_t>(
                     std::minmax(pair.instance_a, pair.instance_b))) {
        continue;
      }
      line = redistribute_line(network, redist);
      break;
    }
    std::string subject = instance_label(set, pair.instance_a);
    subject += " <-> ";
    subject += instance_label(set, pair.instance_b);
    std::string detail = "the only route exchange between these two "
        "multi-router instances happens on ";
    detail += router_name(network, point);
    detail += "; losing that router partitions them with no alternate path "
        "through any other instance";
    out.push_back(make_finding(point, std::move(subject), std::move(detail),
                               line));
  }
  return out;
}

}  // namespace rd::analysis
