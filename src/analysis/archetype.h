#pragma once

#include <cstddef>
#include <string>

#include "graph/instances.h"
#include "model/network.h"

namespace rd::analysis {

/// The two textbook routing designs (paper §7.1) plus the catch-all the
/// paper found covers most production enterprise networks.
enum class DesignArchetype {
  kBackbone,            // EBGP edge + IBGP distribution + small IGP core
  kTextbookEnterprise,  // few BGP speakers injecting into a small IGP
  kUnclassifiable,      // everything else (20 of the paper's 31)
};

std::string_view to_string(DesignArchetype archetype) noexcept;

/// Structural features the classifier extracts; exposed so benches and case
/// studies can report them alongside the verdict.
struct DesignFeatures {
  std::size_t router_count = 0;
  std::size_t bgp_router_count = 0;   // routers running any BGP process
  std::size_t internal_as_count = 0;  // distinct AS numbers inside
  std::size_t bgp_instance_count = 0;
  std::size_t igp_instance_count = 0;
  std::size_t multi_router_igp_instances = 0;
  /// Single-router IGP instances with external peers — the tier-2 ISPs'
  /// "staging" instances (paper §7.1).
  std::size_t staging_igp_instances = 0;
  std::size_t external_ebgp_sessions = 0;
  std::size_t internal_ebgp_sessions = 0;
  std::size_t ibgp_sessions = 0;
  /// Redistribution of BGP-learned routes into an IGP anywhere — the
  /// hallmark separating enterprise from backbone designs.
  bool bgp_redistributed_into_igp = false;
  /// IBGP session count over pairs in the largest internal AS.
  double ibgp_mesh_completeness = 0.0;
  bool uses_bgp = false;
};

DesignFeatures extract_design_features(const model::Network& network,
                                       const graph::InstanceSet& instances);

struct DesignClassification {
  DesignArchetype archetype = DesignArchetype::kUnclassifiable;
  DesignFeatures features;
  std::string rationale;
};

/// Classify a network against the canonical architectures (paper §7.1).
DesignClassification classify_design(const model::Network& network,
                                     const graph::InstanceSet& instances);

}  // namespace rd::analysis
