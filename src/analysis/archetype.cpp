#include "analysis/archetype.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace rd::analysis {

std::string_view to_string(DesignArchetype archetype) noexcept {
  switch (archetype) {
    case DesignArchetype::kBackbone:
      return "backbone";
    case DesignArchetype::kTextbookEnterprise:
      return "textbook-enterprise";
    case DesignArchetype::kUnclassifiable:
      return "unclassifiable";
  }
  return "?";
}

DesignFeatures extract_design_features(const model::Network& network,
                                       const graph::InstanceSet& instances) {
  DesignFeatures f;
  f.router_count = network.router_count();

  std::set<model::RouterId> bgp_routers;
  std::set<std::uint32_t> internal_ases;
  for (const auto& process : network.processes()) {
    if (process.protocol == config::RoutingProtocol::kBgp) {
      bgp_routers.insert(process.router);
      if (process.process_id) internal_ases.insert(*process.process_id);
    }
  }
  f.bgp_router_count = bgp_routers.size();
  f.internal_as_count = internal_ases.size();
  f.uses_bgp = !bgp_routers.empty() || !network.bgp_sessions().empty();

  // Instances with external adjacency (for staging detection).
  std::set<std::uint32_t> externally_adjacent;
  for (const auto& ext : network.external_igp_adjacencies()) {
    externally_adjacent.insert(instances.instance_of[ext.process]);
  }
  for (std::uint32_t i = 0; i < instances.instances.size(); ++i) {
    const auto& instance = instances.instances[i];
    if (instance.protocol == config::RoutingProtocol::kBgp) {
      ++f.bgp_instance_count;
      continue;
    }
    ++f.igp_instance_count;
    if (instance.router_count() > 1) {
      ++f.multi_router_igp_instances;
    } else if (externally_adjacent.contains(i)) {
      ++f.staging_igp_instances;
    }
  }

  std::set<std::pair<model::ProcessId, model::ProcessId>> seen;
  std::map<std::uint32_t, std::set<model::RouterId>> as_routers;
  std::map<std::uint32_t, std::size_t> as_ibgp_sessions;
  for (const auto& session : network.bgp_sessions()) {
    if (session.external()) {
      ++f.external_ebgp_sessions;
      continue;
    }
    const auto key = std::minmax(session.local_process, session.remote_process);
    if (!seen.insert(key).second) continue;
    if (session.ebgp()) {
      ++f.internal_ebgp_sessions;
    } else {
      ++f.ibgp_sessions;
      as_routers[session.local_as].insert(
          network.processes()[session.local_process].router);
      as_routers[session.local_as].insert(
          network.processes()[session.remote_process].router);
      ++as_ibgp_sessions[session.local_as];
    }
  }
  // Mesh completeness of the largest IBGP-connected AS.
  std::size_t best_n = 0;
  std::size_t best_sessions = 0;
  for (const auto& [as_number, routers] : as_routers) {
    if (routers.size() > best_n) {
      best_n = routers.size();
      best_sessions = as_ibgp_sessions[as_number];
    }
  }
  if (best_n >= 2) {
    const double pairs = static_cast<double>(best_n) *
                         static_cast<double>(best_n - 1) / 2.0;
    f.ibgp_mesh_completeness =
        std::min(1.0, static_cast<double>(best_sessions) / pairs);
  }

  // BGP redistributed into an IGP anywhere?
  for (const auto& redist : network.redistribution_edges()) {
    if (redist.source_kind != model::RibKind::kProcess) continue;
    const auto& source = network.processes()[redist.source_process];
    const auto& target = network.processes()[redist.target_process];
    if (source.protocol == config::RoutingProtocol::kBgp &&
        config::is_conventional_igp(target.protocol)) {
      f.bgp_redistributed_into_igp = true;
      break;
    }
  }
  return f;
}

DesignClassification classify_design(const model::Network& network,
                                     const graph::InstanceSet& instances) {
  DesignClassification result;
  result.features = extract_design_features(network, instances);
  const DesignFeatures& f = result.features;

  // Backbone (paper §7.1): a large number of EBGP sessions peer with
  // external networks; IBGP distributes external routes from border routers
  // to interior routers (so BGP runs network-wide and external routes are
  // never redistributed into the IGP); a small number of IGP instances
  // carries infrastructure routes.
  const bool bgp_everywhere =
      f.router_count > 0 &&
      static_cast<double>(f.bgp_router_count) /
              static_cast<double>(f.router_count) >=
          0.5;
  if (f.uses_bgp && f.external_ebgp_sessions >= 8 && bgp_everywhere &&
      !f.bgp_redistributed_into_igp && f.multi_router_igp_instances <= 3 &&
      f.internal_as_count <= 2 && f.staging_igp_instances < 10) {
    result.archetype = DesignArchetype::kBackbone;
    result.rationale =
        "EBGP-rich edge, network-wide IBGP, small IGP core, and external "
        "routes never enter the IGP";
    return result;
  }

  // Textbook enterprise (paper §7.1): a small number of BGP speakers talk
  // to the outside world and inject routes into a small number of IGP
  // instances from which most routers learn their routes.
  const bool few_bgp_speakers =
      f.bgp_router_count > 0 &&
      (f.bgp_router_count <= 6 ||
       static_cast<double>(f.bgp_router_count) <=
           0.1 * static_cast<double>(f.router_count));
  if (f.uses_bgp && few_bgp_speakers && f.bgp_redistributed_into_igp &&
      f.multi_router_igp_instances <= 2 && f.internal_as_count <= 1 &&
      f.internal_ebgp_sessions == 0 && f.staging_igp_instances == 0) {
    result.archetype = DesignArchetype::kTextbookEnterprise;
    result.rationale =
        "few border BGP speakers injecting external routes into a small "
        "IGP that serves the rest of the network";
    return result;
  }

  result.archetype = DesignArchetype::kUnclassifiable;
  result.rationale =
      "structure matches neither canonical design (multiple internal ASs, "
      "internal EBGP, staging instances, no BGP, or a hybrid)";
  return result;
}

}  // namespace rd::analysis
