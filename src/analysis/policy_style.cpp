#include "analysis/policy_style.h"

namespace rd::analysis {

PolicyStyle analyze_policy_style(const model::Network& network) {
  PolicyStyle style;
  for (const auto& cfg : network.routers()) {
    for (const auto& rm : cfg.route_maps) {
      for (const auto& clause : rm.clauses) {
        ++style.route_map_clauses;
        const bool address = !clause.match_ip_address_acls.empty() ||
                             !clause.match_prefix_lists.empty();
        const bool tag =
            clause.match_tag.has_value() || clause.set_tag.has_value();
        const bool attribute = !clause.match_as_paths.empty() ||
                               clause.set_local_preference.has_value();
        if (address) ++style.address_based_clauses;
        if (tag) ++style.tag_based_clauses;
        if (attribute) ++style.attribute_based_clauses;
        if (!address && !tag && !attribute) ++style.unconditional_clauses;
      }
    }
    for (const auto& list : cfg.as_path_lists) {
      style.as_path_list_entries += list.entries.size();
    }
    for (const auto& stanza : cfg.router_stanzas) {
      style.session_address_filters += stanza.distribute_lists.size();
      for (const auto& nbr : stanza.neighbors) {
        style.session_address_filters +=
            (nbr.distribute_list_in ? 1u : 0u) +
            (nbr.distribute_list_out ? 1u : 0u) +
            (nbr.prefix_list_in ? 1u : 0u) + (nbr.prefix_list_out ? 1u : 0u);
      }
    }
  }
  return style;
}

}  // namespace rd::analysis
