#include "analysis/packet_reachability.h"

#include "model/policy.h"

namespace rd::analysis {

std::string_view to_string(FlowVerdict verdict) noexcept {
  switch (verdict) {
    case FlowVerdict::kSourceNotAttached:
      return "source-not-attached";
    case FlowVerdict::kDestinationNotAttached:
      return "destination-not-attached";
    case FlowVerdict::kNoRoute:
      return "no-route";
    case FlowVerdict::kNoReturnRoute:
      return "no-return-route";
    case FlowVerdict::kFilteredAtSource:
      return "filtered-at-source";
    case FlowVerdict::kFilteredAtDestination:
      return "filtered-at-destination";
    case FlowVerdict::kPossiblyReachable:
      return "possibly-reachable";
  }
  return "?";
}

std::optional<PacketReachability::Attachment>
PacketReachability::attachment_of(ip::Ipv4Address addr) const {
  // Most-specific interface subnet containing the address.
  std::optional<Attachment> best;
  int best_length = -1;
  for (model::InterfaceId i = 0; i < network_.interfaces().size(); ++i) {
    const auto& itf = network_.interfaces()[i];
    if (!itf.subnet || !itf.subnet->contains(addr)) continue;
    if (itf.subnet->length() <= best_length) continue;
    best_length = itf.subnet->length();
    Attachment attachment;
    attachment.interface = i;
    attachment.instance = -1;
    // The instance serving this attachment: any process covering it.
    for (const model::ProcessId p : network_.router_processes(itf.router)) {
      const auto& process = network_.processes()[p];
      for (const model::InterfaceId covered : process.covered_interfaces) {
        if (covered == i) {
          attachment.instance =
              static_cast<std::int64_t>(instances_.instance_of[p]);
          break;
        }
      }
      if (attachment.instance >= 0) break;
    }
    best = attachment;
  }
  return best;
}

FlowVerdict PacketReachability::evaluate(const FlowQuery& query) const {
  const auto src = attachment_of(query.source);
  if (!src) return FlowVerdict::kSourceNotAttached;
  const auto dst = attachment_of(query.destination);

  // Control plane: forward route from the source's instance.
  if (src->instance >= 0) {
    if (!routes_.instance_has_route_to(
            static_cast<std::uint32_t>(src->instance), query.destination) &&
        !routes_.instance_reaches_internet(
            static_cast<std::uint32_t>(src->instance))) {
      return dst ? FlowVerdict::kNoRoute
                 : FlowVerdict::kDestinationNotAttached;
    }
  }
  // Return route (needed for any two-way exchange) when the destination is
  // internal and attached to a routed instance.
  if (dst && dst->instance >= 0) {
    if (!routes_.instance_has_route_to(
            static_cast<std::uint32_t>(dst->instance), query.source) &&
        !routes_.instance_reaches_internet(
            static_cast<std::uint32_t>(dst->instance))) {
      return FlowVerdict::kNoReturnRoute;
    }
  }

  // Data plane: inbound filter where the source's packets enter the
  // network.
  {
    const auto& itf = network_.interfaces()[src->interface];
    const auto& cfg = network_.routers()[itf.router];
    const auto& icfg = cfg.interfaces[itf.config_index];
    if (icfg.access_group_in) {
      const auto* acl = cfg.find_access_list(*icfg.access_group_in);
      if (acl != nullptr &&
          !model::acl_permits_packet(*acl, query.source, query.destination,
                                     query.destination_port,
                                     query.protocol)) {
        return FlowVerdict::kFilteredAtSource;
      }
    }
  }
  // Outbound filter where the packets leave toward the destination.
  if (dst) {
    const auto& itf = network_.interfaces()[dst->interface];
    const auto& cfg = network_.routers()[itf.router];
    const auto& icfg = cfg.interfaces[itf.config_index];
    if (icfg.access_group_out) {
      const auto* acl = cfg.find_access_list(*icfg.access_group_out);
      if (acl != nullptr &&
          !model::acl_permits_packet(*acl, query.source, query.destination,
                                     query.destination_port,
                                     query.protocol)) {
        return FlowVerdict::kFilteredAtDestination;
      }
    }
  }
  return FlowVerdict::kPossiblyReachable;
}

bool PacketReachability::can_use_application(ip::Ipv4Address host,
                                             ip::Ipv4Address server,
                                             const std::string& protocol,
                                             std::uint16_t port) const {
  FlowQuery query;
  query.source = host;
  query.destination = server;
  query.protocol = protocol;
  query.destination_port = port;
  return evaluate(query) == FlowVerdict::kPossiblyReachable;
}

}  // namespace rd::analysis
