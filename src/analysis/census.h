#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "model/network.h"

namespace rd::analysis {

/// Interface-composition census (paper §7.3, Table 3): hardware type ->
/// interface count.
std::map<std::string, std::size_t> interface_census(
    const model::Network& network);

/// Merge several networks' censuses (the paper reports the 31-network total).
std::map<std::string, std::size_t> merge_census(
    const std::vector<std::map<std::string, std::size_t>>& censuses);

/// Count of unnumbered interfaces (the paper reports 528 of 96,487).
std::size_t unnumbered_interface_count(const model::Network& network);

}  // namespace rd::analysis
