#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/reachability.h"
#include "graph/instances.h"
#include "model/network.h"
#include "util/thread_pool.h"

namespace rd::analysis {

/// "What if" survivability analysis (paper §8.1, network engineering):
/// evaluate the robustness of the routing design to equipment failures —
/// "uncover scenarios where a single link or session failure would
/// disconnect part of the network".

/// Rebuild the network model with some routers' configurations removed —
/// the model-level equivalent of those routers failing (their interfaces,
/// processes, sessions, and redistribution points all disappear).
model::Network without_routers(const model::Network& network,
                               const std::vector<model::RouterId>& failed);

/// Impact summary of a set of router failures.
struct FailureImpact {
  std::vector<model::RouterId> failed;
  std::size_t instances_before = 0;
  std::size_t instances_after = 0;
  /// Baseline instances whose surviving processes ended up split across
  /// more than one instance — the failure partitioned them.
  std::vector<std::uint32_t> fragmented_instances;
  /// Baseline instance pairs whose every route-exchange router failed.
  std::size_t severed_instance_pairs = 0;

  bool disconnects_something() const noexcept {
    return !fragmented_instances.empty() || severed_instance_pairs > 0;
  }
};

FailureImpact simulate_router_failure(
    const model::Network& network, const graph::InstanceSet& baseline,
    const std::vector<model::RouterId>& failed);

/// A router whose single failure splits its own routing instance: an
/// articulation point of the instance's router-level adjacency graph.
struct ArticulationRouter {
  model::RouterId router = model::kInvalidId;
  std::uint32_t instance = 0;
};

/// All articulation routers, per instance (instances of one router have
/// none by definition).
std::vector<ArticulationRouter> instance_articulation_routers(
    const model::Network& network, const graph::InstanceSet& instances);

/// Routers that are the sole route-exchange point between some instance
/// pair (redundancy group of size one) — the other single-failure
/// disconnection mode.
std::vector<model::RouterId> sole_redistribution_routers(
    const model::Network& network, const graph::InstanceGraph& graph);

/// One named failure scenario of a what-if sweep.
struct FailureScenario {
  std::string name;  // hostname(s) of the failed equipment
  std::vector<model::RouterId> failed;
};

/// Structural + reachability impact of one scenario, evaluated on the
/// degraded network.
struct ScenarioImpact {
  FailureScenario scenario;
  FailureImpact structural;
  /// Degraded-network reachability fixpoint summary.
  std::size_t instances_reaching_internet = 0;
  std::size_t total_routes = 0;  // sum over degraded instances
  std::size_t announced_externally = 0;
  bool reachability_converged = true;
};

/// The interesting single-router failure scenarios: articulation routers
/// plus sole redistribution points, deduplicated and ordered by router id —
/// the candidates §8.1's survivability question asks about.
std::vector<FailureScenario> single_failure_scenarios(
    const model::Network& network, const graph::InstanceGraph& graph);

/// Evaluate every scenario — one independent route-propagation fixpoint per
/// scenario on the degraded network — fanned out across the pool. Result
/// `i` is scenario `i`'s impact regardless of scheduling, so parallel
/// sweeps are byte-identical to the serial loop.
std::vector<ScenarioImpact> sweep_failure_scenarios(
    const model::Network& network, const graph::InstanceSet& baseline,
    const std::vector<FailureScenario>& scenarios,
    const ReachabilityAnalysis::Options& reach_options, util::ThreadPool& pool);

/// Convenience overload: `threads` == 0 picks the RD_THREADS /
/// hardware-concurrency default; 1 is a plain serial loop.
std::vector<ScenarioImpact> sweep_failure_scenarios(
    const model::Network& network, const graph::InstanceSet& baseline,
    const std::vector<FailureScenario>& scenarios,
    const ReachabilityAnalysis::Options& reach_options,
    std::size_t threads = 0);

}  // namespace rd::analysis
