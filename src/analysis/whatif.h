#pragma once

#include <cstdint>
#include <vector>

#include "graph/instances.h"
#include "model/network.h"

namespace rd::analysis {

/// "What if" survivability analysis (paper §8.1, network engineering):
/// evaluate the robustness of the routing design to equipment failures —
/// "uncover scenarios where a single link or session failure would
/// disconnect part of the network".

/// Rebuild the network model with some routers' configurations removed —
/// the model-level equivalent of those routers failing (their interfaces,
/// processes, sessions, and redistribution points all disappear).
model::Network without_routers(const model::Network& network,
                               const std::vector<model::RouterId>& failed);

/// Impact summary of a set of router failures.
struct FailureImpact {
  std::vector<model::RouterId> failed;
  std::size_t instances_before = 0;
  std::size_t instances_after = 0;
  /// Baseline instances whose surviving processes ended up split across
  /// more than one instance — the failure partitioned them.
  std::vector<std::uint32_t> fragmented_instances;
  /// Baseline instance pairs whose every route-exchange router failed.
  std::size_t severed_instance_pairs = 0;

  bool disconnects_something() const noexcept {
    return !fragmented_instances.empty() || severed_instance_pairs > 0;
  }
};

FailureImpact simulate_router_failure(
    const model::Network& network, const graph::InstanceSet& baseline,
    const std::vector<model::RouterId>& failed);

/// A router whose single failure splits its own routing instance: an
/// articulation point of the instance's router-level adjacency graph.
struct ArticulationRouter {
  model::RouterId router = model::kInvalidId;
  std::uint32_t instance = 0;
};

/// All articulation routers, per instance (instances of one router have
/// none by definition).
std::vector<ArticulationRouter> instance_articulation_routers(
    const model::Network& network, const graph::InstanceSet& instances);

/// Routers that are the sole route-exchange point between some instance
/// pair (redundancy group of size one) — the other single-failure
/// disconnection mode.
std::vector<model::RouterId> sole_redistribution_routers(
    const model::Network& network, const graph::InstanceGraph& graph);

}  // namespace rd::analysis
