#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/instances.h"
#include "model/network.h"

namespace rd::analysis {

/// Longitudinal design comparison (paper §8.2: "acquiring a deeper
/// understanding of the evolution of the routing design requires a
/// longitudinal analysis with multiple snapshots of the router
/// configuration data over time"). Given two snapshots of a network's
/// configuration state, report what changed at the design level: equipment,
/// topology, routing processes, instance structure, and policies.
struct DesignDiff {
  // Equipment (matched by hostname).
  std::vector<std::string> added_routers;
  std::vector<std::string> removed_routers;

  // Per matched router.
  std::size_t routers_with_interface_changes = 0;
  std::size_t routers_with_process_changes = 0;
  std::size_t routers_with_policy_changes = 0;  // ACLs or route-maps
  std::size_t routers_with_static_route_changes = 0;

  // Topology.
  std::size_t links_before = 0;
  std::size_t links_after = 0;

  // Instance structure.
  std::size_t instances_before = 0;
  std::size_t instances_after = 0;
  /// (protocol keyword, router count) of instances present in exactly one
  /// snapshot — the coarse structural change set.
  std::vector<std::string> appeared_instances;
  std::vector<std::string> disappeared_instances;

  bool design_changed() const noexcept {
    return !added_routers.empty() || !removed_routers.empty() ||
           routers_with_process_changes > 0 ||
           routers_with_policy_changes > 0 ||
           instances_before != instances_after ||
           !appeared_instances.empty() || !disappeared_instances.empty();
  }

  friend bool operator==(const DesignDiff&, const DesignDiff&) = default;
};

DesignDiff diff_designs(const model::Network& before,
                        const model::Network& after);

/// N-way longitudinal chain: consecutive-pair diffs over an ordered series
/// of snapshots. `result[i]` compares snapshot i to snapshot i+1; an empty
/// or single-element series yields an empty chain. This is the two-snapshot
/// diff generalized to the paper's "multiple snapshots of the router
/// configuration data over time".
std::vector<DesignDiff> diff_design_chain(
    const std::vector<model::Network>& snapshots);

}  // namespace rd::analysis
