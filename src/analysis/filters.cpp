#include "analysis/filters.h"

namespace rd::analysis {

namespace {

/// Clause count of the ACL an interface references; 0 when unresolved.
std::size_t applied_rule_count(const config::RouterConfig& config,
                               const std::optional<std::string>& acl_id) {
  if (!acl_id) return 0;
  const auto* acl = config.find_access_list(*acl_id);
  return acl == nullptr ? 0 : acl->rules.size();
}

}  // namespace

FilterStats gather_filter_stats(const model::Network& network) {
  FilterStats stats;
  for (const auto& config : network.routers()) {
    for (const auto& acl : config.access_lists) {
      stats.defined_rules += acl.rules.size();
      if (acl.rules.size() > stats.largest_filter_rules) {
        stats.largest_filter_rules = acl.rules.size();
        stats.largest_filter_id = acl.id;
      }
    }
  }
  for (const auto& itf : network.interfaces()) {
    const auto& config = network.routers()[itf.router];
    const auto& icfg = config.interfaces[itf.config_index];
    const std::size_t rules = applied_rule_count(config, icfg.access_group_in) +
                              applied_rule_count(config, icfg.access_group_out);
    if (rules == 0) continue;
    ++stats.interfaces_with_filters;
    stats.total_applied_rules += rules;
    if (itf.external_facing) {
      stats.external_applied_rules += rules;
    } else {
      stats.internal_applied_rules += rules;
    }
  }
  return stats;
}

std::map<std::string, std::size_t> internal_filter_targets(
    const model::Network& network) {
  std::map<std::string, std::size_t> targets;
  for (const auto& itf : network.interfaces()) {
    if (itf.external_facing) continue;
    const auto& config = network.routers()[itf.router];
    const auto& icfg = config.interfaces[itf.config_index];
    for (const auto& group : {icfg.access_group_in, icfg.access_group_out}) {
      if (!group) continue;
      const auto* acl = config.find_access_list(*group);
      if (acl == nullptr) continue;
      for (const auto& rule : acl->rules) {
        const std::string key = rule.extended ? rule.protocol : "ip";
        ++targets[key];
      }
    }
  }
  return targets;
}

}  // namespace rd::analysis
