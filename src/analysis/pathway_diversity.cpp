#include "analysis/pathway_diversity.h"

#include <algorithm>

namespace rd::analysis {

double PathwayDiversity::top2_coverage() const noexcept {
  if (routers == 0) return 0.0;
  std::vector<std::size_t> counts;
  counts.reserve(signature_counts.size());
  for (const auto& [signature, count] : signature_counts) {
    counts.push_back(count);
  }
  std::sort(counts.rbegin(), counts.rend());
  std::size_t top = 0;
  for (std::size_t i = 0; i < counts.size() && i < 2; ++i) top += counts[i];
  return static_cast<double>(top) / static_cast<double>(routers);
}

std::string pathway_signature(const graph::InstanceSet& instances,
                              const graph::Pathway& pathway) {
  // Multiset of "depth:protocol" entries, sorted for canonical form, plus
  // the external-world marker.
  std::vector<std::string> parts;
  parts.reserve(pathway.nodes.size());
  for (const auto& node : pathway.nodes) {
    parts.push_back(
        std::to_string(node.depth) + ":" +
        std::string(config::to_keyword(
            instances.instances[node.instance].protocol)));
  }
  std::sort(parts.begin(), parts.end());
  std::string signature;
  for (const auto& part : parts) {
    if (!signature.empty()) signature += ',';
    signature += part;
  }
  signature += pathway.reaches_external ? "|ext" : "|int";
  return signature;
}

PathwayDiversity analyze_pathway_diversity(const model::Network& network,
                                           const graph::InstanceGraph& graph) {
  PathwayDiversity diversity;
  diversity.routers = network.router_count();
  for (model::RouterId r = 0; r < network.router_count(); ++r) {
    const auto pathway = graph::compute_pathway(network, graph, r);
    ++diversity.signature_counts[pathway_signature(graph.set, pathway)];
  }
  return diversity;
}

}  // namespace rd::analysis
