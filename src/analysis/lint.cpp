#include "analysis/lint.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace rd::analysis {

std::string_view to_string(LintKind kind) noexcept {
  switch (kind) {
    case LintKind::kMultiPolicyFilter:
      return "multi-policy-filter";
    case LintKind::kUnusedAccessList:
      return "unused-access-list";
    case LintKind::kUnusedRouteMap:
      return "unused-route-map";
    case LintKind::kUndefinedAclReference:
      return "undefined-acl-reference";
    case LintKind::kUndefinedRouteMapRef:
      return "undefined-route-map-reference";
    case LintKind::kUndefinedPrefixListRef:
      return "undefined-prefix-list-reference";
    case LintKind::kDuplicateAclClause:
      return "duplicate-acl-clause";
    case LintKind::kShadowedAclClause:
      return "shadowed-acl-clause";
    case LintKind::kRedundantStaticRoute:
      return "redundant-static-route";
    case LintKind::kNoncanonicalNetwork:
      return "noncanonical-network-statement";
  }
  return "?";
}

namespace {

/// Every ACL / route-map / prefix-list name a config references, mapped to
/// the first referencing source line (0 when the reference site carries no
/// line, e.g. synthesized configs).
struct References {
  std::map<std::string, std::size_t> acls;
  std::map<std::string, std::size_t> route_maps;
  std::map<std::string, std::size_t> prefix_lists;
};

References collect_references(const config::RouterConfig& cfg) {
  References refs;
  for (const auto& itf : cfg.interfaces) {
    if (itf.access_group_in) refs.acls.try_emplace(*itf.access_group_in,
                                                   itf.line);
    if (itf.access_group_out) refs.acls.try_emplace(*itf.access_group_out,
                                                    itf.line);
  }
  for (const auto& stanza : cfg.router_stanzas) {
    for (const auto& dl : stanza.distribute_lists) {
      refs.acls.try_emplace(dl.acl, stanza.line);
    }
    for (const auto& redist : stanza.redistributes) {
      if (redist.route_map) {
        refs.route_maps.try_emplace(*redist.route_map, redist.line);
      }
    }
    for (const auto& nbr : stanza.neighbors) {
      if (nbr.distribute_list_in) {
        refs.acls.try_emplace(*nbr.distribute_list_in, nbr.line);
      }
      if (nbr.distribute_list_out) {
        refs.acls.try_emplace(*nbr.distribute_list_out, nbr.line);
      }
      if (nbr.route_map_in) {
        refs.route_maps.try_emplace(*nbr.route_map_in, nbr.line);
      }
      if (nbr.route_map_out) {
        refs.route_maps.try_emplace(*nbr.route_map_out, nbr.line);
      }
      if (nbr.prefix_list_in) {
        refs.prefix_lists.try_emplace(*nbr.prefix_list_in, nbr.line);
      }
      if (nbr.prefix_list_out) {
        refs.prefix_lists.try_emplace(*nbr.prefix_list_out, nbr.line);
      }
    }
  }
  for (const auto& rm : cfg.route_maps) {
    for (const auto& clause : rm.clauses) {
      for (const auto& acl : clause.match_ip_address_acls) {
        refs.acls.try_emplace(acl, clause.line);
      }
      for (const auto& pl : clause.match_prefix_lists) {
        refs.prefix_lists.try_emplace(pl, clause.line);
      }
    }
  }
  return refs;
}

/// Does an earlier clause's source spec fully cover a later clause's?
bool clause_shadows(const config::AclRule& earlier,
                    const config::AclRule& later) {
  if (earlier.extended || later.extended) {
    return false;  // extended shadowing needs protocol/port reasoning; skip
  }
  if (earlier.any_source) return true;
  if (later.any_source) return false;
  return earlier.source.contains(later.source);
}

/// A crude concern count for multi-policy detection: distinct protocols
/// plus whether address-only and protocol rules are mixed.
std::size_t concern_count(const config::AccessList& acl) {
  std::set<std::string> protocols;
  bool has_standard = false;
  for (const auto& rule : acl.rules) {
    if (rule.extended) {
      protocols.insert(rule.protocol);
    } else {
      has_standard = true;
    }
  }
  return protocols.size() + (has_standard ? 1 : 0);
}

}  // namespace

std::vector<LintFinding> lint_network(const model::Network& network,
                                      const LintOptions& options) {
  std::vector<LintFinding> findings;

  const bool needs_references =
      options.enabled(LintKind::kUnusedAccessList) ||
      options.enabled(LintKind::kUnusedRouteMap) ||
      options.enabled(LintKind::kUndefinedAclReference) ||
      options.enabled(LintKind::kUndefinedRouteMapRef) ||
      options.enabled(LintKind::kUndefinedPrefixListRef);

  for (model::RouterId r = 0; r < network.router_count(); ++r) {
    const auto& cfg = network.routers()[r];
    const References refs =
        needs_references ? collect_references(cfg) : References{};

    // Unused definitions. The conventional "99"-style management ACLs are
    // often intentionally unapplied, but the paper's inventory task still
    // wants them surfaced.
    if (options.enabled(LintKind::kUnusedAccessList)) {
      for (const auto& acl : cfg.access_lists) {
        if (!refs.acls.contains(acl.id)) {
          findings.push_back({LintKind::kUnusedAccessList, r, acl.id,
                              std::to_string(acl.rules.size()) + " clauses",
                              acl.line});
        }
      }
    }
    if (options.enabled(LintKind::kUnusedRouteMap)) {
      for (const auto& rm : cfg.route_maps) {
        if (!refs.route_maps.contains(rm.name)) {
          const std::size_t line =
              rm.clauses.empty() ? 0 : rm.clauses.front().line;
          findings.push_back({LintKind::kUnusedRouteMap, r, rm.name, "",
                              line});
        }
      }
    }

    // Dangling references, anchored at the first referencing line.
    if (options.enabled(LintKind::kUndefinedAclReference)) {
      for (const auto& [acl_id, line] : refs.acls) {
        if (cfg.find_access_list(acl_id) == nullptr) {
          findings.push_back({LintKind::kUndefinedAclReference, r, acl_id,
                              "referenced but not defined (permits "
                              "everything)",
                              line});
        }
      }
    }
    if (options.enabled(LintKind::kUndefinedRouteMapRef)) {
      for (const auto& [rm_name, line] : refs.route_maps) {
        if (cfg.find_route_map(rm_name) == nullptr) {
          findings.push_back(
              {LintKind::kUndefinedRouteMapRef, r, rm_name, "", line});
        }
      }
    }
    if (options.enabled(LintKind::kUndefinedPrefixListRef)) {
      for (const auto& [pl_name, line] : refs.prefix_lists) {
        if (cfg.find_prefix_list(pl_name) == nullptr) {
          findings.push_back(
              {LintKind::kUndefinedPrefixListRef, r, pl_name, "", line});
        }
      }
    }

    // Clause-level checks (one pass per ACL, findings interleaved in the
    // original order: multi-policy first, then per-clause duplicates and
    // shadows).
    if (options.enabled(LintKind::kMultiPolicyFilter) ||
        options.enabled(LintKind::kDuplicateAclClause) ||
        options.enabled(LintKind::kShadowedAclClause)) {
      for (const auto& acl : cfg.access_lists) {
        if (options.enabled(LintKind::kMultiPolicyFilter) &&
            acl.rules.size() >= options.multi_policy_clause_threshold &&
            concern_count(acl) >= 3) {
          findings.push_back(
              {LintKind::kMultiPolicyFilter, r, acl.id,
               std::to_string(acl.rules.size()) + " clauses spanning " +
                   std::to_string(concern_count(acl)) +
                   " concerns (split per policy)",
               acl.line});
        }
        for (std::size_t i = 0; i < acl.rules.size(); ++i) {
          for (std::size_t j = 0; j < i; ++j) {
            if (acl.rules[j] == acl.rules[i]) {
              if (options.enabled(LintKind::kDuplicateAclClause)) {
                findings.push_back({LintKind::kDuplicateAclClause, r, acl.id,
                                    "clause " + std::to_string(i + 1) +
                                        " duplicates clause " +
                                        std::to_string(j + 1),
                                    acl.rules[i].line});
              }
              break;
            }
            if (clause_shadows(acl.rules[j], acl.rules[i]) &&
                i + 1 != acl.rules.size()) {
              if (options.enabled(LintKind::kShadowedAclClause)) {
                findings.push_back({LintKind::kShadowedAclClause, r, acl.id,
                                    "clause " + std::to_string(i + 1) +
                                        " can never match (shadowed by "
                                        "clause " +
                                        std::to_string(j + 1) + ")",
                                    acl.rules[i].line});
              }
              break;
            }
          }
        }
      }
    }

    // Non-canonical network statements: the address has host bits set below
    // the mask, so IOS silently canonicalizes it ("network 10.0.0.5 /8"
    // covers 10.0.0.0/8). Prefix::parse would hide the sloppiness the same
    // way; the strict constructor detects it.
    if (options.enabled(LintKind::kNoncanonicalNetwork)) {
      for (const auto& stanza : cfg.router_stanzas) {
        for (const auto& ns : stanza.networks) {
          if (ip::Prefix::make_strict(ns.address, ns.mask.length())) continue;
          const ip::Prefix canonical(ns.address, ns.mask.length());
          findings.push_back(
              {LintKind::kNoncanonicalNetwork, r,
               ns.address.to_string() + "/" +
                   std::to_string(ns.mask.length()),
               std::string(config::to_keyword(stanza.protocol)) +
                   " network statement has host bits set; matches " +
                   canonical.to_string(),
               ns.line});
        }
      }
    }

    // Static routes duplicating connected subnets.
    if (options.enabled(LintKind::kRedundantStaticRoute)) {
      for (const auto& route : cfg.static_routes) {
        for (const model::InterfaceId i : network.router_interfaces(r)) {
          const auto& itf = network.interfaces()[i];
          if (itf.subnet && *itf.subnet == route.prefix()) {
            findings.push_back({LintKind::kRedundantStaticRoute, r,
                                route.prefix().to_string(),
                                "duplicates connected subnet on " + itf.name,
                                route.line});
          }
        }
      }
    }
  }
  return findings;
}

}  // namespace rd::analysis
