#include "analysis/lint.h"

#include <algorithm>
#include <set>
#include <string>

namespace rd::analysis {

std::string_view to_string(LintKind kind) noexcept {
  switch (kind) {
    case LintKind::kMultiPolicyFilter:
      return "multi-policy-filter";
    case LintKind::kUnusedAccessList:
      return "unused-access-list";
    case LintKind::kUnusedRouteMap:
      return "unused-route-map";
    case LintKind::kUndefinedAclReference:
      return "undefined-acl-reference";
    case LintKind::kUndefinedRouteMapRef:
      return "undefined-route-map-reference";
    case LintKind::kUndefinedPrefixListRef:
      return "undefined-prefix-list-reference";
    case LintKind::kDuplicateAclClause:
      return "duplicate-acl-clause";
    case LintKind::kShadowedAclClause:
      return "shadowed-acl-clause";
    case LintKind::kRedundantStaticRoute:
      return "redundant-static-route";
    case LintKind::kNoncanonicalNetwork:
      return "noncanonical-network-statement";
  }
  return "?";
}

namespace {

/// Collect every ACL / route-map / prefix-list name a config references.
struct References {
  std::set<std::string> acls;
  std::set<std::string> route_maps;
  std::set<std::string> prefix_lists;
};

References collect_references(const config::RouterConfig& cfg) {
  References refs;
  for (const auto& itf : cfg.interfaces) {
    if (itf.access_group_in) refs.acls.insert(*itf.access_group_in);
    if (itf.access_group_out) refs.acls.insert(*itf.access_group_out);
  }
  for (const auto& stanza : cfg.router_stanzas) {
    for (const auto& dl : stanza.distribute_lists) refs.acls.insert(dl.acl);
    for (const auto& redist : stanza.redistributes) {
      if (redist.route_map) refs.route_maps.insert(*redist.route_map);
    }
    for (const auto& nbr : stanza.neighbors) {
      if (nbr.distribute_list_in) refs.acls.insert(*nbr.distribute_list_in);
      if (nbr.distribute_list_out) refs.acls.insert(*nbr.distribute_list_out);
      if (nbr.route_map_in) refs.route_maps.insert(*nbr.route_map_in);
      if (nbr.route_map_out) refs.route_maps.insert(*nbr.route_map_out);
      if (nbr.prefix_list_in) refs.prefix_lists.insert(*nbr.prefix_list_in);
      if (nbr.prefix_list_out) refs.prefix_lists.insert(*nbr.prefix_list_out);
    }
  }
  for (const auto& rm : cfg.route_maps) {
    for (const auto& clause : rm.clauses) {
      for (const auto& acl : clause.match_ip_address_acls) {
        refs.acls.insert(acl);
      }
      for (const auto& pl : clause.match_prefix_lists) {
        refs.prefix_lists.insert(pl);
      }
    }
  }
  return refs;
}

/// Does an earlier clause's source spec fully cover a later clause's?
bool clause_shadows(const config::AclRule& earlier,
                    const config::AclRule& later) {
  if (earlier.extended || later.extended) {
    return false;  // extended shadowing needs protocol/port reasoning; skip
  }
  if (earlier.any_source) return true;
  if (later.any_source) return false;
  return earlier.source.contains(later.source);
}

/// A crude concern count for multi-policy detection: distinct protocols
/// plus whether address-only and protocol rules are mixed.
std::size_t concern_count(const config::AccessList& acl) {
  std::set<std::string> protocols;
  bool has_standard = false;
  for (const auto& rule : acl.rules) {
    if (rule.extended) {
      protocols.insert(rule.protocol);
    } else {
      has_standard = true;
    }
  }
  return protocols.size() + (has_standard ? 1 : 0);
}

}  // namespace

std::vector<LintFinding> lint_network(const model::Network& network,
                                      const LintOptions& options) {
  std::vector<LintFinding> findings;

  for (model::RouterId r = 0; r < network.router_count(); ++r) {
    const auto& cfg = network.routers()[r];
    const auto refs = collect_references(cfg);

    // Unused definitions. The conventional "99"-style management ACLs are
    // often intentionally unapplied, but the paper's inventory task still
    // wants them surfaced.
    for (const auto& acl : cfg.access_lists) {
      if (!refs.acls.contains(acl.id)) {
        findings.push_back({LintKind::kUnusedAccessList, r, acl.id,
                            std::to_string(acl.rules.size()) + " clauses"});
      }
    }
    for (const auto& rm : cfg.route_maps) {
      if (!refs.route_maps.contains(rm.name)) {
        findings.push_back({LintKind::kUnusedRouteMap, r, rm.name, ""});
      }
    }

    // Dangling references.
    for (const auto& acl_id : refs.acls) {
      if (cfg.find_access_list(acl_id) == nullptr) {
        findings.push_back({LintKind::kUndefinedAclReference, r, acl_id,
                            "referenced but not defined (permits "
                            "everything)"});
      }
    }
    for (const auto& rm_name : refs.route_maps) {
      if (cfg.find_route_map(rm_name) == nullptr) {
        findings.push_back(
            {LintKind::kUndefinedRouteMapRef, r, rm_name, ""});
      }
    }
    for (const auto& pl_name : refs.prefix_lists) {
      if (cfg.find_prefix_list(pl_name) == nullptr) {
        findings.push_back(
            {LintKind::kUndefinedPrefixListRef, r, pl_name, ""});
      }
    }

    // Clause-level checks.
    for (const auto& acl : cfg.access_lists) {
      if (acl.rules.size() >= options.multi_policy_clause_threshold &&
          concern_count(acl) >= 3) {
        findings.push_back(
            {LintKind::kMultiPolicyFilter, r, acl.id,
             std::to_string(acl.rules.size()) + " clauses spanning " +
                 std::to_string(concern_count(acl)) +
                 " concerns (split per policy)"});
      }
      for (std::size_t i = 0; i < acl.rules.size(); ++i) {
        for (std::size_t j = 0; j < i; ++j) {
          if (acl.rules[j] == acl.rules[i]) {
            findings.push_back({LintKind::kDuplicateAclClause, r, acl.id,
                                "clause " + std::to_string(i + 1) +
                                    " duplicates clause " +
                                    std::to_string(j + 1)});
            break;
          }
          if (clause_shadows(acl.rules[j], acl.rules[i]) &&
              i + 1 != acl.rules.size()) {
            findings.push_back({LintKind::kShadowedAclClause, r, acl.id,
                                "clause " + std::to_string(i + 1) +
                                    " can never match (shadowed by clause " +
                                    std::to_string(j + 1) + ")"});
            break;
          }
        }
      }
    }

    // Non-canonical network statements: the address has host bits set below
    // the mask, so IOS silently canonicalizes it ("network 10.0.0.5 /8"
    // covers 10.0.0.0/8). Prefix::parse would hide the sloppiness the same
    // way; the strict constructor detects it.
    for (const auto& stanza : cfg.router_stanzas) {
      for (const auto& ns : stanza.networks) {
        if (ip::Prefix::make_strict(ns.address, ns.mask.length())) continue;
        const ip::Prefix canonical(ns.address, ns.mask.length());
        findings.push_back(
            {LintKind::kNoncanonicalNetwork, r,
             ns.address.to_string() + "/" + std::to_string(ns.mask.length()),
             std::string(config::to_keyword(stanza.protocol)) +
                 " network statement has host bits set; matches " +
                 canonical.to_string()});
      }
    }

    // Static routes duplicating connected subnets.
    for (const auto& route : cfg.static_routes) {
      for (const model::InterfaceId i : network.router_interfaces(r)) {
        const auto& itf = network.interfaces()[i];
        if (itf.subnet && *itf.subnet == route.prefix()) {
          findings.push_back({LintKind::kRedundantStaticRoute, r,
                              route.prefix().to_string(),
                              "duplicates connected subnet on " + itf.name});
        }
      }
    }
  }
  return findings;
}

}  // namespace rd::analysis
