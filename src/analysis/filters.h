#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "model/network.h"

namespace rd::analysis {

/// Packet-filter usage statistics for one network (paper §5.3, Figure 11).
///
/// The unit of measurement is the filter *rule* (one "if condition then
/// action" clause of an ACL), counted once per interface application: an ACL
/// with 5 clauses applied to 3 interfaces contributes 15 applied rules.
struct FilterStats {
  std::size_t total_applied_rules = 0;
  std::size_t internal_applied_rules = 0;  // applied on internal links
  std::size_t external_applied_rules = 0;
  std::size_t interfaces_with_filters = 0;
  std::size_t defined_rules = 0;  // clauses across all ACL definitions
  /// Largest single filter (clause count) — the paper flags a 47-clause
  /// multi-policy filter as an IOS-language weakness.
  std::size_t largest_filter_rules = 0;
  std::string largest_filter_id;

  /// True when the network actually filters packets anywhere (an ACL is
  /// applied to some interface); ACLs that exist only as route filters or
  /// unapplied definitions do not count.
  bool has_filters() const noexcept { return total_applied_rules > 0; }
  /// Fraction of applied rules sitting on internal links (Figure 11 x-axis).
  double internal_fraction() const noexcept {
    return total_applied_rules == 0
               ? 0.0
               : static_cast<double>(internal_applied_rules) /
                     static_cast<double>(total_applied_rules);
  }
};

FilterStats gather_filter_stats(const model::Network& network);

/// Per-protocol breakdown of what internal packet filters target (paper
/// §5.3's qualitative look): protocol keyword -> rule count on internal
/// links. Standard (address-only) rules count under "ip".
std::map<std::string, std::size_t> internal_filter_targets(
    const model::Network& network);

}  // namespace rd::analysis
