#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "analysis/reachability.h"
#include "graph/instances.h"
#include "model/network.h"

namespace rd::analysis {

/// Host-level packet reachability: the control plane (does a route exist?)
/// combined with the data plane (do the packet filters at the attachment
/// points pass the flow?). This is the "middle ground" of paper §6.2 — no
/// per-router forwarding simulation, but enough to answer §5.3's questions
/// like "which set of hosts can use a particular application".
struct FlowQuery {
  ip::Ipv4Address source;
  ip::Ipv4Address destination;
  std::string protocol = "ip";  // "ip", "tcp", "udp", "icmp", "pim", ...
  std::optional<std::uint16_t> destination_port;
};

enum class FlowVerdict : std::uint8_t {
  kSourceNotAttached,       // source address not on any known subnet
  kDestinationNotAttached,  // destination not on any known subnet and not
                            // reachable via external routes
  kNoRoute,                 // no route toward the destination
  kNoReturnRoute,           // forward route exists; reverse does not
  kFilteredAtSource,        // inbound filter on the source attachment drops
  kFilteredAtDestination,   // outbound filter at the destination drops
  kPossiblyReachable,       // no modeled obstacle
};

std::string_view to_string(FlowVerdict verdict) noexcept;

class PacketReachability {
 public:
  PacketReachability(const model::Network& network,
                     const graph::InstanceSet& instances,
                     const ReachabilityAnalysis& routes)
      : network_(network), instances_(instances), routes_(routes) {}

  /// Evaluate one flow.
  FlowVerdict evaluate(const FlowQuery& query) const;

  /// The §5.3 question: can `host` use an application (protocol/port) on
  /// `server`? Checks the forward flow only.
  bool can_use_application(ip::Ipv4Address host, ip::Ipv4Address server,
                           const std::string& protocol,
                           std::uint16_t port) const;

 private:
  struct Attachment {
    model::InterfaceId interface = model::kInvalidId;
    std::int64_t instance = -1;  // -1 when no covering process
  };
  std::optional<Attachment> attachment_of(ip::Ipv4Address addr) const;

  const model::Network& network_;
  const graph::InstanceSet& instances_;
  const ReachabilityAnalysis& routes_;
};

}  // namespace rd::analysis
