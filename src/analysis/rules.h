#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lint.h"
#include "graph/instances.h"
#include "model/network.h"
#include "util/thread_pool.h"

namespace rd::analysis {

/// The unified design-rule engine (paper §8: using the routing design
/// model "to perform static analysis of a network's routing design" —
/// checking it "for common errors or vulnerabilities"). Every static check
/// in the repository — lint, cross-router consistency, vulnerability
/// assessment, and the §8 cross-router design rules — is registered here
/// under a stable `RDnnn` identifier with a severity, and produces
/// `Finding`s that carry source provenance (config file + 1-based line).
///
/// Rule-id blocks: RD001-RD019 per-router lint, RD020-RD029 cross-router
/// consistency, RD030-RD039 vulnerability assessment, RD040-RD049
/// cross-router design rules, RD050-RD059 symbolic header-space rules
/// (exact-set shadowing / dead-clause / intent checks), RD060-RD069
/// instance-graph dataflow rules (redistribution safety). Ids are
/// append-only: a retired rule's id is never reused, so baselines and
/// suppression comments stay meaningful across versions.

enum class Severity : std::uint8_t { kInfo, kWarning, kError };

/// "info" / "warning" / "error" — also the spelling used in report JSON.
std::string_view severity_name(Severity severity) noexcept;

/// SARIF 2.1.0 `level` for a severity ("note" / "warning" / "error").
std::string_view severity_sarif_level(Severity severity) noexcept;

/// Where a finding points in the source text. `file` is the router's
/// source_file (hostname when the config never touched disk); `line` is
/// 1-based, 0 = no specific line.
struct SourceRef {
  std::string file;
  std::size_t line = 0;
};

/// One design-rule violation. Rule functions fill in router / router_b /
/// subject / detail / where.line; the engine stamps rule_id, severity,
/// router names, and where.file afterwards, so rules cannot disagree with
/// their registration.
struct Finding {
  std::string rule_id;  // "RD007"
  Severity severity = Severity::kWarning;
  model::RouterId router = model::kInvalidId;
  /// Second router involved, for cross-router findings (kInvalidId if n/a).
  model::RouterId router_b = model::kInvalidId;
  std::string router_name;    // hostname of `router` ("" if network-wide)
  std::string router_b_name;  // hostname of `router_b` ("" if n/a)
  std::string subject;        // ACL id / neighbor address / instance pair
  std::string detail;         // human-readable explanation
  SourceRef where;            // anchored in `router`'s config
};

/// Stable fingerprint for baseline comparison: rule id, router, subject,
/// and detail — deliberately excluding file and line, so reformatting a
/// config does not turn every old finding into a "new" one.
std::string finding_fingerprint(const Finding& finding);

/// Registration-time metadata for one rule.
struct RuleInfo {
  std::string id;        // "RD001" — stable across releases
  std::string name;      // kebab-case short name, e.g. "multi-policy-filter"
  std::string category;  // "lint" | "consistency" | "vulnerability" | ...
  Severity severity = Severity::kWarning;
  std::string description;  // one sentence, imperative mood
  std::string paper;        // paper section(s) motivating the rule
};

/// Everything a rule may look at. The instance graph is built once per run
/// and shared; `options` carries the lint thresholds.
struct RuleOptions {
  LintOptions lint;
};

struct RuleContext {
  const model::Network& network;
  const graph::InstanceGraph& graph;
  const RuleOptions& options;
};

class RuleEngine {
 public:
  /// A rule body: examine the context, emit findings. Must be pure —
  /// rules run concurrently over shared immutable state.
  using RuleFn = std::function<std::vector<Finding>(const RuleContext&)>;

  struct Rule {
    RuleInfo info;
    RuleFn fn;
  };

  /// Wall time and yield of one rule in one run. Timings are measured with
  /// steady_clock and are therefore nondeterministic; they are reported via
  /// `rdlint --timings` and the bench, never serialized into report JSON
  /// (which must stay byte-identical between serial and parallel runs).
  struct RuleTiming {
    std::string rule_id;
    double millis = 0.0;
    std::size_t findings = 0;  // before suppression
  };

  struct Result {
    /// All findings, suppressions applied, ordered by rule registration
    /// order and, within a rule, by the rule's own (deterministic) emission
    /// order — identical for serial and parallel runs.
    std::vector<Finding> findings;
    std::vector<RuleTiming> timings;  // one entry per registered rule
    std::size_t suppressed = 0;       // dropped by rdlint-disable comments
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::size_t infos = 0;

    bool has_errors() const noexcept { return errors > 0; }
  };

  RuleEngine() = default;

  /// An engine with every built-in rule registered (RD001..RD064).
  static RuleEngine with_default_rules(RuleOptions options = {});

  void add(RuleInfo info, RuleFn fn);

  const std::vector<Rule>& rules() const noexcept { return rules_; }
  const RuleOptions& options() const noexcept { return options_; }

  /// Metadata for a rule id, or nullptr when unknown.
  const RuleInfo* find(std::string_view id) const noexcept;

  /// Run every rule serially (no pool, no background threads).
  Result run(const model::Network& network) const;

  /// Serial run with a caller-provided instance graph.
  Result run(const model::Network& network,
             const graph::InstanceGraph& graph) const;

  /// Run rules across `pool`, one task per rule; findings are merged in
  /// registration order so the output is byte-identical to the serial run.
  Result run(const model::Network& network, util::ThreadPool& pool) const;

  /// Same, with a caller-provided instance graph (the pipeline already has
  /// one; rebuilding it per run would double the cost).
  Result run(const model::Network& network, const graph::InstanceGraph& graph,
             util::ThreadPool& pool) const;

 private:
  Result collect(const model::Network& network,
                 const graph::InstanceGraph& graph,
                 util::ThreadPool* pool) const;

  std::vector<Rule> rules_;
  RuleOptions options_;
};

/// Report serializers. Both are deterministic functions of the findings
/// (timings excluded), so serial and parallel runs serialize identically.
///
/// JSON layout:
///   {"tool": "rdlint", "network": ..., "summary": {...},
///    "findings": [{"rule", "name", "severity", "router", "router_b"?,
///                  "file", "line", "subject", "detail", "fingerprint"}]}
std::string findings_to_json(const RuleEngine& engine, const RuleEngine::Result& result,
                             std::string_view network_name, int indent = 2);

/// SARIF 2.1.0 (static-analysis interchange): one run, one driver
/// ("rdlint"), one reportingDescriptor per registered rule, one result per
/// finding with physical location and partial fingerprint.
std::string findings_to_sarif(const RuleEngine& engine,
                              const RuleEngine::Result& result,
                              int indent = 2);

/// Classification of a run against a previously saved report
/// (`rdlint --baseline old.json`): which findings are new, which persist,
/// and which baseline findings have disappeared (fixed). Matching is by
/// `finding_fingerprint`, set semantics.
struct BaselineDelta {
  std::vector<Finding> new_findings;
  std::vector<Finding> unchanged;
  std::vector<std::string> fixed;  // fingerprints present only in baseline
};

/// Extract the fingerprints from a report previously written by
/// `findings_to_json`. std::nullopt when the text is not such a report.
std::optional<std::vector<std::string>> baseline_fingerprints(
    std::string_view json_text);

BaselineDelta diff_against_baseline(const std::vector<Finding>& current,
                                    const std::vector<std::string>& baseline);

}  // namespace rd::analysis
