#include "analysis/header_space.h"

#include <algorithm>
#include <bit>

#include "ip/prefix_trie.h"
#include "obs/obs.h"

namespace rd::analysis {

namespace {

/// Remove `hole` from a disjoint prefix set, splitting pieces as needed.
void subtract_prefix(std::vector<ip::Prefix>& region, const ip::Prefix& hole) {
  std::vector<ip::Prefix> out;
  out.reserve(region.size());
  for (const auto& piece : region) {
    if (hole.contains(piece)) continue;
    if (piece.contains(hole)) {
      auto parts = model::prefix_difference(piece, hole);
      out.insert(out.end(), parts.begin(), parts.end());
    } else {
      out.push_back(piece);
    }
  }
  region = std::move(out);
}

/// Intersection of two disjoint prefix sets: for every overlapping pair the
/// longer prefix is the intersection, and distinct pairs stay disjoint.
std::vector<ip::Prefix> intersect_spaces(const std::vector<ip::Prefix>& a,
                                         const std::vector<ip::Prefix>& b) {
  std::vector<ip::Prefix> out;
  for (const auto& p : a) {
    for (const auto& q : b) {
      if (p.contains(q)) {
        out.push_back(q);
      } else if (q.contains(p)) {
        out.push_back(p);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::string Intent::describe() const {
  std::string out = expect_reachable ? "allow " : "deny ";
  out += source.to_string();
  out += " -> ";
  out += destination.to_string();
  if (protocol != "ip") out += " proto " + protocol;
  if (port) out += " port " + std::to_string(*port);
  return out;
}

std::string IntentWitness::describe() const {
  std::string out = source.to_string();
  out += " -> ";
  out += destination.to_string();
  out += " proto ";
  out += protocol;
  out += " port ";
  out += port ? std::to_string(*port) : std::string("none");
  return out;
}

HeaderSpace::HeaderSpace(const model::Network& network,
                         const graph::InstanceSet& instances,
                         const ReachabilityAnalysis& routes)
    : network_(network), instances_(instances), routes_(routes) {
  const auto& itfs = network_.interfaces();
  regions_.resize(itfs.size());

  // All interface subnets, sorted by (network, length, id) so the subnets
  // contained in any prefix s occupy a contiguous run starting at
  // lower_bound(s.network()).
  struct Entry {
    ip::Prefix subnet;
    model::InterfaceId id;
  };
  std::vector<Entry> entries;
  for (model::InterfaceId i = 0; i < itfs.size(); ++i) {
    if (itfs[i].subnet) entries.push_back({*itfs[i].subnet, i});
  }
  // NOTE: Prefix::operator< orders by (length, network); the contiguous-run
  // scan below needs network-major order, so compare explicitly.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.subnet.network() != b.subnet.network()) {
                return a.subnet.network() < b.subnet.network();
              }
              if (a.subnet.length() != b.subnet.length()) {
                return a.subnet.length() < b.subnet.length();
              }
              return a.id < b.id;
            });

  for (model::InterfaceId i = 0; i < itfs.size(); ++i) {
    if (!itfs[i].subnet) continue;
    const ip::Prefix s = *itfs[i].subnet;
    std::vector<ip::Prefix> region{s};
    const auto lo = std::lower_bound(
        entries.begin(), entries.end(), s.network().value(),
        [](const Entry& e, std::uint32_t v) {
          return e.subnet.network().value() < v;
        });
    for (auto it = lo; it != entries.end() &&
                       it->subnet.network().value() <= s.last_address().value();
         ++it) {
      if (it->id == i) continue;
      if (it->subnet.length() == s.length()) {
        // An identical subnet on a lower-numbered interface wins the
        // whole tie (attachment_of keeps the first interface it sees at
        // the best length).
        if (it->subnet.network() == s.network() && it->id < i) {
          region.clear();
          break;
        }
        continue;
      }
      if (it->subnet.length() < s.length()) continue;  // shorter never wins
      subtract_prefix(region, it->subnet);
      if (region.empty()) break;
    }
    std::sort(region.begin(), region.end());
    regions_[i] = std::move(region);
  }

  route_spaces_.resize(instances_.instances.size());
}

const std::vector<ip::Prefix>& HeaderSpace::attachment_region(
    model::InterfaceId i) const {
  return regions_[i];
}

std::optional<model::InterfaceId> HeaderSpace::attachment_interface(
    ip::Ipv4Address addr) const {
  // Regions are pairwise disjoint, so the first hit is the only hit.
  for (model::InterfaceId i = 0; i < regions_.size(); ++i) {
    for (const auto& piece : regions_[i]) {
      if (piece.contains(addr)) return i;
    }
  }
  return std::nullopt;
}

std::int64_t HeaderSpace::instance_of_interface(model::InterfaceId i) const {
  const auto& itf = network_.interfaces()[i];
  for (const model::ProcessId p : network_.router_processes(itf.router)) {
    const auto& process = network_.processes()[p];
    for (const model::InterfaceId covered : process.covered_interfaces) {
      if (covered == i) {
        return static_cast<std::int64_t>(instances_.instance_of[p]);
      }
    }
  }
  return -1;
}

const std::vector<ip::Prefix>& HeaderSpace::route_space(
    std::uint32_t instance) {
  auto& slot = route_spaces_[instance];
  if (!slot) {
    // Routes arrive sorted ascending, covers before what they cover, so
    // insert_uncovered leaves a minimal disjoint cover of the non-default
    // routes — the address set instance_has_route_to answers true for.
    ip::PrefixTrie<char> trie;
    for (const auto& route : routes_.instance_routes(instance)) {
      if (route.prefix.length() > 0) trie.insert_uncovered(route.prefix, 1);
    }
    std::vector<ip::Prefix> cover;
    cover.reserve(trie.size());
    trie.for_each(
        [&](const ip::Prefix& p, const char&) { cover.push_back(p); });
    slot = std::move(cover);
  }
  return *slot;
}

const model::HeaderPredicate* HeaderSpace::inbound_filter(
    model::InterfaceId i) {
  const auto& itf = network_.interfaces()[i];
  const auto& cfg = network_.routers()[itf.router];
  const auto& icfg = cfg.interfaces[itf.config_index];
  if (!icfg.access_group_in) return nullptr;
  const auto* sym = compiler_.symbolic_acl(cfg, *icfg.access_group_in);
  return sym != nullptr ? &sym->permitted() : nullptr;
}

const model::HeaderPredicate* HeaderSpace::outbound_filter(
    model::InterfaceId i) {
  const auto& itf = network_.interfaces()[i];
  const auto& cfg = network_.routers()[itf.router];
  const auto& icfg = cfg.interfaces[itf.config_index];
  if (!icfg.access_group_out) return nullptr;
  const auto* sym = compiler_.symbolic_acl(cfg, *icfg.access_group_out);
  return sym != nullptr ? &sym->permitted() : nullptr;
}

model::HeaderPredicate HeaderSpace::build_pair(
    model::InterfaceId ingress, std::optional<model::InterfaceId> egress) {
  const auto& src_region = regions_[ingress];
  if (src_region.empty()) return model::HeaderPredicate::none();

  std::vector<ip::Prefix> dst_region;
  std::int64_t dst_inst = -1;
  if (egress) {
    dst_region = regions_[*egress];
    dst_inst = instance_of_interface(*egress);
  } else {
    // Unattached destinations: no region constraint of their own (the
    // caller guarantees the destination lies outside every region).
    dst_region.push_back(ip::Prefix(ip::Ipv4Address(0u), 0));
  }
  if (dst_region.empty()) return model::HeaderPredicate::none();

  // Control plane, forward direction: the source's instance must hold a
  // route to the destination (or reach the Internet, which covers every
  // destination). No check when no routing process serves the attachment —
  // exactly the concrete evaluate()'s src->instance >= 0 guard.
  const std::int64_t src_inst = instance_of_interface(ingress);
  std::vector<ip::Prefix> dst_space = dst_region;
  if (src_inst >= 0 &&
      !routes_.instance_reaches_internet(
          static_cast<std::uint32_t>(src_inst))) {
    dst_space = intersect_spaces(
        dst_region, route_space(static_cast<std::uint32_t>(src_inst)));
  }
  // Return direction: only checked when the destination is attached to a
  // routed instance.
  std::vector<ip::Prefix> src_space = src_region;
  if (egress && dst_inst >= 0 &&
      !routes_.instance_reaches_internet(
          static_cast<std::uint32_t>(dst_inst))) {
    src_space = intersect_spaces(
        src_region, route_space(static_cast<std::uint32_t>(dst_inst)));
  }
  if (src_space.empty() || dst_space.empty()) {
    return model::HeaderPredicate::none();
  }

  model::HeaderPredicate pred;
  for (const auto& s : src_space) {
    for (const auto& d : dst_space) {
      model::HeaderAtom atom;
      atom.source = s;
      atom.destination = d;
      pred.unite(atom);
    }
  }

  // Data plane: inbound filter at the source attachment, outbound filter
  // at the destination attachment (when attached). Unresolvable ACL
  // references filter nothing, as in the concrete prober.
  if (const auto* in = inbound_filter(ingress)) pred = pred.intersect(*in);
  if (egress) {
    if (const auto* out = outbound_filter(*egress)) {
      pred = pred.intersect(*out);
    }
  }
  pred.normalize();
  return pred;
}

const model::HeaderPredicate& HeaderSpace::pair_predicate(
    model::InterfaceId ingress, model::InterfaceId egress) {
  const auto key = std::make_pair(ingress, egress);
  const auto it = pair_cache_.find(key);
  if (it != pair_cache_.end()) return it->second;
  auto pred = build_pair(ingress, egress);
  obs::counter("headerspace.pairs").add();
  obs::counter("headerspace.atoms").add(pred.atom_count());
  return pair_cache_.emplace(key, std::move(pred)).first->second;
}

const model::HeaderPredicate& HeaderSpace::unattached_predicate(
    model::InterfaceId ingress) {
  const auto it = unattached_cache_.find(ingress);
  if (it != unattached_cache_.end()) return it->second;
  auto pred = build_pair(ingress, std::nullopt);
  obs::counter("headerspace.pairs").add();
  obs::counter("headerspace.atoms").add(pred.atom_count());
  return unattached_cache_.emplace(ingress, std::move(pred)).first->second;
}

bool HeaderSpace::passes(const FlowQuery& query) {
  const auto src = attachment_interface(query.source);
  if (!src) return false;
  const auto dst = attachment_interface(query.destination);
  const auto& pred =
      dst ? pair_predicate(*src, *dst) : unattached_predicate(*src);
  const std::uint64_t bit =
      compiler_.protocol_domain().packet_bit(query.protocol);
  const std::uint32_t port =
      query.destination_port ? *query.destination_port : model::kNoPort;
  return pred.contains(query.source, query.destination, bit, port);
}

std::vector<IntentOutcome> HeaderSpace::verify(
    const std::vector<Intent>& intents) {
  std::vector<IntentOutcome> outcomes;
  outcomes.reserve(intents.size());

  // Destinations outside every interface subnet — the addresses the
  // concrete prober reports as unattached.
  std::vector<ip::Prefix> unattached_universe{
      ip::Prefix(ip::Ipv4Address(0u), 0)};
  for (const auto& itf : network_.interfaces()) {
    if (!itf.subnet) continue;
    subtract_prefix(unattached_universe, *itf.subnet);
    if (unattached_universe.empty()) break;
  }
  std::sort(unattached_universe.begin(), unattached_universe.end());

  for (const auto& intent : intents) {
    model::HeaderAtom region;
    region.source = intent.source;
    region.destination = intent.destination;
    region.protocols = intent.protocol == "ip"
                           ? model::kAllProtocols
                           : compiler_.protocol_domain().clause_mask(
                                 intent.protocol);
    if (intent.port) {
      region.port_lo = region.port_hi = *intent.port;
    }
    const auto scope = model::HeaderPredicate::of(region);

    // The reachable part of the intent's region with an unattached
    // destination, per ingress, needs the destination restricted to the
    // unattached universe.
    model::HeaderPredicate unattached_scope;
    for (const auto& u : intersect_spaces(unattached_universe,
                                          {intent.destination})) {
      model::HeaderAtom a = region;
      a.destination = u;
      unattached_scope.unite(a);
    }

    IntentOutcome outcome;
    outcome.intent = intent;
    outcome.holds = true;

    // remaining = headers of the region not yet proven reachable (allow
    // intents must drain it to empty).
    model::HeaderPredicate remaining = scope;
    std::optional<model::HeaderPredicate::Witness> violating;

    for (model::InterfaceId i = 0;
         i < regions_.size() && (intent.expect_reachable || !violating);
         ++i) {
      if (regions_[i].empty()) continue;
      if (intersect_spaces(regions_[i], {intent.source}).empty()) continue;
      for (model::InterfaceId e = 0; e < regions_.size(); ++e) {
        if (regions_[e].empty()) continue;
        if (intersect_spaces(regions_[e], {intent.destination}).empty()) {
          continue;
        }
        const auto reachable = pair_predicate(i, e).intersect(scope);
        if (intent.expect_reachable) {
          remaining = remaining.subtract(reachable);
          if (remaining.is_empty()) break;
        } else if (!reachable.is_empty()) {
          auto pruned = reachable;
          pruned.normalize();
          violating = pruned.witness();
          break;
        }
      }
      if (intent.expect_reachable && remaining.is_empty()) break;
      if (!intent.expect_reachable && !violating &&
          !unattached_scope.is_empty()) {
        const auto reachable =
            unattached_predicate(i).intersect(unattached_scope);
        if (!reachable.is_empty()) {
          auto pruned = reachable;
          pruned.normalize();
          violating = pruned.witness();
        }
      }
      if (intent.expect_reachable && !unattached_scope.is_empty()) {
        remaining =
            remaining.subtract(unattached_predicate(i).intersect(
                unattached_scope));
      }
    }

    if (intent.expect_reachable) {
      if (!remaining.is_empty()) {
        remaining.normalize();
        violating = remaining.witness();
      }
    }
    if (violating) {
      outcome.holds = false;
      IntentWitness w;
      w.source = violating->source;
      w.destination = violating->destination;
      w.protocol =
          std::string(protocol_domain().bit_name(violating->protocol_bit));
      if (violating->port != model::kNoPort) {
        w.port = static_cast<std::uint16_t>(violating->port);
      }
      outcome.witness = w;
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

std::vector<Intent> collect_intents(const model::Network& network) {
  std::vector<Intent> intents;
  for (model::RouterId r = 0; r < network.routers().size(); ++r) {
    for (const auto& directive : network.routers()[r].intents) {
      Intent intent;
      intent.expect_reachable = directive.expect_reachable;
      intent.source = directive.source;
      intent.destination = directive.destination;
      intent.protocol = directive.protocol;
      intent.port = directive.port;
      intent.router = r;
      intent.line = directive.line;
      intents.push_back(std::move(intent));
    }
  }
  return intents;
}

std::vector<IntentOutcome> verify_intents(const model::Network& network,
                                          const graph::InstanceSet& instances,
                                          const ReachabilityAnalysis& routes,
                                          const std::vector<Intent>& intents) {
  HeaderSpace space(network, instances, routes);
  return space.verify(intents);
}

}  // namespace rd::analysis
