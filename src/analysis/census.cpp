#include "analysis/census.h"

namespace rd::analysis {

std::map<std::string, std::size_t> interface_census(
    const model::Network& network) {
  std::map<std::string, std::size_t> census;
  for (const auto& itf : network.interfaces()) {
    ++census[itf.hardware_type];
  }
  return census;
}

std::map<std::string, std::size_t> merge_census(
    const std::vector<std::map<std::string, std::size_t>>& censuses) {
  std::map<std::string, std::size_t> merged;
  for (const auto& census : censuses) {
    for (const auto& [type, count] : census) merged[type] += count;
  }
  return merged;
}

std::size_t unnumbered_interface_count(const model::Network& network) {
  std::size_t count = 0;
  for (const auto& itf : network.interfaces()) {
    if (!itf.numbered()) ++count;
  }
  return count;
}

}  // namespace rd::analysis
