#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/rules.h"
#include "graph/instances.h"
#include "model/network.h"
#include "model/policy.h"

namespace rd::analysis {

/// Forward-dataflow analysis over the routing-instance graph (paper §6:
/// instances glued together with redistribution plus ad-hoc filters). Nodes
/// are routing instances, edges are the points where routes cross instance
/// borders — redistribution commands and internal EBGP sessions — each with
/// its filter policy. The engine pushes abstract route facts along the
/// edges to a fixpoint the same semi-naïve way the reachability engine
/// pushes concrete routes, but each fact remembers *where it came from*:
/// its originating instance and the router where it first left it. That
/// provenance is what the redistribution-safety rules (RD060-RD064) reason
/// about and the concrete fixpoint deliberately forgets.

// --- Protocol tables ---------------------------------------------------------

/// Default IOS administrative distance of a route learned *inside* the
/// protocol (OSPF intra/inter-area, EIGRP internal, IBGP ... modeled as the
/// worse of the internal pair, so inversions are under- not over-reported).
std::uint8_t distance_internal(config::RoutingProtocol protocol) noexcept;

/// Default IOS administrative distance of a route *redistributed into* the
/// protocol (OSPF external, EIGRP external, EBGP).
std::uint8_t distance_external(config::RoutingProtocol protocol) noexcept;

/// The metric algebra a protocol speaks. Redistribution between protocols
/// of different classes loses metric information unless the boundary maps
/// it explicitly (paper §2.4: "metrics are not comparable across
/// protocols").
enum class MetricClass : std::uint8_t {
  kHopCount,    // RIP
  kCost,        // OSPF, IS-IS
  kComposite,   // EIGRP, IGRP (bandwidth/delay vector)
  kPath,        // BGP (path attributes, not a scalar metric)
};

MetricClass metric_class(config::RoutingProtocol protocol) noexcept;

/// "hop-count" / "cost" / "composite" / "path-attribute" — report spelling.
std::string_view metric_class_name(MetricClass cls) noexcept;

/// Human label for a routing instance: "instance 3 (ospf)" or
/// "instance 7 (bgp as 65001)". Indexes are 1-based to match the
/// audit_network report. (Shared by rules.cpp and the dataflow rules.)
std::string instance_label(const graph::InstanceSet& set, std::uint32_t i);

// --- Abstract domain ---------------------------------------------------------

/// One abstract fact: a route plus its provenance. `exit_router` is
/// kInvalidId while the fact still sits in its originating instance and is
/// stamped with the border router the first time the fact crosses out —
/// after that it never changes, so a fact arriving back at its origin knows
/// whether it traveled a real multi-router cycle or just bounced inside one
/// box (where the router's own RIB already breaks the loop).
struct RouteFact {
  std::uint32_t origin = 0;  // instance index the route was originated in
  model::RouterId exit_router = model::kInvalidId;
  model::Route route;

  friend bool operator==(const RouteFact&, const RouteFact&) = default;
};

/// One edge of the instance dataflow graph.
struct DataflowEdge {
  enum class Kind : std::uint8_t {
    kRedistribution,  // a cross-instance "redistribute" command
    kSession,         // an internal EBGP session (one direction)
  };
  Kind kind = Kind::kRedistribution;
  std::uint32_t from = 0;  // source instance index
  std::uint32_t to = 0;    // target instance index (always != from)
  /// Router where facts *enter* `to`: the redistributing router, or the
  /// receiving session endpoint.
  model::RouterId router = model::kInvalidId;
  /// Router where facts *leave* `from`: same router for redistribution,
  /// the sending endpoint for sessions. Facts with no exit stamp yet get
  /// this one when they cross.
  model::RouterId exit_router = model::kInvalidId;
  /// Index into network.redistribution_edges() (kRedistribution) or
  /// network.bgp_sessions() (kSession).
  std::size_t model_index = 0;
  /// 1-based source line of the redistribute command / neighbor statement.
  std::size_t line = 0;
  /// Route-map name annotating a redistribution edge, when present.
  std::optional<std::string> route_map;
};

/// A route-map-permitted re-entry of an instance's own routes (the RD060
/// event): some fact originated in `origin` traveled a multi-router cycle
/// and a redistribution edge would inject it back, and the injected copy's
/// administrative distance beats the native route, so the loop is live.
struct LoopEvent {
  std::size_t edge = 0;  // index into edges(); always kRedistribution
  std::uint32_t origin = 0;
  model::RouterId exit_router = model::kInvalidId;  // where it left origin
  model::Route witness;  // first route observed closing this loop
};

/// The first redistribution edge that delivered a fact of `origin` into
/// `instance` (execution order, which is deterministic). Session deliveries
/// are not recorded: BGP carries its own distance (never inverting an IGP)
/// and its loop prevention is the AS path, not administrative distance.
struct EntryRecord {
  std::uint32_t origin = 0;
  std::uint32_t instance = 0;
  std::size_t edge = 0;  // index into edges()
};

/// The fixpoint engine. Construction discovers edges and seeds (mirroring
/// the reachability engine's discovery: IGP covered subnets, BGP network
/// statements, connected/static redistribution through its route-map, BGP
/// aggregates) and iterates to a fixpoint. All results are deterministic
/// functions of the network — edges fire in index order, facts in log
/// order — so rule output is byte-identical across thread counts.
class InstanceDataflow {
 public:
  InstanceDataflow(const model::Network& network,
                   const graph::InstanceGraph& graph);

  const std::vector<DataflowEdge>& edges() const noexcept { return edges_; }
  const std::vector<LoopEvent>& loop_events() const noexcept {
    return loop_events_;
  }
  const std::vector<EntryRecord>& entries() const noexcept {
    return entries_;
  }
  /// Facts resident per instance after the fixpoint (seeds included).
  const std::vector<std::size_t>& instance_fact_counts() const noexcept {
    return fact_counts_;
  }
  std::size_t fact_count() const noexcept { return total_facts_; }
  std::size_t iterations() const noexcept { return iterations_; }
  /// False only if the safety cap on rounds was hit (cyclic tag rewriting
  /// could in principle keep minting fresh facts; real configs converge in
  /// a handful of rounds).
  bool converged() const noexcept { return converged_; }

 private:
  std::vector<DataflowEdge> edges_;
  std::vector<LoopEvent> loop_events_;
  std::vector<EntryRecord> entries_;
  std::vector<std::size_t> fact_counts_;
  std::size_t total_facts_ = 0;
  std::size_t iterations_ = 0;
  bool converged_ = true;
};

// --- Rules -------------------------------------------------------------------

/// The five statically-checked redistribution-safety rules built on the
/// dataflow engine (registered as RD060-RD064, category "dataflow"). Each
/// body is pure and may run concurrently with any other rule; the two
/// fixpoint-based rules build their own InstanceDataflow because compiled
/// policies are not shareable across threads.
struct RedistributionSafety {
  /// RD060: an instance's routes can transit a filter-permitting
  /// multi-router cycle and re-enter their origin with a winning distance.
  static std::vector<Finding> redistribution_loop(const RuleContext& ctx);
  /// RD061: redistribution into a protocol with a different metric algebra
  /// and no metric mapping (no command metric, no default-metric, no
  /// set-metric clause).
  static std::vector<Finding> metric_loss(const RuleContext& ctx);
  /// RD062: a redistributed copy's administrative distance beats the native
  /// route on some router hosting both instances, so which route wins
  /// depends on arrival order.
  static std::vector<Finding> distance_inversion(const RuleContext& ctx);
  /// RD063: mutual redistribution between two instances where at least one
  /// direction carries no filter that can deny anything.
  static std::vector<Finding> unfiltered_mutual(const RuleContext& ctx);
  /// RD064: an IGP instance pair glued by redistribution whose only
  /// route-exchange path is one router (paper §6 robustness smell), both
  /// sides being multi-router conventional-IGP instances.
  static std::vector<Finding> single_point(const RuleContext& ctx);
};

}  // namespace rd::analysis
