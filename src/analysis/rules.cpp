#include "analysis/rules.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <utility>

#include "analysis/consistency.h"
#include "analysis/dataflow.h"
#include "analysis/header_space.h"
#include "analysis/ibgp.h"
#include "analysis/reachability.h"
#include "analysis/vulnerability.h"
#include "model/header_predicate.h"
#include "model/policy.h"
#include "obs/obs.h"
#include "util/json.h"

namespace rd::analysis {

std::string_view severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string_view severity_sarif_level(Severity severity) noexcept {
  switch (severity) {
    case Severity::kInfo:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "none";
}

std::string finding_fingerprint(const Finding& finding) {
  std::string out = finding.rule_id;
  out += '|';
  out += finding.router_name;
  out += '|';
  out += finding.subject;
  out += '|';
  out += finding.detail;
  return out;
}

namespace {

/// Shorthand used by every rule body: the engine stamps id / severity /
/// names / file afterwards.
Finding make_finding(model::RouterId router, std::string subject,
                     std::string detail, std::size_t line,
                     model::RouterId router_b = model::kInvalidId) {
  Finding f;
  f.router = router;
  f.router_b = router_b;
  f.subject = std::move(subject);
  f.detail = std::move(detail);
  f.where.line = line;
  return f;
}

// instance_label lives in dataflow.{h,cpp}, shared with the RD060-RD064
// rule bodies.

// --- lint rules (RD001-RD010): one registered rule per LintKind -------------

std::vector<Finding> run_lint_kind(const RuleContext& ctx, LintKind kind) {
  LintOptions options = ctx.options.lint;
  options.kind_mask = lint_kind_bit(kind);
  std::vector<Finding> out;
  for (auto& f : lint_network(ctx.network, options)) {
    out.push_back(make_finding(f.router, std::move(f.subject),
                               std::move(f.detail), f.line));
  }
  return out;
}

// --- consistency rules (RD020-RD023) ----------------------------------------

std::vector<Finding> run_consistency_kind(const RuleContext& ctx,
                                          ConsistencyKind kind) {
  std::vector<Finding> out;
  for (auto& f :
       check_consistency(ctx.network, consistency_kind_bit(kind))) {
    out.push_back(make_finding(f.router_a, std::string(to_string(kind)),
                               std::move(f.detail), f.line, f.router_b));
  }
  return out;
}

// --- vulnerability rules (RD030-RD033) --------------------------------------

std::vector<Finding> rule_unfiltered_ebgp(const RuleContext& ctx) {
  std::vector<Finding> out;
  for (const auto& c : find_unfiltered_external_connections(ctx.network)) {
    if (c.kind != UnfilteredExternalConnection::Kind::kBgpSession) continue;
    std::string what;
    if (c.missing_route_filter) what = "no inbound route filter";
    if (c.missing_packet_filter) {
      if (!what.empty()) what += " and ";
      what += "no inbound packet filter on the facing interface";
    }
    out.push_back(make_finding(c.router, c.detail,
                               "external BGP session with " + what, c.line));
  }
  return out;
}

std::vector<Finding> rule_redistribution_spof(const RuleContext& ctx) {
  std::vector<Finding> out;
  for (const auto& pr : redistribution_redundancy(ctx.network, ctx.graph)) {
    if (!pr.single_point_of_failure()) continue;
    const auto a = instance_label(ctx.graph.set, pr.instance_a);
    const auto b = instance_label(ctx.graph.set, pr.instance_b);
    out.push_back(make_finding(
        pr.connecting_routers.front(), a + " <-> " + b,
        "all route exchange between " + a + " and " + b +
            " passes through this single router",
        0));
  }
  return out;
}

std::vector<Finding> rule_backdoor_candidate(const RuleContext& ctx) {
  std::vector<Finding> out;
  const auto bd = detect_backdoor_candidates(ctx.network, ctx.graph);
  if (bd.groups > 1) {
    std::string reps;
    for (const auto i : bd.group_representatives) {
      if (!reps.empty()) reps += ", ";
      reps += instance_label(ctx.graph.set, i);
    }
    out.push_back(make_finding(
        model::kInvalidId, "external connectivity",
        std::to_string(bd.groups) +
            " internally disconnected instance groups each reach the "
            "external world; traffic between them can only flow through "
            "neighboring domains (" +
            reps + ")",
        0));
  }
  return out;
}

std::vector<Finding> rule_shared_static_destination(const RuleContext& ctx) {
  const auto& network = ctx.network;
  std::vector<Finding> out;
  for (const auto& shared : shared_static_destinations(network)) {
    const auto first = shared.routers.front();
    std::size_t line = 0;
    for (const auto& route : network.routers()[first].static_routes) {
      if (route.prefix() == shared.destination) {
        line = route.line;
        break;
      }
    }
    std::string names;
    for (std::size_t i = 0; i < shared.routers.size() && i < 4; ++i) {
      if (!names.empty()) names += ", ";
      names += network.routers()[shared.routers[i]].hostname;
    }
    if (shared.routers.size() > 4) names += ", ...";
    out.push_back(make_finding(
        first, shared.destination.to_string(),
        "static routes to this destination on " +
            std::to_string(shared.routers.size()) + " routers (" + names +
            "); schedule their maintenance jointly",
        line, shared.routers[1]));
  }
  return out;
}

// --- cross-router design rules (RD040-RD044) --------------------------------

std::vector<Finding> rule_duplicate_router_id(const RuleContext& ctx) {
  const auto& network = ctx.network;
  // router-id value -> every (router, stanza) configuring it, in router
  // order. The same value on several stanzas of ONE router is conventional
  // (OSPF and BGP commonly pin the same loopback); across routers it makes
  // adjacencies and IBGP sessions fail in hard-to-diagnose ways.
  std::map<std::uint32_t,
           std::vector<std::pair<model::RouterId, const config::RouterStanza*>>>
      owners;
  for (model::RouterId r = 0; r < network.router_count(); ++r) {
    for (const auto& stanza : network.routers()[r].router_stanzas) {
      if (stanza.router_id) {
        owners[stanza.router_id->value()].emplace_back(r, &stanza);
      }
    }
  }
  std::vector<Finding> out;
  for (const auto& [value, users] : owners) {
    const auto first = users.front().first;
    for (const auto& [r, stanza] : users) {
      if (r == first) continue;
      out.push_back(make_finding(
          r, stanza->router_id->to_string(),
          "router-id also configured on " + network.routers()[first].hostname +
              " (router " + std::string(config::to_keyword(stanza->protocol)) +
              " stanza)",
          stanza->line, first));
    }
  }
  return out;
}

/// Directed instance-pair view of process-to-process redistribution,
/// shared by RD041 and RD042.
struct RedistDirection {
  const model::RedistributionEdge* first = nullptr;   // in edge order
  const model::RedistributionEdge* first_mapped = nullptr;  // with route-map
  const model::RedistributionEdge* first_bare = nullptr;    // without
};

std::map<std::pair<std::uint32_t, std::uint32_t>, RedistDirection>
redistribution_directions(const RuleContext& ctx) {
  const auto& instance_of = ctx.graph.set.instance_of;
  std::map<std::pair<std::uint32_t, std::uint32_t>, RedistDirection> directed;
  for (const auto& edge : ctx.network.redistribution_edges()) {
    if (edge.source_kind != model::RibKind::kProcess) continue;
    if (edge.source_process == model::kInvalidId ||
        edge.target_process == model::kInvalidId) {
      continue;
    }
    const auto a = instance_of[edge.source_process];
    const auto b = instance_of[edge.target_process];
    if (a == b) continue;
    auto& dir = directed[{a, b}];
    if (dir.first == nullptr) dir.first = &edge;
    if (edge.route_map) {
      if (dir.first_mapped == nullptr) dir.first_mapped = &edge;
    } else if (dir.first_bare == nullptr) {
      dir.first_bare = &edge;
    }
  }
  return directed;
}

/// Source line of a redistribution edge's "redistribute" command.
std::size_t redistribute_line(const model::Network& network,
                              const model::RedistributionEdge& edge) {
  const auto& process = network.processes()[edge.target_process];
  return network.routers()[edge.router]
      .router_stanzas[process.stanza_index]
      .redistributes[edge.redistribute_index]
      .line;
}

std::vector<Finding> rule_one_sided_redistribution(const RuleContext& ctx) {
  const auto directed = redistribution_directions(ctx);
  std::vector<Finding> out;
  for (const auto& [pair, dir] : directed) {
    if (directed.count({pair.second, pair.first}) != 0) continue;
    const auto a = instance_label(ctx.graph.set, pair.first);
    const auto b = instance_label(ctx.graph.set, pair.second);
    const auto& edge = *dir.first;
    out.push_back(make_finding(
        edge.router, a + " -> " + b,
        "routes are redistributed from " + a + " into " + b +
            " with no redistribution in the reverse direction; hosts in " +
            b + " stay invisible to " + a,
        redistribute_line(ctx.network, edge)));
  }
  return out;
}

std::vector<Finding> rule_asymmetric_redistribution_policy(
    const RuleContext& ctx) {
  const auto directed = redistribution_directions(ctx);
  std::vector<Finding> out;
  for (const auto& [pair, dir] : directed) {
    if (pair.first > pair.second) continue;  // each unordered pair once
    const auto rev = directed.find({pair.second, pair.first});
    if (rev == directed.end()) continue;
    const bool forward_mapped = dir.first_mapped != nullptr;
    const bool reverse_mapped = rev->second.first_mapped != nullptr;
    if (forward_mapped == reverse_mapped) continue;
    const auto& mapped = forward_mapped ? dir : rev->second;
    const auto& bare = forward_mapped ? rev->second : dir;
    const auto mapped_from = instance_label(
        ctx.graph.set, forward_mapped ? pair.first : pair.second);
    const auto mapped_to = instance_label(
        ctx.graph.set, forward_mapped ? pair.second : pair.first);
    const auto& edge = *bare.first;
    out.push_back(make_finding(
        edge.router,
        instance_label(ctx.graph.set, pair.first) + " <-> " +
            instance_label(ctx.graph.set, pair.second),
        "redistribution " + mapped_from + " -> " + mapped_to +
            " is filtered by route-map " +
            *mapped.first_mapped->route_map +
            " but the reverse direction carries no route-map",
        redistribute_line(ctx.network, edge)));
  }
  return out;
}

std::vector<Finding> rule_ibgp_mesh_gap(const RuleContext& ctx) {
  const auto& network = ctx.network;
  std::vector<Finding> out;
  for (const auto& s : analyze_ibgp(network, ctx.graph.set)) {
    if (s.disconnected_pairs == 0) continue;
    const auto r = s.routers.front();
    std::size_t line = 0;
    for (const auto& stanza : network.routers()[r].router_stanzas) {
      if (stanza.protocol == config::RoutingProtocol::kBgp &&
          stanza.process_id && *stanza.process_id == s.as_number) {
        line = stanza.line;
        break;
      }
    }
    out.push_back(make_finding(
        r, "AS " + std::to_string(s.as_number),
        std::to_string(s.disconnected_pairs) +
            " ordered router pair(s) in AS " + std::to_string(s.as_number) +
            " have an IBGP session path but no route propagation path (" +
            std::to_string(s.sessions) + " session(s), " +
            std::to_string(s.reflectors) +
            " route reflector(s)); plain IBGP does not re-advertise",
        line));
  }
  return out;
}

std::vector<Finding> rule_unfiltered_igp_edge(const RuleContext& ctx) {
  const auto& network = ctx.network;
  std::vector<Finding> out;
  for (const auto& ext : network.external_igp_adjacencies()) {
    const auto& process = network.processes()[ext.process];
    const auto& config = network.routers()[process.router];
    const auto& stanza = config.router_stanzas[process.stanza_index];
    bool has_inbound_dl = false;
    for (const auto& dl : stanza.distribute_lists) {
      if (dl.inbound) {
        has_inbound_dl = true;
        break;
      }
    }
    const auto& itf = network.interfaces()[ext.interface];
    const auto& icfg = config.interfaces[itf.config_index];
    const bool missing_packet_filter = !icfg.access_group_in;
    if (has_inbound_dl && !missing_packet_filter) continue;
    const auto keyword = std::string(config::to_keyword(process.protocol));
    std::string what;
    if (!has_inbound_dl) {
      what = "no inbound distribute-list on the " + keyword + " process";
    }
    if (missing_packet_filter) {
      if (!what.empty()) what += " and ";
      what += "no inbound packet filter on the interface";
    }
    out.push_back(make_finding(
        process.router, itf.name,
        "external-facing interface runs " + keyword + " with " + what,
        icfg.line));
  }
  return out;
}

// --- symbolic rules (RD050-RD052) --------------------------------------------
//
// These reason over exact packet / route *sets* (model::HeaderPredicate)
// instead of probing one example, so they catch the shadowing the RD008
// heuristic deliberately skips ("extended shadowing needs protocol/port
// reasoning") and check operator intents against the full header space.

/// Is the ACL attached as a packet filter (access-group in/out) anywhere in
/// its own config? Decides which matching semantics RD050 applies.
bool acl_is_packet_filter(const config::RouterConfig& cfg,
                          const std::string& id) {
  for (const auto& itf : cfg.interfaces) {
    if ((itf.access_group_in && *itf.access_group_in == id) ||
        (itf.access_group_out && *itf.access_group_out == id)) {
      return true;
    }
  }
  return false;
}

/// Would the RD007/RD008 lint pass already flag clause i of this ACL? RD050
/// only reports shadows those heuristics cannot see, so the two rules never
/// double-report one clause.
bool lint_already_flags(const config::AccessList& acl, std::size_t i) {
  for (std::size_t j = 0; j < i; ++j) {
    const auto& earlier = acl.rules[j];
    const auto& later = acl.rules[i];
    if (earlier == later) return true;  // RD007 duplicate-acl-clause
    if (!earlier.extended && !later.extended && i + 1 != acl.rules.size() &&
        (earlier.any_source ||
         (!later.any_source && earlier.source.contains(later.source)))) {
      return true;  // RD008 shadowed-acl-clause
    }
  }
  return false;
}

void subtract_piece(std::vector<ip::Prefix>& region, const ip::Prefix& hole) {
  std::vector<ip::Prefix> out;
  out.reserve(region.size());
  for (const auto& piece : region) {
    if (hole.contains(piece)) continue;
    if (piece.contains(hole)) {
      auto parts = model::prefix_difference(piece, hole);
      out.insert(out.end(), parts.begin(), parts.end());
    } else {
      out.push_back(piece);
    }
  }
  region = std::move(out);
}

ip::Prefix acl_rule_source_region(const config::AclRule& rule) {
  return rule.any_source ? ip::Prefix(ip::Ipv4Address(0u), 0) : rule.source;
}

std::vector<Finding> rule_shadowed_acl_entry(const RuleContext& ctx) {
  const auto& network = ctx.network;
  std::vector<Finding> out;
  for (model::RouterId r = 0; r < network.routers().size(); ++r) {
    const auto& cfg = network.routers()[r];
    for (const auto& acl : cfg.access_lists) {
      if (acl.rules.size() < 2) continue;
      if (acl_is_packet_filter(cfg, acl.id)) {
        // Packet semantics: exact cross-product regions over
        // (src, dst, protocol, port), as acl_permits_packet evaluates them.
        model::ProtocolDomain domain;
        const model::SymbolicPacketFilter symbolic(acl, domain);
        for (const std::size_t i : symbolic.shadowed()) {
          if (lint_already_flags(acl, i)) continue;
          out.push_back(make_finding(
              r, acl.id,
              "clause " + std::to_string(i + 1) +
                  " can never match a packet (the preceding clauses cover "
                  "its entire header space)",
              acl.rules[i].line));
        }
      } else {
        // Route-filter semantics: acl_permits_route matches only the
        // route's network address against the source spec.
        std::vector<ip::Prefix> remaining{ip::Prefix(ip::Ipv4Address(0u), 0)};
        for (std::size_t i = 0; i < acl.rules.size(); ++i) {
          const ip::Prefix region = acl_rule_source_region(acl.rules[i]);
          bool matchable = false;
          for (const auto& piece : remaining) {
            if (piece.overlaps(region)) {
              matchable = true;
              break;
            }
          }
          if (!matchable && !lint_already_flags(acl, i)) {
            out.push_back(make_finding(
                r, acl.id,
                "clause " + std::to_string(i + 1) +
                    " can never match a route (the preceding clauses cover "
                    "its source space)",
                acl.rules[i].line));
          }
          subtract_piece(remaining, region);
        }
      }
    }
  }
  return out;
}

// RD051 lowers route space onto the same predicate algebra: a route
// (network address, prefix length, tag) becomes a header point with
// source = the address, port = the length (an integer in [0, 32]), and
// protocols = one bit per distinct tag value (bitmask position interned via
// a ProtocolDomain reused as a small-integer-set interner; bit 0 stays the
// "any other tag" wildcard a tag-less match keeps). The model covers a
// superspace of real routes (lengths unaligned with addresses included), so
// an empty or covered region is a sound "dead" verdict.

constexpr std::uint32_t kMaxPrefixLen = 32;

model::HeaderPredicate acl_route_region(const config::AccessList& acl) {
  model::HeaderPredicate permitted;
  std::vector<ip::Prefix> remaining{ip::Prefix(ip::Ipv4Address(0u), 0)};
  for (const auto& rule : acl.rules) {
    const ip::Prefix region = acl_rule_source_region(rule);
    if (rule.action == config::FilterAction::kPermit) {
      for (const auto& piece : remaining) {
        std::optional<ip::Prefix> hit;
        if (piece.contains(region)) {
          hit = region;
        } else if (region.contains(piece)) {
          hit = piece;
        }
        if (!hit) continue;
        model::HeaderAtom atom;
        atom.source = *hit;
        atom.port_hi = kMaxPrefixLen;
        permitted.unite(atom);
      }
    }
    subtract_piece(remaining, region);
    if (remaining.empty()) break;
  }
  permitted.normalize();
  return permitted;
}

model::HeaderPredicate prefix_list_region(const config::PrefixList& pl) {
  model::HeaderPredicate permitted;
  model::HeaderAtom everything;
  everything.port_hi = kMaxPrefixLen;
  auto remaining = model::HeaderPredicate::of(everything);
  for (const auto& entry : pl.entries) {
    // Mirror of prefix_list_permits_route: containment forces
    // length >= entry length; ge/le bound it further; no bounds means
    // exact length.
    model::HeaderAtom region;
    region.source = entry.prefix;
    const auto entry_len = static_cast<std::uint32_t>(entry.prefix.length());
    if (entry.ge || entry.le) {
      region.port_lo = entry_len;
      if (entry.ge && *entry.ge > 0 &&
          static_cast<std::uint32_t>(*entry.ge) > entry_len) {
        region.port_lo = static_cast<std::uint32_t>(*entry.ge);
      }
      region.port_hi =
          entry.le && *entry.le >= 0 ? static_cast<std::uint32_t>(*entry.le)
                                     : kMaxPrefixLen;
    } else {
      region.port_lo = region.port_hi = entry_len;
    }
    if (region.empty()) continue;  // le < ge: matches nothing, blocks nothing
    if (entry.action == config::FilterAction::kPermit) {
      permitted.unite(remaining.intersect(region));
    }
    remaining = remaining.subtract(region);
    remaining.normalize();
    if (remaining.is_empty()) break;
  }
  permitted.normalize();
  return permitted;
}

model::HeaderPredicate route_map_clause_region(
    const config::RouteMapClause& clause, const config::RouterConfig& cfg,
    model::ProtocolDomain& tags) {
  model::HeaderAtom base;
  base.port_hi = kMaxPrefixLen;
  if (clause.match_tag) {
    base.protocols = tags.clause_mask(std::to_string(*clause.match_tag));
  }
  auto region = model::HeaderPredicate::of(base);
  // AND across match kinds, OR across the lists of one kind; unresolvable
  // references contribute nothing — exactly route_map_evaluate. A present
  // match kind whose every list is unresolvable (or matches nothing) makes
  // the clause unsatisfiable. "match as-path" carries no route-space
  // constraint in the static model and is treated as satisfied.
  if (!clause.match_ip_address_acls.empty()) {
    model::HeaderPredicate any;
    for (const auto& acl_id : clause.match_ip_address_acls) {
      if (const auto* acl = cfg.find_access_list(acl_id)) {
        any.unite(acl_route_region(*acl));
      }
    }
    region = region.intersect(any);
  }
  if (!clause.match_prefix_lists.empty()) {
    model::HeaderPredicate any;
    for (const auto& pl_name : clause.match_prefix_lists) {
      if (const auto* pl = cfg.find_prefix_list(pl_name)) {
        any.unite(prefix_list_region(*pl));
      }
    }
    region = region.intersect(any);
  }
  region.normalize();
  return region;
}

std::vector<Finding> rule_dead_route_map_clause(const RuleContext& ctx) {
  const auto& network = ctx.network;
  std::vector<Finding> out;
  for (model::RouterId r = 0; r < network.routers().size(); ++r) {
    const auto& cfg = network.routers()[r];
    for (const auto& rm : cfg.route_maps) {
      model::ProtocolDomain tags;
      model::HeaderPredicate covered;
      for (const auto& clause : rm.clauses) {
        const auto region = route_map_clause_region(clause, cfg, tags);
        const std::string label = "clause " + std::to_string(clause.sequence);
        if (region.is_empty()) {
          out.push_back(make_finding(
              r, rm.name,
              label + " can never match: its match conditions are "
                      "unsatisfiable (no referenced list matches any route)",
              clause.line));
        } else if (region.subtract(covered).is_empty()) {
          out.push_back(make_finding(
              r, rm.name,
              label + " can never be reached: earlier clauses match every "
                      "route it matches",
              clause.line));
        }
        covered.unite(region);
        covered.normalize();
      }
    }
  }
  return out;
}

std::vector<Finding> rule_intent_violation(const RuleContext& ctx) {
  const auto intents = collect_intents(ctx.network);
  if (intents.empty()) return {};  // the common case costs nothing
  const auto routes = ReachabilityAnalysis::run(ctx.network, ctx.graph.set);
  std::vector<Finding> out;
  for (const auto& outcome :
       verify_intents(ctx.network, ctx.graph.set, routes, intents)) {
    if (outcome.holds) continue;
    std::string detail;
    if (outcome.intent.expect_reachable) {
      detail = "allow intent violated: packet " +
               (outcome.witness ? outcome.witness->describe()
                                : std::string("?")) +
               " cannot get through";
    } else {
      detail = "deny intent violated: packet " +
               (outcome.witness ? outcome.witness->describe()
                                : std::string("?")) +
               " gets through";
    }
    out.push_back(make_finding(outcome.intent.router,
                               outcome.intent.describe(), std::move(detail),
                               outcome.intent.line));
  }
  return out;
}

// --- the default registry ---------------------------------------------------

struct LintRuleSpec {
  LintKind kind;
  const char* id;
  const char* name;
  Severity severity;
  const char* description;
  const char* paper;
};

constexpr LintRuleSpec kLintRules[] = {
    {LintKind::kMultiPolicyFilter, "RD001", "multi-policy-filter",
     Severity::kWarning,
     "Packet filter mixes several policies in one list (multiple protocols, "
     "interleaved permit/deny)",
     "§5.3, §8.1"},
    {LintKind::kUnusedAccessList, "RD002", "unused-access-list",
     Severity::kInfo, "Access list is defined but never referenced",
     "§8.2"},
    {LintKind::kUnusedRouteMap, "RD003", "unused-route-map", Severity::kInfo,
     "Route-map is defined but never referenced", "§8.2"},
    {LintKind::kUndefinedAclReference, "RD004", "undefined-acl-reference",
     Severity::kError,
     "Referenced access list is never defined; on IOS the reference "
     "silently matches everything",
     "§5.3, §8.1"},
    {LintKind::kUndefinedRouteMapRef, "RD005", "undefined-route-map-reference",
     Severity::kError, "Referenced route-map is never defined",
     "§5.3, §8.1"},
    {LintKind::kUndefinedPrefixListRef, "RD006",
     "undefined-prefix-list-reference", Severity::kError,
     "Referenced prefix-list is never defined", "§5.3, §8.1"},
    {LintKind::kDuplicateAclClause, "RD007", "duplicate-acl-clause",
     Severity::kWarning, "Identical clause appears twice in one access list",
     "§5.3"},
    {LintKind::kShadowedAclClause, "RD008", "shadowed-acl-clause",
     Severity::kWarning,
     "Access-list clause can never match; an earlier clause covers it",
     "§5.3"},
    {LintKind::kRedundantStaticRoute, "RD009", "redundant-static-route",
     Severity::kInfo, "Static route duplicates a directly connected subnet",
     "§3.3"},
    {LintKind::kNoncanonicalNetwork, "RD010", "noncanonical-network-statement",
     Severity::kWarning,
     "Network statement has host bits set under its mask", "§2.2"},
};

struct ConsistencyRuleSpec {
  ConsistencyKind kind;
  const char* id;
  Severity severity;
  const char* description;
  const char* paper;
};

constexpr ConsistencyRuleSpec kConsistencyRules[] = {
    {ConsistencyKind::kDuplicateAddress, "RD020", Severity::kError,
     "The same IP address is configured on two interfaces", "§2.1"},
    {ConsistencyKind::kMaskMismatch, "RD021", Severity::kWarning,
     "Link subnets overlap with different masks (interfaces on one wire "
     "disagree about its size)",
     "§2.1"},
    {ConsistencyKind::kOneSidedBgpSession, "RD022", Severity::kError,
     "Internal BGP session is configured on one endpoint only",
     "§2.3, §8.1"},
    {ConsistencyKind::kAsnMismatch, "RD023", Severity::kError,
     "BGP neighbor statement names an AS the owning router does not run",
     "§2.3"},
};

}  // namespace

RuleEngine RuleEngine::with_default_rules(RuleOptions options) {
  RuleEngine engine;
  engine.options_ = options;
  for (const auto& spec : kLintRules) {
    const LintKind kind = spec.kind;
    engine.add({spec.id, spec.name, "lint", spec.severity, spec.description,
                spec.paper},
               [kind](const RuleContext& ctx) {
                 return run_lint_kind(ctx, kind);
               });
  }
  for (const auto& spec : kConsistencyRules) {
    const ConsistencyKind kind = spec.kind;
    engine.add({spec.id, std::string(to_string(kind)), "consistency",
                spec.severity, spec.description, spec.paper},
               [kind](const RuleContext& ctx) {
                 return run_consistency_kind(ctx, kind);
               });
  }
  engine.add({"RD030", "unfiltered-external-bgp-session", "vulnerability",
              Severity::kWarning,
              "External BGP session has neither an inbound route filter nor "
              "an inbound packet filter",
              "§8.1"},
             rule_unfiltered_ebgp);
  engine.add({"RD031", "redistribution-single-point-of-failure",
              "vulnerability", Severity::kWarning,
              "All route exchange between two routing instances passes "
              "through one router",
              "§5.1, §8.1"},
             rule_redistribution_spof);
  engine.add({"RD032", "backdoor-route-candidate", "vulnerability",
              Severity::kInfo,
              "Internally disconnected instance groups each reach the "
              "external world; backdoor routes may exist through neighbors",
              "§8.2"},
             rule_backdoor_candidate);
  engine.add({"RD033", "shared-static-destination", "vulnerability",
              Severity::kInfo,
              "Several routers carry static routes to the same destination",
              "§8.1"},
             rule_shared_static_destination);
  engine.add({"RD040", "duplicate-router-id", "cross-router",
              Severity::kError,
              "The same router-id is configured on two different routers",
              "§2.2"},
             rule_duplicate_router_id);
  engine.add({"RD041", "one-sided-redistribution", "cross-router",
              Severity::kWarning,
              "Routes are redistributed between two instances in one "
              "direction only",
              "§5.1"},
             rule_one_sided_redistribution);
  engine.add({"RD042", "asymmetric-redistribution-policy", "cross-router",
              Severity::kWarning,
              "Mutual redistribution between two instances carries a "
              "route-map in one direction only",
              "§5.1, §8.1"},
             rule_asymmetric_redistribution_policy);
  engine.add({"RD043", "ibgp-mesh-gap", "cross-router", Severity::kError,
              "Router pairs inside one AS have no IBGP route propagation "
              "path",
              "§5.2, §6.1"},
             rule_ibgp_mesh_gap);
  engine.add({"RD044", "unfiltered-igp-edge-interface", "cross-router",
              Severity::kWarning,
              "External-facing interface runs an IGP without inbound route "
              "or packet filtering",
              "§5.2, §8.1"},
             rule_unfiltered_igp_edge);
  engine.add({"RD050", "shadowed-acl-entry", "symbolic", Severity::kInfo,
              "ACL clause can never match: the preceding clauses cover its "
              "entire header (or route source) space",
              "§5.3, §8.1"},
             rule_shadowed_acl_entry);
  engine.add({"RD051", "dead-route-map-clause", "symbolic", Severity::kInfo,
              "Route-map clause can never fire: unsatisfiable match "
              "conditions, or earlier clauses match every route it matches",
              "§5.1, §8.1"},
             rule_dead_route_map_clause);
  engine.add({"RD052", "intent-violation", "symbolic", Severity::kError,
              "A declared rd-intent assertion does not hold in the computed "
              "header space",
              "§6.2, §8.1"},
             rule_intent_violation);
  engine.add({"RD060", "redistribution-loop", "dataflow", Severity::kError,
              "An instance's routes can transit a filter-permitting "
              "multi-router cycle and re-enter their origin with a winning "
              "administrative distance",
              "§2.4, §6.1"},
             RedistributionSafety::redistribution_loop);
  engine.add({"RD061", "metric-loss-at-boundary", "dataflow",
              Severity::kWarning,
              "Redistribution into a protocol with a different metric "
              "algebra carries no metric mapping",
              "§2.4, §5.1"},
             RedistributionSafety::metric_loss);
  engine.add({"RD062", "administrative-distance-inversion", "dataflow",
              Severity::kWarning,
              "A redistributed copy of an instance's routes beats the "
              "native route on a router hosting both instances",
              "§2.4, §6.1"},
             RedistributionSafety::distance_inversion);
  engine.add({"RD063", "mutual-redistribution-without-filter", "dataflow",
              Severity::kWarning,
              "Mutual redistribution between two instances where one "
              "direction cannot deny any route",
              "§5.1, §6.1"},
             RedistributionSafety::unfiltered_mutual);
  engine.add({"RD064", "single-point-redistribution", "dataflow",
              Severity::kWarning,
              "Two multi-router instances exchange routes through exactly "
              "one router, with no alternate path between them",
              "§6, §8.1"},
             RedistributionSafety::single_point);
  return engine;
}

void RuleEngine::add(RuleInfo info, RuleFn fn) {
  rules_.push_back({std::move(info), std::move(fn)});
}

const RuleInfo* RuleEngine::find(std::string_view id) const noexcept {
  for (const auto& rule : rules_) {
    if (rule.info.id == id) return &rule.info;
  }
  return nullptr;
}

RuleEngine::Result RuleEngine::run(const model::Network& network) const {
  const auto graph = graph::InstanceGraph::build(network);
  return collect(network, graph, nullptr);
}

RuleEngine::Result RuleEngine::run(const model::Network& network,
                                   const graph::InstanceGraph& graph) const {
  return collect(network, graph, nullptr);
}

RuleEngine::Result RuleEngine::run(const model::Network& network,
                                   util::ThreadPool& pool) const {
  const auto graph = graph::InstanceGraph::build(network);
  return collect(network, graph, &pool);
}

RuleEngine::Result RuleEngine::run(const model::Network& network,
                                   const graph::InstanceGraph& graph,
                                   util::ThreadPool& pool) const {
  return collect(network, graph, &pool);
}

RuleEngine::Result RuleEngine::collect(const model::Network& network,
                                       const graph::InstanceGraph& graph,
                                       util::ThreadPool* pool) const {
  const RuleContext ctx{network, graph, options_};

  struct PerRule {
    std::vector<Finding> findings;
    double millis = 0.0;
  };
  std::vector<PerRule> per_rule(rules_.size());
  const auto run_one = [&](std::size_t i) {
    // The per-rule span (name = the stable RDnnn id) supersedes the ad-hoc
    // `--timings` channel: a trace shows the same per-rule wall times on
    // the thread that actually ran the rule. The steady_clock timing below
    // stays for Result::timings compatibility.
    obs::Span span(rules_[i].info.id, "rules");
    const auto start = std::chrono::steady_clock::now();
    per_rule[i].findings = rules_[i].fn(ctx);
    per_rule[i].millis =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    span.arg("findings", per_rule[i].findings.size());
  };
  if (pool != nullptr) {
    pool->run_indexed(rules_.size(), run_one);
  } else {
    for (std::size_t i = 0; i < rules_.size(); ++i) run_one(i);
  }

  // Merge in registration order: the parallel run's output is byte-identical
  // to the serial run's no matter how rules were scheduled.
  Result result;
  result.timings.reserve(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const auto& info = rules_[i].info;
    result.timings.push_back(
        {info.id, per_rule[i].millis, per_rule[i].findings.size()});
    for (auto& f : per_rule[i].findings) {
      f.rule_id = info.id;
      f.severity = info.severity;
      if (f.router != model::kInvalidId) {
        const auto& rc = network.routers()[f.router];
        f.router_name = rc.hostname;
        f.where.file = rc.source_file.empty() ? rc.hostname : rc.source_file;
        if (std::binary_search(rc.lint_suppressions.begin(),
                               rc.lint_suppressions.end(), info.id)) {
          ++result.suppressed;
          continue;
        }
      }
      if (f.router_b != model::kInvalidId) {
        f.router_b_name = network.routers()[f.router_b].hostname;
      }
      switch (f.severity) {
        case Severity::kError:
          ++result.errors;
          break;
        case Severity::kWarning:
          ++result.warnings;
          break;
        case Severity::kInfo:
          ++result.infos;
          break;
      }
      result.findings.push_back(std::move(f));
    }
  }
  obs::counter("rules.runs").add();
  obs::counter("rules.evaluated").add(rules_.size());
  obs::counter("rules.findings").add(result.findings.size());
  obs::counter("rules.suppressed").add(result.suppressed);
  return result;
}

std::string findings_to_json(const RuleEngine& engine,
                             const RuleEngine::Result& result,
                             std::string_view network_name, int indent) {
  auto root = util::Json::object();
  root.set("tool", "rdlint");
  root.set("network", std::string(network_name));
  auto summary = util::Json::object();
  summary.set("total", result.findings.size());
  summary.set("errors", result.errors);
  summary.set("warnings", result.warnings);
  summary.set("info", result.infos);
  summary.set("suppressed", result.suppressed);
  root.set("summary", std::move(summary));
  auto findings = util::Json::array();
  for (const auto& f : result.findings) {
    auto j = util::Json::object();
    j.set("rule", f.rule_id);
    const auto* info = engine.find(f.rule_id);
    if (info != nullptr) j.set("name", info->name);
    j.set("severity", std::string(severity_name(f.severity)));
    if (!f.router_name.empty()) j.set("router", f.router_name);
    if (!f.router_b_name.empty()) j.set("router_b", f.router_b_name);
    if (!f.where.file.empty()) j.set("file", f.where.file);
    if (f.where.line != 0) j.set("line", f.where.line);
    j.set("subject", f.subject);
    j.set("detail", f.detail);
    j.set("fingerprint", finding_fingerprint(f));
    findings.push_back(std::move(j));
  }
  root.set("findings", std::move(findings));
  return root.dump(indent);
}

std::string findings_to_sarif(const RuleEngine& engine,
                              const RuleEngine::Result& result, int indent) {
  auto driver = util::Json::object();
  driver.set("name", "rdlint");
  driver.set("informationUri",
             "https://dl.acm.org/doi/10.1145/1015467.1015472");
  auto rules = util::Json::array();
  std::map<std::string, std::size_t> rule_index;
  for (const auto& rule : engine.rules()) {
    rule_index.emplace(rule.info.id, rule_index.size());
    auto rj = util::Json::object();
    rj.set("id", rule.info.id);
    rj.set("name", rule.info.name);
    auto text = util::Json::object();
    text.set("text", rule.info.description);
    rj.set("shortDescription", std::move(text));
    auto configuration = util::Json::object();
    configuration.set("level",
                      std::string(severity_sarif_level(rule.info.severity)));
    rj.set("defaultConfiguration", std::move(configuration));
    auto properties = util::Json::object();
    properties.set("category", rule.info.category);
    properties.set("paper", rule.info.paper);
    rj.set("properties", std::move(properties));
    rules.push_back(std::move(rj));
  }
  driver.set("rules", std::move(rules));
  auto tool = util::Json::object();
  tool.set("driver", std::move(driver));

  auto results = util::Json::array();
  for (const auto& f : result.findings) {
    auto rj = util::Json::object();
    rj.set("ruleId", f.rule_id);
    const auto it = rule_index.find(f.rule_id);
    if (it != rule_index.end()) rj.set("ruleIndex", it->second);
    rj.set("level", std::string(severity_sarif_level(f.severity)));
    auto message = util::Json::object();
    std::string text;
    if (!f.router_name.empty()) text = f.router_name + ": ";
    if (!f.subject.empty()) text += f.subject + ": ";
    text += f.detail;
    message.set("text", std::move(text));
    rj.set("message", std::move(message));
    if (!f.where.file.empty()) {
      auto artifact = util::Json::object();
      artifact.set("uri", f.where.file);
      auto physical = util::Json::object();
      physical.set("artifactLocation", std::move(artifact));
      if (f.where.line != 0) {
        auto region = util::Json::object();
        region.set("startLine", f.where.line);
        physical.set("region", std::move(region));
      }
      auto location = util::Json::object();
      location.set("physicalLocation", std::move(physical));
      auto locations = util::Json::array();
      locations.push_back(std::move(location));
      rj.set("locations", std::move(locations));
    }
    auto fingerprints = util::Json::object();
    fingerprints.set("rdlint/v1", finding_fingerprint(f));
    rj.set("partialFingerprints", std::move(fingerprints));
    results.push_back(std::move(rj));
  }

  auto run = util::Json::object();
  run.set("tool", std::move(tool));
  run.set("results", std::move(results));
  auto runs = util::Json::array();
  runs.push_back(std::move(run));
  auto root = util::Json::object();
  root.set("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
  root.set("version", "2.1.0");
  root.set("runs", std::move(runs));
  return root.dump(indent);
}

std::optional<std::vector<std::string>> baseline_fingerprints(
    std::string_view json_text) {
  const auto doc = util::Json::parse(json_text);
  if (!doc) return std::nullopt;
  const auto* findings = doc->get("findings");
  if (findings == nullptr || !findings->is_array()) return std::nullopt;
  std::vector<std::string> out;
  out.reserve(findings->size());
  for (std::size_t i = 0; i < findings->size(); ++i) {
    const auto* finding = findings->at(i);
    const auto* fp = finding ? finding->get("fingerprint") : nullptr;
    const auto* s = fp ? fp->if_string() : nullptr;
    if (s == nullptr) return std::nullopt;
    out.push_back(*s);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

BaselineDelta diff_against_baseline(const std::vector<Finding>& current,
                                    const std::vector<std::string>& baseline) {
  const std::set<std::string> base(baseline.begin(), baseline.end());
  std::set<std::string> seen;
  BaselineDelta delta;
  for (const auto& f : current) {
    auto fp = finding_fingerprint(f);
    (base.count(fp) != 0 ? delta.unchanged : delta.new_findings).push_back(f);
    seen.insert(std::move(fp));
  }
  for (const auto& fp : base) {
    if (seen.count(fp) == 0) delta.fixed.push_back(fp);
  }
  return delta;
}

}  // namespace rd::analysis
