#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/network.h"

namespace rd::analysis {

/// Configuration lint (paper §5.3 / §8.1): the paper's detailed look at
/// packet filters "reveals weaknesses in the Cisco IOS language that can
/// make configuring routers more error prone" — e.g. a 47-clause filter
/// defining several policies simultaneously because IOS allows only one
/// filter per interface. These checks surface such error-prone or stale
/// constructs from the configuration state alone.
enum class LintKind : std::uint8_t {
  kMultiPolicyFilter,     // one huge filter mixing several concerns
  kUnusedAccessList,      // defined, never referenced
  kUnusedRouteMap,        // defined, never referenced
  kUndefinedAclReference, // referenced, never defined
  kUndefinedRouteMapRef,  // referenced, never defined
  kUndefinedPrefixListRef,
  kDuplicateAclClause,    // identical clause appears twice in one list
  kShadowedAclClause,     // clause can never match (earlier clause covers it)
  kRedundantStaticRoute,  // static duplicating a connected subnet
  kNoncanonicalNetwork,   // network statement with host bits set in the mask
};

std::string_view to_string(LintKind kind) noexcept;

struct LintFinding {
  LintKind kind = LintKind::kUnusedAccessList;
  model::RouterId router = model::kInvalidId;
  std::string subject;  // ACL id / route-map name / prefix
  std::string detail;
  /// 1-based line in the router's source config (0 = unknown). For dangling
  /// references this is the first referencing line; otherwise the line of
  /// the flagged construct.
  std::size_t line = 0;
};

/// Bit for one LintKind in LintOptions::kind_mask.
constexpr std::uint32_t lint_kind_bit(LintKind kind) noexcept {
  return 1u << static_cast<std::uint32_t>(kind);
}

struct LintOptions {
  /// A filter with at least this many clauses that mixes several protocols
  /// and interleaves permit/deny is flagged as multi-policy.
  std::size_t multi_policy_clause_threshold = 30;
  /// Which checks to run (one bit per LintKind, default all). The rule
  /// engine runs each kind as its own rule; the mask keeps a single-kind
  /// run from paying for the other nine checks.
  std::uint32_t kind_mask = 0xFFFFFFFFu;

  bool enabled(LintKind kind) const noexcept {
    return (kind_mask & lint_kind_bit(kind)) != 0;
  }
};

std::vector<LintFinding> lint_network(const model::Network& network,
                                      const LintOptions& options);
inline std::vector<LintFinding> lint_network(const model::Network& network) {
  return lint_network(network, LintOptions{});
}

}  // namespace rd::analysis
