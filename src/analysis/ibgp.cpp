#include "analysis/ibgp.h"

#include <algorithm>
#include <array>
#include <map>
#include <queue>
#include <set>
#include <utility>

namespace rd::analysis {

namespace {

/// How a router received a route, for the standard IBGP re-advertisement
/// rule: plain IBGP peers do not re-advertise IBGP-learned routes; route
/// reflectors re-advertise client routes to everyone and non-client routes
/// to their clients.
enum class Mode : std::uint8_t { kOrigin, kFromClient, kFromNonClient };

struct AsTopology {
  std::vector<model::RouterId> routers;
  // Deduplicated sessions as local-index pairs.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sessions;
  // (reflector local index, client local index).
  std::set<std::pair<std::uint32_t, std::uint32_t>> client_of;
  std::vector<std::vector<std::uint32_t>> peers;  // adjacency by local index

  bool is_client_of(std::uint32_t reflector, std::uint32_t client) const {
    return client_of.contains({reflector, client});
  }
  bool is_reflector(std::uint32_t r) const {
    for (const auto& [reflector, client] : client_of) {
      if (reflector == r) return true;
    }
    return false;
  }
};

/// Can a route originated (or EBGP-learned) at `origin` reach every other
/// router of the AS via IBGP signaling?
std::vector<bool> propagation_from(const AsTopology& topo,
                                   std::uint32_t origin) {
  const std::size_t n = topo.routers.size();
  // visited[router][mode]: mode 0 = from client, 1 = from non-client.
  std::vector<std::array<bool, 2>> visited(n, {false, false});
  std::vector<bool> reached(n, false);
  reached[origin] = true;

  struct State {
    std::uint32_t router;
    Mode mode;
  };
  std::queue<State> frontier;
  frontier.push({origin, Mode::kOrigin});
  while (!frontier.empty()) {
    const State state = frontier.front();
    frontier.pop();
    const std::uint32_t x = state.router;
    for (const std::uint32_t y : topo.peers[x]) {
      // May x advertise to y given how it learned the route?
      bool may_send = false;
      switch (state.mode) {
        case Mode::kOrigin:
          may_send = true;
          break;
        case Mode::kFromClient:
          may_send = topo.is_reflector(x);
          break;
        case Mode::kFromNonClient:
          may_send = topo.is_client_of(x, y);
          break;
      }
      if (!may_send) continue;
      const Mode arrival = topo.is_client_of(y, x) ? Mode::kFromClient
                                                   : Mode::kFromNonClient;
      const std::size_t mode_index =
          arrival == Mode::kFromClient ? 0 : 1;
      if (visited[y][mode_index]) continue;
      visited[y][mode_index] = true;
      reached[y] = true;
      frontier.push({y, arrival});
    }
  }
  return reached;
}

}  // namespace

std::vector<IbgpStructure> analyze_ibgp(const model::Network& network,
                                        const graph::InstanceSet& instances) {
  (void)instances;

  // Group BGP routers by AS.
  std::map<std::uint32_t, std::set<model::RouterId>> routers_by_as;
  for (const auto& process : network.processes()) {
    if (process.protocol == config::RoutingProtocol::kBgp &&
        process.process_id) {
      routers_by_as[*process.process_id].insert(process.router);
    }
  }

  std::vector<IbgpStructure> out;
  for (const auto& [as_number, router_set] : routers_by_as) {
    IbgpStructure entry;
    entry.as_number = as_number;
    entry.routers.assign(router_set.begin(), router_set.end());
    if (entry.routers.size() < 2) {
      out.push_back(std::move(entry));
      continue;
    }

    AsTopology topo;
    topo.routers = entry.routers;
    std::map<model::RouterId, std::uint32_t> local;
    for (std::uint32_t i = 0; i < topo.routers.size(); ++i) {
      local.emplace(topo.routers[i], i);
    }
    topo.peers.resize(topo.routers.size());

    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    for (const auto& session : network.bgp_sessions()) {
      if (session.external() || session.ebgp()) continue;
      if (session.local_as != as_number) continue;
      const auto a = local.find(
          network.processes()[session.local_process].router);
      const auto b = local.find(
          network.processes()[session.remote_process].router);
      if (a == local.end() || b == local.end()) continue;
      const auto key = std::minmax(a->second, b->second);
      if (seen.insert(key).second) {
        topo.sessions.push_back(key);
        topo.peers[key.first].push_back(key.second);
        topo.peers[key.second].push_back(key.first);
      }
      // Client flag: the configuring endpoint marks the remote as client.
      const auto& stanza =
          network.routers()[network.processes()[session.local_process].router]
              .router_stanzas[network.processes()[session.local_process]
                                  .stanza_index];
      if (stanza.neighbors[session.neighbor_index].route_reflector_client) {
        topo.client_of.insert({a->second, b->second});
      }
    }

    entry.sessions = topo.sessions.size();
    const double n = static_cast<double>(entry.routers.size());
    entry.mesh_completeness =
        static_cast<double>(entry.sessions) / (n * (n - 1.0) / 2.0);

    std::set<std::uint32_t> reflector_set;
    std::set<std::uint32_t> client_set;
    for (const auto& [reflector, client] : topo.client_of) {
      reflector_set.insert(reflector);
      client_set.insert(client);
    }
    entry.reflectors = reflector_set.size();
    entry.clients = client_set.size();

    for (std::uint32_t i = 0; i < topo.routers.size(); ++i) {
      if (topo.peers[i].empty()) {
        entry.isolated_routers.push_back(topo.routers[i]);
      }
    }

    // Session-graph components (plain undirected connectivity).
    std::vector<std::uint32_t> component(topo.routers.size(),
                                         model::kInvalidId);
    for (std::uint32_t seed = 0; seed < topo.routers.size(); ++seed) {
      if (component[seed] != model::kInvalidId) continue;
      ++entry.components;
      std::queue<std::uint32_t> frontier;
      frontier.push(seed);
      component[seed] = seed;
      while (!frontier.empty()) {
        const std::uint32_t x = frontier.front();
        frontier.pop();
        for (const std::uint32_t y : topo.peers[x]) {
          if (component[y] == model::kInvalidId) {
            component[y] = seed;
            frontier.push(y);
          }
        }
      }
    }

    // Signaling holes within a component: ordered pairs (u, v) connected by
    // sessions yet unreachable under the reflection rule.
    std::size_t unreachable_ordered = 0;
    for (std::uint32_t u = 0; u < topo.routers.size(); ++u) {
      const auto reached = propagation_from(topo, u);
      for (std::uint32_t v = 0; v < topo.routers.size(); ++v) {
        if (v != u && component[v] == component[u] && !reached[v]) {
          ++unreachable_ordered;
        }
      }
    }
    entry.disconnected_pairs = unreachable_ordered;
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace rd::analysis
