#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/network.h"

namespace rd::analysis {

/// Cross-router consistency checks (paper §8.1 inventory management and
/// anomaly detection: configuration state routinely accumulates stale or
/// inconsistent fragments — "the provisioning and decommissioning of
/// equipment may lead to network configurations that appear incomplete or
/// inconsistent", §8.2).
enum class ConsistencyKind : std::uint8_t {
  kDuplicateAddress,    // the same IP configured on two interfaces
  kMaskMismatch,        // overlapping link subnets with different masks
  kOneSidedBgpSession,  // internal session configured on one endpoint only
  kAsnMismatch,         // both ends configured, but each names the wrong AS
};

std::string_view to_string(ConsistencyKind kind) noexcept;

struct ConsistencyFinding {
  ConsistencyKind kind = ConsistencyKind::kDuplicateAddress;
  model::RouterId router_a = model::kInvalidId;
  model::RouterId router_b = model::kInvalidId;  // kInvalidId if N/A
  std::string detail;
};

std::vector<ConsistencyFinding> check_consistency(
    const model::Network& network);

}  // namespace rd::analysis
