#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/network.h"

namespace rd::analysis {

/// Cross-router consistency checks (paper §8.1 inventory management and
/// anomaly detection: configuration state routinely accumulates stale or
/// inconsistent fragments — "the provisioning and decommissioning of
/// equipment may lead to network configurations that appear incomplete or
/// inconsistent", §8.2).
enum class ConsistencyKind : std::uint8_t {
  kDuplicateAddress,    // the same IP configured on two interfaces
  kMaskMismatch,        // overlapping link subnets with different masks
  kOneSidedBgpSession,  // internal session configured on one endpoint only
  kAsnMismatch,         // both ends configured, but each names the wrong AS
};

std::string_view to_string(ConsistencyKind kind) noexcept;

/// Bit for one ConsistencyKind in a check_consistency kind mask.
constexpr std::uint32_t consistency_kind_bit(ConsistencyKind kind) noexcept {
  return 1u << static_cast<std::uint32_t>(kind);
}

struct ConsistencyFinding {
  ConsistencyKind kind = ConsistencyKind::kDuplicateAddress;
  model::RouterId router_a = model::kInvalidId;
  model::RouterId router_b = model::kInvalidId;  // kInvalidId if N/A
  std::string detail;
  /// 1-based line in router_a's source config (0 = unknown): the finding's
  /// anchor on the router it is reported against.
  std::size_t line = 0;
};

/// Run the checks selected by `kind_mask` (one bit per ConsistencyKind).
std::vector<ConsistencyFinding> check_consistency(
    const model::Network& network, std::uint32_t kind_mask);
inline std::vector<ConsistencyFinding> check_consistency(
    const model::Network& network) {
  return check_consistency(network, 0xFFFFFFFFu);
}

}  // namespace rd::analysis
